// egoistd — the out-of-process route-serving daemon.
//
// Deploys one serving overlay (the serve_load/serve_remote deployment:
// BR in §5 scale mode, churned, warmed up), attaches a host::RouteService,
// and serves wire-protocol queries over TCP and/or a Unix-domain socket
// through an rpc::Server while the main thread keeps driving epochs — the
// whole serving stack in one process, queried from any other.
//
// Daemon flags (--listen / --uds / --max-frame / --idle-timeout / ...)
// configure the transport; every OTHER --key=value flag is an overlay knob
// override layered onto the optional --scenario file, read with the same
// typo safety as the experiment driver (unknown knobs fail loudly with a
// closest-name hint). serve_remote spawns this binary and forwards its own
// deployment knobs, so daemon and bench hold bit-identical overlays.
//
// Startup handshake: once the listeners are live the daemon prints ONE
// line to stdout —
//
//   EGOISTD READY pid=<pid> n=<n> tcp=<port|-1> uds=<path|-> loops=<count>
//
// — and a spawner may connect. Shutdown: SIGTERM/SIGINT stop the epoch
// loop, the server drains queued responses and closes (rpc::Server::stop),
// and RouteService::drain proves every pinned snapshot was released before
// the daemon prints
//
//   EGOISTD EXIT epochs=<count> drained=<0|1> seal_violations=<count>
//
// and exits 0 (clean) or 3 (drain failed / seal violation).
#include <csignal>
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include <unistd.h>

#include "exp/params.hpp"
#include "exp/scenario.hpp"
#include "exp/serve_workload.hpp"
#include "host/route_service.hpp"
#include "rpc/server.hpp"
#include "util/flags.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

bool is_daemon_flag(const std::string& name) {
  return name == "scenario" || name == "listen" || name == "uds" ||
         name == "max-frame" || name == "idle-timeout" ||
         name == "drain-deadline" || name == "drain-timeout" ||
         name == "max-connections" || name == "max-epochs" ||
         name == "epoch-interval" || name == "loops" || name == "help";
}

/// "--listen PORT" or "--listen HOST:PORT"; empty disables TCP.
void parse_listen(const std::string& listen, egoist::rpc::ServerOptions& options) {
  if (listen.empty()) return;
  const auto colon = listen.rfind(':');
  std::string port_text = listen;
  if (colon != std::string::npos) {
    options.tcp_host = listen.substr(0, colon);
    port_text = listen.substr(colon + 1);
  }
  try {
    options.tcp_port = std::stoi(port_text);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad --listen '" + listen +
                                "' (expected PORT or HOST:PORT)");
  }
  if (options.tcp_port < 0 || options.tcp_port > 65535) {
    throw std::invalid_argument("bad --listen port " + port_text);
  }
}

int run(int argc, char** argv) {
  const egoist::util::Flags flags(argc, argv);

  const std::string scenario_file = flags.get_string("scenario", "");
  egoist::rpc::ServerOptions server_options;
  parse_listen(flags.get_string("listen", ""), server_options);
  server_options.uds_path = flags.get_string("uds", "");
  server_options.max_frame =
      static_cast<std::size_t>(flags.get_size("max-frame", "1M"));
  server_options.idle_timeout_s = flags.get_duration("idle-timeout", "60s");
  server_options.drain_deadline_s = flags.get_duration("drain-deadline", "2s");
  server_options.max_connections = flags.get_int("max-connections", 512);
  server_options.loops = flags.get_int("loops", 1);
  const int max_epochs = flags.get_int("max-epochs", 512);
  const double epoch_interval_s = flags.get_duration("epoch-interval", "0s");
  const double drain_timeout_s = flags.get_duration("drain-timeout", "5s");

  if (flags.help_requested()) {
    std::cout
        << "egoistd: route-serving daemon — deploys a churned BR overlay,\n"
           "drives epochs, and answers wire-protocol ROUTE/PATH/SCORE/\n"
           "STATS/PING frames over TCP (--listen) and/or a Unix-domain\n"
           "socket (--uds). Prints 'EGOISTD READY ...' on stdout once the\n"
           "listeners are live; SIGTERM/SIGINT shut down gracefully.\n\n"
        << flags.usage()
        << "\nAny other --key=value flag is an overlay knob (n, k, policy,\n"
           "seed, warmup, churn, ... — the serve_load deployment set),\n"
           "layered over the optional --scenario file.\n";
    return 0;
  }
  if (server_options.tcp_port < 0 && server_options.uds_path.empty()) {
    throw std::invalid_argument(
        "nothing to serve: pass --listen PORT (0 = ephemeral) and/or "
        "--uds PATH");
  }
  if (max_epochs < 0) throw std::invalid_argument("max-epochs must be >= 0");

  // Overlay knobs: optional scenario file plus every non-daemon flag.
  egoist::exp::ScenarioSpec spec;
  spec.name = "egoistd";
  if (!scenario_file.empty()) {
    spec = egoist::exp::load_scenario_file(scenario_file);
  }
  for (const auto& [key, value] : flags.consume_all()) {
    if (!is_daemon_flag(key)) spec.set(key, value);
  }

  const egoist::exp::ParamReader params(spec);
  const auto deployment = egoist::exp::read_serve_deployment(
      params, static_cast<double>(max_epochs == 0 ? 4096 : max_epochs));
  params.finish();

  std::cerr << "egoistd: deploying n=" << deployment.n
            << " warmup=" << deployment.warmup << " ..." << std::endl;
  auto serving = egoist::exp::deploy_serving_overlay(deployment);
  egoist::host::RouteService service(*serving.host, serving.handle,
                                     deployment.service_options);
  egoist::rpc::Server server(service, server_options);

  struct sigaction action = {};
  action.sa_handler = &on_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  server.start();
  std::cout << "EGOISTD READY pid=" << ::getpid() << " n=" << deployment.n
            << " tcp=" << server.tcp_port() << " uds="
            << (server_options.uds_path.empty() ? "-"
                                                : server_options.uds_path)
            << " loops=" << server.loops() << std::endl;

  // The serving loop: churned epochs publish snapshots under the event
  // loop until a signal arrives (or max-epochs ran; then idle-serve).
  int epochs = 0;
  while (!g_stop) {
    if (max_epochs == 0 || epochs < max_epochs) {
      serving.host->run_epochs(serving.handle, 1);
      ++epochs;
      if (epoch_interval_s > 0.0) {
        ::usleep(static_cast<useconds_t>(epoch_interval_s * 1e6));
      }
    } else {
      ::usleep(50000);
    }
  }

  std::cerr << "egoistd: signal received, stopping" << std::endl;
  server.stop();
  bool drained = false;
  std::uint64_t seal_violations = 0;
  try {
    drained = service.drain(drain_timeout_s);
    seal_violations = service.stats().seal_violations;
  } catch (const std::exception& e) {
    std::cerr << "egoistd: drain failed: " << e.what() << std::endl;
    seal_violations = service.stats().seal_violations;
  }
  std::cout << "EGOISTD EXIT epochs=" << epochs << " drained=" << (drained ? 1 : 0)
            << " seal_violations=" << seal_violations << std::endl;
  return (drained && seal_violations == 0) ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "egoistd: error: " << e.what() << '\n';
    return 1;
  }
}
