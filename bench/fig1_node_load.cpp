// Fig 1 (bottom-left): individual cost vs k under the node CPU-load metric
// (path cost = sum of node loads along the path), normalized to BR.
// Thin wrapper over the scenario driver (scenarios/fig1_node_load.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig1_node_load", argc, argv,
      "Fig 1 (bottom-left): individual cost vs k under the node CPU-load "
      "metric, normalized to BR");
}
