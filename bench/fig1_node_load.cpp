// Fig 1 (bottom-left): individual cost vs k under the node CPU-load metric
// (path cost = sum of node loads along the path), normalized to BR.
#include <iostream>

#include "common/fig1_runner.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;
  const util::Flags flags(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  flags.finish(
      "Fig 1 (bottom-left): individual cost vs k under the node CPU-load metric, normalized to BR");
  bench::print_figure_header(
      "Fig 1 (bottom-left): node load",
      "Individual cost / BR cost vs k; every outgoing link of a node costs "
      "the node's own EWMA-smoothed load, so BR routes around busy hosts.");
  bench::run_fig1_panel(overlay::Metric::kNodeLoad, /*with_mesh=*/false, args);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
