// §4.3 overhead accounting: the paper's closed-form per-node loads vs the
// byte counts measured from the simulated link-state protocol.
// Thin wrapper over the scenario driver (scenarios/overhead_accounting.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "overhead_accounting", argc, argv,
      "section 4.3 overhead accounting: measured protocol byte counts vs the "
      "paper's closed-form per-node loads");
}
