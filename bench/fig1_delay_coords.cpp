// Fig 1 (top-right): individual cost vs k, delay metric from the Vivaldi
// virtual coordinate system (the pyxida substitute), normalized to BR.
#include <iostream>

#include "common/fig1_runner.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;
  const util::Flags flags(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  flags.finish(
      "Fig 1 (top-right): individual cost vs k, delay from Vivaldi coordinates, normalized to BR");
  bench::print_figure_header(
      "Fig 1 (top-right): delay via virtual coordinates",
      "Individual cost / BR cost vs k when link delays come from the "
      "(cheaper, less accurate) coordinate system instead of ping.");
  bench::run_fig1_panel(overlay::Metric::kDelayCoords, /*with_mesh=*/false, args);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
