// Fig 1 (top-right): individual cost vs k, delay metric from the Vivaldi
// virtual coordinate system (the pyxida substitute), normalized to BR.
// Thin wrapper over the scenario driver (scenarios/fig1_delay_coords.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig1_delay_coords", argc, argv,
      "Fig 1 (top-right): individual cost vs k, delay from Vivaldi "
      "coordinates, normalized to BR");
}
