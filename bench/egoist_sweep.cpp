// egoist_sweep: the one CLI for every experiment in the registry.
//
//   egoist_sweep --list                         # what can run
//   egoist_sweep --scenario scenarios/foo.scn   # run a scenario file
//   egoist_sweep --experiment fig2_churn --n=30 # run with overrides
//   egoist_sweep --experiment steady_state --jobs 4 --jsonl out.jsonl
//     --sweep.n=50,100 --sweep.policy=BR,HybridBR
//
// Grids expand into independent cells (own RNG streams), run on a thread
// pool, and emit in deterministic cell order — byte-identical at any
// --jobs level. See docs/EXPERIMENTS.md.
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_sweep_main(argc, argv);
}
