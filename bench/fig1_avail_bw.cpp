// Fig 1 (bottom-right): aggregate available bandwidth vs k (bigger is
// better), each policy normalized to BR.
// Thin wrapper over the scenario driver (scenarios/fig1_avail_bw.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig1_avail_bw", argc, argv,
      "Fig 1 (bottom-right): aggregate available bandwidth vs k, each policy "
      "normalized to BR");
}
