// Fig 1 (bottom-right): aggregate available bandwidth vs k (bigger is
// better), each policy normalized to BR.
#include <iostream>

#include "common/fig1_runner.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;
  const util::Flags flags(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  flags.finish(
      "Fig 1 (bottom-right): aggregate available bandwidth vs k, each policy normalized to BR");
  bench::print_figure_header(
      "Fig 1 (bottom-right): available bandwidth",
      "Total available bandwidth / BR available bandwidth vs k (<= 1); BR "
      "maximizes the sum of bottleneck bandwidths to all destinations.");
  bench::run_fig1_panel(overlay::Metric::kBandwidth, /*with_mesh=*/false, args);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
