// Fig 2: node efficiency under trace-driven and parameterized churn,
// normalized to BR. Thin wrapper over the scenario driver
// (scenarios/fig2_churn.scn); the experiment body lives in
// src/exp/experiments/fig2_churn.cpp and the staggered epoch scheduling in
// src/exp/churn_replay.cpp.
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig2_churn", argc, argv,
      "Fig 2: node efficiency under trace-driven and parameterized churn, "
      "normalized to BR");
}
