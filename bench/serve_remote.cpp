// Out-of-process serving load generator: spawns the egoistd daemon (built
// next to this binary) and replays the serve_load workload against it over
// loopback TCP and a Unix-domain socket with pipelined wire-protocol
// clients, reporting each transport side by side with the in-process leg.
// Thin wrapper over the scenario driver (scenarios/serve_remote.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "serve_remote", argc, argv,
      "Serve remote: forks egoistd with this scenario's deployment knobs, "
      "waits for its READY handshake, then M client threads with pipelined "
      "rpc::Clients hammer it over UDS and loopback TCP (one window per "
      "transport x destination mix), ending with a SIGTERM graceful-"
      "shutdown check and in-process comparison rows on a bit-identical "
      "local overlay.");
}
