// §5 scale regime: BR epochs at n up to 20k on the procedural underlay
// with sampled candidates, landmark objectives, and memory telemetry.
// Thin wrapper over the scenario driver (scenarios/scale_frontier.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "scale_frontier", argc, argv,
      "Scale frontier: one BR/HybridBR overlay in sampled scale mode per n "
      "in n-list, on the procedural O(n)-memory underlay, reporting epoch "
      "wall time plus substrate/measurement-plane memory telemetry.");
}
