// Fig 3: BR re-wiring dynamics — per-epoch timeline, steady state vs k,
// BR(eps) sensitivity. Thin wrapper over the scenario driver
// (scenarios/fig3_rewirings.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig3_rewirings", argc, argv,
      "Fig 3: BR re-wiring dynamics — per-epoch timeline, steady state vs k, "
      "BR(eps) sensitivity");
}
