// Ablation bench for the design choices §3.3-§3.4 argues for:
//
//  (a) Backbone construction: EGOIST's donated ring cycles vs an MST mesh
//      (Young et al. style) — efficiency under churn and splice cost
//      (backbone links rebuilt per membership event).
//  (b) Re-wiring mode: delayed (epoch) vs immediate repair — efficiency
//      under churn vs extra evaluations.
//  (c) Audits: free-rider impact with and without coordinate cross-checks.
#include <iostream>

#include "churn/churn.hpp"
#include "common/bench_common.hpp"

namespace egoist::bench {
namespace {

struct ChurnOutcome {
  double efficiency = 0.0;
  std::uint64_t rewirings = 0;
};

ChurnOutcome run_churny(const CommonArgs& args, overlay::OverlayConfig config,
                        double mean_on_s, int epochs) {
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = mean_on_s;
  churn_config.mean_off_s = mean_on_s / 3.0;
  churn_config.initial_on_fraction = 0.75;
  const churn::ChurnTrace trace(args.n, epochs * 60.0, args.seed ^ 0xAB1u,
                                churn_config);
  overlay::Environment env(args.n, args.seed);
  overlay::EgoistNetwork net(env, config);
  for (std::size_t v = 0; v < args.n; ++v) {
    if (!trace.initial_on()[v]) net.set_online(static_cast<int>(v), false);
  }
  std::size_t next = 0;
  util::OnlineStats efficiency;
  const auto& events = trace.events();
  const double slot = 60.0 / static_cast<double>(args.n);
  util::Rng order_rng(args.seed ^ 0xAB2u);
  for (int e = 0; e < epochs; ++e) {
    auto order = net.online_nodes();
    order_rng.shuffle(order);
    std::size_t turn = 0;
    for (std::size_t s = 0; s < args.n; ++s) {
      const double t = e * 60.0 + (s + 1) * slot;
      while (next < events.size() && events[next].time <= t) {
        net.set_online(events[next].node, events[next].on);
        ++next;
      }
      env.advance(slot);
      if (turn < order.size() && net.online_count() >= 2) {
        if (net.is_online(order[turn])) net.run_node(order[turn]);
        ++turn;
      }
    }
    if (e < 5 || net.online_count() < 2) continue;
    for (double eff : net.node_efficiencies()) efficiency.add(eff);
  }
  return ChurnOutcome{efficiency.mean(), net.total_rewirings()};
}

}  // namespace
}  // namespace egoist::bench

int main(int argc, char** argv) try {
  using namespace egoist;
  using namespace egoist::bench;
  const util::Flags flags(argc, argv);
  auto args = CommonArgs::parse(flags);
  const int epochs = flags.get_int("epochs", 25);
  flags.finish(
      "ablations for the section 3.3-3.4 design choices: ring-cycle vs MST backbone, delayed vs immediate re-wiring, audits on/off");

  overlay::OverlayConfig base;
  base.k = 5;
  base.seed = args.seed;

  // --- (a) Backbone construction under churn ---
  print_figure_header(
      "Ablation (a): HybridBR backbone — ring cycles vs MST mesh",
      "Mean efficiency under two churn intensities; cycles splice locally, "
      "the MST is a centralized rebuild per membership event (§3.3).");
  {
    util::Table table({"churn mean-ON (s)", "cycles eff", "mst eff"});
    for (double mean_on : {2000.0, 200.0}) {
      auto cycles = base;
      cycles.policy = overlay::Policy::kHybridBR;
      cycles.backbone = overlay::Backbone::kCycles;
      auto mst = cycles;
      mst.backbone = overlay::Backbone::kMst;
      table.add_numeric_row({mean_on,
                             run_churny(args, cycles, mean_on, epochs).efficiency,
                             run_churny(args, mst, mean_on, epochs).efficiency},
                            4);
    }
    table.write_ascii(std::cout);
  }

  // --- (b) Re-wiring mode ---
  std::cout << "\n";
  print_figure_header(
      "Ablation (b): delayed vs immediate re-wiring (plain BR)",
      "Immediate repair buys efficiency under churn at the price of more "
      "re-wirings (probing/computation).");
  {
    util::Table table(
        {"churn mean-ON (s)", "delayed eff", "immediate eff",
         "delayed rewires", "immediate rewires"});
    for (double mean_on : {2000.0, 200.0}) {
      auto delayed = base;
      delayed.policy = overlay::Policy::kBestResponse;
      delayed.rewire_mode = overlay::RewireMode::kDelayed;
      auto immediate = delayed;
      immediate.rewire_mode = overlay::RewireMode::kImmediate;
      const auto d = run_churny(args, delayed, mean_on, epochs);
      const auto i = run_churny(args, immediate, mean_on, epochs);
      table.add_numeric_row({mean_on, d.efficiency, i.efficiency,
                             static_cast<double>(d.rewirings),
                             static_cast<double>(i.rewirings)},
                            4);
    }
    table.write_ascii(std::cout);
  }

  // --- (c) Audits vs a flagrant cheater ---
  std::cout << "\n";
  print_figure_header(
      "Ablation (c): coordinate audits vs a 4x-inflating free rider",
      "Mean routing cost with the cheater, without and with audits "
      "(lower is better; audits replace flagged announcements with the "
      "coordinate estimate, §3.4).");
  {
    util::Table table({"audits", "mean cost (ms)"});
    for (bool audits : {false, true}) {
      overlay::Environment env(args.n, args.seed);
      auto config = base;
      config.policy = overlay::Policy::kBestResponse;
      config.cheaters = {3};
      config.cheat_factor = 4.0;
      config.enable_audits = audits;
      overlay::EgoistNetwork net(env, config);
      const auto result =
          run_and_score(env, net, Score::kRoutingCost, args.run_options());
      table.add_row({audits ? "on" : "off",
                     util::Table::format(result.summary.mean, 2)});
    }
    table.write_ascii(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
