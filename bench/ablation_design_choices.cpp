// Ablations for the §3.3-§3.4 design choices: ring-cycle vs MST backbone,
// delayed vs immediate re-wiring, audits on/off.
// Thin wrapper over the scenario driver
// (scenarios/ablation_design_choices.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "ablation_design_choices", argc, argv,
      "ablations for the section 3.3-3.4 design choices: ring-cycle vs MST "
      "backbone, delayed vs immediate re-wiring, audits on/off");
}
