// Concurrent snapshot-serving load generator: reader threads replay route
// lookups against a host::RouteService while churned BR epochs publish
// fresh snapshots. Thin wrapper over the scenario driver
// (scenarios/serve_load.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "serve_load", argc, argv,
      "Serve load: M reader threads replay route lookups (zipf and uniform "
      "destination mixes, hot source pool) against a RouteService over a "
      "churning BR overlay, reporting queries/sec, p50/p99/p999 latency "
      "and the service's publication telemetry.");
}
