// Epoch wall-time scaling of the BR hot path (ISSUE 2 acceptance bench):
// run_epoch() on the legacy residual path vs the CSR PathEngine, with
// machine-readable JSON output (the `json` knob names the report file).
// Thin wrapper over the scenario driver (scenarios/perf_epoch_scaling.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "perf_epoch_scaling", argc, argv,
      "Epoch wall-time scaling: BR/HybridBR run_epoch() on the legacy "
      "residual path vs. the CSR PathEngine (serial and multi-worker), with "
      "machine-readable JSON output.");
}
