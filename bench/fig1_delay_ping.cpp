// Fig 1 (top-left): individual cost vs k, delay metric measured via ping,
// normalized to BR, with the full-mesh (RON-style) reference.
#include <iostream>

#include "common/fig1_runner.hpp"

int main(int argc, char** argv) try {
  using namespace egoist;
  const util::Flags flags(argc, argv);
  const auto args = bench::CommonArgs::parse(flags);
  flags.finish(
      "Fig 1 (top-left): individual cost vs k, delay via ping, normalized to BR, with the full-mesh reference");
  bench::print_figure_header(
      "Fig 1 (top-left): delay via ping",
      "Individual cost / BR cost vs k, 50-node EGOIST overlay; full mesh "
      "(k=n-1) is the lower bound a RON-style O(n^2) design achieves.");
  bench::run_fig1_panel(overlay::Metric::kDelayPing, /*with_mesh=*/true, args);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
