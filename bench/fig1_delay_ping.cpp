// Fig 1 (top-left): individual cost vs k, delay metric measured via ping,
// normalized to BR, with the full-mesh (RON-style) reference.
// Thin wrapper over the scenario driver; knobs live in
// scenarios/fig1_delay_ping.scn (docs/EXPERIMENTS.md maps every figure).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig1_delay_ping", argc, argv,
      "Fig 1 (top-left): individual cost vs k, delay via ping, normalized to "
      "BR, with the full-mesh reference");
}
