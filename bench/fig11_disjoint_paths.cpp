// Fig 11: edge-disjoint overlay paths between random pairs vs k over a
// delay-metric BR overlay.
// Thin wrapper over the scenario driver (scenarios/fig11_disjoint_paths.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig11_disjoint_paths", argc, argv,
      "Fig 11: edge-disjoint overlay paths between random pairs vs k over a "
      "delay-metric BR overlay");
}
