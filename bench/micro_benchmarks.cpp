// Google-benchmark microbenchmarks for the algorithmic hot paths: the
// best-response local search, shortest/widest path computations, max-flow,
// LSA flooding and Vivaldi updates. These back the scalability discussion
// in Section 5 (local-search cost is the binding constraint at large n).
#include <benchmark/benchmark.h>

#include "core/policies.hpp"
#include "core/residual.hpp"
#include "core/sampling.hpp"
#include "coord/vivaldi.hpp"
#include "graph/maxflow.hpp"
#include "graph/shortest_path.hpp"
#include "graph/widest_path.hpp"
#include "net/delay_space.hpp"
#include "proto/link_state.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace egoist;

/// Random k-out overlay over a PlanetLab-like delay space.
graph::Digraph make_overlay(std::size_t n, std::size_t k, std::uint64_t seed) {
  const auto delays = net::make_planetlab_like(n, seed);
  graph::Digraph g(n);
  util::Rng rng(seed ^ 0xFFu);
  std::vector<graph::NodeId> all(n);
  for (std::size_t v = 0; v < n; ++v) all[v] = static_cast<graph::NodeId>(v);
  for (std::size_t u = 0; u < n; ++u) {
    std::vector<graph::NodeId> candidates;
    for (auto v : all) {
      if (v != static_cast<graph::NodeId>(u)) candidates.push_back(v);
    }
    for (auto v : core::select_k_random(candidates, k, rng)) {
      g.set_edge(static_cast<graph::NodeId>(u), v,
                 delays.delay(static_cast<int>(u), v));
    }
  }
  return g;
}

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = make_overlay(n, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(g, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(50)->Arg(100)->Arg(295);

void BM_AllPairsShortestPaths(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = make_overlay(n, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::all_pairs_shortest_paths(g));
  }
}
BENCHMARK(BM_AllPairsShortestPaths)->Arg(50)->Arg(100)->Arg(295);

void BM_PathEngineResidualAllPairs(benchmark::State& state) {
  // The BR hot path: residual all-pairs served from the engine's shared
  // base trees (compare with BM_AllPairsShortestPaths, which is what the
  // legacy path paid per node per epoch on top of a graph copy).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = make_overlay(n, 4, 7);
  graph::PathEngine engine(g);
  graph::DistanceMatrix out;
  engine.all_shortest(graph::kNoExclude, out);  // build the base trees
  graph::NodeId exclude = 0;
  for (auto _ : state) {
    engine.all_shortest(exclude, out);
    benchmark::DoNotOptimize(out.row(0).data());
    exclude = static_cast<graph::NodeId>((exclude + 1) % static_cast<int>(n));
  }
}
BENCHMARK(BM_PathEngineResidualAllPairs)->Arg(50)->Arg(100)->Arg(295);

void BM_PathEngineRowUpdate(benchmark::State& state) {
  // The sequential-epoch mutation: one node re-announces, the engine
  // patches its base trees instead of rebuilding them.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto g = make_overlay(n, 4, 7);
  graph::PathEngine engine(g);
  graph::DistanceMatrix out;
  engine.all_shortest(graph::kNoExclude, out);
  graph::NodeId u = 0;
  for (auto _ : state) {
    engine.update_out_edges(u, g);
    u = static_cast<graph::NodeId>((u + 1) % static_cast<int>(n));
  }
}
BENCHMARK(BM_PathEngineRowUpdate)->Arg(50)->Arg(100)->Arg(295);

void BM_WidestPaths(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = make_overlay(n, 4, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::widest_paths(g, 0));
  }
}
BENCHMARK(BM_WidestPaths)->Arg(50)->Arg(295);

void BM_BestResponseLocalSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto delays = net::make_planetlab_like(n, 11);
  const auto g = make_overlay(n, 4, 11);
  std::vector<double> direct(n, 0.0);
  for (std::size_t v = 1; v < n; ++v) direct[v] = delays.delay(0, static_cast<int>(v));
  const auto objective = core::make_delay_objective(g, 0, direct);
  core::BestResponseOptions options;
  options.exact_budget = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_response(objective, k, options));
  }
}
BENCHMARK(BM_BestResponseLocalSearch)
    ->Args({50, 3})
    ->Args({50, 8})
    ->Args({100, 3})
    ->Args({295, 3});

void BM_BestResponseSampled(benchmark::State& state) {
  // Section 5's point: sampling caps the BR input size regardless of n.
  const std::size_t n = 295;
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto delays = net::make_planetlab_like(n, 13);
  const auto g = make_overlay(n, 3, 13);
  std::vector<double> direct(n, 0.0);
  for (std::size_t v = 1; v < n; ++v) direct[v] = delays.delay(0, static_cast<int>(v));
  std::vector<graph::NodeId> candidates;
  for (std::size_t v = 1; v < n; ++v) candidates.push_back(static_cast<graph::NodeId>(v));
  util::Rng rng(17);
  const auto sample = core::random_sample(candidates, m, rng);
  const auto objective = core::make_sampled_delay_objective(g, 0, direct, sample);
  core::BestResponseOptions options;
  options.exact_budget = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_response(objective, 3, options));
  }
}
BENCHMARK(BM_BestResponseSampled)->Arg(10)->Arg(20)->Arg(40);

void BM_MaxFlow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = make_overlay(n, 5, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::edge_disjoint_paths(g, 0, static_cast<graph::NodeId>(n - 1)));
  }
}
BENCHMARK(BM_MaxFlow)->Arg(50)->Arg(295);

void BM_LsaFlood(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    proto::LinkStateProtocol proto(
        sim, n, [](proto::NodeId, proto::NodeId) { return 0.001; });
    for (std::size_t u = 0; u < n; ++u) {
      std::vector<proto::LinkEntry> links;
      for (int j = 1; j <= 4; ++j) {
        links.push_back({static_cast<proto::NodeId>((u + static_cast<std::size_t>(j)) % n), 1.0});
      }
      proto.set_links(static_cast<proto::NodeId>(u), std::move(links));
    }
    proto.originate(0);
    sim.run_until(10.0);
    benchmark::DoNotOptimize(proto.messages_sent());
  }
}
BENCHMARK(BM_LsaFlood)->Arg(50)->Arg(200);

void BM_VivaldiTick(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto delays = net::make_planetlab_like(n, 23);
  coord::VivaldiSystem vivaldi(delays, 23);
  for (auto _ : state) {
    vivaldi.tick();
  }
}
BENCHMARK(BM_VivaldiTick)->Arg(50)->Arg(295);

}  // namespace

BENCHMARK_MAIN();
