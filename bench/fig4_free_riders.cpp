// Fig 4: robustness to free riders who announce inflated (2x) link costs.
// Thin wrapper over the scenario driver (scenarios/fig4_free_riders.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig4_free_riders", argc, argv,
      "Fig 4: robustness to free riders announcing 2x-inflated link costs");
}
