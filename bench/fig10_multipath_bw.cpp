// Fig 10: available-bandwidth gain from multipath transfer over a
// bandwidth-metric BR overlay.
// Thin wrapper over the scenario driver (scenarios/fig10_multipath_bw.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig10_multipath_bw", argc, argv,
      "Fig 10: available-bandwidth gain from multipath transfer over a "
      "bandwidth-metric BR overlay");
}
