#include "fig1_runner.hpp"

#include <iostream>

namespace egoist::bench {

namespace {

overlay::OverlayConfig policy_config(overlay::Policy policy, std::size_t k,
                                     overlay::Metric metric, std::uint64_t seed) {
  overlay::OverlayConfig config;
  config.policy = policy;
  config.k = k;
  config.metric = metric;
  config.seed = seed;
  return config;
}

}  // namespace

void run_fig1_panel(overlay::Metric metric, bool with_mesh,
                    const CommonArgs& args) {
  const bool bandwidth = metric == overlay::Metric::kBandwidth;
  const Score score = bandwidth ? Score::kBandwidth : Score::kRoutingCost;

  std::vector<std::string> columns{"k",        "BR(abs)",   "k-Random",
                                   "k-Regular", "k-Closest"};
  if (with_mesh) columns.push_back("FullMesh");
  util::Table table(columns);

  for (int k = args.k_min; k <= args.k_max; ++k) {
    // A fresh but identically-seeded environment per policy: every policy
    // sees the same substrate realization, mirroring the paper's
    // concurrently deployed per-policy agents.
    auto run_policy = [&](overlay::Policy policy, std::size_t use_k) {
      overlay::Environment env(args.n, args.seed);
      overlay::EgoistNetwork net(
          env, policy_config(policy, use_k, metric, args.seed ^ use_k));
      return run_and_score(env, net, score, args.run_options());
    };

    const auto br = run_policy(overlay::Policy::kBestResponse,
                               static_cast<std::size_t>(k));
    auto normalized = [&](const RunResult& r) {
      // Cost metrics: policy/BR (>= 1). Bandwidth: policy/BR (<= 1).
      return r.summary.mean / br.summary.mean;
    };

    std::vector<double> row{
        static_cast<double>(k), br.summary.mean,
        normalized(run_policy(overlay::Policy::kRandom, static_cast<std::size_t>(k))),
        normalized(run_policy(overlay::Policy::kRegular, static_cast<std::size_t>(k))),
        normalized(run_policy(overlay::Policy::kClosest, static_cast<std::size_t>(k)))};
    if (with_mesh) {
      row.push_back(normalized(run_policy(overlay::Policy::kFullMesh, args.n - 1)));
    }
    table.add_numeric_row(row, 3);
  }
  table.write_ascii(std::cout);
  std::cout << "\n(normalized to BR; cost metrics: >1 means worse than BR,\n"
               " bandwidth: <1 means less aggregate bandwidth than BR)\n";
}

}  // namespace egoist::bench
