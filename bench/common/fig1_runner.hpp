// Shared driver for the four panels of Fig 1: individual cost of each
// neighbor-selection policy, normalized by BR, as a function of k.
#pragma once

#include "bench_common.hpp"

namespace egoist::bench {

/// Runs one Fig 1 panel and prints its table.
///
/// For cost metrics (delay/load) the series are cost(policy)/cost(BR) >= 1;
/// for bandwidth the series are bw(policy)/bw(BR) <= 1 (paper's
/// "Total Av.Bwth / BR Av.Bwth"). `with_mesh` adds the full-mesh reference
/// (k = n-1), the RON-style lower bound of the top-left panel.
void run_fig1_panel(overlay::Metric metric, bool with_mesh,
                    const CommonArgs& args);

}  // namespace egoist::bench
