// Shared driver for the figure-regeneration benches.
//
// Each bench binary reconstructs one figure of the paper: it deploys one
// overlay per policy on a shared Environment, runs wiring epochs with the
// substrate advancing in between, samples the per-node scores over the
// tail of the run (the paper averages over long PlanetLab runs), and
// prints the same normalized series the figure shows.
#pragma once

#include <string>
#include <vector>

#include "overlay/network.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace egoist::bench {

/// What a run measures.
enum class Score {
  kRoutingCost,   ///< uniform routing cost (delay / load), lower is better
  kBandwidth,     ///< mean bottleneck bandwidth, higher is better
  kEfficiency,    ///< mean 1/d efficiency (churn experiments)
};

struct RunOptions {
  int warmup_epochs = 20;   ///< epochs before sampling starts
  int sample_epochs = 10;   ///< epochs whose scores are averaged
  double epoch_seconds = 60.0;
};

struct RunResult {
  util::Summary summary;           ///< over per-node scores (paper's mean + CI)
  std::vector<double> node_means;  ///< per-node mean over sampled epochs
  double rewirings_per_epoch = 0.0;
};

/// Runs `net` for warmup + sample epochs, advancing `env` by epoch_seconds
/// before each epoch, and collects the chosen score.
RunResult run_and_score(overlay::Environment& env, overlay::EgoistNetwork& net,
                        Score score, const RunOptions& options);

/// Standard flags shared by the figure benches.
struct CommonArgs {
  std::size_t n = 50;
  std::uint64_t seed = 42;
  int warmup = 20;
  int sample = 10;
  int k_min = 2;
  int k_max = 8;

  static CommonArgs parse(const util::Flags& flags);
  RunOptions run_options() const;
};

/// Prints a figure header in a consistent style.
void print_figure_header(const std::string& figure, const std::string& caption);

}  // namespace egoist::bench
