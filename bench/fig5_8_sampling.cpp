// Figs 5-8: scalability via sampling (n = 295, k = 3, r = 2) — a newcomer
// joins each base overlay from a sample of m nodes.
// Thin wrapper over the scenario driver (scenarios/fig5_8_sampling.scn).
#include "exp/cli.hpp"

int main(int argc, char** argv) {
  return egoist::exp::run_scenario_main(
      "fig5_8_sampling", argc, argv,
      "Figs 5-8: scalability via sampling (n=295, k=3, r=2) — a newcomer "
      "joins each base overlay from a sample of m nodes");
}
