// Figs 5-8: scalability via sampling (n = 295, k = 3, r = 2).
//
// A 295-node overlay is built incrementally with a base strategy (Fig 5:
// BR; Fig 6: k-Random; Fig 7: k-Regular; Fig 8: k-Closest). A newcomer
// then joins using each strategy restricted to a sample of m nodes
// (m = 6..20): k-Random / k-Regular / k-Closest with random sampling, BR
// with random sampling, and BRtp (BR with topology-biased sampling,
// b_ij = |F(v_j)| / sum_{u in F(v_j)} d(v_i, u), radius r).
//
// The series report the newcomer's realized cost (distance to all 295
// destinations over the final graph) normalized by the cost of a newcomer
// running BR with NO sampling.
#include <iostream>
#include <numeric>

#include "common/bench_common.hpp"
#include "core/residual.hpp"
#include "core/sampling.hpp"
#include "net/delay_space.hpp"

namespace egoist::bench {
namespace {

using core::NodeId;

constexpr std::size_t kBaseNodes = 295;
constexpr std::size_t kDegree = 3;
constexpr int kRadius = 2;

enum class Base { kBr, kRandom, kRegular, kClosest };

const char* base_name(Base base) {
  switch (base) {
    case Base::kBr: return "BR";
    case Base::kRandom: return "k-Random";
    case Base::kRegular: return "k-Regular";
    case Base::kClosest: return "k-Closest";
  }
  return "?";
}

/// Direct (true) delays from `src` to every node id < limit.
std::vector<double> direct_delays(const net::DelaySpace& delays, NodeId src,
                                  std::size_t total) {
  std::vector<double> out(total, 0.0);
  for (std::size_t v = 0; v < total; ++v) {
    if (static_cast<NodeId>(v) != src) out[v] = delays.delay(src, static_cast<int>(v));
  }
  return out;
}

/// Builds the 295-node base graph (node kBaseNodes stays inactive) with the
/// given strategy. Graph weights are true delays. Overlay connections are
/// TCP, hence usable in both directions (with direction-specific costs):
/// wiring v -> w also installs w -> v, which keeps incrementally built
/// graphs strongly connected (otherwise all edges would point backward in
/// join order and late joiners would be unreachable).
graph::Digraph build_base(Base base, const net::DelaySpace& delays,
                          util::Rng& rng) {
  graph::Digraph g(kBaseNodes + 1);
  g.set_active(static_cast<NodeId>(kBaseNodes), false);
  auto wire = [&](NodeId v, const std::vector<NodeId>& links) {
    for (NodeId w : links) {
      g.set_edge(v, w, delays.delay(v, w));
      g.set_edge(w, v, delays.delay(w, v));
    }
  };
  switch (base) {
    case Base::kBr: {
      // Incremental construction: only nodes 0..j-1 are active when j joins.
      for (std::size_t v = 1; v < kBaseNodes; ++v) {
        g.set_active(static_cast<NodeId>(v), false);
      }
      for (std::size_t j = 1; j < kBaseNodes; ++j) {
        const auto self = static_cast<NodeId>(j);
        g.set_active(self, true);
        const auto direct = direct_delays(delays, self, kBaseNodes + 1);
        const auto objective = core::make_delay_objective(g, self, direct);
        core::BestResponseOptions options;
        options.exact_budget = 0;
        const auto br = core::best_response(objective, kDegree, options);
        wire(self, br.wiring);
      }
      break;
    }
    case Base::kRandom: {
      std::vector<NodeId> all(kBaseNodes);
      std::iota(all.begin(), all.end(), 0);
      for (std::size_t v = 0; v < kBaseNodes; ++v) {
        std::vector<NodeId> candidates;
        for (NodeId w : all) {
          if (w != static_cast<NodeId>(v)) candidates.push_back(w);
        }
        wire(static_cast<NodeId>(v),
             core::select_k_random(candidates, kDegree, rng));
      }
      break;
    }
    case Base::kRegular: {
      for (std::size_t v = 0; v < kBaseNodes; ++v) {
        wire(static_cast<NodeId>(v),
             core::select_k_regular(static_cast<NodeId>(v), kBaseNodes, kDegree));
      }
      break;
    }
    case Base::kClosest: {
      std::vector<NodeId> all(kBaseNodes);
      std::iota(all.begin(), all.end(), 0);
      for (std::size_t v = 0; v < kBaseNodes; ++v) {
        std::vector<NodeId> candidates;
        for (NodeId w : all) {
          if (w != static_cast<NodeId>(v)) candidates.push_back(w);
        }
        wire(static_cast<NodeId>(v),
             core::select_k_closest(
                 candidates, direct_delays(delays, static_cast<NodeId>(v),
                                           kBaseNodes + 1),
                 kDegree));
      }
      break;
    }
  }
  return g;
}

/// The newcomer's realized cost: mean distance to all base nodes over the
/// base graph + the chosen wiring (full-information evaluation). The
/// engine holds the base snapshot, so each evaluation reuses the shared
/// base trees instead of re-running an all-pairs computation; `scratch`
/// carries the borrowed residual matrix across calls.
double newcomer_cost(graph::PathEngine& engine,
                     const std::vector<double>& direct,
                     const std::vector<NodeId>& wiring,
                     graph::DistanceMatrix& scratch) {
  const auto self = static_cast<NodeId>(kBaseNodes);
  const auto objective = core::make_delay_objective(
      engine, self, direct, std::nullopt, std::nullopt, &scratch);
  return objective.cost(wiring);
}

struct SampledCosts {
  double k_random = 0.0;
  double k_regular = 0.0;
  double k_closest = 0.0;
  double br = 0.0;
  double brtp = 0.0;
};

/// One trial of all sampled strategies at sample size m.
SampledCosts sampled_trial(graph::PathEngine& engine,
                           const std::vector<double>& direct, std::size_t m,
                           util::Rng& rng, graph::DistanceMatrix& scratch) {
  const auto self = static_cast<NodeId>(kBaseNodes);
  std::vector<NodeId> candidates(kBaseNodes);
  std::iota(candidates.begin(), candidates.end(), 0);

  const auto sample = core::random_sample(candidates, m, rng);
  SampledCosts costs;
  // k-Random within the sample.
  costs.k_random = newcomer_cost(
      engine, direct, core::select_k_random(sample, kDegree, rng), scratch);
  // k-Regular within the sample: regular index offsets in the sorted sample.
  {
    std::vector<NodeId> wiring;
    const auto offsets = core::k_regular_offsets(sample.size() + 1, kDegree);
    for (int o : offsets) {
      wiring.push_back(sample[static_cast<std::size_t>(o - 1) % sample.size()]);
    }
    std::sort(wiring.begin(), wiring.end());
    wiring.erase(std::unique(wiring.begin(), wiring.end()), wiring.end());
    costs.k_regular = newcomer_cost(engine, direct, wiring, scratch);
  }
  // k-Closest within the sample.
  costs.k_closest = newcomer_cost(
      engine, direct, core::select_k_closest(sample, direct, kDegree), scratch);
  // BR restricted to the sample (search on the sampled objective; evaluate
  // on the full one).
  core::BestResponseOptions options;
  options.exact_budget = 0;
  {
    const auto objective =
        core::make_sampled_delay_objective(engine, self, direct, sample);
    const auto br = core::best_response(objective, kDegree, options);
    costs.br = newcomer_cost(engine, direct, br.wiring, scratch);
  }
  // BRtp: topology-biased sample over the CSR snapshot, then BR on it.
  {
    core::BiasedSamplingOptions bias;
    bias.radius = kRadius;
    const auto biased = core::topology_biased_sample(engine.csr(), self, direct,
                                                     candidates, m, rng, bias);
    const auto objective =
        core::make_sampled_delay_objective(engine, self, direct, biased);
    const auto br = core::best_response(objective, kDegree, options);
    costs.brtp = newcomer_cost(engine, direct, br.wiring, scratch);
  }
  return costs;
}

void run_figure(Base base, int figure_number, const net::DelaySpace& delays,
                std::uint64_t seed, int trials) {
  util::Rng rng(seed);
  auto base_graph = build_base(base, delays, rng);
  const auto self = static_cast<NodeId>(kBaseNodes);
  // The newcomer is present (active) but not yet wired; the base graph is
  // exactly its residual graph G_{-i}.
  base_graph.set_active(self, true);
  const auto direct = direct_delays(delays, self, kBaseNodes + 1);

  // One shared snapshot of the base overlay: the newcomer has no out-edges
  // yet, so its residual view equals the base and every query below reuses
  // the engine's base trees.
  graph::PathEngine engine(base_graph);
  graph::DistanceMatrix scratch;

  // BR with no sampling: the normalization baseline.
  double baseline;
  {
    const auto objective = core::make_delay_objective(
        engine, self, direct, std::nullopt, std::nullopt, &scratch);
    core::BestResponseOptions options;
    options.exact_budget = 0;
    baseline = core::best_response(objective, kDegree, options).cost;
  }

  print_figure_header(
      "Fig " + std::to_string(figure_number) + ": sampling on a " +
          base_name(base) + " graph (n=295, k=3, r=2)",
      "Newcomer's cost / BR-no-sampling cost vs sample size m.");
  util::Table table(
      {"m", "k-Random", "k-Regular", "k-Closest", "BR", "BRtp"});
  for (std::size_t m = 6; m <= 20; m += 2) {
    SampledCosts mean;
    for (int t = 0; t < trials; ++t) {
      const auto c = sampled_trial(engine, direct, m, rng, scratch);
      mean.k_random += c.k_random;
      mean.k_regular += c.k_regular;
      mean.k_closest += c.k_closest;
      mean.br += c.br;
      mean.brtp += c.brtp;
    }
    const double norm = baseline * trials;
    table.add_numeric_row({static_cast<double>(m), mean.k_random / norm,
                           mean.k_regular / norm, mean.k_closest / norm,
                           mean.br / norm, mean.brtp / norm},
                          3);
  }
  table.write_ascii(std::cout);
  std::cout << "\n";
}

}  // namespace
}  // namespace egoist::bench

int main(int argc, char** argv) try {
  using namespace egoist;
  using namespace egoist::bench;
  const util::Flags flags(argc, argv);
  const auto seed = flags.get_seed("seed", 42);
  const int trials = flags.get_int("trials", 5);
  flags.finish(
      "Figs 5-8: scalability via sampling (n=295, k=3, r=2) — a newcomer joins each base overlay from a sample of m nodes");

  const auto delays = net::make_planetlab_like(kBaseNodes + 1, seed);
  run_figure(Base::kBr, 5, delays, seed ^ 5u, trials);
  run_figure(Base::kRandom, 6, delays, seed ^ 6u, trials);
  run_figure(Base::kRegular, 7, delays, seed ^ 7u, trials);
  run_figure(Base::kClosest, 8, delays, seed ^ 8u, trials);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
