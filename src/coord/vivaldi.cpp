#include "coord/vivaldi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace egoist::coord {

double Coordinate::distance_to(const Coordinate& other) const {
  double sq = 0.0;
  for (int d = 0; d < kDim; ++d) {
    const double diff = position[static_cast<std::size_t>(d)] -
                        other.position[static_cast<std::size_t>(d)];
    sq += diff * diff;
  }
  return std::sqrt(sq) + height + other.height;
}

VivaldiSystem::VivaldiSystem(const net::DelayField& delays, std::uint64_t seed,
                             VivaldiConfig config)
    : delays_(delays), config_(config), rng_(seed) {
  if (delays.size() < 2) throw std::invalid_argument("need >= 2 nodes");
  coords_.resize(delays.size());
  error_.assign(delays.size(), config_.initial_error);
  // Small random starting offsets break the symmetry of the origin.
  for (auto& c : coords_) {
    for (double& p : c.position) p = rng_.uniform(-1.0, 1.0);
    c.height = config_.min_height;
  }
}

void VivaldiSystem::update(int node, int peer, double measured_rtt) {
  Coordinate& self = coords_[static_cast<std::size_t>(node)];
  const Coordinate& remote = coords_[static_cast<std::size_t>(peer)];
  const double predicted = self.distance_to(remote);

  const double sample_error =
      measured_rtt > 0.0 ? std::abs(predicted - measured_rtt) / measured_rtt : 0.0;
  double& self_err = error_[static_cast<std::size_t>(node)];
  const double peer_err = error_[static_cast<std::size_t>(peer)];

  // Weight of this sample: how confident we are relative to the peer.
  const double w = self_err / std::max(self_err + peer_err, 1e-9);
  self_err = std::clamp(
      sample_error * config_.cc * w + self_err * (1.0 - config_.cc * w), 0.01, 2.0);

  const double delta = config_.ce * w;
  const double force = predicted - measured_rtt;  // >0: too far apart in model

  // Unit vector from remote toward self; random direction when coincident.
  std::array<double, Coordinate::kDim> dir{};
  double norm = 0.0;
  for (int d = 0; d < Coordinate::kDim; ++d) {
    dir[static_cast<std::size_t>(d)] =
        self.position[static_cast<std::size_t>(d)] -
        remote.position[static_cast<std::size_t>(d)];
    norm += dir[static_cast<std::size_t>(d)] * dir[static_cast<std::size_t>(d)];
  }
  norm = std::sqrt(norm);
  if (norm < 1e-9) {
    for (double& x : dir) x = rng_.normal(0.0, 1.0);
    norm = 0.0;
    for (double x : dir) norm += x * x;
    norm = std::sqrt(std::max(norm, 1e-9));
  }
  // Move along the spring: shrink the gap when too far, grow when too near.
  for (int d = 0; d < Coordinate::kDim; ++d) {
    self.position[static_cast<std::size_t>(d)] -=
        delta * force * dir[static_cast<std::size_t>(d)] / norm;
  }
  // Height absorbs the non-Euclidean (access link) part of the error.
  self.height = std::max(config_.min_height, self.height - delta * force * 0.5);
}

void VivaldiSystem::tick() {
  const int n = static_cast<int>(delays_.size());
  for (int node = 0; node < n; ++node) {
    int peer = static_cast<int>(rng_.uniform_int(0, n - 2));
    if (peer >= node) ++peer;
    update(node, peer, delays_.rtt(node, peer));
  }
}

void VivaldiSystem::converge(int rounds) {
  for (int r = 0; r < rounds; ++r) tick();
}

double VivaldiSystem::estimate_one_way(int i, int j) const {
  if (i < 0 || j < 0 || static_cast<std::size_t>(i) >= coords_.size() ||
      static_cast<std::size_t>(j) >= coords_.size()) {
    throw std::out_of_range("node id out of range");
  }
  return coords_[static_cast<std::size_t>(i)].distance_to(
             coords_[static_cast<std::size_t>(j)]) /
         2.0;
}

double VivaldiSystem::median_relative_error() const {
  std::vector<double> errs;
  const int n = static_cast<int>(delays_.size());
  errs.reserve(static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double truth = delays_.rtt(i, j);
      if (truth <= 0.0) continue;
      const double predicted = coords_[static_cast<std::size_t>(i)].distance_to(
          coords_[static_cast<std::size_t>(j)]);
      errs.push_back(std::abs(predicted - truth) / truth);
    }
  }
  return util::percentile(std::move(errs), 50.0);
}

const Coordinate& VivaldiSystem::coordinate(int node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= coords_.size()) {
    throw std::out_of_range("node id out of range");
  }
  return coords_[static_cast<std::size_t>(node)];
}

}  // namespace egoist::coord
