// Vivaldi network coordinates — the passive delay estimator.
//
// The paper's "pyxida" virtual coordinate system is an implementation of
// Vivaldi with height vectors (Ledlie et al., NSDI'07). Each node keeps a
// Euclidean coordinate plus a height (modeling access-link delay); the
// estimated RTT between two nodes is the Euclidean distance between their
// coordinates plus both heights. Nodes refine coordinates through periodic
// RTT samples to random peers using the adaptive-timestep spring update of
// the original Vivaldi paper.
//
// EGOIST queries the coordinate system instead of pinging when a cheaper,
// less accurate delay estimate suffices (Fig 1 top-right).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/fields.hpp"
#include "util/rng.hpp"

namespace egoist::coord {

/// A Vivaldi coordinate: point in R^dim plus non-negative height.
struct Coordinate {
  static constexpr int kDim = 3;
  std::array<double, kDim> position{};
  double height = 0.0;

  /// Predicted RTT (ms) between two coordinates.
  double distance_to(const Coordinate& other) const;
};

struct VivaldiConfig {
  double ce = 0.25;          ///< adaptive timestep gain
  double cc = 0.25;          ///< error-adaptation gain
  double initial_error = 1.0;
  double min_height = 0.1;   ///< heights never collapse to zero
};

/// A simulated deployment of Vivaldi across all overlay nodes.
///
/// tick() performs one measurement round: every node samples the RTT to one
/// random peer and applies the spring-relaxation update. After a few dozen
/// rounds the coordinates embed the delay space with the ~10-20% median
/// relative error typical of deployed systems — deliberately less accurate
/// than ping, as the paper notes.
class VivaldiSystem {
 public:
  /// `delays` may be any DelayField (dense matrix or procedural backend);
  /// the system only ever samples pairwise RTTs through it.
  VivaldiSystem(const net::DelayField& delays, std::uint64_t seed,
                VivaldiConfig config = {});

  std::size_t size() const { return delays_.size(); }

  /// One measurement round (each node samples one random peer).
  void tick();

  /// Runs `rounds` ticks (convergence warm-up).
  void converge(int rounds);

  /// Estimated one-way delay i -> j (ms): predicted RTT / 2, mirroring the
  /// paper's ping-based halving. Symmetric by construction.
  double estimate_one_way(int i, int j) const;

  /// Median relative error of pairwise RTT predictions vs the true delay
  /// space — the standard Vivaldi accuracy metric.
  double median_relative_error() const;

  const Coordinate& coordinate(int node) const;

 private:
  void update(int node, int peer, double measured_rtt);

  const net::DelayField& delays_;
  VivaldiConfig config_;
  util::Rng rng_;
  std::vector<Coordinate> coords_;
  std::vector<double> error_;  ///< per-node confidence in [0, ~2]
};

}  // namespace egoist::coord
