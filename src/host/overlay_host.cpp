#include "host/overlay_host.hpp"

#include <algorithm>
#include <stdexcept>

namespace egoist::host {

OverlayHost::OverlayHost(std::size_t n, std::uint64_t seed,
                         overlay::EnvironmentConfig env_config)
    : substrate_(std::make_shared<overlay::Substrate>(n, seed, env_config)),
      seed_(seed) {}

OverlayHandle OverlayHost::deploy(const OverlaySpec& spec) {
  if (spec.get_epoch_period() <= 0.0) {
    throw std::invalid_argument("epoch_period must be positive");
  }
  if (spec.get_churn() && spec.get_churn()->node_count() != size()) {
    throw std::invalid_argument("churn trace node count != host size");
  }

  auto m = std::make_unique<Managed>();
  m->handle = OverlayHandle{next_overlay_id_++};
  m->spec = spec;
  // Fresh measurement plane over the shared substrate, seeded from the
  // host seed: every overlay sees the same noise realization a solo
  // deployment with this seed would.
  m->env = std::make_unique<overlay::Environment>(substrate_, seed_);
  m->net = std::make_unique<overlay::EgoistNetwork>(*m->env, spec.config());
  m->order_rng = util::Rng(spec.get_order_seed());

  // Apply the churn trace's initial ON/OFF state before observers attach:
  // deployment is t = 0 setup, not events. Re-wirings it triggers (e.g.
  // immediate repairs) are setup too — the epoch accounting baseline
  // starts after them.
  if (const auto& trace = spec.get_churn()) {
    for (std::size_t v = 0; v < size(); ++v) {
      if (!trace->initial_on()[v]) m->net->set_online(static_cast<int>(v), false);
    }
  }
  m->rewire_mark = m->net->total_rewirings();

  // The driver: one event per epoch (synchronized) or per T/n evaluation
  // slot (staggered), first firing one interval after now.
  Managed* raw = m.get();
  const double interval =
      spec.get_mode() == EpochMode::kSynchronized
          ? spec.get_epoch_period()
          : spec.get_epoch_period() / static_cast<double>(size());
  m->driver = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + interval, interval,
      [this, raw](double) { tick(*raw); }, spec.get_jitter());

  const OverlayHandle handle = m->handle;
  purge_retired();
  overlays_.emplace(handle.id, std::move(m));
  return handle;
}

void OverlayHost::tick(Managed& m) {
  // Depth counters make reentrancy safe: retire() (from a subscription
  // callback, say) parks engines instead of destroying the closures
  // executing this event, and hook refreshes defer past any stack frame
  // that could be running the hook being replaced. Callbacks re-entering
  // the event loop (run_epochs from a subscriber) just deepen the count.
  ++tick_depth_;
  ++m.tick_depth;
  // A deferred hook refresh is safe to apply at this overlay's outermost
  // tick boundary: none of its hooks can be on the stack here.
  if (m.tick_depth == 1 && m.hooks_dirty) {
    m.hooks_dirty = false;
    apply_hooks(m);
  }
  if (m.spec.get_mode() == EpochMode::kSynchronized) {
    tick_synchronized(m);
  } else {
    tick_staggered(m);
  }
  --m.tick_depth;
  --tick_depth_;
  if (m.tick_depth == 0 && m.hooks_dirty && alive(m.handle)) {
    m.hooks_dirty = false;
    apply_hooks(m);
  }
  // Deliberately no purge_retired() here: a retired-mid-tick engine owns
  // the PeriodicTask closure still on the stack. The next safe point
  // (the driving loops, deploy, or an idle retire) destroys it.
}

void OverlayHost::purge_retired() {
  if (tick_depth_ == 0) retired_.clear();
}

void OverlayHost::retire(OverlayHandle handle) {
  const auto it = overlays_.find(handle.id);
  if (it == overlays_.end()) {
    throw std::invalid_argument("unknown overlay handle");
  }
  it->second->driver->stop();  // cancels the armed next occurrence
  retired_.push_back(std::move(it->second));
  overlays_.erase(it);
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [&](const Subscription& s) { return s.overlay == handle.id; }),
      subscriptions_.end());
  purge_retired();  // immediate when idle, deferred when mid-tick
}

std::vector<OverlayHandle> OverlayHost::overlays() const {
  std::vector<OverlayHandle> out;
  out.reserve(overlays_.size());
  for (const auto& [id, m] : overlays_) out.push_back(m->handle);
  return out;
}

bool OverlayHost::alive(OverlayHandle handle) const {
  return overlays_.count(handle.id) != 0;
}

OverlayHost::Managed& OverlayHost::managed(OverlayHandle handle) {
  const auto it = overlays_.find(handle.id);
  if (it == overlays_.end()) {
    throw std::invalid_argument("unknown overlay handle");
  }
  return *it->second;
}

const OverlayHost::Managed& OverlayHost::managed(OverlayHandle handle) const {
  const auto it = overlays_.find(handle.id);
  if (it == overlays_.end()) {
    throw std::invalid_argument("unknown overlay handle");
  }
  return *it->second;
}

void OverlayHost::run_epochs(OverlayHandle handle, int epochs) {
  if (epochs < 0) throw std::invalid_argument("epochs must be >= 0");
  purge_retired();
  const int target = managed(handle).epochs + epochs;
  while (alive(handle) && managed(handle).epochs < target) {
    if (!sim_.step()) {
      throw std::logic_error("simulator queue drained before the epoch target");
    }
    purge_retired();
  }
}

void OverlayHost::run_epochs(int epochs) {
  if (epochs < 0) throw std::invalid_argument("epochs must be >= 0");
  purge_retired();
  std::map<std::uint32_t, int> targets;
  for (const auto& [id, m] : overlays_) targets[id] = m->epochs + epochs;
  auto all_reached = [&] {
    for (const auto& [id, target] : targets) {
      const auto it = overlays_.find(id);
      if (it != overlays_.end() && it->second->epochs < target) return false;
    }
    return true;
  };
  while (!all_reached()) {
    if (!sim_.step()) {
      throw std::logic_error("simulator queue drained before the epoch target");
    }
    purge_retired();
  }
}

void OverlayHost::run_for(double seconds) {
  purge_retired();
  sim_.run_for(seconds);
  purge_retired();
}

void OverlayHost::run_until(double until) {
  purge_retired();
  sim_.run_until(until);
  purge_retired();
}

void OverlayHost::apply_churn(Managed& m, double t) {
  const auto& trace = m.spec.get_churn();
  if (!trace) return;
  const auto& events = trace->events();
  while (m.churn_cursor < events.size() && events[m.churn_cursor].time <= t) {
    const auto& ev = events[m.churn_cursor];
    m.net->set_online(ev.node, ev.on);
    ++m.churn_cursor;
  }
}

void OverlayHost::tick_synchronized(Managed& m) {
  const double period = m.spec.get_epoch_period();
  // Nominal epoch boundary, derived from the integer epoch count so jitter
  // (which shifts fire times, not the grid) cannot perturb churn replay.
  const double t = static_cast<double>(m.epochs + 1) * period;
  apply_churn(m, t);
  m.env->advance(period);
  m.net->run_epoch();
  // Count via the lifetime delta, not run_epoch's return: churn-triggered
  // immediate repairs belong to this epoch too, matching the RewireEvents
  // a subscriber saw and the staggered mode's accounting.
  finish_epoch(m, static_cast<int>(m.net->total_rewirings() - m.rewire_mark));
}

void OverlayHost::tick_staggered(Managed& m) {
  const std::size_t n = size();
  const std::uint64_t e = m.slots / n;
  const std::size_t s = static_cast<std::size_t>(m.slots % n);
  const double period = m.spec.get_epoch_period();
  const double slot = period / static_cast<double>(n);
  if (s == 0) {
    // New epoch: shuffle this epoch's evaluation order over the currently
    // online nodes (exactly exp::replay_churn's loop).
    m.order = m.net->online_nodes();
    m.order_rng.shuffle(m.order);
    m.turn = 0;
  }
  const double t = static_cast<double>(e) * period +
                   static_cast<double>(s + 1) * slot;
  apply_churn(m, t);
  m.env->advance(slot);
  if (m.turn < m.order.size() && m.net->online_count() >= 2) {
    if (m.net->is_online(m.order[m.turn])) m.net->run_node(m.order[m.turn]);
    ++m.turn;
  }
  ++m.slots;
  if (s + 1 == n) {
    const int rewired =
        static_cast<int>(m.net->total_rewirings() - m.rewire_mark);
    finish_epoch(m, rewired);
  }
}

void OverlayHost::finish_epoch(Managed& m, int rewired) {
  ++m.epochs;
  m.rewire_mark = m.net->total_rewirings();
  EpochEvent event;
  event.overlay = m.handle;
  event.time = sim_.now();
  event.epoch = m.epochs;
  event.rewired = rewired;
  event.online_count = m.net->online_count();
  event.total_rewirings = m.net->total_rewirings();
  event.evaluated = m.net->total_evaluations() - m.eval_mark;
  event.skipped = m.net->total_skipped_evals() - m.skip_mark;
  event.dirty_nodes = m.net->dirty_count();
  m.eval_mark = m.net->total_evaluations();
  m.skip_mark = m.net->total_skipped_evals();
  dispatch(m.handle.id, event, &Subscription::epoch);
}

void OverlayHost::refresh_hooks(std::uint32_t overlay_id) {
  const auto it = overlays_.find(overlay_id);
  if (it == overlays_.end()) return;  // retired while subscribed; nothing to do
  Managed* raw = it->second.get();
  if (raw->tick_depth > 0) {
    // One of this overlay's hooks may be on the stack right now (the
    // subscribe/unsubscribe reaching here can be inside a hook-dispatched
    // callback); replacing it mid-execution would destroy a running
    // closure. Defer to the tick boundary.
    raw->hooks_dirty = true;
    return;
  }
  apply_hooks(*raw);
}

void OverlayHost::apply_hooks(Managed& m) {
  Managed* raw = &m;
  bool wants_rewire = false;
  bool wants_membership = false;
  for (const auto& sub : subscriptions_) {
    if (sub.overlay != raw->handle.id) continue;
    wants_rewire |= static_cast<bool>(sub.rewire);
    wants_membership |= static_cast<bool>(sub.membership);
  }

  // Hooks are installed only while someone listens: an unobserved engine
  // pays nothing for the event layer (no wiring copies per rewire, no
  // event construction per membership flip).
  overlay::NetworkHooks hooks;
  if (wants_rewire) {
    hooks.on_rewire = [this, raw](int node, const std::vector<NodeId>& old_wiring,
                                  const std::vector<NodeId>& new_wiring) {
      RewireEvent event;
      event.overlay = raw->handle;
      event.time = sim_.now();
      event.epoch = raw->epochs + 1;
      event.node = node;
      event.old_wiring = old_wiring;
      event.new_wiring = new_wiring;
      dispatch(raw->handle.id, event, &Subscription::rewire);
    };
  }
  if (wants_membership) {
    hooks.on_membership = [this, raw](int node, bool online) {
      MembershipEvent event;
      event.overlay = raw->handle;
      event.time = sim_.now();
      event.epoch = raw->epochs + 1;
      event.node = node;
      event.online = online;
      dispatch(raw->handle.id, event, &Subscription::membership);
    };
  }
  raw->net->set_hooks(std::move(hooks));
}

template <typename Event, typename Member>
void OverlayHost::dispatch(std::uint32_t overlay, const Event& event,
                           Member member) const {
  // Callbacks fire in subscription order. The copies are what make a
  // callback that unsubscribes or retires (itself included) safe: the
  // iteration never touches subscriptions_ again.
  std::vector<std::function<void(const Event&)>> fns;
  for (const auto& sub : subscriptions_) {
    if (sub.overlay == overlay && sub.*member) fns.push_back(sub.*member);
  }
  for (const auto& fn : fns) fn(event);
}

SubscriptionId OverlayHost::on_rewire(OverlayHandle handle,
                                      std::function<void(const RewireEvent&)> fn) {
  if (!fn) throw std::invalid_argument("callback must be set");
  managed(handle);  // validate
  Subscription sub;
  sub.id = next_subscription_id_++;
  sub.overlay = handle.id;
  sub.rewire = std::move(fn);
  subscriptions_.push_back(std::move(sub));
  refresh_hooks(handle.id);
  return subscriptions_.back().id;
}

SubscriptionId OverlayHost::on_epoch_end(OverlayHandle handle,
                                         std::function<void(const EpochEvent&)> fn) {
  if (!fn) throw std::invalid_argument("callback must be set");
  managed(handle);  // validate
  Subscription sub;
  sub.id = next_subscription_id_++;
  sub.overlay = handle.id;
  sub.epoch = std::move(fn);
  subscriptions_.push_back(std::move(sub));
  return subscriptions_.back().id;
}

SubscriptionId OverlayHost::on_membership_change(
    OverlayHandle handle, std::function<void(const MembershipEvent&)> fn) {
  if (!fn) throw std::invalid_argument("callback must be set");
  managed(handle);  // validate
  Subscription sub;
  sub.id = next_subscription_id_++;
  sub.overlay = handle.id;
  sub.membership = std::move(fn);
  subscriptions_.push_back(std::move(sub));
  refresh_hooks(handle.id);
  return subscriptions_.back().id;
}

void OverlayHost::unsubscribe(SubscriptionId id) {
  std::uint32_t overlay = 0;
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [&](const Subscription& s) {
                       if (s.id != id) return false;
                       overlay = s.overlay;
                       return true;
                     }),
      subscriptions_.end());
  if (overlay != 0) refresh_hooks(overlay);
}

WiringSnapshot OverlayHost::snapshot(OverlayHandle handle) const {
  const Managed& m = managed(handle);
  auto state = std::make_shared<WiringSnapshot::State>();
  state->time = sim_.now();
  state->epoch = m.epochs;
  state->total_rewirings = m.net->total_rewirings();
  state->total_evaluations = m.net->total_evaluations();
  state->total_skipped_evals = m.net->total_skipped_evals();
  state->dirty_nodes = m.net->dirty_count();
  const std::size_t n = size();
  state->online.resize(n);
  state->wiring.resize(n);
  state->donated.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const int node = static_cast<int>(v);
    state->online[v] = m.net->is_online(node);
    const auto wiring = m.net->wiring(node);
    state->wiring[v].assign(wiring.begin(), wiring.end());
    const auto donated = m.net->donated(node);
    state->donated[v].assign(donated.begin(), donated.end());
  }
  state->targets = m.net->online_nodes();
  state->announced = m.net->announced_graph();
  state->true_cost = m.net->true_cost_graph();
  state->true_bandwidth = m.net->true_bandwidth_graph();
  state->preferences = m.net->score_preferences();
  return WiringSnapshot(std::move(state));
}

int OverlayHost::epochs_run(OverlayHandle handle) const {
  return managed(handle).epochs;
}

std::uint64_t OverlayHost::total_rewirings(OverlayHandle handle) const {
  return managed(handle).net->total_rewirings();
}

overlay::Environment& OverlayHost::environment(OverlayHandle handle) {
  return *managed(handle).env;
}

overlay::EgoistNetwork& OverlayHost::network(OverlayHandle handle) {
  return *managed(handle).net;
}

}  // namespace egoist::host
