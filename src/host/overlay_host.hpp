// OverlayHost — the front door of the library.
//
// One host owns one substrate (overlay::Substrate) and one discrete-event
// clock (sim::Simulator) and manages N concurrent overlays on top, the way
// the paper's PlanetLab deployment ran one EGOIST agent per policy/metric
// on one shared node set. Overlays are deployed from a fluent OverlaySpec
// and addressed through opaque OverlayHandles; their wiring epochs,
// staggered per-node re-evaluations, and churn arrivals all run as
// simulator events, so "advance the deployment" is one call into the
// event loop instead of per-experiment glue.
//
// Reads are decoupled from the mutation path: queries return immutable
// WiringSnapshot values (host/wiring_snapshot.hpp), and the typed
// subscription API (on_rewire / on_epoch_end / on_membership_change)
// pushes engine activity out to observers — exp::ResultSink consumers plug
// in directly. The per-overlay engine behind a handle is
// overlay::EgoistNetwork, which is no longer the public face of the
// library (docs/ARCHITECTURE.md, "Porting from EgoistNetwork").
//
// Determinism contract: every overlay gets its own measurement plane
// (overlay::Environment fork) seeded from the host seed, and the shared
// substrate advances once per point in virtual time. Overlays whose
// drivers advance in lockstep therefore observe exactly the realization a
// solo run with the same seeds would — N overlays on one host score
// bit-identically to N single-overlay hosts (the lockstep test pins this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "churn/churn.hpp"
#include "host/wiring_snapshot.hpp"
#include "overlay/config.hpp"
#include "overlay/environment.hpp"
#include "overlay/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace egoist::host {

/// How an overlay's re-evaluations are scheduled (§4.2).
enum class EpochMode {
  /// Every online node re-evaluates once per epoch_period, in a shuffled
  /// order, as one simulator event (EgoistNetwork::run_epoch).
  kSynchronized,
  /// One node re-evaluates every epoch_period / n seconds (the paper's
  /// unsynchronized deployment; the churn experiments' scheduling). Churn
  /// events are applied in time order between evaluations.
  kStaggered,
};

/// Fluent description of one overlay deployment. Chain setters and hand
/// the result to OverlayHost::deploy:
///
///   auto h = host.deploy(OverlaySpec()
///                            .policy(overlay::Policy::kHybridBR)
///                            .k(5)
///                            .seed(42)
///                            .epoch_period(60.0)
///                            .staggered(/*order_seed=*/7)
///                            .churn(trace));
class OverlaySpec {
 public:
  OverlaySpec() = default;
  /// Starts from a fully-populated engine config (the escape hatch for
  /// knobs without a dedicated fluent setter).
  explicit OverlaySpec(overlay::OverlayConfig config) : config_(std::move(config)) {}

  OverlaySpec& policy(overlay::Policy value) { config_.policy = value; return *this; }
  OverlaySpec& metric(overlay::Metric value) { config_.metric = value; return *this; }
  OverlaySpec& k(std::size_t value) { config_.k = value; return *this; }
  OverlaySpec& seed(std::uint64_t value) { config_.seed = value; return *this; }
  OverlaySpec& epsilon(double value) { config_.epsilon = value; return *this; }
  OverlaySpec& donated_links(std::size_t value) { config_.donated_links = value; return *this; }
  OverlaySpec& backbone(overlay::Backbone value) { config_.backbone = value; return *this; }
  OverlaySpec& rewire_mode(overlay::RewireMode value) { config_.rewire_mode = value; return *this; }
  OverlaySpec& cheaters(std::vector<int> nodes, double factor) {
    config_.cheaters = std::move(nodes);
    config_.cheat_factor = factor;
    return *this;
  }
  OverlaySpec& audits(bool enable, double tolerance = 1.5) {
    config_.enable_audits = enable;
    config_.audit_tolerance = tolerance;
    return *this;
  }
  OverlaySpec& path_backend(overlay::PathBackend value) { config_.path_backend = value; return *this; }
  OverlaySpec& path_workers(int value) { config_.path_workers = value; return *this; }
  /// Wiring-epoch worker threads (overlay::OverlayConfig::epoch_workers):
  /// 0 = sequential legacy epoch, >= 1 = the deterministic parallel
  /// pipeline (trajectories bit-identical at any worker count).
  OverlaySpec& workers(int value) { config_.epoch_workers = value; return *this; }
  OverlaySpec& preference_zipf(double exponent) {
    config_.preference_zipf_exponent = exponent;
    return *this;
  }
  /// Incremental dirty-set epochs (overlay::OverlayConfig::incremental):
  /// only invalidated nodes re-evaluate. drift_threshold 0 = exact mode
  /// (bit-identical trajectories to the full recompute), > 0 = tolerance
  /// mode (selective marking + per-link drift probes).
  OverlaySpec& incremental(bool enable, double drift_threshold = 0.0) {
    config_.incremental = enable;
    config_.drift_threshold = drift_threshold;
    return *this;
  }

  /// Wiring-epoch length T in virtual seconds (default 60, the deployed
  /// system's default).
  OverlaySpec& epoch_period(double seconds) { epoch_period_ = seconds; return *this; }

  /// Synchronized epochs (the default).
  OverlaySpec& synchronized() { mode_ = EpochMode::kSynchronized; return *this; }

  /// Staggered per-node evaluation; `order_seed` seeds the per-epoch
  /// evaluation-order shuffle stream.
  OverlaySpec& staggered(std::uint64_t order_seed) {
    mode_ = EpochMode::kStaggered;
    order_seed_ = order_seed;
    return *this;
  }

  /// Per-occurrence scheduling offset for this overlay's driver (see
  /// sim::PeriodicTask::JitterFn) — desynchronizes concurrent overlays'
  /// event interleaving without moving the nominal epoch grid.
  OverlaySpec& epoch_jitter(sim::PeriodicTask::JitterFn fn) {
    jitter_ = std::move(fn);
    return *this;
  }

  /// Replays `trace` against this overlay: its initial ON/OFF state is
  /// applied at deploy time, its events in time order on the overlay's
  /// own timeline — trace time 0 is the moment of deployment, and events
  /// are applied as the overlay's nominal epoch/slot grid passes them
  /// (deploying at t > 0 shifts the whole replay, it does not skip
  /// events). The trace's node count must match the host's.
  OverlaySpec& churn(churn::ChurnTrace trace) {
    churn_ = std::make_shared<const churn::ChurnTrace>(std::move(trace));
    return *this;
  }
  OverlaySpec& churn(std::shared_ptr<const churn::ChurnTrace> trace) {
    churn_ = std::move(trace);
    return *this;
  }

  /// Optional display name (events and debugging).
  OverlaySpec& name(std::string value) { name_ = std::move(value); return *this; }

  const overlay::OverlayConfig& config() const { return config_; }
  double get_epoch_period() const { return epoch_period_; }
  EpochMode get_mode() const { return mode_; }
  std::uint64_t get_order_seed() const { return order_seed_; }
  const sim::PeriodicTask::JitterFn& get_jitter() const { return jitter_; }
  const std::shared_ptr<const churn::ChurnTrace>& get_churn() const { return churn_; }
  const std::string& get_name() const { return name_; }

 private:
  overlay::OverlayConfig config_;
  double epoch_period_ = 60.0;
  EpochMode mode_ = EpochMode::kSynchronized;
  std::uint64_t order_seed_ = 0;
  sim::PeriodicTask::JitterFn jitter_;
  std::shared_ptr<const churn::ChurnTrace> churn_;
  std::string name_;
};

/// Opaque reference to a deployed overlay. Value type; cheap to copy.
struct OverlayHandle {
  std::uint32_t id = 0;  ///< 0 = invalid
  bool valid() const { return id != 0; }
  friend bool operator==(OverlayHandle a, OverlayHandle b) { return a.id == b.id; }
  friend bool operator!=(OverlayHandle a, OverlayHandle b) { return a.id != b.id; }
  friend bool operator<(OverlayHandle a, OverlayHandle b) { return a.id < b.id; }
};

/// A node adopted a new wiring (this is what total_rewirings counts).
struct RewireEvent {
  OverlayHandle overlay;
  double time = 0.0;  ///< virtual time of the adoption
  int epoch = 0;      ///< 1-based epoch in progress
  int node = -1;
  std::vector<NodeId> old_wiring;
  std::vector<NodeId> new_wiring;
};

/// One wiring epoch completed (synchronized: one run_epoch; staggered: n
/// evaluation slots).
struct EpochEvent {
  OverlayHandle overlay;
  double time = 0.0;
  int epoch = 0;      ///< 1-based count of completed epochs
  int rewired = 0;    ///< re-wirings during this epoch
  std::size_t online_count = 0;
  std::uint64_t total_rewirings = 0;
  /// Node evaluations performed / skipped during this epoch (skipped is
  /// nonzero only for overlays deployed with OverlaySpec::incremental).
  std::uint64_t evaluated = 0;
  std::uint64_t skipped = 0;
  /// Nodes still marked for re-evaluation at the epoch boundary (n for
  /// non-incremental overlays).
  std::size_t dirty_nodes = 0;
};

/// A node joined or left (churn).
struct MembershipEvent {
  OverlayHandle overlay;
  double time = 0.0;
  int epoch = 0;      ///< 1-based epoch in progress
  int node = -1;
  bool online = false;
};

using SubscriptionId = std::uint64_t;

class OverlayHost {
 public:
  /// A host for n substrate nodes; `seed` derives the substrate processes
  /// and every overlay's measurement-plane noise streams (identically per
  /// overlay — the paper's identical-conditions comparison).
  OverlayHost(std::size_t n, std::uint64_t seed,
              overlay::EnvironmentConfig env_config = {});

  /// Not movable: every deployed driver captures this host and schedules
  /// on its simulator, so the host must stay put for its lifetime.
  OverlayHost(const OverlayHost&) = delete;
  OverlayHost& operator=(const OverlayHost&) = delete;
  OverlayHost(OverlayHost&&) = delete;
  OverlayHost& operator=(OverlayHost&&) = delete;

  std::size_t size() const { return substrate_->size(); }
  std::uint64_t seed() const { return seed_; }

  /// Virtual time (the simulator clock).
  double now() const { return sim_.now(); }
  sim::Simulator& simulator() { return sim_; }
  const std::shared_ptr<overlay::Substrate>& substrate() const { return substrate_; }

  /// --- Deployment ---
  OverlayHandle deploy(const OverlaySpec& spec);

  /// Tears the overlay down: its driver stops, its subscriptions drop, its
  /// handle goes invalid. Snapshots taken earlier stay valid (immutable).
  /// Safe to call from inside a subscription callback — retiring the
  /// overlay whose event is being dispatched completes the in-flight epoch
  /// step (without further callbacks) and releases the engine at the next
  /// safe point.
  void retire(OverlayHandle handle);

  /// Deployed overlays, in deployment order.
  std::vector<OverlayHandle> overlays() const;
  bool alive(OverlayHandle handle) const;

  /// --- Driving the deployment ---
  /// Runs the event loop until `handle` completes `epochs` more epochs.
  /// Concurrent overlays advance together (their events interleave on the
  /// shared clock).
  void run_epochs(OverlayHandle handle, int epochs);

  /// Runs until every deployed overlay completes `epochs` more epochs.
  void run_epochs(int epochs);

  /// Raw clock control (run_until executes events at exactly `until`).
  void run_for(double seconds);
  void run_until(double until);

  /// --- Typed event subscriptions ---
  /// Callbacks for one event fire in subscription order; subscription ids
  /// are assigned in creation order and stable across runs, so observer
  /// sequences are as deterministic as the trajectory itself.
  SubscriptionId on_rewire(OverlayHandle handle,
                           std::function<void(const RewireEvent&)> fn);
  SubscriptionId on_epoch_end(OverlayHandle handle,
                              std::function<void(const EpochEvent&)> fn);
  SubscriptionId on_membership_change(
      OverlayHandle handle, std::function<void(const MembershipEvent&)> fn);
  void unsubscribe(SubscriptionId id);

  /// --- Queries ---
  /// Immutable state capture; see host/wiring_snapshot.hpp.
  WiringSnapshot snapshot(OverlayHandle handle) const;

  int epochs_run(OverlayHandle handle) const;
  std::uint64_t total_rewirings(OverlayHandle handle) const;

  /// This overlay's measurement plane (read-mostly; advanced by the
  /// overlay's driver). Exposed for applications that combine overlay
  /// state with substrate quantities (e.g. the multipath experiments read
  /// bandwidth().)
  overlay::Environment& environment(OverlayHandle handle);

  /// Escape hatch to the per-overlay engine, for benchmarks and engine
  /// tests that time or probe internals directly. Mutating the engine
  /// outside the host's drivers voids the host's epoch accounting —
  /// production callers use deploy/run_epochs/snapshot instead.
  overlay::EgoistNetwork& network(OverlayHandle handle);

 private:
  struct Managed {
    OverlayHandle handle;
    OverlaySpec spec;
    std::unique_ptr<overlay::Environment> env;
    std::unique_ptr<overlay::EgoistNetwork> net;
    std::unique_ptr<sim::PeriodicTask> driver;
    util::Rng order_rng{0};          ///< staggered: per-epoch shuffle stream
    std::vector<NodeId> order;       ///< staggered: this epoch's order
    std::size_t turn = 0;            ///< staggered: next index into order
    std::uint64_t slots = 0;         ///< staggered: evaluation slots fired
    std::size_t churn_cursor = 0;    ///< next unapplied trace event
    int epochs = 0;                  ///< completed epochs
    std::uint64_t rewire_mark = 0;   ///< total_rewirings at last epoch end
    std::uint64_t eval_mark = 0;     ///< total_evaluations at last epoch end
    std::uint64_t skip_mark = 0;     ///< total_skipped_evals at last epoch end
    int tick_depth = 0;              ///< this overlay's ticks on the stack
    bool hooks_dirty = false;        ///< engine hooks need a refresh
  };

  struct Subscription {
    SubscriptionId id = 0;
    std::uint32_t overlay = 0;
    std::function<void(const RewireEvent&)> rewire;
    std::function<void(const EpochEvent&)> epoch;
    std::function<void(const MembershipEvent&)> membership;
  };

  Managed& managed(OverlayHandle handle);
  const Managed& managed(OverlayHandle handle) const;

  /// Destroys retired engines once no tick is executing. Retirement from
  /// inside a callback parks the Managed (driver stopped, subscriptions
  /// gone, handle invalid) in retired_ so the in-flight tick's closures
  /// and engine stay alive until the event unwinds.
  void purge_retired();

  void tick(Managed& m);
  /// Installs the hooks refresh_hooks computed, immediately when no tick
  /// of this overlay is on the stack (a hook of this overlay could be the
  /// caller's caller), deferred to the tick boundary otherwise.
  void apply_hooks(Managed& m);
  void tick_synchronized(Managed& m);
  void tick_staggered(Managed& m);
  /// Applies trace events with time <= t (replay_churn's ordering).
  void apply_churn(Managed& m, double t);
  void finish_epoch(Managed& m, int rewired);

  /// (Re)installs the engine observers for one overlay based on its
  /// current subscriptions — hooks exist only while someone listens, so
  /// unobserved engines pay nothing for the event layer.
  void refresh_hooks(std::uint32_t overlay_id);

  template <typename Event, typename Member>
  void dispatch(std::uint32_t overlay, const Event& event, Member member) const;

  std::shared_ptr<overlay::Substrate> substrate_;
  std::uint64_t seed_;
  sim::Simulator sim_;
  std::map<std::uint32_t, std::unique_ptr<Managed>> overlays_;
  std::vector<std::unique_ptr<Managed>> retired_;  ///< awaiting safe destruction
  int tick_depth_ = 0;  ///< driver events on the stack (nesting included)
  std::uint32_t next_overlay_id_ = 1;
  std::vector<Subscription> subscriptions_;
  SubscriptionId next_subscription_id_ = 1;
};

}  // namespace egoist::host
