// WiringSnapshot — an immutable, cheaply-copyable view of one overlay's
// state at a point in virtual time.
//
// The host's mutation path (epoch events, staggered evaluations, churn)
// never hands out references into the live engine; readers take snapshots
// instead. A snapshot captures the wiring, the announced graph, and the
// true-cost / true-bandwidth graphs at capture time and is then fully
// detached: run the overlay another hundred epochs and the snapshot still
// reports the state it froze. Copies share one immutable payload
// (shared_ptr), so passing snapshots around — across threads included — is
// pointer-cheap.
//
// Scores (node_costs / node_efficiencies / node_bandwidth_scores) are pure
// functions of the captured graphs (overlay/scoring.hpp), computed on
// demand, and bit-identical to what the live EgoistNetwork would have
// reported at capture time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/digraph.hpp"

namespace egoist::host {

using graph::NodeId;

class WiringSnapshot {
 public:
  /// The frozen payload. Built by OverlayHost::snapshot(); immutable once
  /// wrapped.
  struct State {
    double time = 0.0;                  ///< virtual time of the capture
    int epoch = 0;                      ///< completed epochs at capture
    std::uint64_t total_rewirings = 0;
    /// Cumulative node evaluations performed / skipped (incremental-epoch
    /// telemetry; skipped stays 0 for non-incremental overlays).
    std::uint64_t total_evaluations = 0;
    std::uint64_t total_skipped_evals = 0;
    /// Nodes marked for re-evaluation at capture time (n when the overlay
    /// is not incremental).
    std::size_t dirty_nodes = 0;
    std::vector<bool> online;
    std::vector<NodeId> targets;        ///< online node ids, ascending
    std::vector<std::vector<NodeId>> wiring;
    std::vector<std::vector<NodeId>> donated;
    graph::Digraph announced{0};
    graph::Digraph true_cost{0};
    graph::Digraph true_bandwidth{0};
    /// Empty = uniform preferences; see EgoistNetwork::score_preferences.
    std::vector<std::vector<double>> preferences;
  };

  WiringSnapshot() = default;
  explicit WiringSnapshot(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  /// False for a default-constructed (empty) snapshot.
  bool valid() const { return state_ != nullptr; }

  double time() const { return state().time; }
  int epoch() const { return state().epoch; }
  std::uint64_t total_rewirings() const { return state().total_rewirings; }
  std::uint64_t total_evaluations() const { return state().total_evaluations; }
  std::uint64_t total_skipped_evals() const {
    return state().total_skipped_evals;
  }
  std::size_t dirty_nodes() const { return state().dirty_nodes; }

  std::size_t size() const { return state().online.size(); }
  bool is_online(int node) const;
  std::size_t online_count() const { return state().targets.size(); }
  const std::vector<NodeId>& online_nodes() const { return state().targets; }

  const std::vector<NodeId>& wiring(int node) const;
  const std::vector<NodeId>& donated(int node) const;

  /// Wiring with announced costs (what the link-state protocol carried at
  /// capture time).
  const graph::Digraph& announced_graph() const { return state().announced; }

  /// Wiring with true, instantaneous metric costs at capture time.
  const graph::Digraph& true_cost_graph() const { return state().true_cost; }

  /// Wiring with true available bandwidth as weights at capture time.
  const graph::Digraph& true_bandwidth_graph() const {
    return state().true_bandwidth;
  }

  /// --- Scores over the captured graphs (online nodes only, in
  /// online_nodes() order) ---
  std::vector<double> node_costs() const;
  std::vector<double> node_efficiencies() const;
  std::vector<double> node_bandwidth_scores() const;

  /// Single-node routing-cost score: one Dijkstra instead of the full
  /// node_costs() sweep (point queries — RouteService::score). NaN for an
  /// offline node; bit-identical to the matching node_costs() entry
  /// otherwise.
  double node_cost(int node) const;

  /// Write-seal over the shared payload: a deterministic digest of every
  /// field (wirings, graphs, counters, preferences). The payload is
  /// immutable by contract — copies share it — but nothing in the type
  /// system stops a buggy writer holding the pre-publication State from
  /// scribbling on it. Publishers (host::RouteService) record the checksum
  /// at publication and re-verify it when the last reader releases the
  /// snapshot; any divergence means the contract was violated.
  std::uint64_t payload_checksum() const;

 private:
  const State& state() const;

  std::shared_ptr<const State> state_;
};

}  // namespace egoist::host
