#include "host/wiring_snapshot.hpp"

#include <stdexcept>

#include "overlay/scoring.hpp"

namespace egoist::host {

const WiringSnapshot::State& WiringSnapshot::state() const {
  if (!state_) throw std::logic_error("empty WiringSnapshot");
  return *state_;
}

bool WiringSnapshot::is_online(int node) const {
  const auto& s = state();
  if (node < 0 || static_cast<std::size_t>(node) >= s.online.size()) {
    throw std::out_of_range("node id out of range");
  }
  return s.online[static_cast<std::size_t>(node)];
}

const std::vector<NodeId>& WiringSnapshot::wiring(int node) const {
  const auto& s = state();
  if (node < 0 || static_cast<std::size_t>(node) >= s.wiring.size()) {
    throw std::out_of_range("node id out of range");
  }
  return s.wiring[static_cast<std::size_t>(node)];
}

const std::vector<NodeId>& WiringSnapshot::donated(int node) const {
  const auto& s = state();
  if (node < 0 || static_cast<std::size_t>(node) >= s.donated.size()) {
    throw std::out_of_range("node id out of range");
  }
  return s.donated[static_cast<std::size_t>(node)];
}

std::vector<double> WiringSnapshot::node_costs() const {
  const auto& s = state();
  return overlay::score_node_costs(s.true_cost, s.targets, s.preferences);
}

std::vector<double> WiringSnapshot::node_efficiencies() const {
  const auto& s = state();
  return overlay::score_node_efficiencies(s.true_cost, s.targets);
}

std::vector<double> WiringSnapshot::node_bandwidth_scores() const {
  const auto& s = state();
  return overlay::score_node_bandwidth(s.true_bandwidth, s.targets);
}

}  // namespace egoist::host
