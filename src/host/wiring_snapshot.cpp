#include "host/wiring_snapshot.hpp"

#include <bit>
#include <limits>
#include <stdexcept>

#include "overlay/scoring.hpp"

namespace egoist::host {

namespace {

/// FNV-1a accumulator; fold() feeds one 64-bit word.
struct Digest {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  void fold(std::uint64_t word) {
    hash ^= word;
    hash *= 0x100000001B3ull;
  }
  void fold_double(double value) { fold(std::bit_cast<std::uint64_t>(value)); }
  void fold_graph(const graph::Digraph& g) {
    fold(g.node_count());
    fold(g.edge_count());
    for (std::size_t u = 0; u < g.node_count(); ++u) {
      const auto node = static_cast<graph::NodeId>(u);
      fold(g.is_active(node) ? 1 : 0);
      for (const auto& edge : g.out_edges(node)) {
        fold(static_cast<std::uint64_t>(edge.to));
        fold_double(edge.weight);
      }
    }
  }
};

}  // namespace

const WiringSnapshot::State& WiringSnapshot::state() const {
  if (!state_) throw std::logic_error("empty WiringSnapshot");
  return *state_;
}

bool WiringSnapshot::is_online(int node) const {
  const auto& s = state();
  if (node < 0 || static_cast<std::size_t>(node) >= s.online.size()) {
    throw std::out_of_range("node id out of range");
  }
  return s.online[static_cast<std::size_t>(node)];
}

const std::vector<NodeId>& WiringSnapshot::wiring(int node) const {
  const auto& s = state();
  if (node < 0 || static_cast<std::size_t>(node) >= s.wiring.size()) {
    throw std::out_of_range("node id out of range");
  }
  return s.wiring[static_cast<std::size_t>(node)];
}

const std::vector<NodeId>& WiringSnapshot::donated(int node) const {
  const auto& s = state();
  if (node < 0 || static_cast<std::size_t>(node) >= s.donated.size()) {
    throw std::out_of_range("node id out of range");
  }
  return s.donated[static_cast<std::size_t>(node)];
}

std::vector<double> WiringSnapshot::node_costs() const {
  const auto& s = state();
  return overlay::score_node_costs(s.true_cost, s.targets, s.preferences);
}

std::vector<double> WiringSnapshot::node_efficiencies() const {
  const auto& s = state();
  return overlay::score_node_efficiencies(s.true_cost, s.targets);
}

std::vector<double> WiringSnapshot::node_bandwidth_scores() const {
  const auto& s = state();
  return overlay::score_node_bandwidth(s.true_bandwidth, s.targets);
}

double WiringSnapshot::node_cost(int node) const {
  if (!is_online(node)) return std::numeric_limits<double>::quiet_NaN();
  const auto& s = state();
  return overlay::score_node_cost(s.true_cost, s.targets, s.preferences, node);
}

std::uint64_t WiringSnapshot::payload_checksum() const {
  const auto& s = state();
  Digest d;
  d.fold_double(s.time);
  d.fold(static_cast<std::uint64_t>(s.epoch));
  d.fold(s.total_rewirings);
  d.fold(s.total_evaluations);
  d.fold(s.total_skipped_evals);
  d.fold(s.dirty_nodes);
  for (const bool on : s.online) d.fold(on ? 1 : 0);
  for (const NodeId v : s.targets) d.fold(static_cast<std::uint64_t>(v));
  for (const auto& row : s.wiring) {
    d.fold(row.size());
    for (const NodeId v : row) d.fold(static_cast<std::uint64_t>(v));
  }
  for (const auto& row : s.donated) {
    d.fold(row.size());
    for (const NodeId v : row) d.fold(static_cast<std::uint64_t>(v));
  }
  d.fold_graph(s.announced);
  d.fold_graph(s.true_cost);
  d.fold_graph(s.true_bandwidth);
  d.fold(s.preferences.size());
  for (const auto& row : s.preferences) {
    d.fold(row.size());
    for (const double p : row) d.fold_double(p);
  }
  return d.hash;
}

}  // namespace egoist::host
