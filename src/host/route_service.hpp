// RouteService — a thread-safe query front end over one overlay's latest
// published WiringSnapshot.
//
// The overlays exist to route traffic; this is the layer that answers
// route(src, dst) / path(src, dst) / score(node) queries from reader
// threads WHILE the host's epoch engine (sequential, parallel, or
// incremental) keeps rewiring on its own thread. The protocol is RCU-style
// publish/read/reclaim over immutable snapshots:
//
//   publish  (host thread)  On every on_epoch_end the service captures a
//                           fresh WiringSnapshot, wraps it in a ServingView
//                           and swaps it into the published-view slot. The
//                           previous view moves to the retired list. The
//                           service subscribes in its constructor, so
//                           epoch-end observers registered AFTER the
//                           service always see the just-published epoch
//                           (subscription callbacks fire in subscription
//                           order — OverlayHost's dispatch contract).
//   read     (any thread)   acquire() copies the current view out of the
//                           slot and pins it via refcount; queries answer
//                           from that view only, so every answer is
//                           internally consistent with exactly one
//                           published snapshot — never a torn mix.
//   reclaim  (host thread)  A retired view is freed only once its refcount
//                           has drained to the retired list's own reference
//                           (the grace period: all in-flight readers have
//                           released it). At that point the payload seal —
//                           a checksum recorded at publication
//                           (WiringSnapshot::payload_checksum) — is
//                           re-verified; a mismatch means some writer
//                           mutated a published payload, and reclaim()
//                           throws.
//
// Query answers come from per-source shortest-path rows over the
// snapshot's ANNOUNCED graph (what the link-state protocol carried — the
// paper's standard shortest-path routing over the selfishly built
// topology, §2.1). Rows are built lazily on first use, published into the
// view with a compare-exchange (duplicate builders discard), and capped by
// Options::max_cached_sources; queries beyond the cap compute a transient
// row and stay correct, just slower. score(node) is the single-node
// routing-cost score over the true-cost graph (WiringSnapshot::node_cost).
//
// Threading contract: publish(), reclaim(), construction and destruction
// belong to the host (simulator) thread; acquire(), route(), path(),
// score() and stats() are safe from any thread. The service must be
// destroyed before its OverlayHost, and a ServedSnapshot never outlives
// the data it pins (views and counters are shared_ptr-owned), so readers
// may hold one across swaps — the staleness counter records exactly that.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/shortest_path.hpp"
#include "host/overlay_host.hpp"
#include "host/wiring_snapshot.hpp"

namespace egoist::host {

/// Answer to route(src, dst): the first hop of a shortest announced-cost
/// path and its total cost, stamped with the publication that answered.
struct RouteAnswer {
  bool reachable = false;
  NodeId next_hop = -1;          ///< src itself when src == dst
  double cost = graph::kUnreachable;
  int epoch = 0;                 ///< snapshot epoch that answered
  std::uint64_t publish_seq = 0; ///< publication sequence number
};

/// Answer to path(src, dst): the full node sequence src..dst.
struct PathAnswer {
  bool reachable = false;
  std::vector<NodeId> nodes;     ///< empty when unreachable; {src} when src == dst
  double cost = graph::kUnreachable;
  int epoch = 0;
  std::uint64_t publish_seq = 0;
};

namespace detail {

/// Shared atomic counters; ServedSnapshots hold a reference so queries
/// through a pinned view keep counting even mid-swap.
struct ServiceCounters {
  std::atomic<std::uint64_t> latest_seq{0};
  std::atomic<std::uint64_t> queries_route{0};
  std::atomic<std::uint64_t> queries_path{0};
  std::atomic<std::uint64_t> queries_score{0};
  std::atomic<std::uint64_t> stale_served{0};
  std::atomic<std::uint64_t> rows_built{0};
  std::atomic<std::uint64_t> rows_discarded{0};
  std::atomic<std::uint64_t> uncached_queries{0};
  std::atomic<std::uint64_t> seal_violations{0};
};

/// One source's routing row: the Dijkstra tree over the announced graph
/// plus the precomputed first hop toward every destination.
struct SourceRow {
  graph::ShortestPathTree tree;
  std::vector<NodeId> first_hop;  ///< -1 when unreachable or == source
};

/// One published snapshot plus its lazily built routing rows. Immutable
/// after publication except for the row cache, which only ever goes
/// nullptr -> row under a compare-exchange.
class ServingView {
 public:
  ServingView(WiringSnapshot snapshot, std::uint64_t seq,
              std::size_t max_cached_sources, bool seal,
              std::shared_ptr<ServiceCounters> counters);
  ~ServingView();
  ServingView(const ServingView&) = delete;
  ServingView& operator=(const ServingView&) = delete;

  const WiringSnapshot& snapshot() const { return snapshot_; }
  std::uint64_t seq() const { return seq_; }

  /// The cached row for `src`, building it on first use. nullptr when the
  /// row cache is full — the caller computes a transient row instead.
  const SourceRow* row(NodeId src) const;

  /// Pure row construction (also the transient fallback).
  SourceRow build_row(NodeId src) const;

  /// Re-checks the publication-time payload seal. Always true when the
  /// view was published without sealing.
  bool verify_seal() const;

  std::size_t cached_rows() const {
    return cached_rows_.load(std::memory_order_relaxed);
  }

 private:
  WiringSnapshot snapshot_;
  std::uint64_t seq_ = 0;
  std::size_t max_cached_sources_ = 0;
  bool sealed_ = false;
  std::uint64_t seal_ = 0;
  std::shared_ptr<ServiceCounters> counters_;
  mutable std::vector<std::atomic<const SourceRow*>> rows_;
  mutable std::atomic<std::size_t> cached_rows_{0};
};

}  // namespace detail

/// A reader's pinned view of one publication. Copyable and cheap (two
/// shared_ptrs); safe to query from any thread and to hold across swaps —
/// the pinned snapshot stays alive and internally consistent until every
/// holder releases it. Queries through a pinned view after a newer
/// publication count toward the service's stale_served telemetry.
class ServedSnapshot {
 public:
  ServedSnapshot() = default;

  bool valid() const { return view_ != nullptr; }
  int epoch() const;
  std::uint64_t publish_seq() const;
  const WiringSnapshot& snapshot() const;

  /// First hop + cost of a shortest announced-cost path. Offline src or
  /// dst (or no path) answers unreachable; out-of-range ids throw.
  RouteAnswer route(NodeId src, NodeId dst) const;

  /// Full shortest-path node sequence src..dst.
  PathAnswer path(NodeId src, NodeId dst) const;

  /// Single-node routing-cost score over the true-cost graph
  /// (WiringSnapshot::node_cost); NaN for an offline node.
  double score(NodeId node) const;

 private:
  friend class RouteService;
  ServedSnapshot(std::shared_ptr<const detail::ServingView> view,
                 std::shared_ptr<detail::ServiceCounters> counters)
      : view_(std::move(view)), counters_(std::move(counters)) {}

  /// Counts a query against this view's publication, flagging staleness.
  void note_query(std::atomic<std::uint64_t> detail::ServiceCounters::*kind) const;

  std::shared_ptr<const detail::ServingView> view_;
  std::shared_ptr<detail::ServiceCounters> counters_;
};

class RouteService {
 public:
  struct Options {
    /// Per-view cap on cached per-source rows (each is O(n)); queries from
    /// sources beyond the cap compute transient rows.
    std::size_t max_cached_sources = 256;
    /// Record a payload checksum at publication and re-verify it when the
    /// last reader drains (reclaim throws std::logic_error on mismatch).
    bool verify_seals = true;
  };

  /// One coherent counter sample (see the field comments; monotone except
  /// retired_pending).
  struct Stats {
    std::uint64_t publishes = 0;      ///< snapshots published (initial included)
    std::uint64_t swaps = 0;          ///< publishes that replaced a previous view
    std::uint64_t queries_route = 0;
    std::uint64_t queries_path = 0;
    std::uint64_t queries_score = 0;
    std::uint64_t stale_served = 0;   ///< queries answered by a superseded view
    std::uint64_t rows_built = 0;     ///< per-source rows cached
    std::uint64_t rows_discarded = 0; ///< duplicate builds lost the CAS
    std::uint64_t uncached_queries = 0; ///< transient rows (cache cap hit)
    std::uint64_t seal_violations = 0;
    std::size_t retired_pending = 0;  ///< retired views readers still pin
    int published_epoch = 0;          ///< epoch of the current publication
    double published_time = 0.0;      ///< virtual capture time of same

    std::uint64_t queries_served() const {
      return queries_route + queries_path + queries_score;
    }
  };

  /// Subscribes to `overlay`'s epoch ends and publishes the initial
  /// snapshot immediately, so acquire() is always valid.
  RouteService(OverlayHost& host, OverlayHandle overlay);
  RouteService(OverlayHost& host, OverlayHandle overlay, Options options);
  ~RouteService();
  RouteService(const RouteService&) = delete;
  RouteService& operator=(const RouteService&) = delete;

  /// Pins the latest publication (any thread).
  ServedSnapshot acquire() const;

  /// Convenience one-shot queries: acquire() + query (any thread).
  RouteAnswer route(NodeId src, NodeId dst) const { return acquire().route(src, dst); }
  PathAnswer path(NodeId src, NodeId dst) const { return acquire().path(src, dst); }
  double score(NodeId node) const { return acquire().score(node); }

  /// Captures and publishes a snapshot of the overlay's current state
  /// outside the epoch cadence (host thread; the constructor and the
  /// epoch-end subscription call this).
  void publish();

  /// Frees retired views whose readers have all drained, re-verifying
  /// each payload seal first (host thread). Returns the number freed;
  /// throws std::logic_error on a seal violation. publish() sweeps
  /// opportunistically, so calling this directly is only needed to prove
  /// drain (tests) or to bound memory between epochs.
  std::size_t reclaim();

  /// Retired views still pinned by at least one reader.
  std::size_t retired_pending() const;

  /// Quiesce: blocks until every pinned reader view has been released and
  /// every retired snapshot reclaimed (seal-verified) — i.e. the only
  /// remaining snapshot reference is the service's own published slot.
  /// This is the shutdown proof egoistd runs after stopping its socket
  /// server: drain() returning true means no ServedSnapshot leaked.
  ///
  /// Host thread only (it sweeps reclaim()). Callers must have stopped
  /// issuing NEW acquires first — drain() waits for in-flight readers, it
  /// cannot outwait a reader that keeps re-pinning. `timeout_s < 0` waits
  /// forever; otherwise returns false if the deadline passes with a view
  /// still pinned. Throws like reclaim() on a seal violation.
  bool drain(double timeout_s = -1.0);

  Stats stats() const;

 private:
  struct Retired {
    std::shared_ptr<const detail::ServingView> view;
  };

  std::size_t reclaim_impl(bool nothrow);

  OverlayHost* host_;
  OverlayHandle overlay_;
  Options options_;
  std::shared_ptr<detail::ServiceCounters> counters_;
  // The published-view slot. Not std::atomic<shared_ptr>: libstdc++ 12's
  // _Sp_atomic unlocks reader critical sections with memory_order_relaxed,
  // which leaves no formal happens-before edge against the writer's swap —
  // TSan (rightly, per the model) reports every load as racing. A plain
  // mutex around the pointer copy/swap is the same cost class (that
  // implementation is itself a CAS spinlock plus a refcount RMW) and is
  // sanitizer-clean. Hold times are a few instructions; queries run
  // entirely outside the lock on the pinned view.
  mutable std::mutex slot_mutex_;
  std::shared_ptr<const detail::ServingView> current_;  ///< guarded by slot_mutex_
  SubscriptionId subscription_ = 0;
  std::uint64_t publishes_ = 0;  ///< host thread only
  std::atomic<int> published_epoch_{0};
  std::atomic<double> published_time_{0.0};
  mutable std::mutex retired_mutex_;
  std::vector<Retired> retired_;  ///< guarded by retired_mutex_
};

}  // namespace egoist::host
