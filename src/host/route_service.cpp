#include "host/route_service.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

namespace egoist::host {

namespace detail {

ServingView::ServingView(WiringSnapshot snapshot, std::uint64_t seq,
                         std::size_t max_cached_sources, bool seal,
                         std::shared_ptr<ServiceCounters> counters)
    : snapshot_(std::move(snapshot)),
      seq_(seq),
      max_cached_sources_(max_cached_sources),
      sealed_(seal),
      counters_(std::move(counters)),
      rows_(snapshot_.size()) {
  if (sealed_) seal_ = snapshot_.payload_checksum();
}

ServingView::~ServingView() {
  for (auto& slot : rows_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

SourceRow ServingView::build_row(NodeId src) const {
  SourceRow row;
  row.tree = graph::dijkstra(snapshot_.announced_graph(), src);
  const std::size_t n = row.tree.dist.size();
  row.first_hop.assign(n, -1);
  // first_hop[v] = the node right after src on a shortest path to v.
  // Parent chains are memoized: each node is resolved once, so the whole
  // pass is O(n).
  std::vector<NodeId> chain;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = static_cast<NodeId>(i);
    if (v == src || row.tree.dist[i] == graph::kUnreachable) continue;
    if (row.first_hop[i] != -1) continue;
    chain.clear();
    NodeId cur = v;
    while (row.first_hop[static_cast<std::size_t>(cur)] == -1 &&
           row.tree.parent[static_cast<std::size_t>(cur)] != src) {
      chain.push_back(cur);
      cur = row.tree.parent[static_cast<std::size_t>(cur)];
    }
    const NodeId hop =
        row.first_hop[static_cast<std::size_t>(cur)] != -1
            ? row.first_hop[static_cast<std::size_t>(cur)]
            : cur;  // parent[cur] == src: cur is the first hop itself
    row.first_hop[static_cast<std::size_t>(cur)] = hop;
    for (const NodeId u : chain) {
      row.first_hop[static_cast<std::size_t>(u)] = hop;
    }
  }
  return row;
}

const SourceRow* ServingView::row(NodeId src) const {
  auto& slot = rows_[static_cast<std::size_t>(src)];
  if (const SourceRow* existing = slot.load(std::memory_order_acquire)) {
    return existing;
  }
  // Soft cap: concurrent first-time builders may overshoot by a thread or
  // two, which only costs a few extra cached rows.
  if (cached_rows_.load(std::memory_order_relaxed) >= max_cached_sources_) {
    return nullptr;
  }
  auto built = std::make_unique<SourceRow>(build_row(src));
  const SourceRow* expected = nullptr;
  if (slot.compare_exchange_strong(expected, built.get(),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    cached_rows_.fetch_add(1, std::memory_order_relaxed);
    counters_->rows_built.fetch_add(1, std::memory_order_relaxed);
    return built.release();
  }
  // Another reader published the same row first; ours is discarded.
  counters_->rows_discarded.fetch_add(1, std::memory_order_relaxed);
  return expected;
}

bool ServingView::verify_seal() const {
  return !sealed_ || snapshot_.payload_checksum() == seal_;
}

}  // namespace detail

int ServedSnapshot::epoch() const { return snapshot().epoch(); }

std::uint64_t ServedSnapshot::publish_seq() const {
  if (!view_) throw std::logic_error("empty ServedSnapshot");
  return view_->seq();
}

const WiringSnapshot& ServedSnapshot::snapshot() const {
  if (!view_) throw std::logic_error("empty ServedSnapshot");
  return view_->snapshot();
}

void ServedSnapshot::note_query(
    std::atomic<std::uint64_t> detail::ServiceCounters::*kind) const {
  ((*counters_).*kind).fetch_add(1, std::memory_order_relaxed);
  if (view_->seq() != counters_->latest_seq.load(std::memory_order_relaxed)) {
    counters_->stale_served.fetch_add(1, std::memory_order_relaxed);
  }
}

RouteAnswer ServedSnapshot::route(NodeId src, NodeId dst) const {
  const auto& snap = snapshot();
  note_query(&detail::ServiceCounters::queries_route);
  RouteAnswer answer;
  answer.epoch = snap.epoch();
  answer.publish_seq = view_->seq();
  // Evaluate both: is_online range-checks, and an out-of-range dst must
  // throw even when src is offline.
  const bool src_online = snap.is_online(src);
  const bool dst_online = snap.is_online(dst);
  if (!src_online || !dst_online) return answer;
  if (src == dst) {
    answer.reachable = true;
    answer.next_hop = src;
    answer.cost = 0.0;
    return answer;
  }
  const auto fill = [&](const detail::SourceRow& row) {
    const double cost = row.tree.dist[static_cast<std::size_t>(dst)];
    if (cost == graph::kUnreachable) return;
    answer.reachable = true;
    answer.cost = cost;
    answer.next_hop = row.first_hop[static_cast<std::size_t>(dst)];
  };
  if (const detail::SourceRow* row = view_->row(src)) {
    fill(*row);
  } else {
    counters_->uncached_queries.fetch_add(1, std::memory_order_relaxed);
    fill(view_->build_row(src));
  }
  return answer;
}

PathAnswer ServedSnapshot::path(NodeId src, NodeId dst) const {
  const auto& snap = snapshot();
  note_query(&detail::ServiceCounters::queries_path);
  PathAnswer answer;
  answer.epoch = snap.epoch();
  answer.publish_seq = view_->seq();
  const bool src_online = snap.is_online(src);
  const bool dst_online = snap.is_online(dst);
  if (!src_online || !dst_online) return answer;
  if (src == dst) {
    answer.reachable = true;
    answer.nodes = {src};
    answer.cost = 0.0;
    return answer;
  }
  const auto fill = [&](const detail::SourceRow& row) {
    const double cost = row.tree.dist[static_cast<std::size_t>(dst)];
    if (cost == graph::kUnreachable) return;
    answer.reachable = true;
    answer.cost = cost;
    answer.nodes = graph::extract_path(row.tree, src, dst);
  };
  if (const detail::SourceRow* row = view_->row(src)) {
    fill(*row);
  } else {
    counters_->uncached_queries.fetch_add(1, std::memory_order_relaxed);
    fill(view_->build_row(src));
  }
  return answer;
}

double ServedSnapshot::score(NodeId node) const {
  const auto& snap = snapshot();
  note_query(&detail::ServiceCounters::queries_score);
  return snap.node_cost(node);
}

RouteService::RouteService(OverlayHost& host, OverlayHandle overlay)
    : RouteService(host, overlay, Options{}) {}

RouteService::RouteService(OverlayHost& host, OverlayHandle overlay,
                           Options options)
    : host_(&host),
      overlay_(overlay),
      options_(options),
      counters_(std::make_shared<detail::ServiceCounters>()) {
  // Publish before subscribing: acquire() must be valid the moment the
  // constructor returns, even if no epoch ever completes.
  publish();
  subscription_ = host_->on_epoch_end(
      overlay_, [this](const EpochEvent&) { publish(); });
}

RouteService::~RouteService() {
  // The overlay may already be retired (its subscriptions dropped with
  // it); unsubscribing an unknown id is a no-op.
  host_->unsubscribe(subscription_);
  // Retire the current view and sweep what has drained. Anything still
  // pinned by a live ServedSnapshot stays alive through its shared_ptr;
  // the final seal check for those is forfeited (there is no service left
  // to run it).
  std::shared_ptr<const detail::ServingView> last;
  {
    std::lock_guard<std::mutex> lock(slot_mutex_);
    last = std::move(current_);
  }
  if (last) {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    retired_.push_back({std::move(last)});
  }
  reclaim_impl(/*nothrow=*/true);
}

void RouteService::publish() {
  auto view = std::make_shared<const detail::ServingView>(
      host_->snapshot(overlay_), ++publishes_, options_.max_cached_sources,
      options_.verify_seals, counters_);
  published_epoch_.store(view->snapshot().epoch(), std::memory_order_relaxed);
  published_time_.store(view->snapshot().time(), std::memory_order_relaxed);
  std::shared_ptr<const detail::ServingView> old;
  {
    std::lock_guard<std::mutex> lock(slot_mutex_);
    old = std::exchange(current_, view);
  }
  // Readers that acquired `old` just before the swap observe latest_seq
  // updating underneath them — that is exactly the staleness telemetry.
  counters_->latest_seq.store(view->seq(), std::memory_order_release);
  if (old) {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    retired_.push_back({std::move(old)});
  }
  reclaim_impl(/*nothrow=*/false);
}

std::size_t RouteService::reclaim() { return reclaim_impl(/*nothrow=*/false); }

std::size_t RouteService::reclaim_impl(bool nothrow) {
  // Grace period: a view leaves the retired list only when its refcount
  // has drained to the list's own reference. Once off current_, no reader
  // can create a NEW reference (acquire() only sees current_), so
  // use_count() == 1 is stable and means every in-flight reader released.
  std::vector<std::shared_ptr<const detail::ServingView>> drained;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    for (auto it = retired_.begin(); it != retired_.end();) {
      if (it->view.use_count() == 1) {
        drained.push_back(std::move(it->view));
        it = retired_.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::size_t freed = 0;
  bool violated = false;
  for (const auto& view : drained) {
    if (!view->verify_seal()) {
      counters_->seal_violations.fetch_add(1, std::memory_order_relaxed);
      violated = true;
    }
    ++freed;
  }
  drained.clear();  // the actual frees
  if (violated && !nothrow) {
    throw std::logic_error(
        "RouteService: WiringSnapshot payload mutated after publication "
        "(seal checksum mismatch at reader release)");
  }
  return freed;
}

ServedSnapshot RouteService::acquire() const {
  std::shared_ptr<const detail::ServingView> view;
  {
    std::lock_guard<std::mutex> lock(slot_mutex_);
    view = current_;
  }
  return ServedSnapshot(std::move(view), counters_);
}

bool RouteService::drain(double timeout_s) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    reclaim_impl(/*nothrow=*/false);
    bool quiesced = retired_pending() == 0;
    if (quiesced) {
      // The published slot must be the snapshot's only owner: any extra
      // use_count is a live ServedSnapshot still pinning the current view.
      // Once readers stop acquiring, the count is monotone non-increasing,
      // so observing 1 under the lock is a stable quiesce proof.
      std::lock_guard<std::mutex> lock(slot_mutex_);
      quiesced = current_.use_count() == 1;
    }
    if (quiesced) return true;
    if (timeout_s >= 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() > timeout_s) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

std::size_t RouteService::retired_pending() const {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  return retired_.size();
}

RouteService::Stats RouteService::stats() const {
  Stats s;
  s.publishes = counters_->latest_seq.load(std::memory_order_relaxed);
  s.swaps = s.publishes > 0 ? s.publishes - 1 : 0;
  s.queries_route = counters_->queries_route.load(std::memory_order_relaxed);
  s.queries_path = counters_->queries_path.load(std::memory_order_relaxed);
  s.queries_score = counters_->queries_score.load(std::memory_order_relaxed);
  s.stale_served = counters_->stale_served.load(std::memory_order_relaxed);
  s.rows_built = counters_->rows_built.load(std::memory_order_relaxed);
  s.rows_discarded =
      counters_->rows_discarded.load(std::memory_order_relaxed);
  s.uncached_queries =
      counters_->uncached_queries.load(std::memory_order_relaxed);
  s.seal_violations =
      counters_->seal_violations.load(std::memory_order_relaxed);
  s.retired_pending = retired_pending();
  s.published_epoch = published_epoch_.load(std::memory_order_relaxed);
  s.published_time = published_time_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace egoist::host
