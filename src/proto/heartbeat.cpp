#include "proto/heartbeat.hpp"

#include <stdexcept>

namespace egoist::proto {

HeartbeatMonitor::HeartbeatMonitor(sim::Simulator& sim, double interval,
                                   int loss_threshold, AliveFn alive,
                                   FailureFn on_failure)
    : sim_(sim),
      interval_(interval),
      loss_threshold_(loss_threshold),
      alive_(std::move(alive)),
      on_failure_(std::move(on_failure)),
      task_(sim, sim.now() + interval, interval, [this](double) { tick(); }) {
  if (interval <= 0.0) throw std::invalid_argument("interval must be positive");
  if (loss_threshold < 1) throw std::invalid_argument("threshold must be >= 1");
  if (!alive_ || !on_failure_) throw std::invalid_argument("callbacks required");
}

void HeartbeatMonitor::watch(graph::NodeId peer) { misses_[peer] = 0; }

void HeartbeatMonitor::unwatch(graph::NodeId peer) { misses_.erase(peer); }

void HeartbeatMonitor::tick() {
  // Collect failures first: the failure callback may watch/unwatch peers.
  std::vector<graph::NodeId> failed;
  for (auto& [peer, misses] : misses_) {
    ++probes_sent_;
    if (alive_(peer)) {
      misses = 0;
      continue;
    }
    if (++misses >= loss_threshold_) failed.push_back(peer);
  }
  for (graph::NodeId peer : failed) {
    misses_.erase(peer);
    on_failure_(peer);
  }
}

}  // namespace egoist::proto
