// Overlay link-state routing protocol (§3.1, §4.3).
//
// Every node periodically broadcasts an announcement carrying its ID, its
// neighbors' IDs and the measured costs of its k established links; floods
// propagate over the overlay edges themselves. Each node keeps a topology
// database (latest announcement per origin, sequence-numbered) from which
// it reconstructs the residual overlay graph it optimizes against.
//
// Message sizes follow §4.3: 192 bits of header/padding plus 32 bits per
// neighbor entry; the protocol counts every transmitted bit so the
// overhead bench can compare measured load against the paper's closed-form
// (192 + 32 k) / T_announce bps per node.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/simulator.hpp"

namespace egoist::proto {

using graph::NodeId;

/// One directed overlay link as carried in an announcement.
struct LinkEntry {
  NodeId neighbor = -1;
  double cost = 0.0;
};

/// A link-state announcement (LSA).
struct Announcement {
  NodeId origin = -1;
  std::uint64_t seq = 0;
  std::vector<LinkEntry> links;

  /// Wire size in bits (§4.3): header + per-neighbor payload.
  double size_bits() const;
};

/// Per-node topology database: the freshest announcement per origin.
class TopologyDb {
 public:
  /// Returns true when the announcement was fresher and got stored.
  bool update(const Announcement& lsa, double now);

  /// Latest accepted announcement from `origin`, if any.
  const Announcement* lookup(NodeId origin) const;

  /// Time the stored announcement of `origin` was accepted.
  std::optional<double> accepted_at(NodeId origin) const;

  /// Drops announcements accepted before `cutoff` (LSA aging) and returns
  /// how many were purged.
  std::size_t purge_older_than(double cutoff);

  /// Removes a specific origin's state (e.g. on learning the node left).
  bool erase(NodeId origin);

  /// Reconstructs the overlay graph this database describes, over
  /// `node_count` ids. Nodes without a stored announcement contribute no
  /// out-edges but still exist (they may be link targets).
  graph::Digraph build_graph(std::size_t node_count) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Announcement lsa;
    double accepted_at;
  };
  std::map<NodeId, Entry> entries_;
};

/// Simulated deployment of the flooding protocol across all overlay nodes.
///
/// Delivery of a flooded message from u to v takes `propagation(u, v)`
/// seconds of virtual time. Nodes marked down neither forward nor accept.
class LinkStateProtocol {
 public:
  using PropagationFn = std::function<double(NodeId from, NodeId to)>;

  LinkStateProtocol(sim::Simulator& sim, std::size_t n, PropagationFn propagation);

  std::size_t node_count() const { return nodes_.size(); }

  /// Updates a node's current wiring; takes effect at its next originate().
  void set_links(NodeId node, std::vector<LinkEntry> links);

  /// Originates a fresh LSA from `node` and starts flooding it.
  void originate(NodeId node);

  /// Node liveness (churn): down nodes do not originate, forward or accept.
  void set_up(NodeId node, bool up);
  bool is_up(NodeId node) const;

  /// The node's current topology view.
  const TopologyDb& database(NodeId node) const;
  TopologyDb& mutable_database(NodeId node);

  /// Overlay graph as seen by `viewer`.
  graph::Digraph view(NodeId viewer) const;

  /// Cumulative protocol traffic (all nodes).
  std::uint64_t messages_sent() const { return messages_sent_; }
  double bits_sent() const { return bits_sent_; }

  /// Messages accepted as fresh (useful to verify flooding terminates).
  std::uint64_t messages_accepted() const { return messages_accepted_; }

 private:
  struct NodeState {
    std::vector<LinkEntry> links;
    std::uint64_t next_seq = 1;
    bool up = true;
    TopologyDb db;
  };

  void check(NodeId node) const;
  void deliver(NodeId from, NodeId to, const Announcement& lsa);
  void forward(NodeId at, NodeId except, const Announcement& lsa);

  sim::Simulator& sim_;
  PropagationFn propagation_;
  std::vector<NodeState> nodes_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_accepted_ = 0;
  double bits_sent_ = 0.0;
};

}  // namespace egoist::proto
