#include "proto/link_state.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/measurement.hpp"

namespace egoist::proto {

double Announcement::size_bits() const {
  return net::OverheadConstants::kLsaHeaderBits +
         net::OverheadConstants::kLsaPerNeighborBits *
             static_cast<double>(links.size());
}

bool TopologyDb::update(const Announcement& lsa, double now) {
  const auto it = entries_.find(lsa.origin);
  if (it != entries_.end() && it->second.lsa.seq >= lsa.seq) return false;
  entries_[lsa.origin] = Entry{lsa, now};
  return true;
}

const Announcement* TopologyDb::lookup(NodeId origin) const {
  const auto it = entries_.find(origin);
  return it == entries_.end() ? nullptr : &it->second.lsa;
}

std::optional<double> TopologyDb::accepted_at(NodeId origin) const {
  const auto it = entries_.find(origin);
  if (it == entries_.end()) return std::nullopt;
  return it->second.accepted_at;
}

std::size_t TopologyDb::purge_older_than(double cutoff) {
  std::size_t purged = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.accepted_at < cutoff) {
      it = entries_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

bool TopologyDb::erase(NodeId origin) { return entries_.erase(origin) > 0; }

graph::Digraph TopologyDb::build_graph(std::size_t node_count) const {
  graph::Digraph g(node_count);
  for (const auto& [origin, entry] : entries_) {
    if (origin < 0 || static_cast<std::size_t>(origin) >= node_count) continue;
    for (const LinkEntry& link : entry.lsa.links) {
      if (link.neighbor < 0 ||
          static_cast<std::size_t>(link.neighbor) >= node_count ||
          link.neighbor == origin) {
        continue;
      }
      g.set_edge(origin, link.neighbor, link.cost);
    }
  }
  return g;
}

LinkStateProtocol::LinkStateProtocol(sim::Simulator& sim, std::size_t n,
                                     PropagationFn propagation)
    : sim_(sim), propagation_(std::move(propagation)), nodes_(n) {
  if (n == 0) throw std::invalid_argument("need >= 1 node");
  if (!propagation_) throw std::invalid_argument("propagation fn required");
}

void LinkStateProtocol::check(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= nodes_.size()) {
    throw std::out_of_range("node id out of range");
  }
}

void LinkStateProtocol::set_links(NodeId node, std::vector<LinkEntry> links) {
  check(node);
  for (const LinkEntry& l : links) {
    check(l.neighbor);
    if (l.neighbor == node) throw std::invalid_argument("self link");
  }
  nodes_[static_cast<std::size_t>(node)].links = std::move(links);
}

void LinkStateProtocol::set_up(NodeId node, bool up) {
  check(node);
  nodes_[static_cast<std::size_t>(node)].up = up;
}

bool LinkStateProtocol::is_up(NodeId node) const {
  check(node);
  return nodes_[static_cast<std::size_t>(node)].up;
}

const TopologyDb& LinkStateProtocol::database(NodeId node) const {
  check(node);
  return nodes_[static_cast<std::size_t>(node)].db;
}

TopologyDb& LinkStateProtocol::mutable_database(NodeId node) {
  check(node);
  return nodes_[static_cast<std::size_t>(node)].db;
}

graph::Digraph LinkStateProtocol::view(NodeId viewer) const {
  check(viewer);
  return nodes_[static_cast<std::size_t>(viewer)].db.build_graph(nodes_.size());
}

void LinkStateProtocol::originate(NodeId node) {
  check(node);
  NodeState& state = nodes_[static_cast<std::size_t>(node)];
  if (!state.up) return;
  Announcement lsa;
  lsa.origin = node;
  lsa.seq = state.next_seq++;
  lsa.links = state.links;
  // A node trivially accepts its own announcement, then floods it.
  state.db.update(lsa, sim_.now());
  ++messages_accepted_;
  forward(node, /*except=*/node, lsa);
}

void LinkStateProtocol::forward(NodeId at, NodeId except, const Announcement& lsa) {
  // Overlay links are directed for *cost* purposes, but the underlying
  // transport connections are bidirectional, so announcements flood both to
  // the node's chosen neighbors and to the nodes that chose it — otherwise
  // a node whose upstreams all re-wire away would stop learning topology.
  std::vector<NodeId> peers;
  for (const LinkEntry& link : nodes_[static_cast<std::size_t>(at)].links) {
    peers.push_back(link.neighbor);
  }
  for (std::size_t u = 0; u < nodes_.size(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    if (uid == at) continue;
    for (const LinkEntry& link : nodes_[u].links) {
      if (link.neighbor == at) {
        peers.push_back(uid);
        break;
      }
    }
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());

  for (const NodeId to : peers) {
    if (to == except) continue;
    ++messages_sent_;
    bits_sent_ += lsa.size_bits();
    const double delay = propagation_(at, to);
    if (delay < 0.0) throw std::logic_error("negative propagation delay");
    // Copy the LSA into the in-flight message.
    sim_.schedule_in(delay, [this, at, to, lsa] { deliver(at, to, lsa); });
  }
}

void LinkStateProtocol::deliver(NodeId from, NodeId to, const Announcement& lsa) {
  NodeState& state = nodes_[static_cast<std::size_t>(to)];
  if (!state.up) return;  // dropped at a down node
  if (!state.db.update(lsa, sim_.now())) return;  // duplicate or stale
  ++messages_accepted_;
  forward(to, from, lsa);
}

}  // namespace egoist::proto
