// Heartbeat monitoring for donated connectivity links (§3.3).
//
// HybridBR donates k2 links to a connectivity backbone that must heal
// quickly, so those links are "monitored aggressively ... through the use
// of frequent heartbeat signaling". A HeartbeatMonitor probes a set of
// monitored peers every `interval`; when a peer misses `loss_threshold`
// consecutive probes the failure callback fires (the overlay then splices
// the backbone cycle around the dead node).
//
// Probe cost is accounted like ping (320-bit request + reply), feeding the
// overhead bench.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/simulator.hpp"

namespace egoist::proto {

class HeartbeatMonitor {
 public:
  using AliveFn = std::function<bool(graph::NodeId peer)>;
  using FailureFn = std::function<void(graph::NodeId peer)>;

  /// interval: seconds between probes; loss_threshold: consecutive missed
  /// probes before declaring failure.
  HeartbeatMonitor(sim::Simulator& sim, double interval, int loss_threshold,
                   AliveFn alive, FailureFn on_failure);

  /// Starts monitoring `peer` (idempotent; resets its miss counter).
  void watch(graph::NodeId peer);

  /// Stops monitoring `peer`.
  void unwatch(graph::NodeId peer);

  std::size_t watched_count() const { return misses_.size(); }

  /// Worst-case detection latency for the configured parameters.
  double detection_time() const { return interval_ * loss_threshold_; }

  /// Probes issued so far (for overhead accounting; each probe is a
  /// request/reply pair like ping).
  std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  void tick();

  sim::Simulator& sim_;
  double interval_;
  int loss_threshold_;
  AliveFn alive_;
  FailureFn on_failure_;
  std::map<graph::NodeId, int> misses_;
  sim::PeriodicTask task_;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace egoist::proto
