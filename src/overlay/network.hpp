// EgoistNetwork — one overlay (one policy, one metric) deployed on a shared
// Environment: the in-silico equivalent of one of the paper's concurrent
// per-policy PlanetLab agents.
//
// The network tracks, per node, the current wiring; an "announced" overlay
// graph whose edge weights are the costs nodes advertise through the
// link-state protocol (free riders inflate theirs, §3.4); and the node's
// online/offline state (churn, §4.4). Each wiring epoch every online node
// re-measures its candidate links, rebuilds its residual view from the
// announced graph and re-evaluates its wiring under its policy — adopting a
// new one when the policy says so (for BR(eps): when the improvement
// exceeds eps, §4.3).
//
// Scoring always uses the *true* instantaneous substrate quantities, never
// the announced ones, so measurement error and lying are visible in the
// results exactly as they were on PlanetLab.
#pragma once

#include <cstdint>
#include <vector>

#include "core/objective.hpp"
#include "graph/digraph.hpp"
#include "overlay/config.hpp"
#include "overlay/environment.hpp"
#include "util/rng.hpp"

namespace egoist::overlay {

using graph::NodeId;

class EgoistNetwork {
 public:
  /// All nodes join (in id order) at construction; use set_online to model
  /// churn afterwards.
  EgoistNetwork(Environment& env, OverlayConfig config);

  std::size_t size() const { return online_.size(); }
  const OverlayConfig& config() const { return config_; }

  /// --- Membership (churn hooks) ---
  void set_online(int node, bool online);
  bool is_online(int node) const;
  std::size_t online_count() const;
  std::vector<NodeId> online_nodes() const;

  /// --- Protocol dynamics ---
  /// One wiring epoch: every online node re-evaluates its wiring, in a
  /// freshly shuffled order (nodes are not synchronized, §4.2). Returns the
  /// number of nodes that changed their wiring this epoch.
  int run_epoch();

  /// Evaluates a single node's wiring (the staggered, unsynchronized mode:
  /// on average one node re-evaluates every T/n seconds). Returns true when
  /// the node re-wired. No-op (false) for offline nodes.
  bool run_node(int node);

  int epochs_run() const { return epochs_; }
  std::uint64_t total_rewirings() const { return total_rewirings_; }

  /// Current wiring (chosen neighbors, including donated links) of a node.
  const std::vector<NodeId>& wiring(int node) const;

  /// HybridBR's donated backbone links of a node (empty for other policies).
  const std::vector<NodeId>& donated(int node) const;

  /// --- Graph views ---
  /// Wiring with announced costs (what the link-state protocol carries).
  const graph::Digraph& announced_graph() const { return announced_; }

  /// Wiring with true, instantaneous metric costs (delay ms / node load /
  /// negative-free bandwidth depending on the metric).
  graph::Digraph true_cost_graph() const;

  /// Wiring with true available bandwidth as weights (for the multipath and
  /// disjoint-path applications; valid under any metric).
  graph::Digraph true_bandwidth_graph() const;

  /// --- Scores (computed on true costs, online nodes only) ---
  /// Uniform routing cost per online node (delay/load metrics).
  std::vector<double> node_costs() const;

  /// Efficiency (mean of 1/d, 0 when disconnected) per online node.
  std::vector<double> node_efficiencies() const;

  /// Mean bottleneck bandwidth to all destinations per online node.
  std::vector<double> node_bandwidth_scores() const;

 private:
  /// Bootstrap wiring for a node joining (or re-joining) the overlay.
  void join(int node);

  /// Re-evaluates one node's wiring; returns true when it re-wired.
  bool evaluate_node(int node);

  /// Measures the direct metric cost/value from `node` to every online
  /// other (ping / coords / own load / bandwidth probe).
  std::vector<double> measure_direct(int node);

  /// Donated backbone links for `node`: +/- ring offsets over the online
  /// set (k2/2 bidirectional cycles, §3.3).
  std::vector<NodeId> backbone_links(int node) const;

  /// Rebuilds donated links of every online node (called on membership
  /// changes: the backbone is monitored aggressively and spliced
  /// immediately, unlike lazy BR links).
  void refresh_backbone();

  /// Installs a wiring and re-announces the node's links.
  void apply_wiring(int node, std::vector<NodeId> wiring,
                    const std::vector<double>& direct);

  /// Announced cost of link node -> v given its measured value.
  double announced_cost(int node, double measured) const;

  /// The graph a node reasons over: the announced overlay, optionally with
  /// audited costs (announcements that exceed audit_tolerance x the
  /// coordinate estimate are replaced by the estimate, §3.4).
  graph::Digraph decision_graph() const;

  /// Per-policy choice of new wiring. `direct` comes from measure_direct.
  std::vector<NodeId> choose_wiring(int node, const std::vector<double>& direct);

  bool is_cheater(int node) const;

  /// Node `node`'s routing preference over all destinations (normalized
  /// over the currently online targets; offline entries zeroed).
  std::vector<double> preference_of(int node) const;

  Environment& env_;
  OverlayConfig config_;
  util::Rng rng_;
  std::vector<std::vector<double>> base_preference_;  ///< unnormalized Zipf weights
  std::vector<bool> online_;
  std::vector<std::vector<NodeId>> wiring_;
  std::vector<std::vector<NodeId>> donated_;
  graph::Digraph announced_;
  int epochs_ = 0;
  std::uint64_t total_rewirings_ = 0;
};

}  // namespace egoist::overlay
