// EgoistNetwork — one overlay (one policy, one metric) deployed on a shared
// Environment: the in-silico equivalent of one of the paper's concurrent
// per-policy PlanetLab agents.
//
// The network tracks, per node, the current wiring; an "announced" overlay
// graph whose edge weights are the costs nodes advertise through the
// link-state protocol (free riders inflate theirs, §3.4); and the node's
// online/offline state (churn, §4.4). Each wiring epoch every online node
// re-measures its candidate links, rebuilds its residual view from the
// announced graph and re-evaluates its wiring under its policy — adopting a
// new one when the policy says so (for BR(eps): when the improvement
// exceeds eps, §4.3).
//
// Scoring always uses the *true* instantaneous substrate quantities, never
// the announced ones, so measurement error and lying are visible in the
// results exactly as they were on PlanetLab.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/objective.hpp"
#include "graph/digraph.hpp"
#include "graph/path_engine.hpp"
#include "overlay/config.hpp"
#include "overlay/dirty_tracker.hpp"
#include "overlay/environment.hpp"
#include "overlay/node_store.hpp"
#include "util/rng.hpp"

namespace egoist::overlay {

using graph::NodeId;

class EpochEngine;
struct EpochWorkspace;

/// Observation hooks the hosting layer installs to mirror engine activity
/// as typed events (host::OverlayHost's subscription API). Both optional;
/// neither influences the trajectory — the engine behaves identically with
/// or without observers.
struct NetworkHooks {
  /// A node adopted a new wiring (counted in total_rewirings). Backbone
  /// splices and announcement refreshes are maintenance, not re-wirings,
  /// and do not fire this.
  std::function<void(int node, const std::vector<NodeId>& old_wiring,
                     const std::vector<NodeId>& new_wiring)>
      on_rewire;
  /// A node went online/offline (fired before any resulting backbone
  /// splice or immediate repair re-wirings).
  std::function<void(int node, bool online)> on_membership;
};

class EgoistNetwork {
 public:
  /// All nodes join (in id order) at construction; use set_online to model
  /// churn afterwards.
  EgoistNetwork(Environment& env, OverlayConfig config);
  ~EgoistNetwork();

  std::size_t size() const { return store_.size(); }
  const OverlayConfig& config() const { return config_; }

  /// --- Membership (churn hooks) ---
  void set_online(int node, bool online);
  bool is_online(int node) const;
  std::size_t online_count() const;
  std::vector<NodeId> online_nodes() const;

  /// --- Protocol dynamics ---
  /// One wiring epoch. With config.epoch_workers == 0 (the default), every
  /// online node re-evaluates its wiring in a freshly shuffled order, each
  /// seeing the re-wirings of the nodes before it (nodes are not
  /// synchronized, §4.2). With epoch_workers >= 1 and a BR/HybridBR policy,
  /// the epoch runs as the deterministic parallel pipeline instead:
  /// snapshot (sequential — all measurements and RNG draws, ascending node
  /// order), evaluate (parallel — every node best-responds to the immutable
  /// epoch-start state), merge (sequential — adopted re-wirings applied and
  /// hooks fired in ascending node order). The pipeline trajectory is
  /// bit-identical at any worker count. Returns the number of nodes that
  /// changed their wiring this epoch.
  int run_epoch();

  /// Evaluates a single node's wiring (the staggered, unsynchronized mode:
  /// on average one node re-evaluates every T/n seconds). Returns true when
  /// the node re-wired. No-op (false) for offline nodes.
  bool run_node(int node);

  int epochs_run() const { return epochs_; }
  std::uint64_t total_rewirings() const { return total_rewirings_; }

  /// --- Incremental-epoch telemetry (meaningful in every mode; with
  /// incremental off, skipped is always 0) ---
  /// Node evaluations actually performed by run_epoch / run_node.
  std::uint64_t total_evaluations() const { return total_evaluations_; }
  /// Online-node turns skipped because the node's dirty bit was clear (and,
  /// in tolerance mode, its drift probe stayed under the threshold).
  std::uint64_t total_skipped_evals() const { return total_skipped_evals_; }
  /// Nodes currently marked for re-evaluation (n with incremental off —
  /// the tracker then just mirrors "everyone always re-evaluates").
  std::size_t dirty_count() const {
    return config_.incremental ? dirty_.dirty_count() : store_.size();
  }

  /// Current wiring (chosen neighbors, including donated links) of a node.
  /// A view into the SoA node store; invalidated by the next mutation of
  /// the node's row (epoch, churn, backbone splice).
  std::span<const NodeId> wiring(int node) const;

  /// HybridBR's donated backbone links of a node (empty for other
  /// policies). Same view semantics as wiring().
  std::span<const NodeId> donated(int node) const;

  /// --- Graph views ---
  /// Wiring with announced costs (what the link-state protocol carries).
  const graph::Digraph& announced_graph() const { return announced_; }

  /// Wiring with true, instantaneous metric costs (delay ms / node load /
  /// negative-free bandwidth depending on the metric).
  graph::Digraph true_cost_graph() const;

  /// Wiring with true available bandwidth as weights (for the multipath and
  /// disjoint-path applications; valid under any metric).
  graph::Digraph true_bandwidth_graph() const;

  /// --- Scores (computed on true costs, online nodes only) ---
  /// Uniform routing cost per online node (delay/load metrics).
  std::vector<double> node_costs() const;

  /// Efficiency (mean of 1/d, 0 when disconnected) per online node.
  std::vector<double> node_efficiencies() const;

  /// Mean bottleneck bandwidth to all destinations per online node.
  std::vector<double> node_bandwidth_scores() const;

  /// Per-node normalized routing preferences for scoring: empty when
  /// preferences are uniform (zipf exponent 0), otherwise indexed by node
  /// id with entries populated for the online nodes. This is the
  /// `preferences` input of overlay/scoring.hpp, also captured by
  /// host::WiringSnapshot so detached reads score identically.
  std::vector<std::vector<double>> score_preferences() const;

  /// Installs (or clears, with default-constructed hooks) the observers.
  void set_hooks(NetworkHooks hooks) { hooks_ = std::move(hooks); }

 private:
  /// Bootstrap wiring for a node joining (or re-joining) the overlay.
  void join(int node);

  /// Re-evaluates one node's wiring; returns true when it re-wired.
  bool evaluate_node(int node);

  /// Measures the direct metric cost/value from `node` to every online
  /// other (ping / coords / own load / bandwidth probe).
  std::vector<double> measure_direct(int node);

  /// Donated backbone links for `node`: +/- ring offsets over the online
  /// set (k2/2 bidirectional cycles, §3.3).
  std::vector<NodeId> backbone_links(int node) const;

  /// Rebuilds donated links of every online node (called on membership
  /// changes: the backbone is monitored aggressively and spliced
  /// immediately, unlike lazy BR links).
  void refresh_backbone();

  /// Installs a wiring and re-announces the node's links. `direct` is
  /// indexed by node id and must cover every wiring entry.
  void apply_wiring(int node, std::vector<NodeId> wiring,
                    std::span<const double> direct);

  /// Announced cost of link node -> v given its measured value.
  double announced_cost(int node, double measured) const;

  /// The graph a node reasons over: the announced overlay, optionally with
  /// audited costs (announcements that exceed audit_tolerance x the
  /// coordinate estimate are replaced by the estimate, §3.4). Returns a
  /// reference to announced_ when audits are off (the common case — no
  /// per-node graph copy), or to the member audit buffer otherwise.
  const graph::Digraph& decision_graph();

  /// The "M >> n" fold penalty for the current decision graph: the value
  /// cached for this epoch when inside run_epoch (computed once instead of
  /// rescanning every edge once per node), a fresh scan otherwise.
  double unreachable_penalty(const graph::Digraph& decision) const;

  /// Per-policy choice of new wiring. `direct` comes from measure_direct.
  std::vector<NodeId> choose_wiring(int node, const std::vector<double>& direct);

  /// --- §5 scale mode (config_.br_sample > 0) ---
  bool scale_mode() const { return config_.br_sample > 0; }

  /// Candidate pool for a scale-mode evaluation: the node's current wiring
  /// and donated links plus a fresh random sample of br_sample others.
  std::vector<NodeId> sample_pool(int node);

  /// Direct measurement restricted to `pool` (the only pairs the node
  /// probes — what keeps the sparse measurement plane at O(probed pairs)).
  std::vector<double> measure_pool(int node, const std::vector<NodeId>& pool);

  /// (Re)computes the epoch-shared landmark state: samples br_landmarks
  /// online destinations and runs one reverse traversal of the announced
  /// graph per landmark (shortest for delay/load, widest for bandwidth).
  void refresh_landmarks();

  /// Scale-mode node evaluation (sampled candidates x landmark targets);
  /// same BR(eps) adoption rule and hooks as the dense path.
  bool evaluate_node_sampled(int node);

  /// Scale-mode bootstrap wiring: k closest/widest of a fresh sample.
  void join_sampled(int node);

  /// Builds the metric-appropriate residual objective over the decision
  /// graph — through the shared CSR engine or the legacy residual-copy
  /// path, per config — and runs the BR search. When `current_for_cost`
  /// is non-null, *current_cost receives that wiring's cost under the same
  /// objective (the BR(eps) adoption baseline).
  core::BestResponseResult run_best_response(
      int node, const std::vector<double>& direct, std::size_t free_k,
      const core::BestResponseOptions& options,
      const std::vector<NodeId>* current_for_cost, double* current_cost);

  bool is_cheater(int node) const;

  /// Node `node`'s routing preference over all destinations (normalized
  /// over the currently online targets; offline entries zeroed).
  std::vector<double> preference_of(int node) const;

  /// --- Deterministic parallel epoch pipeline (config_.epoch_workers >= 1,
  /// BR/HybridBR; see run_epoch) ---
  bool use_pipeline() const;
  int run_epoch_pipeline();

  /// The lazily built worker pool + per-worker workspaces (rebuilt when the
  /// knob changes).
  EpochEngine& epoch_engine();

  /// Evaluate-phase body: computes node v's best response against the epoch
  /// snapshot and writes its proposal slot. Runs concurrently for distinct
  /// nodes — reads only frozen state and `ws`, writes only v's disjoint
  /// EpochStore slot.
  void evaluate_proposal(NodeId v, EpochWorkspace& ws,
                         const graph::Digraph& decision, double penalty,
                         std::size_t base_free_k);

  /// --- Incremental dirty-set epochs (config_.incremental) ---
  /// The epoch-turn skip decision: the node's dirty bit, or — tolerance
  /// mode only — an O(k) drift probe of its own wiring links against the
  /// baseline captured at its last evaluation.
  bool node_needs_evaluation(int node);

  /// Post-announce marking, called from apply_wiring with the node's
  /// previous announced out-edge row: exact mode marks everyone on any
  /// delta; tolerance mode marks the announcer's holders plus the sources
  /// whose base-tree rows the engine's incremental patch invalidated.
  void note_announce(int node, std::span<const graph::Edge> old_row);

  /// Online nodes whose wiring or donated links contain `node` (the
  /// announced graph has no reverse index; rows are k-bounded so the scan
  /// is O(n * k)).
  void collect_holders(int node, std::vector<NodeId>& out) const;

  Environment& env_;
  OverlayConfig config_;
  NetworkHooks hooks_;
  util::Rng rng_;
  std::vector<std::vector<double>> base_preference_;  ///< unnormalized Zipf weights

  /// SoA component store for per-node overlay state (membership, wiring
  /// rows, donated rows) — flat slabs instead of one heap vector per node.
  NodeStore store_;

  /// Epoch-scoped planes of the parallel pipeline: the measurement
  /// snapshot (dense rows or scale-mode pools) and the proposal slots.
  EpochStore epoch_store_;

  /// Worker pool + workspaces for the evaluate phase (pipeline mode only).
  std::unique_ptr<EpochEngine> epoch_engine_;

  graph::Digraph announced_;

  /// Shared CSR path engine (PathBackend::kCsrEngine): re-snapshots the
  /// decision graph before each BR evaluation, reusing its flat buffers, so
  /// the residual all-pairs runs allocation-free. Each node's G_{-i} is an
  /// O(1) exclusion view over the snapshot instead of a graph copy.
  graph::PathEngine engine_;

  /// Residual-matrix scratch reused by every engine-backed objective (the
  /// objective borrows it for the duration of one evaluation) so the epoch
  /// loop performs no n^2 allocations.
  graph::DistanceMatrix residual_scratch_;

  /// Link-value scratch reused by every best_response() search.
  core::BestResponseScratch br_scratch_;

  /// Audited decision graph buffer (only populated when audits are on).
  graph::Digraph audited_;

  /// True while run_epoch keeps the engine synchronized with announced_:
  /// the engine is snapshotted once at the epoch boundary and then patched
  /// incrementally after each node re-announces (update_out_edges), so its
  /// shared base trees survive the whole sequential epoch. Off outside
  /// epochs (run_node, immediate re-wiring: per-call snapshots) and in
  /// audit mode (the audited decision graph is rebuilt per node).
  bool engine_synced_ = false;

  /// Per-epoch cache of core::default_unreachable_penalty over the decision
  /// graph: set for the duration of run_epoch, empty outside it (join and
  /// immediate-rewire paths compute a fresh value, as the seed did).
  std::optional<double> epoch_penalty_;

  /// Scale-mode landmark state: distance/bottleneck from every node to each
  /// landmark (n x L, epoch-shared), the landmark ids, and the id -> column
  /// map. Nodes decide on the announced graph as of the last refresh, like
  /// agents acting on the last flooded link state. A refresh serves one
  /// epoch-equivalent of evaluations: run_epoch refreshes at its boundary;
  /// the staggered/run_node path decrements `evals_left` and refreshes
  /// after online_count() evaluations, so both schedules recompute the L
  /// reverse traversals once per epoch, not once per node. Membership
  /// changes invalidate the state (landmarks may have left).
  struct LandmarkState {
    bool valid = false;
    std::size_t evals_left = 0;
    std::vector<NodeId> landmarks;
    std::vector<std::int32_t> column;  ///< node id -> column; -1 = none
    graph::DistanceMatrix dist;
  };
  LandmarkState landmark_state_;

  /// Per-node invalidation state for incremental epochs (only reset — and
  /// only consulted — when config_.incremental is on).
  DirtyTracker dirty_;
  std::vector<graph::Edge> old_row_scratch_;  ///< apply_wiring announce delta
  std::vector<NodeId> holder_scratch_;        ///< tolerance-mode marking
  std::vector<NodeId> drift_links_scratch_;   ///< drift-probe link list

  int epochs_ = 0;
  std::uint64_t total_rewirings_ = 0;
  std::uint64_t total_evaluations_ = 0;
  std::uint64_t total_skipped_evals_ = 0;
};

}  // namespace egoist::overlay
