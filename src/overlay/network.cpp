#include "overlay/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/residual.hpp"
#include "core/sampling.hpp"
#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "graph/mst.hpp"
#include "graph/shortest_path.hpp"
#include "graph/widest_path.hpp"
#include "overlay/epoch_engine.hpp"
#include "overlay/scoring.hpp"
#include "util/profiler.hpp"

namespace egoist::overlay {

namespace {

bool same_set(std::vector<NodeId> a, std::vector<NodeId> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

/// Per-node wiring capacity of the SoA store: the degree budget k, except
/// for the full mesh which wires to everyone.
std::size_t wiring_capacity(const OverlayConfig& config, std::size_t n) {
  const std::size_t max_degree = n > 0 ? n - 1 : 0;
  if (config.policy == Policy::kFullMesh) return max_degree;
  return std::min(config.k, max_degree);
}

std::size_t donated_capacity(const OverlayConfig& config, std::size_t n) {
  if (config.policy != Policy::kHybridBR) return 0;
  return std::min(config.donated_links, n);
}

}  // namespace

EgoistNetwork::EgoistNetwork(Environment& env, OverlayConfig config)
    : env_(env),
      config_(config),
      rng_(config.seed),
      store_(env.size(), wiring_capacity(config, env.size()),
             donated_capacity(config, env.size())),
      announced_(env.size()),
      audited_(0) {
  if (config_.k == 0 || config_.k >= env.size()) {
    throw std::invalid_argument("need 0 < k < n");
  }
  engine_.set_workers(config_.path_workers);  // throws on negative
  if (config_.epoch_workers < 0) {
    throw std::invalid_argument("epoch_workers must be >= 0");
  }
  if (config_.policy == Policy::kHybridBR) {
    if (config_.donated_links % 2 != 0 || config_.donated_links == 0 ||
        config_.donated_links >= config_.k) {
      throw std::invalid_argument("HybridBR needs even 0 < k2 < k");
    }
  }
  if (config_.cheat_factor < 1.0) {
    throw std::invalid_argument("cheat_factor must be >= 1");
  }
  for (int c : config_.cheaters) {
    if (c < 0 || static_cast<std::size_t>(c) >= env.size()) {
      throw std::out_of_range("cheater id out of range");
    }
  }
  if (config_.preference_zipf_exponent < 0.0) {
    throw std::invalid_argument("zipf exponent must be >= 0");
  }
  if (config_.br_sample > 0) {
    // §5 scale mode is a BR mechanism; it deliberately refuses to combine
    // with features that require O(n^2) state (Zipf preference tables) or
    // per-node graph rewrites (audits).
    if (config_.policy != Policy::kBestResponse &&
        config_.policy != Policy::kHybridBR) {
      throw std::invalid_argument("br_sample requires BR or HybridBR");
    }
    if (config_.br_landmarks == 0) {
      throw std::invalid_argument("scale mode needs br_landmarks >= 1");
    }
    if (config_.preference_zipf_exponent > 0.0) {
      throw std::invalid_argument("scale mode requires uniform preferences");
    }
    if (config_.enable_audits) {
      throw std::invalid_argument("scale mode does not support audits");
    }
  }
  if (config_.drift_threshold < 0.0) {
    throw std::invalid_argument("drift_threshold must be >= 0");
  }
  if (config_.incremental) {
    // The dirty tracker reasons about best-response inputs; the trivial
    // policies re-wire for other reasons (ring repair, churn-only), and
    // audit mode rewrites the decision graph per node, voiding the
    // "unchanged announce => unchanged input" argument.
    if (config_.policy != Policy::kBestResponse &&
        config_.policy != Policy::kHybridBR) {
      throw std::invalid_argument("incremental requires BR or HybridBR");
    }
    if (config_.enable_audits) {
      throw std::invalid_argument("incremental does not support audits");
    }
    dirty_.reset(env.size(), config_.drift_threshold);
  }
  if (config_.preference_zipf_exponent > 0.0) {
    // Per-node Zipf preference over a node-specific random destination
    // ranking: p_ij proportional to 1 / rank_i(j)^s.
    base_preference_.resize(env.size());
    for (std::size_t i = 0; i < env.size(); ++i) {
      std::vector<NodeId> ranked;
      for (std::size_t j = 0; j < env.size(); ++j) {
        if (j != i) ranked.push_back(static_cast<NodeId>(j));
      }
      rng_.shuffle(ranked);
      base_preference_[i].assign(env.size(), 0.0);
      for (std::size_t r = 0; r < ranked.size(); ++r) {
        base_preference_[i][static_cast<std::size_t>(ranked[r])] =
            1.0 / std::pow(static_cast<double>(r + 1),
                           config_.preference_zipf_exponent);
      }
    }
  }
  // Incremental bootstrap: nodes join one at a time (id order), each wiring
  // itself against the overlay built so far...
  for (std::size_t v = 0; v < env.size(); ++v) {
    store_.set_online(v, true);
    announced_.set_active(static_cast<NodeId>(v), true);
    join(static_cast<int>(v));
  }
  if (config_.policy == Policy::kHybridBR) refresh_backbone();
  // ...then one settling pass so early joiners (who saw a near-empty
  // overlay) fill out their k links with full knowledge. This models the
  // initial convergence the deployed system reaches before measurements
  // start; it does not count as epoch re-wiring.
  for (std::size_t v = 0; v < env.size(); ++v) join(static_cast<int>(v));
}

EgoistNetwork::~EgoistNetwork() = default;

bool EgoistNetwork::is_cheater(int node) const {
  return std::find(config_.cheaters.begin(), config_.cheaters.end(), node) !=
         config_.cheaters.end();
}

void EgoistNetwork::set_online(int node, bool online) {
  announced_.check_node(node);
  const auto v = static_cast<std::size_t>(node);
  if (store_.is_online(v) == online) return;
  store_.set_online(v, online);
  announced_.set_active(node, online);
  // Membership changes void the scale-mode landmark cache: a departed
  // landmark's rows must not anchor further evaluations.
  landmark_state_.valid = false;
  if (config_.incremental) {
    // Dense candidate sets are global (everyone considers everyone), so a
    // join/leave invalidates every node; scale-mode tolerance marking can
    // restrict to the churned node and its current holders.
    holder_scratch_.clear();
    if (!dirty_.exact() && scale_mode()) collect_holders(node, holder_scratch_);
    dirty_.on_membership(v, !scale_mode(), holder_scratch_);
  }
  if (hooks_.on_membership) hooks_.on_membership(node, online);
  if (!online) {
    // The node vanishes: its announcements age out of everyone's database.
    announced_.clear_out_edges(node);
    store_.clear_wiring(v);
    store_.clear_donated(v);
  } else {
    // A (re)joining node first connects to a bootstrap node only (§3.1);
    // its full policy wiring is computed at its next wiring-epoch turn.
    // HybridBR additionally receives its donated backbone links right away
    // (the backbone is maintained aggressively, below).
    std::vector<NodeId> others;
    for (NodeId u : online_nodes()) {
      if (u != node) others.push_back(u);
    }
    if (!others.empty()) {
      const NodeId bootstrap = others[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(others.size()) - 1))];
      const auto direct = scale_mode()
                              ? measure_pool(node, {bootstrap})
                              : measure_direct(node);
      apply_wiring(node, {bootstrap}, direct);
    }
  }
  // The donated backbone is monitored aggressively (heartbeats) and spliced
  // immediately on membership changes; BR links wait for the wiring epoch.
  if (config_.policy == Policy::kHybridBR) refresh_backbone();
  // Immediate re-wiring mode: nodes that lost a neighbor repair right away
  // instead of waiting for their epoch (§3.3's aggressive monitoring
  // applied to every link).
  if (!online && config_.rewire_mode == RewireMode::kImmediate) {
    for (NodeId u : online_nodes()) {
      const auto w = store_.wiring(static_cast<std::size_t>(u));
      if (std::find(w.begin(), w.end(), static_cast<NodeId>(node)) != w.end()) {
        if (evaluate_node(u)) ++total_rewirings_;
      }
    }
  }
}

bool EgoistNetwork::is_online(int node) const {
  announced_.check_node(node);
  return store_.is_online(static_cast<std::size_t>(node));
}

std::size_t EgoistNetwork::online_count() const {
  return store_.online_count();
}

std::vector<NodeId> EgoistNetwork::online_nodes() const {
  return store_.online_nodes();
}

std::span<const NodeId> EgoistNetwork::wiring(int node) const {
  announced_.check_node(node);
  return store_.wiring(static_cast<std::size_t>(node));
}

std::span<const NodeId> EgoistNetwork::donated(int node) const {
  announced_.check_node(node);
  return store_.donated(static_cast<std::size_t>(node));
}

std::vector<double> EgoistNetwork::measure_direct(int node) {
  // Probing everyone is the dense-mode behavior; the ascending online set
  // walks the same pairs in the same order as the historical per-id loop,
  // so the measurement-noise streams are untouched.
  return measure_pool(node, online_nodes());
}

std::vector<double> EgoistNetwork::measure_pool(int node,
                                                const std::vector<NodeId>& pool) {
  const std::size_t n = store_.size();
  std::vector<double> direct(
      n, config_.metric == Metric::kBandwidth ? 0.0 : graph::kUnreachable);
  for (NodeId v : pool) {
    if (!store_.is_online(static_cast<std::size_t>(v)) || v == node) continue;
    switch (config_.metric) {
      case Metric::kDelayPing:
        direct[static_cast<std::size_t>(v)] = env_.measure_delay_ping(node, v);
        break;
      case Metric::kDelayCoords:
        direct[static_cast<std::size_t>(v)] = env_.measure_delay_coords(node, v);
        break;
      case Metric::kNodeLoad:
        // All outgoing links of a node carry the node's own measured load
        // (§4.1), so the direct cost does not depend on the target.
        direct[static_cast<std::size_t>(v)] = env_.measure_load(node);
        break;
      case Metric::kBandwidth:
        direct[static_cast<std::size_t>(v)] = env_.measure_avail_bw(node, v);
        break;
    }
  }
  return direct;
}

std::vector<NodeId> EgoistNetwork::sample_pool(int node) {
  // The node always re-measures its committed links (current wiring and
  // donated backbone — the sticky search needs their fresh costs), plus a
  // fresh random sample of br_sample other online nodes.
  std::vector<NodeId> pool;
  auto add = [&](NodeId v) {
    if (v == node || !store_.is_online(static_cast<std::size_t>(v))) return;
    if (std::find(pool.begin(), pool.end(), v) == pool.end()) pool.push_back(v);
  };
  for (NodeId v : store_.wiring(static_cast<std::size_t>(node))) add(v);
  for (NodeId v : store_.donated(static_cast<std::size_t>(node))) add(v);

  std::vector<NodeId> others;
  for (NodeId v : online_nodes()) {
    if (v != node &&
        std::find(pool.begin(), pool.end(), v) == pool.end()) {
      others.push_back(v);
    }
  }
  const std::size_t m = std::min(config_.br_sample, others.size());
  for (NodeId v : rng_.sample_without_replacement(
           std::span<const NodeId>(others), m)) {
    pool.push_back(v);
  }
  std::sort(pool.begin(), pool.end());
  return pool;
}

void EgoistNetwork::refresh_landmarks() {
  const auto online = online_nodes();
  const std::size_t t = std::min(config_.br_landmarks, online.size());
  auto landmarks = rng_.sample_without_replacement(
      std::span<const NodeId>(online), t);
  std::sort(landmarks.begin(), landmarks.end());

  landmark_state_.landmarks = std::move(landmarks);
  landmark_state_.column.assign(store_.size(), -1);
  for (std::size_t c = 0; c < landmark_state_.landmarks.size(); ++c) {
    landmark_state_.column[static_cast<std::size_t>(
        landmark_state_.landmarks[c])] = static_cast<std::int32_t>(c);
  }

  // One reverse traversal of the announced overlay per landmark: distances
  // *to* a landmark are distances *from* it in the reversed graph, so L
  // traversals serve every node's evaluation this epoch.
  const std::size_t n = store_.size();
  graph::Digraph reversed(n);
  for (std::size_t u = 0; u < n; ++u) {
    reversed.set_active(static_cast<NodeId>(u), store_.is_online(u));
  }
  for (std::size_t u = 0; u < n; ++u) {
    if (!store_.is_online(u)) continue;
    for (const auto& e : announced_.out_edges(static_cast<NodeId>(u))) {
      reversed.set_edge(e.to, static_cast<NodeId>(u), e.weight);
    }
  }

  const bool widest = config_.metric == Metric::kBandwidth;
  landmark_state_.dist.reshape(n, landmark_state_.landmarks.size());
  for (std::size_t c = 0; c < landmark_state_.landmarks.size(); ++c) {
    const NodeId l = landmark_state_.landmarks[c];
    if (widest) {
      const auto tree = graph::widest_paths(reversed, l);
      for (std::size_t v = 0; v < n; ++v) {
        landmark_state_.dist(v, c) = tree.bottleneck[v];
      }
    } else {
      const auto tree = graph::dijkstra(reversed, l);
      for (std::size_t v = 0; v < n; ++v) {
        landmark_state_.dist(v, c) = tree.dist[v];
      }
    }
  }
  landmark_state_.valid = true;
  landmark_state_.evals_left = online_count();
}

void EgoistNetwork::join_sampled(int node) {
  // Scale-mode bootstrap: a joiner cannot measure everyone, so it wires to
  // the best of a fresh sample (closest for delay/load, widest for
  // bandwidth); BR epochs refine from there. HybridBR's donated backbone
  // links come first, as in the dense path.
  if (config_.policy == Policy::kHybridBR) {
    const auto backbone = backbone_links(node);
    store_.set_donated(static_cast<std::size_t>(node), backbone);
  }
  const auto pool = sample_pool(node);
  auto direct = measure_pool(node, pool);

  const auto donated = store_.donated_vec(static_cast<std::size_t>(node));
  std::vector<NodeId> free_pool;
  for (NodeId v : pool) {
    if (std::find(donated.begin(), donated.end(), v) == donated.end()) {
      free_pool.push_back(v);
    }
  }
  const std::size_t free_k =
      config_.k > donated.size() ? config_.k - donated.size() : 0;
  std::vector<NodeId> wiring = donated;
  const auto picked =
      config_.metric == Metric::kBandwidth
          ? core::select_k_widest(free_pool, direct, free_k)
          : core::select_k_closest(free_pool, direct, free_k);
  wiring.insert(wiring.end(), picked.begin(), picked.end());
  apply_wiring(node, std::move(wiring), direct);
}

bool EgoistNetwork::evaluate_node_sampled(int node) {
  // The landmark state serves one epoch-equivalent of evaluations (see
  // LandmarkState): inside run_epoch it was refreshed at the boundary;
  // on the staggered/run_node path it refreshes here once the budget of
  // online_count() evaluations is spent.
  if (!landmark_state_.valid || landmark_state_.evals_left == 0) {
    refresh_landmarks();
  }
  if (landmark_state_.evals_left > 0) --landmark_state_.evals_left;

  const auto pool = sample_pool(node);
  auto direct = measure_pool(node, pool);
  const auto current = store_.wiring_vec(static_cast<std::size_t>(node));

  std::vector<NodeId> targets;
  targets.reserve(landmark_state_.landmarks.size());
  for (NodeId l : landmark_state_.landmarks) {
    if (l != node) targets.push_back(l);
  }

  const bool maximize = config_.metric == Metric::kBandwidth;
  const double penalty = maximize ? 0.0 : unreachable_penalty(announced_);
  const core::LandmarkObjective objective(
      node, pool, direct, &landmark_state_.dist, &landmark_state_.column,
      std::move(targets), maximize, penalty);

  core::BestResponseOptions options = config_.search;
  options.scratch = &br_scratch_;
  options.seed_wiring = current;
  options.exact_budget = 0;
  std::size_t free_k = std::min(config_.k, online_count() - 1);
  if (config_.policy == Policy::kHybridBR) {
    options.fixed_links = store_.donated_vec(static_cast<std::size_t>(node));
    free_k = free_k > options.fixed_links.size()
                 ? free_k - options.fixed_links.size()
                 : 0;
  }
  const double current_cost = objective.cost(current);
  core::BestResponseResult br = core::best_response(objective, free_k, options);
  std::vector<NodeId> proposed = options.fixed_links;
  proposed.insert(proposed.end(), br.wiring.begin(), br.wiring.end());

  const double improvement = current_cost - br.cost;
  const double fraction =
      config_.epsilon > 0.0 ? config_.epsilon : config_.noise_floor;
  const double threshold = fraction * std::abs(current_cost);
  // Both the kept and the proposed wiring are subsets of the measured pool
  // (fixed links included), so `direct` covers every announced cost.
  if (improvement <= threshold || same_set(current, proposed)) {
    apply_wiring(node, std::vector<NodeId>(current), direct);
    return false;
  }
  apply_wiring(node, std::move(proposed), direct);
  if (hooks_.on_rewire) {
    hooks_.on_rewire(node, current,
                     store_.wiring_vec(static_cast<std::size_t>(node)));
  }
  return true;
}

double EgoistNetwork::announced_cost(int node, double measured) const {
  if (!is_cheater(node)) return measured;
  // Free riders discourage upstreams: inflate delay/load, deflate bandwidth.
  if (config_.metric == Metric::kBandwidth) {
    return measured / config_.cheat_factor;
  }
  return measured * config_.cheat_factor;
}

std::vector<double> EgoistNetwork::preference_of(int node) const {
  std::vector<double> pref(store_.size(), 0.0);
  double total = 0.0;
  for (std::size_t j = 0; j < store_.size(); ++j) {
    if (!store_.is_online(j) || static_cast<int>(j) == node) continue;
    const double w = base_preference_.empty()
                         ? 1.0
                         : base_preference_[static_cast<std::size_t>(node)][j];
    pref[j] = w;
    total += w;
  }
  if (total > 0.0) {
    for (double& w : pref) w /= total;
  }
  return pref;
}

const graph::Digraph& EgoistNetwork::decision_graph() {
  const bool delay_metric = config_.metric == Metric::kDelayPing ||
                            config_.metric == Metric::kDelayCoords;
  if (!config_.enable_audits || !delay_metric) return announced_;
  graph::Digraph audited(store_.size());
  for (std::size_t u = 0; u < store_.size(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    audited.set_active(uid, store_.is_online(u));
    for (const auto& e : announced_.out_edges(uid)) {
      const double estimate =
          env_.measure_delay_coords(static_cast<int>(u), e.to);
      const bool suspicious = e.weight > config_.audit_tolerance * estimate;
      audited.set_edge(uid, e.to, suspicious ? estimate : e.weight);
    }
  }
  audited_ = std::move(audited);
  return audited_;
}

double EgoistNetwork::unreachable_penalty(const graph::Digraph& decision) const {
  // Rescanning every announced edge once per node per epoch is pure waste;
  // run_epoch caches the scan's result for the epoch.
  return epoch_penalty_ ? *epoch_penalty_
                        : core::default_unreachable_penalty(decision);
}

void EgoistNetwork::apply_wiring(int node, std::vector<NodeId> wiring,
                                 std::span<const double> direct) {
  // With everyone already dirty, no mark can add information — skip the
  // old-row copy and the delta test (this keeps the noisy-env and
  // bootstrap paths at zero tracking overhead).
  const bool track =
      config_.incremental && dirty_.dirty_count() < dirty_.size();
  if (track) {
    const auto old = announced_.out_edges(node);
    old_row_scratch_.assign(old.begin(), old.end());
  }
  std::sort(wiring.begin(), wiring.end());
  announced_.clear_out_edges(node);
  for (NodeId v : wiring) {
    announced_.set_edge(node, v,
                        announced_cost(node, direct[static_cast<std::size_t>(v)]));
  }
  store_.set_wiring(static_cast<std::size_t>(node), wiring);
  // Keep the epoch-shared engine snapshot in lockstep: only this node's
  // out-edge row changed, so its base trees are patched, not rebuilt.
  if (engine_synced_) engine_.update_out_edges(node, announced_);
  if (track) note_announce(node, old_row_scratch_);
  if (config_.incremental && !dirty_.exact()) {
    // Tolerance mode: the announced costs just became current, so they are
    // the drift baseline the node's future probes compare against.
    dirty_.set_baseline(static_cast<std::size_t>(node),
                        store_.wiring(static_cast<std::size_t>(node)), direct);
  }
}

void EgoistNetwork::note_announce(int node,
                                  std::span<const graph::Edge> old_row) {
  const auto new_row = announced_.out_edges(node);
  if (!dirty_.announce_delta_significant(old_row, new_row)) return;
  if (dirty_.exact()) {
    // Conservative global mark: any changed announcement can, through the
    // decision graph and the fold penalty, shift anyone's best response.
    dirty_.mark_all();
    return;
  }
  // Tolerance mode: the nodes routing over this announcer. Direct holders
  // always; plus, when the epoch-shared engine just patched its base trees,
  // exactly the sources whose dist rows the patch changed. Without a synced
  // engine (run_node, pipeline merge) the holder scan is the approximation
  // tolerance mode accepts.
  holder_scratch_.clear();
  collect_holders(node, holder_scratch_);
  for (NodeId h : holder_scratch_) dirty_.mark(static_cast<std::size_t>(h));
  dirty_.mark(static_cast<std::size_t>(node));
  if (engine_synced_) {
    if (engine_.last_update_rebuilt()) {
      dirty_.mark_all();  // per-row signal lost; fall back to everyone
    } else {
      for (NodeId s : engine_.last_update_invalidated()) {
        dirty_.mark(static_cast<std::size_t>(s));
      }
    }
  }
}

void EgoistNetwork::collect_holders(int node, std::vector<NodeId>& out) const {
  for (std::size_t u = 0; u < store_.size(); ++u) {
    if (!store_.is_online(u) || static_cast<int>(u) == node) continue;
    const auto w = store_.wiring(u);
    if (std::find(w.begin(), w.end(), static_cast<NodeId>(node)) != w.end()) {
      out.push_back(static_cast<NodeId>(u));
      continue;
    }
    const auto d = store_.donated(u);
    if (std::find(d.begin(), d.end(), static_cast<NodeId>(node)) != d.end()) {
      out.push_back(static_cast<NodeId>(u));
    }
  }
}

bool EgoistNetwork::node_needs_evaluation(int node) {
  if (dirty_.is_dirty(static_cast<std::size_t>(node))) return true;
  if (dirty_.exact()) return false;
  // Tolerance mode: probe the node's own wiring links (O(k), the links it
  // actually routes over) and compare against its last-evaluation baseline.
  const auto links = store_.wiring(static_cast<std::size_t>(node));
  if (links.empty()) return false;
  drift_links_scratch_.assign(links.begin(), links.end());
  const auto fresh = measure_pool(node, drift_links_scratch_);
  return dirty_.drift_exceeded(static_cast<std::size_t>(node), links, fresh);
}

std::vector<NodeId> EgoistNetwork::backbone_links(int node) const {
  const auto ring = online_nodes();
  std::vector<NodeId> links;
  const auto it = std::find(ring.begin(), ring.end(), static_cast<NodeId>(node));
  if (it == ring.end() || ring.size() < 2) return links;

  if (config_.backbone == Backbone::kMst) {
    // Young et al. [43]-style backbone: a minimum spanning tree over the
    // current true delays. Centralized and rebuilt on every membership
    // change — the overhead §3.3 argues against, quantified by the
    // ablation bench. Each node donates links to its tree neighbors (up to
    // its donated budget; high-degree tree nodes are truncated).
    const auto tree = graph::minimum_spanning_tree(
        ring, [this](NodeId a, NodeId b) { return env_.true_delay(a, b); });
    const auto adjacency = tree_adjacency(store_.size(), tree);
    for (NodeId v : adjacency[static_cast<std::size_t>(node)]) {
      if (links.size() >= config_.donated_links) break;
      links.push_back(v);
    }
    return links;
  }

  // EGOIST's choice: rank the online nodes by id; node connects to the
  // nodes +/- c ring positions away, c = 1 .. k2/2 (bidirectional cycles).
  const std::size_t pos = static_cast<std::size_t>(it - ring.begin());
  const std::size_t cycles = config_.donated_links / 2;
  for (std::size_t c = 1; c <= cycles; ++c) {
    const NodeId fwd = ring[(pos + c) % ring.size()];
    const NodeId back = ring[(pos + ring.size() - c % ring.size()) % ring.size()];
    for (NodeId v : {fwd, back}) {
      if (v != node && std::find(links.begin(), links.end(), v) == links.end()) {
        links.push_back(v);
      }
    }
  }
  return links;
}

void EgoistNetwork::refresh_backbone() {
  for (NodeId v : online_nodes()) {
    auto fresh = backbone_links(v);
    const auto donated = store_.donated_vec(static_cast<std::size_t>(v));
    if (same_set(donated, fresh)) continue;
    // Splice: replace old donated links, keep the BR links intact.
    std::vector<NodeId> free_links;
    for (NodeId w : store_.wiring(static_cast<std::size_t>(v))) {
      if (std::find(donated.begin(), donated.end(), w) == donated.end()) {
        free_links.push_back(w);
      }
    }
    std::vector<NodeId> combined = fresh;
    store_.set_donated(static_cast<std::size_t>(v), fresh);
    for (NodeId w : free_links) {
      if (std::find(combined.begin(), combined.end(), w) == combined.end() &&
          combined.size() < config_.k) {
        combined.push_back(w);
      }
    }
    const auto direct =
        scale_mode() ? measure_pool(v, combined) : measure_direct(v);
    apply_wiring(v, std::move(combined), direct);
  }
}

std::vector<NodeId> EgoistNetwork::choose_wiring(int node,
                                                 const std::vector<double>& direct) {
  // Candidates: online nodes other than self.
  std::vector<NodeId> candidates;
  for (NodeId v : online_nodes()) {
    if (v != node) candidates.push_back(v);
  }
  const std::size_t k = std::min(config_.k, candidates.size());

  switch (config_.policy) {
    case Policy::kRandom: {
      // Keep the existing wiring; only replace links to departed nodes
      // (k-Random re-wires only under churn, §4.2).
      std::vector<NodeId> keep;
      for (NodeId v : store_.wiring(static_cast<std::size_t>(node))) {
        if (store_.is_online(static_cast<std::size_t>(v))) keep.push_back(v);
      }
      std::vector<NodeId> pool;
      for (NodeId v : candidates) {
        if (std::find(keep.begin(), keep.end(), v) == keep.end()) pool.push_back(v);
      }
      while (keep.size() < k && !pool.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
        keep.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      return keep;
    }
    case Policy::kClosest: {
      if (config_.metric == Metric::kBandwidth) {
        return core::select_k_widest(candidates, direct, k);
      }
      if (config_.metric == Metric::kNodeLoad) {
        // Under the load metric a node's own outgoing links all cost the
        // same (its own load), so "closest" is judged by the candidate's
        // advertised load — the myopic choice the paper describes: it sees
        // the immediate neighbor's load but nothing beyond it, and herds
        // onto currently-idle hosts.
        std::vector<double> candidate_load(store_.size(), 0.0);
        for (NodeId v : candidates) {
          candidate_load[static_cast<std::size_t>(v)] = env_.measure_load(v);
        }
        return core::select_k_closest(candidates, candidate_load, k);
      }
      return core::select_k_closest(candidates, direct, k);
    }
    case Policy::kRegular: {
      // Offsets over the ring of online nodes ranked by id.
      const auto ring = online_nodes();
      const auto it =
          std::find(ring.begin(), ring.end(), static_cast<NodeId>(node));
      const std::size_t pos = static_cast<std::size_t>(it - ring.begin());
      std::vector<NodeId> links;
      if (ring.size() >= 2) {
        for (int o : core::k_regular_offsets(ring.size(), std::min(k, ring.size() - 1))) {
          const NodeId v = ring[(pos + static_cast<std::size_t>(o)) % ring.size()];
          if (v != node && std::find(links.begin(), links.end(), v) == links.end()) {
            links.push_back(v);
          }
        }
      }
      return links;
    }
    case Policy::kFullMesh:
      return candidates;
    case Policy::kBestResponse:
    case Policy::kHybridBR: {
      core::BestResponseOptions options = config_.search;
      options.scratch = &br_scratch_;
      std::size_t free_k = k;
      if (config_.policy == Policy::kHybridBR) {
        options.fixed_links = store_.donated_vec(static_cast<std::size_t>(node));
        free_k = k > options.fixed_links.size() ? k - options.fixed_links.size() : 0;
      }
      // Adoption decision happens in evaluate_node; here return combined.
      auto br = run_best_response(node, direct, free_k, options,
                                  /*current_for_cost=*/nullptr,
                                  /*current_cost=*/nullptr);
      auto combined = options.fixed_links;
      combined.insert(combined.end(), br.wiring.begin(), br.wiring.end());
      return combined;
    }
  }
  return {};
}

core::BestResponseResult EgoistNetwork::run_best_response(
    int node, const std::vector<double>& direct, std::size_t free_k,
    const core::BestResponseOptions& options,
    const std::vector<NodeId>* current_for_cost, double* current_cost) {
  auto search = [&](const core::WiringObjective& objective) {
    if (current_for_cost != nullptr && current_cost != nullptr) {
      *current_cost = objective.cost(*current_for_cost);
    }
    return core::best_response(objective, free_k, options);
  };
  const graph::Digraph& decision = decision_graph();
  const bool use_engine = config_.path_backend == PathBackend::kCsrEngine;
  // Inside a synchronized epoch the engine already mirrors the decision
  // graph (snapshotted at the boundary, patched after each re-announce);
  // otherwise it re-snapshots per call, reusing its buffers.
  if (use_engine && !engine_synced_) engine_.rebuild(decision);
  if (config_.metric == Metric::kBandwidth) {
    return search(use_engine
                      ? core::make_bandwidth_objective(engine_, node, direct,
                                                       &residual_scratch_)
                      : core::make_bandwidth_objective(decision, node, direct));
  }
  const double penalty = unreachable_penalty(decision);
  return search(use_engine
                    ? core::make_delay_objective(engine_, node, direct,
                                                 preference_of(node), penalty,
                                                 &residual_scratch_)
                    : core::make_delay_objective(decision, node, direct,
                                                 preference_of(node), penalty));
}

void EgoistNetwork::join(int node) {
  if (scale_mode()) {
    join_sampled(node);
    return;
  }
  auto direct = measure_direct(node);
  if (config_.policy == Policy::kHybridBR) {
    const auto backbone = backbone_links(node);
    store_.set_donated(static_cast<std::size_t>(node), backbone);
  }
  apply_wiring(node, choose_wiring(node, direct), direct);
}

bool EgoistNetwork::evaluate_node(int node) {
  if (scale_mode()) return evaluate_node_sampled(node);
  const auto direct = measure_direct(node);
  const auto current = store_.wiring_vec(static_cast<std::size_t>(node));

  const bool is_br = config_.policy == Policy::kBestResponse ||
                     config_.policy == Policy::kHybridBR;
  if (!is_br) {
    auto proposed = choose_wiring(node, direct);
    if (same_set(current, proposed)) {
      // Costs may have drifted; refresh announcements without re-wiring.
      apply_wiring(node, std::move(proposed), direct);
      return false;
    }
    apply_wiring(node, std::move(proposed), direct);
    if (hooks_.on_rewire) {
      hooks_.on_rewire(node, current,
                       store_.wiring_vec(static_cast<std::size_t>(node)));
    }
    return true;
  }

  // BR path: build the residual objective once, search, then apply the
  // BR(eps) adoption rule (§4.3) against the current wiring's cost under
  // the same fresh measurements.
  core::BestResponseOptions options = config_.search;
  options.scratch = &br_scratch_;
  options.seed_wiring = current;  // sticky search: move only on improvement
  options.exact_budget = 0;       // exhaustive search is not seedable
  std::size_t free_k = std::min(config_.k, online_count() - 1);
  if (config_.policy == Policy::kHybridBR) {
    options.fixed_links = store_.donated_vec(static_cast<std::size_t>(node));
    free_k = free_k > options.fixed_links.size()
                 ? free_k - options.fixed_links.size()
                 : 0;
  }
  double current_cost = 0.0;
  core::BestResponseResult br =
      run_best_response(node, direct, free_k, options, &current, &current_cost);
  std::vector<NodeId> proposed = options.fixed_links;
  proposed.insert(proposed.end(), br.wiring.begin(), br.wiring.end());

  const double improvement = current_cost - br.cost;
  const double fraction =
      config_.epsilon > 0.0 ? config_.epsilon : config_.noise_floor;
  const double threshold = fraction * std::abs(current_cost);
  if (improvement <= threshold || same_set(current, proposed)) {
    // Keep the wiring but refresh the announced costs.
    apply_wiring(node, std::vector<NodeId>(current), direct);
    return false;
  }
  apply_wiring(node, std::move(proposed), direct);
  if (hooks_.on_rewire) {
    hooks_.on_rewire(node, current,
                     store_.wiring_vec(static_cast<std::size_t>(node)));
  }
  return true;
}

bool EgoistNetwork::run_node(int node) {
  announced_.check_node(node);
  if (!store_.is_online(static_cast<std::size_t>(node))) return false;
  if (config_.incremental) {
    if (!node_needs_evaluation(node)) {
      ++total_skipped_evals_;
      return false;
    }
    // Clear before evaluating: the node's own announce delta may re-mark
    // it, which is exactly the "keep chasing a moving world" semantics.
    dirty_.clear(static_cast<std::size_t>(node));
  }
  ++total_evaluations_;
  const bool rewired = evaluate_node(node);
  if (rewired) ++total_rewirings_;
  return rewired;
}

bool EgoistNetwork::use_pipeline() const {
  return config_.epoch_workers >= 1 &&
         (config_.policy == Policy::kBestResponse ||
          config_.policy == Policy::kHybridBR);
}

EpochEngine& EgoistNetwork::epoch_engine() {
  if (!epoch_engine_ || epoch_engine_->workers() != config_.epoch_workers) {
    epoch_engine_ = std::make_unique<EpochEngine>(config_.epoch_workers);
  }
  return *epoch_engine_;
}

void EgoistNetwork::evaluate_proposal(NodeId v, EpochWorkspace& ws,
                                      const graph::Digraph& decision,
                                      double penalty,
                                      std::size_t base_free_k) {
  const auto node = static_cast<std::size_t>(v);
  const std::size_t n = store_.size();
  const bool maximize = config_.metric == Metric::kBandwidth;
  const std::vector<NodeId> current = store_.wiring_vec(node);

  core::BestResponseOptions options = config_.search;
  options.scratch = &ws.br;
  options.seed_wiring = current;  // sticky search: move only on improvement
  options.exact_budget = 0;       // exhaustive search is not seedable
  std::size_t free_k = base_free_k;
  if (config_.policy == Policy::kHybridBR) {
    options.fixed_links = store_.donated_vec(node);
    free_k = free_k > options.fixed_links.size()
                 ? free_k - options.fixed_links.size()
                 : 0;
  }

  double current_cost = 0.0;
  core::BestResponseResult br;
  if (scale_mode()) {
    const auto ids = epoch_store_.pool_ids(node);
    const auto values = epoch_store_.pool_values(node);
    // Rebuild the node's sparse measurement row in the full-size workspace
    // buffer, restore after the search: O(pool) per node, not O(n).
    const double unmeasured = maximize ? 0.0 : graph::kUnreachable;
    if (ws.direct.size() != n) ws.direct.assign(n, unmeasured);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ws.direct[static_cast<std::size_t>(ids[i])] = values[i];
    }
    std::vector<NodeId> targets;
    targets.reserve(landmark_state_.landmarks.size());
    for (NodeId l : landmark_state_.landmarks) {
      if (l != v) targets.push_back(l);
    }
    const core::LandmarkObjective objective(
        v, std::vector<NodeId>(ids.begin(), ids.end()), ws.direct,
        &landmark_state_.dist, &landmark_state_.column, std::move(targets),
        maximize, maximize ? 0.0 : penalty);
    current_cost = objective.cost(current);
    br = core::best_response(objective, free_k, options);
    for (NodeId id : ids) {
      ws.direct[static_cast<std::size_t>(id)] = unmeasured;
    }
  } else {
    const auto& snapshot = std::as_const(epoch_store_);
    const auto row = snapshot.direct_row(node);
    ws.direct.assign(row.begin(), row.end());
    const bool use_engine = config_.path_backend == PathBackend::kCsrEngine;
    const graph::PathEngine& engine = engine_;  // const: scratch-based queries
    auto search = [&](const core::WiringObjective& objective) {
      current_cost = objective.cost(current);
      br = core::best_response(objective, free_k, options);
    };
    if (maximize) {
      if (use_engine) {
        search(core::make_bandwidth_objective(engine, ws.query, v, ws.direct,
                                              &ws.residual));
      } else {
        search(core::make_bandwidth_objective(decision, v, ws.direct));
      }
    } else {
      if (use_engine) {
        search(core::make_delay_objective(engine, ws.query, v, ws.direct,
                                          preference_of(v), penalty,
                                          &ws.residual));
      } else {
        search(core::make_delay_objective(decision, v, ws.direct,
                                          preference_of(v), penalty));
      }
    }
  }

  std::vector<NodeId> proposed = options.fixed_links;
  proposed.insert(proposed.end(), br.wiring.begin(), br.wiring.end());
  const double improvement = current_cost - br.cost;
  const double fraction =
      config_.epsilon > 0.0 ? config_.epsilon : config_.noise_floor;
  const double threshold = fraction * std::abs(current_cost);
  const bool adopt =
      !(improvement <= threshold || same_set(current, proposed));
  std::sort(proposed.begin(), proposed.end());
  epoch_store_.set_proposal(node, proposed, adopt);
}

int EgoistNetwork::run_epoch_pipeline() {
  EGOIST_PROFILE_SCOPE("epoch");
  ++epochs_;
  const std::size_t n = store_.size();
  const auto online = store_.online_nodes();  // ascending: the merge order
  const bool maximize = config_.metric == Metric::kBandwidth;
  const bool use_engine = config_.path_backend == PathBackend::kCsrEngine;
  EpochEngine& engine = epoch_engine();

  // Incremental mode: freeze the dirty set into this epoch's active list
  // (ascending, like the merge order). Drift probes — tolerance mode's
  // stateful measurements — run here, sequentially, keeping the evaluate
  // phase pure. Marks raised during the merge apply from the next epoch:
  // the pipeline's synchronized-agents semantics, unlike the sequential
  // epoch's immediate mid-epoch marks.
  std::vector<NodeId> active;
  if (config_.incremental) {
    for (NodeId v : online) {
      if (node_needs_evaluation(v)) {
        active.push_back(v);
      } else {
        ++total_skipped_evals_;
      }
    }
    for (NodeId v : active) dirty_.clear(static_cast<std::size_t>(v));
  } else {
    active = online;
  }
  total_evaluations_ += active.size();

  // --- Snapshot (sequential, ascending node order) ---
  // Everything stateful lives here: RNG draws (sample pools, landmarks) and
  // measurement streams (ping EWMAs, noise) advance exactly once, in a
  // worker-count-independent order. The decision graph is frozen at the
  // boundary — in audit mode it is audited once here, not once per node.
  // With nothing active, the epoch planes, landmark refresh, and engine
  // snapshot are all skipped — an all-clean epoch costs O(n).
  const graph::Digraph* decision = nullptr;
  {
    EGOIST_PROFILE_SCOPE("snapshot");
    decision = &decision_graph();
    if (!maximize) {
      epoch_penalty_ = core::default_unreachable_penalty(*decision);
    }
    if (scale_mode()) {
      if (!active.empty()) {
        refresh_landmarks();
        epoch_store_.begin_sparse(n, store_.wiring_capacity());
        std::vector<double> values;
        for (NodeId v : active) {
          const auto pool = sample_pool(v);
          const auto direct = measure_pool(v, pool);
          values.clear();
          for (NodeId p : pool) {
            values.push_back(direct[static_cast<std::size_t>(p)]);
          }
          epoch_store_.add_pool(static_cast<std::size_t>(v), pool, values);
        }
      }
    } else if (!active.empty()) {
      epoch_store_.begin_dense(n, store_.wiring_capacity());
      for (NodeId v : active) {
        const auto direct = measure_direct(v);
        const auto row = epoch_store_.direct_row(static_cast<std::size_t>(v));
        std::copy(direct.begin(), direct.end(), row.begin());
      }
      if (use_engine) {
        // One shared snapshot + eager base trees; the evaluate phase only
        // issues const scratch-based queries against it.
        engine_.rebuild(*decision);
        if (maximize) {
          engine_.prepare_widest();
        } else {
          engine_.prepare_shortest();
        }
      }
    }
  }

  // --- Evaluate (parallel, pure per-node) ---
  const std::size_t base_free_k =
      online.empty() ? 0 : std::min(config_.k, online.size() - 1);
  const double penalty = maximize ? 0.0 : *epoch_penalty_;
  {
    EGOIST_PROFILE_SCOPE("evaluate");
    engine.run(active.size(), [&](std::size_t i, EpochWorkspace& ws) {
      evaluate_proposal(active[i], ws, *decision, penalty, base_free_k);
    });
  }

  // --- Merge (sequential, ascending node order) ---
  int rewired = 0;
  {
    EGOIST_PROFILE_SCOPE("merge");
    const double unmeasured = maximize ? 0.0 : graph::kUnreachable;
    std::vector<double> sparse_direct;
    for (NodeId v : active) {
      const auto node = static_cast<std::size_t>(v);
      std::span<const double> direct;
      if (epoch_store_.dense()) {
        direct = std::as_const(epoch_store_).direct_row(node);
      } else {
        // Reconstruct the sparse measurement row; every announced link is a
        // pool member (kept and proposed wirings are pool subsets).
        sparse_direct.assign(n, unmeasured);
        const auto ids = epoch_store_.pool_ids(node);
        const auto values = epoch_store_.pool_values(node);
        for (std::size_t i = 0; i < ids.size(); ++i) {
          sparse_direct[static_cast<std::size_t>(ids[i])] = values[i];
        }
        direct = sparse_direct;
      }
      if (epoch_store_.adopted(node)) {
        const std::vector<NodeId> old_wiring = store_.wiring_vec(node);
        const auto proposal = epoch_store_.proposal(node);
        apply_wiring(v, {proposal.begin(), proposal.end()}, direct);
        if (hooks_.on_rewire) {
          hooks_.on_rewire(v, old_wiring, store_.wiring_vec(node));
        }
        ++rewired;
      } else {
        // Keep the wiring but refresh the announced costs.
        apply_wiring(v, store_.wiring_vec(node), direct);
      }
    }
  }

  epoch_penalty_.reset();
  landmark_state_.valid = false;
  total_rewirings_ += static_cast<std::uint64_t>(rewired);
  return rewired;
}

int EgoistNetwork::run_epoch() {
  if (use_pipeline()) return run_epoch_pipeline();
  EGOIST_PROFILE_SCOPE("epoch");
  ++epochs_;
  // Cache the unreachable-fold penalty for this epoch (bandwidth's fold
  // has none): one edge scan instead of one per node.
  if (config_.metric != Metric::kBandwidth) {
    epoch_penalty_ = core::default_unreachable_penalty(decision_graph());
  }
  // Epoch-shared engine snapshot: taken once here, then patched after each
  // node re-announces (see evaluate_node), so the shared base trees carry
  // across the sequential epoch instead of being rebuilt n times. Audit
  // mode rebuilds the audited decision graph per node, so it re-snapshots
  // per evaluation instead.
  const bool is_br = config_.policy == Policy::kBestResponse ||
                     config_.policy == Policy::kHybridBR;
  const bool audited = config_.enable_audits &&
                       (config_.metric == Metric::kDelayPing ||
                        config_.metric == Metric::kDelayCoords);
  if (scale_mode()) {
    // Epoch-shared landmark state instead of epoch-shared base trees: the
    // whole epoch evaluates against the boundary announced graph.
    refresh_landmarks();
  } else if (is_br && !audited &&
             config_.path_backend == PathBackend::kCsrEngine) {
    engine_.rebuild(announced_);
    engine_synced_ = true;
  }
  auto order = online_nodes();
  rng_.shuffle(order);
  int rewired = 0;
  {
    EGOIST_PROFILE_SCOPE("evaluate");
    for (NodeId v : order) {
      if (!store_.is_online(static_cast<std::size_t>(v))) continue;
      if (config_.incremental) {
        // The dirty check happens at the node's turn, so marks from nodes
        // earlier in this epoch's order take effect immediately — the same
        // unsynchronized-agents semantics as the full sequential epoch.
        if (!node_needs_evaluation(v)) {
          ++total_skipped_evals_;
          continue;
        }
        dirty_.clear(static_cast<std::size_t>(v));
      }
      ++total_evaluations_;
      if (evaluate_node(v)) ++rewired;
    }
  }
  engine_synced_ = false;
  epoch_penalty_.reset();
  landmark_state_.valid = false;
  // k-Random / k-Closest enforce a cycle if the wiring got disconnected
  // (§3.2); the cycle replaces each node's last link to respect degree k.
  if (config_.policy == Policy::kRandom || config_.policy == Policy::kClosest) {
    if (online_count() >= 2 && !graph::is_strongly_connected(announced_)) {
      const auto ring = online_nodes();
      for (std::size_t i = 0; i < ring.size(); ++i) {
        const NodeId u = ring[i];
        const NodeId next = ring[(i + 1) % ring.size()];
        if (u == next || announced_.has_edge(u, next)) continue;
        auto wiring = store_.wiring_vec(static_cast<std::size_t>(u));
        const auto direct = measure_direct(u);
        if (wiring.size() >= config_.k && !wiring.empty()) {
          announced_.remove_edge(u, wiring.back());
          wiring.pop_back();
        }
        wiring.push_back(next);
        announced_.set_edge(u, next,
                            announced_cost(u, direct[static_cast<std::size_t>(next)]));
        std::sort(wiring.begin(), wiring.end());
        store_.set_wiring(static_cast<std::size_t>(u), wiring);
      }
    }
  }
  total_rewirings_ += static_cast<std::uint64_t>(rewired);
  return rewired;
}

graph::Digraph EgoistNetwork::true_cost_graph() const {
  graph::Digraph g(store_.size());
  for (std::size_t u = 0; u < store_.size(); ++u) {
    g.set_active(static_cast<NodeId>(u), store_.is_online(u));
    if (!store_.is_online(u)) continue;
    for (NodeId v : store_.wiring(u)) {
      if (!store_.is_online(static_cast<std::size_t>(v))) continue;
      double cost = 0.0;
      switch (config_.metric) {
        case Metric::kDelayPing:
        case Metric::kDelayCoords:
          cost = env_.true_delay(static_cast<int>(u), v);
          break;
        case Metric::kNodeLoad:
          cost = env_.true_load(static_cast<int>(u));
          break;
        case Metric::kBandwidth:
          cost = env_.true_avail_bw(static_cast<int>(u), v);
          break;
      }
      g.set_edge(static_cast<NodeId>(u), v, cost);
    }
  }
  return g;
}

graph::Digraph EgoistNetwork::true_bandwidth_graph() const {
  graph::Digraph g(store_.size());
  for (std::size_t u = 0; u < store_.size(); ++u) {
    g.set_active(static_cast<NodeId>(u), store_.is_online(u));
    if (!store_.is_online(u)) continue;
    for (NodeId v : store_.wiring(u)) {
      if (!store_.is_online(static_cast<std::size_t>(v))) continue;
      g.set_edge(static_cast<NodeId>(u), v,
                 env_.true_avail_bw(static_cast<int>(u), v));
    }
  }
  return g;
}

std::vector<double> EgoistNetwork::node_costs() const {
  return score_node_costs(true_cost_graph(), online_nodes(), score_preferences());
}

std::vector<double> EgoistNetwork::node_efficiencies() const {
  return score_node_efficiencies(true_cost_graph(), online_nodes());
}

std::vector<double> EgoistNetwork::node_bandwidth_scores() const {
  return score_node_bandwidth(true_bandwidth_graph(), online_nodes());
}

std::vector<std::vector<double>> EgoistNetwork::score_preferences() const {
  if (base_preference_.empty()) return {};
  std::vector<std::vector<double>> prefs(store_.size());
  for (NodeId v : online_nodes()) {
    prefs[static_cast<std::size_t>(v)] = preference_of(v);
  }
  return prefs;
}

}  // namespace egoist::overlay
