// DirtyTracker — per-node best-response invalidation state for the
// incremental wiring epochs (OverlayConfig::incremental).
//
// A node's best response is a pure function of its inputs: the announced
// decision graph, its direct measurements, the online candidate set, the
// unreachable-fold penalty (itself a function of the decision graph), and
// its static preferences. The tracker records, per node, whether any event
// since the node's last evaluation could have changed one of those inputs;
// the epoch loops then evaluate only the marked ("dirty") nodes and skip
// the rest entirely — no measurement, no announcement refresh, no BR
// search — which is what turns a steady-state epoch from O(n * BR) into
// O(changed * BR).
//
// Event sources (marked by EgoistNetwork as they happen):
//   - a neighbor's re-announce whose delta is significant (announce_delta)
//   - a churn join/leave in the node's candidate set (on_membership)
//   - a measurement-plane drift past the node's threshold (drift_exceeded
//     against the per-link baseline captured at its last evaluation)
//   - an accepted proposal that perturbed the node's shortest-path tree
//     (the PathEngine's incremental one-row update reports which source
//     rows it changed; those sources are marked)
//
// Two operating modes, selected by the drift threshold:
//
//   exact (threshold == 0, "thresholds disabled"): marking is conservative
//   and global — any announce delta (down to a single cost bit) or any
//   membership change marks every node. A clean node's inputs are then
//   provably unchanged since its last evaluation, so its re-evaluation
//   would reproduce its last decision bit for bit ("keep") and its
//   re-announce would carry identical costs: skipping it is invisible and
//   the incremental trajectory is bit-identical to the full recompute.
//   (On a noisy measurement plane every refresh changes costs, so every
//   node stays dirty and incremental degenerates to the full epoch —
//   identity holds trivially; the win appears exactly when the plane is
//   quiet enough for announcements to settle.)
//
//   tolerance (threshold > 0): marking is selective — a significant
//   announce delta (relative cost change beyond the threshold, or an
//   edge-set change) marks the announcer's in-neighbors plus the sources
//   whose base-tree rows the PathEngine patch invalidated; membership
//   changes mark the holders of the churned node (dense candidate sets are
//   global, so dense deployments still mark everyone); clean nodes are
//   drift-probed (O(k) pings) against their last-evaluation baseline.
//   Scores stay within a tested tolerance band instead of bit-identity.
//
// The tracker is pure bookkeeping: it never touches the network, the
// environment, or the RNG streams, which is what the unit truth-table
// tests pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace egoist::overlay {

class DirtyTracker {
 public:
  DirtyTracker() = default;

  /// (Re)initializes for n nodes with every node marked — construction and
  /// any structural reset seed the full set, as the first epoch must
  /// evaluate everyone.
  void reset(std::size_t n, double drift_threshold);

  std::size_t size() const { return dirty_.size(); }
  double drift_threshold() const { return threshold_; }
  /// True when drift thresholds are disabled (exact mode: conservative
  /// global marking, bit-identical trajectories).
  bool exact() const { return threshold_ <= 0.0; }

  bool is_dirty(std::size_t v) const { return dirty_[v] != 0; }
  std::size_t dirty_count() const { return dirty_count_; }
  void mark(std::size_t v);
  void mark_all();
  /// The caller evaluated v: its decision is now based on current inputs.
  void clear(std::size_t v);

  /// --- Event intake ---
  /// Compares a node's old announced out-edge row against its new one.
  /// Significant when the edge set changed, or (exact mode) any cost
  /// differs at all, or (tolerance mode) some cost moved by more than
  /// threshold relative to its old value. Rows need not be sorted.
  bool announce_delta_significant(std::span<const graph::Edge> old_row,
                                  std::span<const graph::Edge> new_row) const;

  /// A churn join/leave of `node`. `global_candidates` says every node's
  /// candidate set contains everyone (dense mode) — then all are marked;
  /// otherwise the churned node itself and the provided holders (nodes
  /// whose wiring or donated links contain it) are marked.
  void on_membership(std::size_t node, bool global_candidates,
                     std::span<const graph::NodeId> holders);

  /// --- Drift baselines (tolerance mode) ---
  /// Records v's measured link values at evaluation time. `values` is
  /// indexed by node id and must cover every entry of `links`.
  void set_baseline(std::size_t v, std::span<const graph::NodeId> links,
                    std::span<const double> values);

  /// True when any of v's probed links moved beyond the threshold relative
  /// to its last-evaluation baseline. Comparing against the (fixed)
  /// baseline rather than the previous epoch gives hysteresis: slow drift
  /// accumulates until it crosses the threshold once, the node re-evaluates
  /// and re-baselines, and sub-threshold wander never triggers. Links
  /// without a recorded baseline count as exceeded. `fresh` is indexed by
  /// node id.
  bool drift_exceeded(std::size_t v, std::span<const graph::NodeId> links,
                      std::span<const double> fresh) const;

 private:
  bool cost_moved(double old_value, double new_value) const;

  std::vector<std::uint8_t> dirty_;
  std::size_t dirty_count_ = 0;
  double threshold_ = 0.0;
  /// Per-node last-evaluation baseline: parallel (link, value) rows.
  std::vector<std::vector<graph::NodeId>> base_links_;
  std::vector<std::vector<double>> base_values_;
};

}  // namespace egoist::overlay
