#include "overlay/node_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace egoist::overlay {

NodeStore::NodeStore(std::size_t nodes, std::size_t wiring_capacity,
                     std::size_t donated_capacity)
    : wiring_cap_(wiring_capacity),
      donated_cap_(donated_capacity),
      wiring_(nodes * wiring_capacity, NodeId{-1}),
      wiring_count_(nodes, 0),
      donated_(nodes * donated_capacity, NodeId{-1}),
      donated_count_(nodes, 0),
      online_(nodes, 0) {}

std::size_t NodeStore::online_count() const {
  return static_cast<std::size_t>(
      std::count(online_.begin(), online_.end(), std::uint8_t{1}));
}

std::vector<NodeId> NodeStore::online_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t v = 0; v < online_.size(); ++v) {
    if (online_[v]) out.push_back(static_cast<NodeId>(v));
  }
  return out;
}

void NodeStore::set_wiring(std::size_t node, std::span<const NodeId> links) {
  if (links.size() > wiring_cap_) {
    throw std::length_error("wiring exceeds store capacity");
  }
  std::copy(links.begin(), links.end(), wiring_.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                node * wiring_cap_));
  wiring_count_[node] = static_cast<std::uint32_t>(links.size());
}

void NodeStore::set_donated(std::size_t node, std::span<const NodeId> links) {
  if (links.size() > donated_cap_) {
    throw std::length_error("donated links exceed store capacity");
  }
  std::copy(links.begin(), links.end(), donated_.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                node * donated_cap_));
  donated_count_[node] = static_cast<std::uint32_t>(links.size());
}

void EpochStore::begin(std::size_t nodes, std::size_t wiring_capacity,
                       bool dense) {
  dense_ = dense;
  wiring_cap_ = wiring_capacity;
  proposed_.assign(nodes * wiring_capacity, NodeId{-1});
  proposed_count_.assign(nodes, 0);
  adopt_.assign(nodes, 0);
  pool_offset_.assign(1, 0);
  pool_ids_.clear();
  pool_values_.clear();
  if (dense) {
    direct_.reshape(nodes, nodes);
  } else {
    pool_offset_.reserve(nodes + 1);
  }
}

void EpochStore::begin_dense(std::size_t nodes, std::size_t wiring_capacity) {
  begin(nodes, wiring_capacity, true);
}

void EpochStore::begin_sparse(std::size_t nodes, std::size_t wiring_capacity) {
  begin(nodes, wiring_capacity, false);
}

void EpochStore::add_pool(std::size_t node, std::span<const NodeId> ids,
                          std::span<const double> values) {
  if (ids.size() != values.size()) {
    throw std::invalid_argument("pool ids/values size mismatch");
  }
  if (node + 1 < pool_offset_.size()) {
    throw std::invalid_argument("pools must be appended in ascending order");
  }
  // Nodes skipped since the last append get empty pools.
  while (pool_offset_.size() <= node) pool_offset_.push_back(pool_ids_.size());
  pool_ids_.insert(pool_ids_.end(), ids.begin(), ids.end());
  pool_values_.insert(pool_values_.end(), values.begin(), values.end());
  pool_offset_.push_back(pool_ids_.size());
}

std::span<const NodeId> EpochStore::pool_ids(std::size_t node) const {
  if (node + 1 >= pool_offset_.size()) return {};
  return {pool_ids_.data() + pool_offset_[node],
          pool_offset_[node + 1] - pool_offset_[node]};
}

std::span<const double> EpochStore::pool_values(std::size_t node) const {
  if (node + 1 >= pool_offset_.size()) return {};
  return {pool_values_.data() + pool_offset_[node],
          pool_offset_[node + 1] - pool_offset_[node]};
}

void EpochStore::set_proposal(std::size_t node, std::span<const NodeId> wiring,
                              bool adopt) {
  if (wiring.size() > wiring_cap_) {
    throw std::length_error("proposal exceeds store capacity");
  }
  std::copy(wiring.begin(), wiring.end(),
            proposed_.begin() + static_cast<std::ptrdiff_t>(node * wiring_cap_));
  proposed_count_[node] = static_cast<std::uint32_t>(wiring.size());
  adopt_[node] = adopt ? 1 : 0;
}

}  // namespace egoist::overlay
