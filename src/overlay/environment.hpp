// The shared "PlanetLab" substrate an overlay (or several, concurrently)
// runs against: true delays, available bandwidth, node load, and the
// measurement planes (ping, Vivaldi coordinates, pathChirp-like probes).
//
// The paper neutralizes extrinsic variability by running all policies
// concurrently on the same nodes; we reproduce that by constructing one
// Environment and evaluating every policy's overlay against it.
#pragma once

#include <cstdint>
#include <memory>

#include "coord/vivaldi.hpp"
#include "net/bandwidth.hpp"
#include "net/delay_space.hpp"
#include "net/load.hpp"
#include "net/measurement.hpp"

namespace egoist::overlay {

struct EnvironmentConfig {
  net::GeoDelayConfig geo;            ///< PlanetLab-like delay generator knobs
  net::BandwidthConfig bandwidth;
  net::LoadConfig load;
  coord::VivaldiConfig vivaldi;
  double ping_jitter_ms = 1.0;        ///< per-sample ping noise
  int ping_samples = 5;
  double bw_probe_error = 0.05;       ///< pathChirp-like relative error
  int coord_warmup_rounds = 200;      ///< Vivaldi convergence before use

  /// Slow per-pair delay drift (mean-reverting, relative): Internet paths
  /// wander as routes and queues change, which is what sustains a nonzero
  /// re-wiring rate at steady state (Fig 3).
  double delay_drift_volatility = 0.004;  ///< innovation per sqrt(second)
  double delay_drift_reversion = 0.01;    ///< pull toward 0 per second
  double delay_drift_cap = 0.3;           ///< |drift| bound
};

/// Owns all substrate models for an n-node deployment.
class Environment {
 public:
  Environment(std::size_t n, std::uint64_t seed, EnvironmentConfig config = {});

  std::size_t size() const { return delays_.size(); }

  const net::DelaySpace& delays() const { return delays_; }
  const net::BandwidthModel& bandwidth() const { return bandwidth_; }
  const net::LoadModel& load() const { return load_; }
  const coord::VivaldiSystem& coords() const { return coords_; }

  /// --- True (oracle) per-link quantities, used to score overlays ---
  /// Base delay modulated by the current drift state.
  double true_delay(int i, int j) const;
  double true_load(int node) const { return load_.load(node); }
  double true_avail_bw(int i, int j) const { return bandwidth_.avail_bw(i, j); }

  /// --- Measured quantities, used by nodes to decide ---
  /// Ping estimates are smoothed across calls (EWMA, alpha = 0.3): nodes
  /// monitor links continuously and fold fresh samples into a running
  /// average rather than trusting a single epoch's probe.
  double measure_delay_ping(int i, int j);
  double measure_delay_coords(int i, int j) const {
    return coords_.estimate_one_way(i, j);
  }
  /// EWMA-smoothed load as the node itself reports it.
  double measure_load(int node) const;
  double measure_avail_bw(int i, int j) { return bw_probe_.estimate(i, j); }

  /// Advances the dynamic processes by dt seconds (bandwidth cross
  /// traffic, node load, one coordinate-maintenance round, load EWMAs).
  void advance(double dt);

  double now() const { return now_; }

 private:
  net::DelaySpace delays_;
  net::BandwidthModel bandwidth_;
  net::LoadModel load_;
  coord::VivaldiSystem coords_;
  net::BandwidthProber bw_probe_;
  std::vector<net::LoadEstimator> load_estimators_;
  std::vector<double> ping_smoothed_;  ///< per-pair EWMA; NaN = no sample yet
  std::vector<double> delay_drift_;    ///< per-pair relative drift state
  EnvironmentConfig env_config_;
  util::Rng rng_;
  double now_ = 0.0;
};

}  // namespace egoist::overlay
