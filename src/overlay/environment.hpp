// The shared "PlanetLab" substrate an overlay (or several, concurrently)
// runs against: true delays, available bandwidth, node load, and the
// measurement planes (ping, Vivaldi coordinates, pathChirp-like probes).
//
// The paper neutralizes extrinsic variability by running all policies
// concurrently on the same nodes; we reproduce that by constructing one
// Substrate and evaluating every policy's overlay against it through its
// own Environment (one measurement plane per overlay).
//
// Substrates are backed by a pluggable net::UnderlayBackend: the dense
// stateful models (the default — every fixed-seed figure stays
// byte-identical) or the procedural O(n)-memory substrate that opens the
// §5 scale regime. Measurement planes follow suit: below
// sparse_plane_threshold nodes on a dense backend they keep the historical
// dense per-pair arrays (bit-exact); at scale, or on the procedural
// backend, they hold sparse pair state keyed by the pairs actually probed
// and derive per-pair delay drift procedurally — O(probed pairs), not
// O(n^2).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "coord/vivaldi.hpp"
#include "net/load.hpp"
#include "net/measurement.hpp"
#include "net/underlay.hpp"

namespace egoist::overlay {

struct EnvironmentConfig {
  net::GeoDelayConfig geo;            ///< PlanetLab-like delay generator knobs
  net::BandwidthConfig bandwidth;
  net::LoadConfig load;
  coord::VivaldiConfig vivaldi;
  double ping_jitter_ms = 1.0;        ///< per-sample ping noise
  int ping_samples = 5;
  double bw_probe_error = 0.05;       ///< pathChirp-like relative error
  int coord_warmup_rounds = 200;      ///< Vivaldi convergence before use

  /// Slow per-pair delay drift (mean-reverting, relative): Internet paths
  /// wander as routes and queues change, which is what sustains a nonzero
  /// re-wiring rate at steady state (Fig 3).
  double delay_drift_volatility = 0.004;  ///< innovation per sqrt(second)
  double delay_drift_reversion = 0.01;    ///< pull toward 0 per second
  double delay_drift_cap = 0.3;           ///< |drift| bound

  /// Which substrate backend to construct (dense = the historical models).
  net::UnderlayKind underlay = net::UnderlayKind::kDense;

  /// Measurement planes switch from the historical dense per-pair arrays
  /// to sparse probed-pair state at this node count (and always on the
  /// procedural backend). Dense planes below the threshold are bit-exact
  /// with the pre-backend code; sparse planes draw their delay drift from
  /// a procedural hash stream instead of a stateful O(n^2) sweep.
  std::size_t sparse_plane_threshold = 512;
};

/// The dynamic processes every overlay on one deployment shares: the
/// underlay backend (delay/bandwidth/load fields) and the Vivaldi
/// coordinate system. Advanced at most once per point in time — concurrent
/// overlays whose measurement planes advance in lockstep see one substrate
/// trajectory, identical to the trajectory a single overlay would see.
class Substrate {
 public:
  Substrate(std::size_t n, std::uint64_t seed, EnvironmentConfig config = {});

  std::size_t size() const { return backend_->size(); }
  std::uint64_t seed() const { return seed_; }
  const EnvironmentConfig& config() const { return config_; }

  const net::UnderlayBackend& backend() const { return *backend_; }
  net::UnderlayKind underlay_kind() const { return backend_->kind(); }

  const net::DelayField& delays() const { return backend_->delays(); }
  const net::BandwidthField& bandwidth() const { return backend_->bandwidth(); }
  const net::LoadField& load() const { return backend_->load(); }
  const coord::VivaldiSystem& coords() const { return coords_; }

  /// Substrate storage footprint: backend state plus the O(n) coordinate
  /// system (telemetry for the scale experiments).
  std::size_t memory_bytes() const;

  double now() const { return now_; }

  /// Advances the dynamic processes by `dt` seconds, landing on plane time
  /// `to`. A no-op when the substrate already reached `to` — that is how N
  /// lockstep measurement planes share one substrate without advancing it
  /// N times per step. (Planes whose advance schedules differ each pull the
  /// substrate forward by their own dt; determinism always holds, but
  /// equivalence with a solo run needs matching schedules.)
  void advance_step(double dt, double to);

 private:
  std::unique_ptr<net::UnderlayBackend> backend_;
  coord::VivaldiSystem coords_;
  EnvironmentConfig config_;
  std::uint64_t seed_;
  double now_ = 0.0;
};

/// One overlay's view of a Substrate: the true (oracle) quantities used for
/// scoring, plus the noisy measurement plane the overlay's nodes decide on
/// (ping EWMAs, bandwidth probe state, per-pair delay drift, load
/// estimators, and the measurement noise stream).
///
/// The owning constructor builds a private Substrate, which is the classic
/// single-overlay deployment. The sharing constructor attaches a fresh,
/// identically-seeded plane to an existing Substrate — the multi-overlay
/// host path: every plane seeded alike sees the same noise realization, so
/// concurrent overlays are compared under identical conditions exactly like
/// the paper's per-policy PlanetLab agents.
class Environment {
 public:
  Environment(std::size_t n, std::uint64_t seed, EnvironmentConfig config = {});

  /// Measurement-plane fork over a shared substrate; `seed` seeds this
  /// plane's noise streams the same way the owning constructor would.
  Environment(std::shared_ptr<Substrate> substrate, std::uint64_t seed);

  std::size_t size() const { return substrate_->size(); }

  const net::DelayField& delays() const { return substrate_->delays(); }
  const net::BandwidthField& bandwidth() const { return substrate_->bandwidth(); }
  const net::LoadField& load() const { return substrate_->load(); }
  const coord::VivaldiSystem& coords() const { return substrate_->coords(); }
  const std::shared_ptr<Substrate>& substrate() const { return substrate_; }

  /// --- True (oracle) per-link quantities, used to score overlays ---
  /// Base delay modulated by the current drift state.
  double true_delay(int i, int j) const;
  double true_load(int node) const { return substrate_->load().load(node); }
  double true_avail_bw(int i, int j) const {
    return substrate_->bandwidth().avail_bw(i, j);
  }

  /// --- Measured quantities, used by nodes to decide ---
  /// Ping estimates are smoothed across calls (EWMA, alpha = 0.3): nodes
  /// monitor links continuously and fold fresh samples into a running
  /// average rather than trusting a single epoch's probe.
  double measure_delay_ping(int i, int j);
  double measure_delay_coords(int i, int j) const {
    return substrate_->coords().estimate_one_way(i, j);
  }
  /// EWMA-smoothed load as the node itself reports it.
  double measure_load(int node) const;
  double measure_avail_bw(int i, int j) { return bw_probe_.estimate(i, j); }

  /// Advances this plane (and, when it is the first plane to reach the new
  /// time, the shared substrate) by dt seconds: bandwidth cross traffic,
  /// node load, one coordinate-maintenance round, load EWMAs, delay drift.
  void advance(double dt);

  double now() const { return now_; }

  /// --- Plane telemetry (scale experiments) ---
  /// True when this plane holds sparse probed-pair state instead of the
  /// dense n^2 arrays.
  bool sparse_plane() const { return sparse_plane_; }

  /// Directed pairs this plane has pinged at least once.
  std::size_t probed_pairs() const;

  /// Approximate bytes of per-pair measurement state (ping EWMAs + drift).
  std::size_t plane_memory_bytes() const;

 private:
  double drift(int i, int j) const;

  std::shared_ptr<Substrate> substrate_;
  net::BandwidthProber bw_probe_;
  std::vector<net::LoadEstimator> load_estimators_;
  bool sparse_plane_ = false;

  /// Dense plane (historical layout; bit-exact below the threshold).
  std::vector<double> ping_smoothed_;  ///< per-pair EWMA; NaN = no sample yet
  std::vector<double> delay_drift_;    ///< per-pair relative drift state

  /// Sparse plane: EWMA state only for pairs actually probed; drift is a
  /// pure function of (plane drift seed, i, j, time) — no per-pair state.
  std::unordered_map<std::uint64_t, double> ping_sparse_;
  std::uint64_t drift_seed_ = 0;
  double drift_amp_ = 0.0;
  double drift_tau_ = 1.0;

  util::Rng rng_;
  double now_ = 0.0;
};

}  // namespace egoist::overlay
