// The shared "PlanetLab" substrate an overlay (or several, concurrently)
// runs against: true delays, available bandwidth, node load, and the
// measurement planes (ping, Vivaldi coordinates, pathChirp-like probes).
//
// The paper neutralizes extrinsic variability by running all policies
// concurrently on the same nodes; we reproduce that by constructing one
// Substrate and evaluating every policy's overlay against it through its
// own Environment (one measurement plane per overlay).
#pragma once

#include <cstdint>
#include <memory>

#include "coord/vivaldi.hpp"
#include "net/bandwidth.hpp"
#include "net/delay_space.hpp"
#include "net/load.hpp"
#include "net/measurement.hpp"

namespace egoist::overlay {

struct EnvironmentConfig {
  net::GeoDelayConfig geo;            ///< PlanetLab-like delay generator knobs
  net::BandwidthConfig bandwidth;
  net::LoadConfig load;
  coord::VivaldiConfig vivaldi;
  double ping_jitter_ms = 1.0;        ///< per-sample ping noise
  int ping_samples = 5;
  double bw_probe_error = 0.05;       ///< pathChirp-like relative error
  int coord_warmup_rounds = 200;      ///< Vivaldi convergence before use

  /// Slow per-pair delay drift (mean-reverting, relative): Internet paths
  /// wander as routes and queues change, which is what sustains a nonzero
  /// re-wiring rate at steady state (Fig 3).
  double delay_drift_volatility = 0.004;  ///< innovation per sqrt(second)
  double delay_drift_reversion = 0.01;    ///< pull toward 0 per second
  double delay_drift_cap = 0.3;           ///< |drift| bound
};

/// The dynamic processes every overlay on one deployment shares: the delay
/// space, cross-traffic bandwidth, node load, and the Vivaldi coordinate
/// system. Advanced at most once per point in time — concurrent overlays
/// whose measurement planes advance in lockstep see one substrate
/// trajectory, identical to the trajectory a single overlay would see.
class Substrate {
 public:
  Substrate(std::size_t n, std::uint64_t seed, EnvironmentConfig config = {});

  std::size_t size() const { return delays_.size(); }
  std::uint64_t seed() const { return seed_; }
  const EnvironmentConfig& config() const { return config_; }

  const net::DelaySpace& delays() const { return delays_; }
  const net::BandwidthModel& bandwidth() const { return bandwidth_; }
  const net::LoadModel& load() const { return load_; }
  const coord::VivaldiSystem& coords() const { return coords_; }

  double now() const { return now_; }

  /// Advances the dynamic processes by `dt` seconds, landing on plane time
  /// `to`. A no-op when the substrate already reached `to` — that is how N
  /// lockstep measurement planes share one substrate without advancing it
  /// N times per step. (Planes whose advance schedules differ each pull the
  /// substrate forward by their own dt; determinism always holds, but
  /// equivalence with a solo run needs matching schedules.)
  void advance_step(double dt, double to);

 private:
  net::DelaySpace delays_;
  net::BandwidthModel bandwidth_;
  net::LoadModel load_;
  coord::VivaldiSystem coords_;
  EnvironmentConfig config_;
  std::uint64_t seed_;
  double now_ = 0.0;
};

/// One overlay's view of a Substrate: the true (oracle) quantities used for
/// scoring, plus the noisy measurement plane the overlay's nodes decide on
/// (ping EWMAs, bandwidth probe state, per-pair delay drift, load
/// estimators, and the measurement noise stream).
///
/// The owning constructor builds a private Substrate, which is the classic
/// single-overlay deployment. The sharing constructor attaches a fresh,
/// identically-seeded plane to an existing Substrate — the multi-overlay
/// host path: every plane seeded alike sees the same noise realization, so
/// concurrent overlays are compared under identical conditions exactly like
/// the paper's per-policy PlanetLab agents.
class Environment {
 public:
  Environment(std::size_t n, std::uint64_t seed, EnvironmentConfig config = {});

  /// Measurement-plane fork over a shared substrate; `seed` seeds this
  /// plane's noise streams the same way the owning constructor would.
  Environment(std::shared_ptr<Substrate> substrate, std::uint64_t seed);

  std::size_t size() const { return substrate_->size(); }

  const net::DelaySpace& delays() const { return substrate_->delays(); }
  const net::BandwidthModel& bandwidth() const { return substrate_->bandwidth(); }
  const net::LoadModel& load() const { return substrate_->load(); }
  const coord::VivaldiSystem& coords() const { return substrate_->coords(); }
  const std::shared_ptr<Substrate>& substrate() const { return substrate_; }

  /// --- True (oracle) per-link quantities, used to score overlays ---
  /// Base delay modulated by the current drift state.
  double true_delay(int i, int j) const;
  double true_load(int node) const { return substrate_->load().load(node); }
  double true_avail_bw(int i, int j) const {
    return substrate_->bandwidth().avail_bw(i, j);
  }

  /// --- Measured quantities, used by nodes to decide ---
  /// Ping estimates are smoothed across calls (EWMA, alpha = 0.3): nodes
  /// monitor links continuously and fold fresh samples into a running
  /// average rather than trusting a single epoch's probe.
  double measure_delay_ping(int i, int j);
  double measure_delay_coords(int i, int j) const {
    return substrate_->coords().estimate_one_way(i, j);
  }
  /// EWMA-smoothed load as the node itself reports it.
  double measure_load(int node) const;
  double measure_avail_bw(int i, int j) { return bw_probe_.estimate(i, j); }

  /// Advances this plane (and, when it is the first plane to reach the new
  /// time, the shared substrate) by dt seconds: bandwidth cross traffic,
  /// node load, one coordinate-maintenance round, load EWMAs, delay drift.
  void advance(double dt);

  double now() const { return now_; }

 private:
  std::shared_ptr<Substrate> substrate_;
  net::BandwidthProber bw_probe_;
  std::vector<net::LoadEstimator> load_estimators_;
  std::vector<double> ping_smoothed_;  ///< per-pair EWMA; NaN = no sample yet
  std::vector<double> delay_drift_;    ///< per-pair relative drift state
  util::Rng rng_;
  double now_ = 0.0;
};

}  // namespace egoist::overlay
