// Configuration types for an EGOIST overlay deployment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/policies.hpp"

namespace egoist::overlay {

/// Neighbor-selection policy (§3.2, §3.3).
enum class Policy {
  kBestResponse,  ///< BR: minimize local cost (the EGOIST default)
  kHybridBR,      ///< k2 donated backbone links + BR on the rest (§3.3)
  kRandom,        ///< k uniform random neighbors
  kClosest,       ///< k minimum-direct-cost neighbors
  kRegular,       ///< common offset vector around the id ring
  kFullMesh,      ///< connect to everyone (the RON-style upper bound)
};

/// Cost metric (§4.1).
enum class Metric {
  kDelayPing,    ///< one-way delay estimated via ping (active)
  kDelayCoords,  ///< one-way delay from Vivaldi coordinates (passive)
  kNodeLoad,     ///< per-node CPU load; path cost sums node loads
  kBandwidth,    ///< available bandwidth (bigger is better)
};

/// HybridBR backbone construction (§3.3).
enum class Backbone {
  kCycles,  ///< k2/2 bidirectional ring cycles (EGOIST's choice)
  kMst,     ///< minimum-spanning-tree mesh (Young et al. [43] style)
};

/// When a neighbor is detected dead (§3.3).
enum class RewireMode {
  kDelayed,    ///< repair at the next wiring epoch (EGOIST's default)
  kImmediate,  ///< re-evaluate as soon as the loss is detected
};

/// How BR/HybridBR compute residual all-pairs distances.
enum class PathBackend {
  kCsrEngine,  ///< graph::PathEngine: CSR snapshot + reusable workspace
  kLegacy,     ///< residual Digraph copy + graph::all_pairs_* (reference)
};

const char* to_string(Policy policy);
const char* to_string(Metric metric);
const char* to_string(Backbone backbone);
const char* to_string(PathBackend backend);

/// Parse the to_string names back into enums (scenario files / CLI flags).
/// Throw std::invalid_argument listing the accepted spellings.
Policy parse_policy(const std::string& name);
Metric parse_metric(const std::string& name);
Backbone parse_backbone(const std::string& name);
PathBackend parse_path_backend(const std::string& name);

struct OverlayConfig {
  std::size_t k = 5;                  ///< neighbor budget per node
  Policy policy = Policy::kBestResponse;
  Metric metric = Metric::kDelayPing;

  /// BR(eps): re-wire only when the new wiring improves the local cost by
  /// more than this fraction (0 = plain BR; paper evaluates 0.1).
  double epsilon = 0.0;

  /// Measurement-noise floor for plain BR (epsilon == 0): improvements
  /// below this fraction of the current cost are indistinguishable from
  /// ping/probe noise and do not trigger a re-wire. The deployed system
  /// gets the same effect from averaging link samples across an epoch.
  double noise_floor = 0.01;

  /// HybridBR: number of donated backbone links k2 (must be even, < k).
  std::size_t donated_links = 2;

  /// HybridBR: how the donated links form a connectivity backbone.
  Backbone backbone = Backbone::kCycles;

  /// Reaction to a neighbor's departure (immediate mode models aggressive
  /// link monitoring on *all* links, not just donated ones).
  RewireMode rewire_mode = RewireMode::kDelayed;

  /// Audits (§3.4): before using an announced link cost, cross-check it
  /// against the virtual-coordinate estimate; announcements more than
  /// audit_tolerance x the estimate are discarded and replaced by the
  /// estimate, neutering cost-inflation cheaters. Delay metrics only.
  bool enable_audits = false;
  double audit_tolerance = 1.5;

  /// Free riders: nodes that announce link costs inflated by cheat_factor
  /// (> 1; the paper's experiment uses 2x). Only they lie; their own
  /// decisions use truthful local measurements.
  std::vector<int> cheaters;
  double cheat_factor = 2.0;

  /// Best-response search tuning.
  core::BestResponseOptions search;

  /// Residual path computation backend. kCsrEngine is the allocation-free
  /// hot path; kLegacy is the reference implementation it is validated
  /// against (bit-identical distances, so identical wiring trajectories).
  PathBackend path_backend = PathBackend::kCsrEngine;

  /// Worker threads for the engine's per-source SSSP loop (read-only CSR,
  /// disjoint output rows — results are identical at any setting).
  /// 1 = serial, 0 = auto (min(4, hardware threads)). Only the CSR engine
  /// backend parallelizes.
  int path_workers = 1;

  /// Worker threads for the wiring epoch itself (BR/HybridBR only; the
  /// other policies are trivial and ignore this). 0 (the default) keeps the
  /// legacy sequential epoch: nodes evaluate in a shuffled order and each
  /// sees the re-wirings of the nodes before it — byte-identical to the
  /// historical trajectories. >= 1 switches run_epoch to the snapshot ->
  /// parallel evaluate -> deterministic merge pipeline
  /// (overlay/epoch_engine.hpp): every node best-responds to the immutable
  /// epoch-boundary state and adopted re-wirings merge in ascending node
  /// order, so the trajectory is bit-identical at ANY worker count — 1 vs N
  /// only changes wall-clock time. Negative values throw.
  int epoch_workers = 0;

  /// §5 scale mode: when > 0, BR/HybridBR nodes evaluate a per-node random
  /// sample of this many candidates (plus their current and donated links)
  /// against `br_landmarks` epoch-shared landmark destinations instead of
  /// running the full-residual objective over all n-1 nodes. Measurement
  /// cost per node drops from O(n) pings to O(sample), and no O(n^2)
  /// residual state is ever materialized — the regime the scale_frontier
  /// experiment sweeps. 0 (the default) is the exact dense path,
  /// bit-identical to the pre-scale-mode code. BR/HybridBR only; requires
  /// uniform preferences (zipf 0) and audits off.
  std::size_t br_sample = 0;

  /// Scale mode: number of epoch-shared landmark destinations the sampled
  /// objective scores against (ignored when br_sample == 0).
  std::size_t br_landmarks = 64;

  /// Routing-preference skew (footnote 8): each node weights destinations
  /// by a Zipf law with this exponent over a node-specific random ranking
  /// (0 = uniform preference, the paper's conservative default). BR
  /// leverages skew — it spends links on the destinations a node actually
  /// talks to — while the heuristics cannot.
  double preference_zipf_exponent = 0.0;

  /// Incremental dirty-set epochs (BR/HybridBR only; requires audits off).
  /// When on, run_epoch — sequential and pipeline alike — evaluates only
  /// nodes whose last best response may have been invalidated (a
  /// neighbor's significant re-announce, a candidate-set churn event,
  /// measurement drift past drift_threshold, or a path-engine row their
  /// base tree lost to an accepted proposal), skipping the rest entirely:
  /// no measurement, no announcement refresh, no BR search. The first
  /// epoch and any structural reset seed the full set. Off (the default)
  /// keeps every figure output byte-identical to the full recompute.
  bool incremental = false;

  /// Relative per-link drift tolerance for incremental mode. 0 (the
  /// default) is exact mode: marking is conservative — any announce delta
  /// or membership change dirties every node — which makes the incremental
  /// trajectory bit-identical to the full recompute. > 0 is tolerance
  /// mode: only deltas beyond this fraction mark, and clean nodes are
  /// drift-probed against the link baseline captured at their last
  /// evaluation; scores then stay within a (tested) tolerance band rather
  /// than being bit-exact. Negative values throw.
  double drift_threshold = 0.0;

  std::uint64_t seed = 1;  ///< policy randomness (k-Random draws, tie noise)
};

}  // namespace egoist::overlay
