// Structure-of-arrays component storage for per-node overlay state.
//
// The per-node objects the network used to keep (one heap-allocated
// vector<NodeId> per node for wiring and donated links, a vector<bool> for
// membership) scatter an epoch's working set across the heap. NodeStore
// hoists them into flat component slabs — one contiguous array per
// component, fixed per-node capacity, a count array beside it — so a
// worker sweeping a node range touches consecutive cache lines and two
// workers can never write the same allocation.
//
// EpochStore holds the epoch-scoped planes of the parallel pipeline
// (overlay/epoch_engine.hpp): the measurement plane captured during the
// sequential snapshot phase (a dense n x n matrix, or compact per-node
// pools in §5 scale mode) and the proposal plane the evaluate phase writes
// (proposed wiring rows + adoption flags, one disjoint slot per node).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/distance_matrix.hpp"

namespace egoist::overlay {

using graph::NodeId;

class NodeStore {
 public:
  NodeStore() = default;
  /// Capacities are hard per-node bounds (set_* throws beyond them): the
  /// wiring degree bound k (n - 1 for a full mesh) and the donated-link
  /// budget k2. All nodes start offline with empty rows.
  NodeStore(std::size_t nodes, std::size_t wiring_capacity,
            std::size_t donated_capacity);

  std::size_t size() const { return online_.size(); }
  std::size_t wiring_capacity() const { return wiring_cap_; }

  bool is_online(std::size_t node) const { return online_[node] != 0; }
  void set_online(std::size_t node, bool online) {
    online_[node] = online ? 1 : 0;
  }
  std::size_t online_count() const;
  std::vector<NodeId> online_nodes() const;  ///< ascending

  std::span<const NodeId> wiring(std::size_t node) const {
    return {wiring_.data() + node * wiring_cap_, wiring_count_[node]};
  }
  std::span<const NodeId> donated(std::size_t node) const {
    return {donated_.data() + node * donated_cap_, donated_count_[node]};
  }

  /// Copies (cheap: at most the capacity) for call sites that need an
  /// owning container — search seeds, hook payloads.
  std::vector<NodeId> wiring_vec(std::size_t node) const {
    const auto w = wiring(node);
    return {w.begin(), w.end()};
  }
  std::vector<NodeId> donated_vec(std::size_t node) const {
    const auto d = donated(node);
    return {d.begin(), d.end()};
  }

  void set_wiring(std::size_t node, std::span<const NodeId> links);
  void set_donated(std::size_t node, std::span<const NodeId> links);
  void clear_wiring(std::size_t node) { wiring_count_[node] = 0; }
  void clear_donated(std::size_t node) { donated_count_[node] = 0; }

 private:
  std::size_t wiring_cap_ = 0;
  std::size_t donated_cap_ = 0;
  std::vector<NodeId> wiring_;                ///< nodes x wiring_cap_
  std::vector<std::uint32_t> wiring_count_;
  std::vector<NodeId> donated_;               ///< nodes x donated_cap_
  std::vector<std::uint32_t> donated_count_;
  std::vector<std::uint8_t> online_;
};

class EpochStore {
 public:
  /// Dense mode: the measurement plane is an n x n matrix (row v = node
  /// v's fresh direct measurements, indexed by destination id).
  void begin_dense(std::size_t nodes, std::size_t wiring_capacity);

  /// Scale mode: the plane is CSR-style per-node pools (ids + measured
  /// values, appended in ascending node order during the snapshot phase),
  /// so memory stays O(probed pairs) instead of O(n^2).
  void begin_sparse(std::size_t nodes, std::size_t wiring_capacity);

  bool dense() const { return dense_; }

  std::span<double> direct_row(std::size_t node) {
    return direct_.row(node);
  }
  std::span<const double> direct_row(std::size_t node) const {
    return direct_.row(node);
  }

  /// Appends node's pool (must be called in ascending node order; nodes
  /// without a call keep an empty pool). `values[i]` is the measured value
  /// of pool id `ids[i]`.
  void add_pool(std::size_t node, std::span<const NodeId> ids,
                std::span<const double> values);
  std::span<const NodeId> pool_ids(std::size_t node) const;
  std::span<const double> pool_values(std::size_t node) const;

  /// Proposal plane: one disjoint slot per node, safe for concurrent
  /// writers on distinct nodes.
  void set_proposal(std::size_t node, std::span<const NodeId> wiring,
                    bool adopt);
  std::span<const NodeId> proposal(std::size_t node) const {
    return {proposed_.data() + node * wiring_cap_, proposed_count_[node]};
  }
  bool adopted(std::size_t node) const { return adopt_[node] != 0; }

 private:
  void begin(std::size_t nodes, std::size_t wiring_capacity, bool dense);

  bool dense_ = false;
  std::size_t wiring_cap_ = 0;
  graph::DistanceMatrix direct_;              ///< dense measurement plane
  std::vector<std::size_t> pool_offset_;      ///< sparse plane (CSR append)
  std::vector<NodeId> pool_ids_;
  std::vector<double> pool_values_;
  std::vector<NodeId> proposed_;              ///< nodes x wiring_cap_
  std::vector<std::uint32_t> proposed_count_;
  std::vector<std::uint8_t> adopt_;
};

}  // namespace egoist::overlay
