// Worker-side machinery of the deterministic parallel epoch pipeline.
//
// EgoistNetwork::run_epoch splits a parallel epoch (config.epoch_workers
// >= 1, BR/HybridBR policies) into three phases:
//
//   snapshot  — sequential, ascending node order: all RNG draws (sample
//               pools, landmark choices) and all stateful measurements
//               (ping EWMAs, noise streams) happen here, captured into an
//               EpochStore; the decision graph is frozen and the shared
//               path-engine base trees are prepared.
//   evaluate  — parallel: each node's best response is computed against
//               the immutable epoch-start snapshot. A task reads only
//               frozen state plus its own EpochStore rows and writes only
//               its node's disjoint proposal slot, so the outcome is
//               independent of scheduling.
//   merge     — sequential, ascending node order: adopted proposals are
//               applied and hooks fire, so observers see one canonical
//               order.
//
// Because the evaluate phase is a pure per-node function of the snapshot,
// the whole epoch trajectory is bit-identical at any worker count — the
// contract tests/overlay/parallel_epoch_test.cpp enforces.
//
// EpochEngine owns the reusable worker pool and one workspace per worker
// (path-query scratch, best-response scratch, residual matrix, a
// measurement row buffer), so steady-state epochs allocate nothing new.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/policies.hpp"
#include "graph/path_engine.hpp"
#include "util/worker_pool.hpp"

namespace egoist::overlay {

/// Per-worker mutable state for the evaluate phase. Workers never share
/// one: index w belongs to pool worker w.
struct EpochWorkspace {
  graph::PathEngine::QueryScratch query;
  core::BestResponseScratch br;
  graph::DistanceMatrix residual;
  /// Full-size direct-measurement buffer for scale mode: filled from a
  /// node's pool before evaluation, restored to defaults after, so each
  /// evaluation costs O(pool), not O(n).
  std::vector<double> direct;
};

class EpochEngine {
 public:
  /// `workers` >= 1 (resolve 0 = auto with util::WorkerPool::resolve
  /// before constructing).
  explicit EpochEngine(int workers) : pool_(workers) {
    workspaces_.resize(static_cast<std::size_t>(pool_.size()));
  }

  int workers() const { return pool_.size(); }

  using NodeTask = std::function<void(std::size_t, EpochWorkspace&)>;

  /// Runs fn(task, workspace) for every task in [0, tasks) across the
  /// pool. Deterministic for tasks with disjoint outputs (the evaluate
  /// phase); rethrows the lowest task's exception.
  void run(std::size_t tasks, const NodeTask& fn) {
    pool_.run(tasks, [&](std::size_t task, std::size_t worker) {
      fn(task, workspaces_[worker]);
    });
  }

 private:
  util::WorkerPool pool_;
  std::vector<EpochWorkspace> workspaces_;
};

}  // namespace egoist::overlay
