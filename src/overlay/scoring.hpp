// Overlay scoring primitives, shared by the live EgoistNetwork accessors
// and by host::WiringSnapshot.
//
// Scores are pure functions of a true-cost (or true-bandwidth) graph plus
// the online target set — keeping them free functions is what lets an
// immutable snapshot reproduce exactly the numbers the live overlay would
// report, bit for bit, without reaching back into the mutating engine.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace egoist::overlay {

using graph::NodeId;

/// Uniform (or preference-weighted) routing cost per target node, computed
/// on true costs. `preferences` is indexed by node id and may be empty
/// (uniform preference, the paper's conservative default); a non-empty
/// entry is the node's normalized preference over all destinations.
std::vector<double> score_node_costs(
    const graph::Digraph& true_cost_graph, const std::vector<NodeId>& targets,
    const std::vector<std::vector<double>>& preferences);

/// Single-node variant of score_node_costs: the routing cost of `node`
/// alone (one Dijkstra instead of |targets|). Bit-identical to the
/// matching entry of score_node_costs. Point queries (RouteService::score)
/// use this so a per-node read never pays the full scoring sweep.
double score_node_cost(const graph::Digraph& true_cost_graph,
                       const std::vector<NodeId>& targets,
                       const std::vector<std::vector<double>>& preferences,
                       NodeId node);

/// Efficiency (mean of 1/d over reachable targets, 0 when disconnected)
/// per target node.
std::vector<double> score_node_efficiencies(const graph::Digraph& true_cost_graph,
                                            const std::vector<NodeId>& targets);

/// Mean bottleneck bandwidth to all other targets per target node.
std::vector<double> score_node_bandwidth(
    const graph::Digraph& true_bandwidth_graph,
    const std::vector<NodeId>& targets);

}  // namespace egoist::overlay
