// Overlay scoring primitives, shared by the live EgoistNetwork accessors
// and by host::WiringSnapshot.
//
// Scores are pure functions of a true-cost (or true-bandwidth) graph plus
// the online target set — keeping them free functions is what lets an
// immutable snapshot reproduce exactly the numbers the live overlay would
// report, bit for bit, without reaching back into the mutating engine.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace egoist::overlay {

using graph::NodeId;

/// Uniform (or preference-weighted) routing cost per target node, computed
/// on true costs. `preferences` is indexed by node id and may be empty
/// (uniform preference, the paper's conservative default); a non-empty
/// entry is the node's normalized preference over all destinations.
std::vector<double> score_node_costs(
    const graph::Digraph& true_cost_graph, const std::vector<NodeId>& targets,
    const std::vector<std::vector<double>>& preferences);

/// Efficiency (mean of 1/d over reachable targets, 0 when disconnected)
/// per target node.
std::vector<double> score_node_efficiencies(const graph::Digraph& true_cost_graph,
                                            const std::vector<NodeId>& targets);

/// Mean bottleneck bandwidth to all other targets per target node.
std::vector<double> score_node_bandwidth(
    const graph::Digraph& true_bandwidth_graph,
    const std::vector<NodeId>& targets);

}  // namespace egoist::overlay
