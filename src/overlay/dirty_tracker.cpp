#include "overlay/dirty_tracker.hpp"

#include <algorithm>
#include <cmath>

namespace egoist::overlay {

void DirtyTracker::reset(std::size_t n, double drift_threshold) {
  threshold_ = drift_threshold;
  dirty_.assign(n, 1);
  dirty_count_ = n;
  base_links_.assign(n, {});
  base_values_.assign(n, {});
}

void DirtyTracker::mark(std::size_t v) {
  if (dirty_[v] == 0) {
    dirty_[v] = 1;
    ++dirty_count_;
  }
}

void DirtyTracker::mark_all() {
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{1});
  dirty_count_ = dirty_.size();
}

void DirtyTracker::clear(std::size_t v) {
  if (dirty_[v] != 0) {
    dirty_[v] = 0;
    --dirty_count_;
  }
}

bool DirtyTracker::cost_moved(double old_value, double new_value) const {
  if (exact()) return old_value != new_value;
  const double scale = std::max(std::abs(old_value), 1e-9);
  return std::abs(new_value - old_value) > threshold_ * scale;
}

bool DirtyTracker::announce_delta_significant(
    std::span<const graph::Edge> old_row,
    std::span<const graph::Edge> new_row) const {
  if (old_row.size() != new_row.size()) return true;
  // Rows may be unsorted; match each new edge against the old row. Rows
  // are k-bounded so the quadratic scan stays cheap.
  for (const auto& e : new_row) {
    const auto it = std::find_if(
        old_row.begin(), old_row.end(),
        [&](const graph::Edge& o) { return o.to == e.to; });
    if (it == old_row.end()) return true;  // edge-set change
    if (cost_moved(it->weight, e.weight)) return true;
  }
  return false;
}

void DirtyTracker::on_membership(std::size_t node, bool global_candidates,
                                 std::span<const graph::NodeId> holders) {
  if (exact() || global_candidates) {
    // A join/leave changes every node's candidate set when candidates are
    // global; in exact mode we stay conservative regardless.
    mark_all();
    return;
  }
  mark(node);
  for (const auto h : holders) mark(static_cast<std::size_t>(h));
}

void DirtyTracker::set_baseline(std::size_t v,
                                std::span<const graph::NodeId> links,
                                std::span<const double> values) {
  auto& bl = base_links_[v];
  auto& bv = base_values_[v];
  bl.assign(links.begin(), links.end());
  bv.resize(bl.size());
  for (std::size_t i = 0; i < bl.size(); ++i) {
    bv[i] = values[static_cast<std::size_t>(bl[i])];
  }
}

bool DirtyTracker::drift_exceeded(std::size_t v,
                                  std::span<const graph::NodeId> links,
                                  std::span<const double> fresh) const {
  if (exact()) return false;
  const auto& bl = base_links_[v];
  const auto& bv = base_values_[v];
  for (const auto link : links) {
    const auto it = std::find(bl.begin(), bl.end(), link);
    if (it == bl.end()) return true;  // link gained since last evaluation
    const double base = bv[static_cast<std::size_t>(it - bl.begin())];
    if (cost_moved(base, fresh[static_cast<std::size_t>(link)])) return true;
  }
  return false;
}

}  // namespace egoist::overlay
