#include "overlay/environment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace egoist::overlay {

Substrate::Substrate(std::size_t n, std::uint64_t seed, EnvironmentConfig config)
    : backend_(net::make_underlay(config.underlay, n, seed, config.geo,
                                  config.bandwidth, config.load)),
      coords_(backend_->delays(), seed ^ 0xC00Dull, config.vivaldi),
      config_(config),
      seed_(seed) {
  coords_.converge(config.coord_warmup_rounds);
}

void Substrate::advance_step(double dt, double to) {
  if (to <= now_) return;  // another plane already pulled us here
  backend_->advance(dt);
  coords_.tick();  // one coordinate-maintenance round per advance
  now_ = to;
}

std::size_t Substrate::memory_bytes() const {
  // Vivaldi: one coordinate (position + height) and one error term per node.
  const std::size_t coords =
      size() * (sizeof(coord::Coordinate) + sizeof(double));
  return backend_->memory_bytes() + coords;
}

namespace {

/// Packs a directed pair into one sparse-plane key.
inline std::uint64_t pair_key(int i, int j) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
         static_cast<std::uint32_t>(j);
}

}  // namespace

Environment::Environment(std::size_t n, std::uint64_t seed,
                         EnvironmentConfig config)
    : Environment(std::make_shared<Substrate>(n, seed, config), seed) {}

Environment::Environment(std::shared_ptr<Substrate> substrate,
                         std::uint64_t seed)
    : substrate_(std::move(substrate)),
      bw_probe_(substrate_->bandwidth(), seed ^ 0xBEEFull,
                substrate_->config().bw_probe_error),
      rng_(seed ^ 0xE417ull),
      now_(substrate_->now()) {
  const auto& config = substrate_->config();
  const std::size_t n = substrate_->size();
  sparse_plane_ = config.underlay == net::UnderlayKind::kProcedural ||
                  n >= config.sparse_plane_threshold;
  if (!sparse_plane_) {
    // Historical dense plane: state laid out exactly as the pre-backend
    // Environment did, so fixed-seed figure runs stay byte-identical.
    ping_smoothed_.assign(n * n, std::numeric_limits<double>::quiet_NaN());
    delay_drift_.assign(n * n, 0.0);
  } else {
    // Sparse plane: ping EWMAs materialize per probed pair; drift is the
    // procedural hash stream below (stationary moments calibrated to the
    // dense OU process), so advance() needs no per-pair sweep.
    drift_seed_ = seed ^ 0xD21F7ull;
    drift_tau_ = config.delay_drift_reversion > 0.0
                     ? 1.0 / config.delay_drift_reversion
                     : 1.0;
    drift_amp_ = config.delay_drift_reversion > 0.0
                     ? config.delay_drift_volatility /
                           std::sqrt(2.0 * config.delay_drift_reversion)
                     : 0.0;
  }
  load_estimators_.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    load_estimators_.emplace_back(60.0);
    load_estimators_.back().observe(substrate_->load().load(static_cast<int>(v)),
                                    0.0);
  }
}

double Environment::drift(int i, int j) const {
  if (!sparse_plane_) {
    return delay_drift_[static_cast<std::size_t>(i) * size() +
                        static_cast<std::size_t>(j)];
  }
  const auto& config = substrate_->config();
  const double d = drift_amp_ * net::ou_noise(drift_seed_,
                                              static_cast<std::uint64_t>(i),
                                              static_cast<std::uint64_t>(j),
                                              now_, drift_tau_);
  return std::clamp(d, -config.delay_drift_cap, config.delay_drift_cap);
}

double Environment::true_delay(int i, int j) const {
  const double base = substrate_->delays().delay(i, j);
  return base * (1.0 + drift(i, j));
}

double Environment::measure_delay_ping(int i, int j) {
  const auto& config = substrate_->config();
  // RTT/2 averaged over ping_samples probes; queueing noise only adds.
  const double rtt = true_delay(i, j) + true_delay(j, i);
  double sum = 0.0;
  for (int s = 0; s < config.ping_samples; ++s) {
    sum += rtt + std::abs(rng_.normal(0.0, config.ping_jitter_ms));
  }
  const double sample = sum / config.ping_samples / 2.0;

  double& smoothed =
      sparse_plane_
          ? ping_sparse_
                .try_emplace(pair_key(i, j),
                             std::numeric_limits<double>::quiet_NaN())
                .first->second
          : ping_smoothed_[static_cast<std::size_t>(i) * size() +
                           static_cast<std::size_t>(j)];
  if (std::isnan(smoothed)) {
    smoothed = sample;
  } else {
    // Nodes monitor links continuously; fold fresh samples into a running
    // average rather than trusting a single epoch's probe.
    constexpr double kAlpha = 0.3;
    smoothed = (1.0 - kAlpha) * smoothed + kAlpha * sample;
  }
  return smoothed;
}

double Environment::measure_load(int node) const {
  const auto& est = load_estimators_.at(static_cast<std::size_t>(node));
  return est.has_estimate() ? est.estimate() : 0.0;
}

void Environment::advance(double dt) {
  now_ += dt;
  substrate_->advance_step(dt, now_);
  for (std::size_t v = 0; v < load_estimators_.size(); ++v) {
    load_estimators_[v].observe(substrate_->load().load(static_cast<int>(v)),
                                now_);
  }
  if (sparse_plane_) return;  // drift is procedural: nothing to sweep
  // Mean-reverting relative delay drift per directed pair.
  const auto& config = substrate_->config();
  const double pull = std::min(1.0, config.delay_drift_reversion * dt);
  const double noise = config.delay_drift_volatility * std::sqrt(dt);
  for (double& d : delay_drift_) {
    d = (1.0 - pull) * d + noise * rng_.normal(0.0, 1.0);
    d = std::clamp(d, -config.delay_drift_cap, config.delay_drift_cap);
  }
}

std::size_t Environment::probed_pairs() const {
  if (sparse_plane_) return ping_sparse_.size();
  std::size_t probed = 0;
  for (const double v : ping_smoothed_) {
    if (!std::isnan(v)) ++probed;
  }
  return probed;
}

std::size_t Environment::plane_memory_bytes() const {
  if (!sparse_plane_) {
    return (ping_smoothed_.size() + delay_drift_.size()) * sizeof(double);
  }
  // unordered_map node: key + value + next pointer, plus the bucket array.
  return ping_sparse_.size() *
             (sizeof(std::uint64_t) + sizeof(double) + sizeof(void*)) +
         ping_sparse_.bucket_count() * sizeof(void*);
}

}  // namespace egoist::overlay
