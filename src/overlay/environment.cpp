#include "overlay/environment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace egoist::overlay {

Environment::Environment(std::size_t n, std::uint64_t seed,
                         EnvironmentConfig config)
    : delays_(net::make_planetlab_like(n, seed, config.geo)),
      bandwidth_(n, seed ^ 0xB00Bull, config.bandwidth),
      load_(n, seed ^ 0x10ADull, config.load),
      coords_(delays_, seed ^ 0xC00Dull, config.vivaldi),
      bw_probe_(bandwidth_, seed ^ 0xBEEFull, config.bw_probe_error),
      env_config_(config),
      rng_(seed ^ 0xE417ull) {
  coords_.converge(config.coord_warmup_rounds);
  ping_smoothed_.assign(n * n, std::numeric_limits<double>::quiet_NaN());
  delay_drift_.assign(n * n, 0.0);
  load_estimators_.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    load_estimators_.emplace_back(60.0);
    load_estimators_.back().observe(load_.load(static_cast<int>(v)), 0.0);
  }
}

double Environment::true_delay(int i, int j) const {
  const double base = delays_.delay(i, j);
  const double drift = delay_drift_[static_cast<std::size_t>(i) * size() +
                                    static_cast<std::size_t>(j)];
  return base * (1.0 + drift);
}

double Environment::measure_delay_ping(int i, int j) {
  // RTT/2 averaged over ping_samples probes; queueing noise only adds.
  const double rtt = true_delay(i, j) + true_delay(j, i);
  double sum = 0.0;
  for (int s = 0; s < env_config_.ping_samples; ++s) {
    sum += rtt + std::abs(rng_.normal(0.0, env_config_.ping_jitter_ms));
  }
  const double sample = sum / env_config_.ping_samples / 2.0;

  double& smoothed =
      ping_smoothed_[static_cast<std::size_t>(i) * size() +
                     static_cast<std::size_t>(j)];
  if (std::isnan(smoothed)) {
    smoothed = sample;
  } else {
    // Nodes monitor links continuously; fold fresh samples into a running
    // average rather than trusting a single epoch's probe.
    constexpr double kAlpha = 0.3;
    smoothed = (1.0 - kAlpha) * smoothed + kAlpha * sample;
  }
  return smoothed;
}

double Environment::measure_load(int node) const {
  const auto& est = load_estimators_.at(static_cast<std::size_t>(node));
  return est.has_estimate() ? est.estimate() : 0.0;
}

void Environment::advance(double dt) {
  now_ += dt;
  bandwidth_.advance(dt);
  load_.advance(dt);
  coords_.tick();  // one coordinate-maintenance round per advance
  for (std::size_t v = 0; v < load_estimators_.size(); ++v) {
    load_estimators_[v].observe(load_.load(static_cast<int>(v)), now_);
  }
  // Mean-reverting relative delay drift per directed pair.
  const double pull = std::min(1.0, env_config_.delay_drift_reversion * dt);
  const double noise = env_config_.delay_drift_volatility * std::sqrt(dt);
  for (double& d : delay_drift_) {
    d = (1.0 - pull) * d + noise * rng_.normal(0.0, 1.0);
    d = std::clamp(d, -env_config_.delay_drift_cap, env_config_.delay_drift_cap);
  }
}

}  // namespace egoist::overlay
