#include "overlay/environment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace egoist::overlay {

Substrate::Substrate(std::size_t n, std::uint64_t seed, EnvironmentConfig config)
    : delays_(net::make_planetlab_like(n, seed, config.geo)),
      bandwidth_(n, seed ^ 0xB00Bull, config.bandwidth),
      load_(n, seed ^ 0x10ADull, config.load),
      coords_(delays_, seed ^ 0xC00Dull, config.vivaldi),
      config_(config),
      seed_(seed) {
  coords_.converge(config.coord_warmup_rounds);
}

void Substrate::advance_step(double dt, double to) {
  if (to <= now_) return;  // another plane already pulled us here
  bandwidth_.advance(dt);
  load_.advance(dt);
  coords_.tick();  // one coordinate-maintenance round per advance
  now_ = to;
}

namespace {

/// Shared plane initialization: seeds and state exactly as the historic
/// single-owner Environment constructor laid them out, so an owning plane
/// and a fork over a shared substrate draw identical noise streams.
struct PlaneInit {
  std::vector<net::LoadEstimator> load_estimators;
  std::vector<double> ping_smoothed;
  std::vector<double> delay_drift;

  explicit PlaneInit(const Substrate& substrate) {
    const std::size_t n = substrate.size();
    ping_smoothed.assign(n * n, std::numeric_limits<double>::quiet_NaN());
    delay_drift.assign(n * n, 0.0);
    load_estimators.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      load_estimators.emplace_back(60.0);
      load_estimators.back().observe(substrate.load().load(static_cast<int>(v)),
                                     0.0);
    }
  }
};

}  // namespace

Environment::Environment(std::size_t n, std::uint64_t seed,
                         EnvironmentConfig config)
    : Environment(std::make_shared<Substrate>(n, seed, config), seed) {}

Environment::Environment(std::shared_ptr<Substrate> substrate,
                         std::uint64_t seed)
    : substrate_(std::move(substrate)),
      bw_probe_(substrate_->bandwidth(), seed ^ 0xBEEFull,
                substrate_->config().bw_probe_error),
      rng_(seed ^ 0xE417ull),
      now_(substrate_->now()) {
  PlaneInit init(*substrate_);
  load_estimators_ = std::move(init.load_estimators);
  ping_smoothed_ = std::move(init.ping_smoothed);
  delay_drift_ = std::move(init.delay_drift);
}

double Environment::true_delay(int i, int j) const {
  const double base = substrate_->delays().delay(i, j);
  const double drift = delay_drift_[static_cast<std::size_t>(i) * size() +
                                    static_cast<std::size_t>(j)];
  return base * (1.0 + drift);
}

double Environment::measure_delay_ping(int i, int j) {
  const auto& config = substrate_->config();
  // RTT/2 averaged over ping_samples probes; queueing noise only adds.
  const double rtt = true_delay(i, j) + true_delay(j, i);
  double sum = 0.0;
  for (int s = 0; s < config.ping_samples; ++s) {
    sum += rtt + std::abs(rng_.normal(0.0, config.ping_jitter_ms));
  }
  const double sample = sum / config.ping_samples / 2.0;

  double& smoothed =
      ping_smoothed_[static_cast<std::size_t>(i) * size() +
                     static_cast<std::size_t>(j)];
  if (std::isnan(smoothed)) {
    smoothed = sample;
  } else {
    // Nodes monitor links continuously; fold fresh samples into a running
    // average rather than trusting a single epoch's probe.
    constexpr double kAlpha = 0.3;
    smoothed = (1.0 - kAlpha) * smoothed + kAlpha * sample;
  }
  return smoothed;
}

double Environment::measure_load(int node) const {
  const auto& est = load_estimators_.at(static_cast<std::size_t>(node));
  return est.has_estimate() ? est.estimate() : 0.0;
}

void Environment::advance(double dt) {
  now_ += dt;
  substrate_->advance_step(dt, now_);
  for (std::size_t v = 0; v < load_estimators_.size(); ++v) {
    load_estimators_[v].observe(substrate_->load().load(static_cast<int>(v)),
                                now_);
  }
  // Mean-reverting relative delay drift per directed pair.
  const auto& config = substrate_->config();
  const double pull = std::min(1.0, config.delay_drift_reversion * dt);
  const double noise = config.delay_drift_volatility * std::sqrt(dt);
  for (double& d : delay_drift_) {
    d = (1.0 - pull) * d + noise * rng_.normal(0.0, 1.0);
    d = std::clamp(d, -config.delay_drift_cap, config.delay_drift_cap);
  }
}

}  // namespace egoist::overlay
