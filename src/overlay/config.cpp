#include "overlay/config.hpp"

#include <stdexcept>

namespace egoist::overlay {

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kBestResponse: return "BR";
    case Policy::kHybridBR: return "HybridBR";
    case Policy::kRandom: return "k-Random";
    case Policy::kClosest: return "k-Closest";
    case Policy::kRegular: return "k-Regular";
    case Policy::kFullMesh: return "FullMesh";
  }
  return "?";
}

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::kDelayPing: return "delay(ping)";
    case Metric::kDelayCoords: return "delay(coords)";
    case Metric::kNodeLoad: return "node-load";
    case Metric::kBandwidth: return "avail-bw";
  }
  return "?";
}

const char* to_string(Backbone backbone) {
  switch (backbone) {
    case Backbone::kCycles: return "cycles";
    case Backbone::kMst: return "mst";
  }
  return "?";
}

const char* to_string(PathBackend backend) {
  switch (backend) {
    case PathBackend::kCsrEngine: return "engine";
    case PathBackend::kLegacy: return "legacy";
  }
  return "?";
}

Policy parse_policy(const std::string& name) {
  if (name == "BR") return Policy::kBestResponse;
  if (name == "HybridBR") return Policy::kHybridBR;
  if (name == "k-Random") return Policy::kRandom;
  if (name == "k-Closest") return Policy::kClosest;
  if (name == "k-Regular") return Policy::kRegular;
  if (name == "FullMesh") return Policy::kFullMesh;
  throw std::invalid_argument(
      "unknown policy '" + name +
      "' (want BR, HybridBR, k-Random, k-Closest, k-Regular, FullMesh)");
}

Metric parse_metric(const std::string& name) {
  if (name == "delay(ping)") return Metric::kDelayPing;
  if (name == "delay(coords)") return Metric::kDelayCoords;
  if (name == "node-load") return Metric::kNodeLoad;
  if (name == "avail-bw") return Metric::kBandwidth;
  throw std::invalid_argument(
      "unknown metric '" + name +
      "' (want delay(ping), delay(coords), node-load, avail-bw)");
}

Backbone parse_backbone(const std::string& name) {
  if (name == "cycles") return Backbone::kCycles;
  if (name == "mst") return Backbone::kMst;
  throw std::invalid_argument("unknown backbone '" + name +
                              "' (want cycles, mst)");
}

PathBackend parse_path_backend(const std::string& name) {
  if (name == "engine") return PathBackend::kCsrEngine;
  if (name == "legacy") return PathBackend::kLegacy;
  throw std::invalid_argument("unknown path backend '" + name +
                              "' (want engine, legacy)");
}

}  // namespace egoist::overlay
