#include "overlay/scoring.hpp"

#include "core/residual.hpp"
#include "graph/metrics.hpp"
#include "graph/shortest_path.hpp"
#include "graph/widest_path.hpp"

namespace egoist::overlay {

namespace {

double node_cost_with_penalty(
    const graph::Digraph& true_cost_graph, const std::vector<NodeId>& targets,
    const std::vector<std::vector<double>>& preferences, NodeId v,
    double penalty) {
  const auto tree = graph::dijkstra(true_cost_graph, v);
  if (preferences.empty()) {
    return graph::uniform_routing_cost(tree.dist, v, targets, penalty);
  }
  return graph::routing_cost(tree.dist,
                             preferences[static_cast<std::size_t>(v)], v,
                             penalty);
}

}  // namespace

std::vector<double> score_node_costs(
    const graph::Digraph& true_cost_graph, const std::vector<NodeId>& targets,
    const std::vector<std::vector<double>>& preferences) {
  const double penalty = core::default_unreachable_penalty(true_cost_graph);
  std::vector<double> costs;
  costs.reserve(targets.size());
  for (NodeId v : targets) {
    costs.push_back(
        node_cost_with_penalty(true_cost_graph, targets, preferences, v, penalty));
  }
  return costs;
}

double score_node_cost(const graph::Digraph& true_cost_graph,
                       const std::vector<NodeId>& targets,
                       const std::vector<std::vector<double>>& preferences,
                       NodeId node) {
  return node_cost_with_penalty(true_cost_graph, targets, preferences, node,
                                core::default_unreachable_penalty(true_cost_graph));
}

std::vector<double> score_node_efficiencies(const graph::Digraph& true_cost_graph,
                                            const std::vector<NodeId>& targets) {
  std::vector<double> eff;
  eff.reserve(targets.size());
  for (NodeId v : targets) {
    const auto tree = graph::dijkstra(true_cost_graph, v);
    eff.push_back(graph::node_efficiency(tree.dist, v, targets));
  }
  return eff;
}

std::vector<double> score_node_bandwidth(
    const graph::Digraph& true_bandwidth_graph,
    const std::vector<NodeId>& targets) {
  std::vector<double> scores;
  scores.reserve(targets.size());
  for (NodeId v : targets) {
    const auto tree = graph::widest_paths(true_bandwidth_graph, v);
    double sum = 0.0;
    std::size_t count = 0;
    for (NodeId j : targets) {
      if (j == v) continue;
      sum += tree.bottleneck[static_cast<std::size_t>(j)];
      ++count;
    }
    scores.push_back(count == 0 ? 0.0 : sum / static_cast<double>(count));
  }
  return scores;
}

}  // namespace egoist::overlay
