#include "sim/simulator.hpp"

namespace egoist::sim {

EventId Simulator::schedule_in(double delay, Callback fn) {
  if (delay < 0.0) throw std::invalid_argument("delay must be >= 0");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(double when, Callback fn) {
  if (when < now_) throw std::invalid_argument("cannot schedule in the past");
  if (!fn) throw std::invalid_argument("callback must be set");
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool Simulator::cancel(EventId id) {
  // Only events still awaiting execution can be cancelled; ids that already
  // ran, were cancelled before, or were never issued report false without
  // touching any bookkeeping.
  if (live_.erase(id) == 0) return false;
  // Lazy cancellation: the event stays queued but is skipped when popped.
  cancelled_.insert(id);
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    live_.erase(ev.id);
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(double until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    step();
  }
  now_ = std::max(now_, until);
}

void Simulator::run_for(double duration) {
  if (duration < 0.0) throw std::invalid_argument("duration must be >= 0");
  run_until(now_ + duration);
}

PeriodicTask::PeriodicTask(Simulator& sim, double start, double period,
                           std::function<void(double)> fn, JitterFn jitter_fn)
    : sim_(sim), period_(period), fn_(std::move(fn)),
      jitter_fn_(std::move(jitter_fn)) {
  if (period <= 0.0) throw std::invalid_argument("period must be positive");
  if (!fn_) throw std::invalid_argument("callback must be set");
  arm(start < sim_.now() ? sim_.now() : start);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::arm(double nominal) {
  double when = nominal;
  if (jitter_fn_) {
    when += jitter_fn_(occurrence_);
    if (when < sim_.now()) when = sim_.now();
  }
  pending_ = sim_.schedule_at(when, [this, nominal] {
    const double fired_at = sim_.now();
    ++occurrence_;
    arm(nominal + period_);
    fn_(fired_at);
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

}  // namespace egoist::sim
