// Discrete-event simulation engine.
//
// Replaces wall-clock PlanetLab time: the overlay protocol stack (wiring
// epochs, LSA floods, heartbeats, churn events) schedules callbacks on a
// single virtual clock. Events at equal timestamps run in scheduling order
// (FIFO), which keeps runs fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace egoist::sim {

using EventId = std::uint64_t;

/// Single-threaded event loop with cancellable timers.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time (seconds).
  double now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback fn);

  /// Schedules `fn` at absolute time `when` (>= now()).
  EventId schedule_at(double when, Callback fn);

  /// Cancels a pending event; returns false if it already ran, was
  /// cancelled before, or was never scheduled.
  bool cancel(EventId id);

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void run_until(double until);

  /// Convenience: run_until(now() + duration). The clock always lands
  /// exactly on now() + duration (no drift across repeated calls), which is
  /// what epoch-style callers ("advance one announce period") want.
  void run_for(double duration);

  /// Runs a single event; returns false when the queue is empty.
  bool step();

  /// Number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  /// Number of scheduled events that are still due to run (cancelled
  /// events are excluded the moment they are cancelled).
  std::size_t pending() const { return live_.size(); }

 private:
  struct Event {
    double when;
    EventId id;  ///< monotonically increasing: ties run FIFO
    Callback fn;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  /// Ids scheduled but neither executed nor cancelled. Queue membership is
  /// what makes cancel() exact: cancelling an id that already ran (or was
  /// never scheduled) is a no-op instead of poisoning the cancelled set.
  std::unordered_set<EventId> live_;
  /// Ids cancelled but still sitting in the queue (lazy removal).
  std::unordered_set<EventId> cancelled_;
};

/// Convenience: reschedules `fn` every `period` seconds starting at
/// `start`, until the simulator stops being run. Returns the id of the
/// first occurrence (cancelling only stops the not-yet-run occurrence).
class PeriodicTask {
 public:
  /// Per-occurrence scheduling offset: called with the occurrence index
  /// (0 for the `start` firing, 1 for start + period, ...) and returning
  /// seconds added to that occurrence's nominal time. The nominal grid
  /// start + i * period is unaffected — offsets do not accumulate — which
  /// is what callers desynchronizing node epochs (§4.2) want: each firing
  /// wanders around its slot without drifting the slot itself. Fire times
  /// are clamped to not precede the simulator clock.
  using JitterFn = std::function<double(std::uint64_t occurrence)>;

  /// `jitter_fn` (optional) returns an offset added to each occurrence,
  /// letting callers desynchronize node epochs as real deployments are.
  PeriodicTask(Simulator& sim, double start, double period,
               std::function<void(double now)> fn, JitterFn jitter_fn = {});
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask();

  /// Stops future occurrences.
  void stop();
  bool running() const { return running_; }

 private:
  void arm(double nominal);

  Simulator& sim_;
  double period_;
  std::function<void(double)> fn_;
  JitterFn jitter_fn_;
  EventId pending_ = 0;
  std::uint64_t occurrence_ = 0;  ///< index of the next (not-yet-run) firing
  bool running_ = true;
};

}  // namespace egoist::sim
