// Discrete-event simulation engine.
//
// Replaces wall-clock PlanetLab time: the overlay protocol stack (wiring
// epochs, LSA floods, heartbeats, churn events) schedules callbacks on a
// single virtual clock. Events at equal timestamps run in scheduling order
// (FIFO), which keeps runs fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace egoist::sim {

using EventId = std::uint64_t;

/// Single-threaded event loop with cancellable timers.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time (seconds).
  double now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback fn);

  /// Schedules `fn` at absolute time `when` (>= now()).
  EventId schedule_at(double when, Callback fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs events until the queue empties or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void run_until(double until);

  /// Convenience: run_until(now() + duration). The clock always lands
  /// exactly on now() + duration (no drift across repeated calls), which is
  /// what epoch-style callers ("advance one announce period") want.
  void run_for(double duration);

  /// Runs a single event; returns false when the queue is empty.
  bool step();

  /// Number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    double when;
    EventId id;  ///< monotonically increasing: ties run FIFO
    Callback fn;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// Convenience: reschedules `fn` every `period` seconds starting at
/// `start`, until the simulator stops being run. Returns the id of the
/// first occurrence (cancelling only stops the not-yet-run occurrence).
class PeriodicTask {
 public:
  /// `jitter_fn` (optional) returns an offset added to each period, letting
  /// callers desynchronize node epochs as real deployments are.
  PeriodicTask(Simulator& sim, double start, double period,
               std::function<void(double now)> fn);
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask();

  /// Stops future occurrences.
  void stop();
  bool running() const { return running_; }

 private:
  void arm(double when);

  Simulator& sim_;
  double period_;
  std::function<void(double)> fn_;
  EventId pending_ = 0;
  bool running_ = true;
};

}  // namespace egoist::sim
