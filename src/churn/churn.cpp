#include "churn/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace egoist::churn {

ChurnTrace::ChurnTrace(std::size_t n, double horizon_s, std::uint64_t seed,
                       ChurnConfig config)
    : n_(n), horizon_(horizon_s) {
  if (n == 0) throw std::invalid_argument("need >= 1 node");
  if (horizon_s <= 0.0) throw std::invalid_argument("horizon must be positive");
  if (config.timescale <= 0.0) throw std::invalid_argument("timescale must be > 0");
  if (config.initial_on_fraction < 0.0 || config.initial_on_fraction > 1.0) {
    throw std::invalid_argument("initial_on_fraction in [0, 1]");
  }
  util::Rng rng(seed);
  initial_on_.resize(n);
  // Pareto with mean = x_m * alpha / (alpha - 1)  =>  x_m from target mean.
  const double alpha = config.pareto_alpha;
  if (alpha <= 1.0) throw std::invalid_argument("pareto_alpha must exceed 1");
  const double on_scale =
      config.mean_on_s * config.timescale * (alpha - 1.0) / alpha;
  const double off_mean = config.mean_off_s * config.timescale;

  for (std::size_t v = 0; v < n; ++v) {
    bool on = rng.chance(config.initial_on_fraction);
    initial_on_[v] = on;
    // Start mid-session: residual duration ~ the full distribution (close
    // enough for our purposes; exact stationary residuals are heavier).
    double t = 0.0;
    while (t < horizon_s) {
      const double duration =
          on ? rng.pareto(on_scale, alpha) : rng.exponential_mean(off_mean);
      t += duration;
      if (t >= horizon_s) break;
      on = !on;
      events_.push_back(ChurnEvent{t, static_cast<int>(v), on});
    }
  }
  std::sort(events_.begin(), events_.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
}

double ChurnTrace::churn_rate() const {
  return ::egoist::churn::churn_rate(events_, initial_on_, horizon_);
}

double ChurnTrace::mean_availability() const {
  std::vector<bool> on = initial_on_;
  std::size_t on_count = static_cast<std::size_t>(
      std::count(on.begin(), on.end(), true));
  double weighted = 0.0;
  double prev = 0.0;
  for (const ChurnEvent& ev : events_) {
    weighted += static_cast<double>(on_count) * (ev.time - prev);
    prev = ev.time;
    const auto idx = static_cast<std::size_t>(ev.node);
    if (on[idx] != ev.on) {
      on[idx] = ev.on;
      on_count += ev.on ? 1 : std::size_t(-1);
    }
  }
  weighted += static_cast<double>(on_count) * (horizon_ - prev);
  return weighted / (horizon_ * static_cast<double>(n_));
}

double churn_rate(const std::vector<ChurnEvent>& events,
                  const std::vector<bool>& initial_on, double horizon_s) {
  if (horizon_s <= 0.0) throw std::invalid_argument("horizon must be positive");
  std::vector<bool> on = initial_on;
  std::size_t on_count =
      static_cast<std::size_t>(std::count(on.begin(), on.end(), true));
  double total = 0.0;
  for (const ChurnEvent& ev : events) {
    if (ev.node < 0 || static_cast<std::size_t>(ev.node) >= on.size()) {
      throw std::out_of_range("event node out of range");
    }
    const auto idx = static_cast<std::size_t>(ev.node);
    if (on[idx] == ev.on) continue;  // no membership change
    const std::size_t before = on_count;
    on[idx] = ev.on;
    on_count += ev.on ? 1 : std::size_t(-1);
    const std::size_t denom = std::max(before, on_count);
    if (denom > 0) {
      // |U_{i-1} symmetric-diff U_i| = 1 for a single join/leave.
      total += 1.0 / static_cast<double>(denom);
    }
  }
  return total / horizon_s;
}

}  // namespace egoist::churn
