// Node churn: ON/OFF processes, trace synthesis, and the churn-rate metric.
//
// §4.4 drives churn from "real data sets of the churn observed for
// PlanetLab nodes [Godfrey et al.], with adjustments to the timescale to
// control the intensity". We do not ship that proprietary trace; instead
// ChurnTrace synthesizes ON/OFF schedules with the same structure: session
// (ON) durations are heavy-tailed (Pareto) — a few long-lived stable hosts,
// many short-lived ones — and downtimes are exponential. The `timescale`
// knob shrinks all durations uniformly, exactly the paper's intensity
// adjustment.
//
// The churn rate metric is the paper's:
//   Churn = (1/T) * sum_i |U_{i-1} symmetric-diff U_i| / max(|U_{i-1}|, |U_i|)
// where U_i is the node set after membership event i.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace egoist::churn {

/// One membership change: `node` turns ON (joins) or OFF (leaves) at `time`.
struct ChurnEvent {
  double time = 0.0;
  int node = -1;
  bool on = false;
};

struct ChurnConfig {
  double mean_on_s = 3600.0;   ///< mean session length before timescale
  double mean_off_s = 600.0;   ///< mean downtime before timescale
  double pareto_alpha = 1.5;   ///< ON-duration tail index (heavy-tailed)
  double timescale = 1.0;      ///< <1 accelerates churn (paper's knob)
  double initial_on_fraction = 1.0;  ///< fraction of nodes ON at t=0
};

/// A synthesized churn schedule for n nodes over [0, horizon).
class ChurnTrace {
 public:
  ChurnTrace(std::size_t n, double horizon_s, std::uint64_t seed,
             ChurnConfig config = {});

  /// All events, sorted by time.
  const std::vector<ChurnEvent>& events() const { return events_; }

  /// Nodes ON at t=0.
  const std::vector<bool>& initial_on() const { return initial_on_; }

  std::size_t node_count() const { return n_; }
  double horizon() const { return horizon_; }

  /// The paper's churn-rate metric over the whole trace.
  double churn_rate() const;

  /// Average fraction of nodes ON (time-weighted availability).
  double mean_availability() const;

 private:
  std::size_t n_;
  double horizon_;
  std::vector<ChurnEvent> events_;
  std::vector<bool> initial_on_;
};

/// The churn-rate metric for an arbitrary event sequence (must be sorted by
/// time) given the initially-ON flags and observation horizon.
double churn_rate(const std::vector<ChurnEvent>& events,
                  const std::vector<bool>& initial_on, double horizon_s);

}  // namespace egoist::churn
