// rpc::Server — the socket front end of the serving stack.
//
// One poll(2)-driven event loop thread accepts TCP (loopback by default)
// and Unix-domain connections and answers wire-protocol frames from a
// host::RouteService. The loop is the only thread that touches connection
// state; RouteService::acquire()/route()/path()/score() are safe from any
// thread by contract, so the loop serves concurrently with the host thread
// driving epochs — exactly the deployment egoistd runs.
//
// Per connection: nonblocking fd, an inbound ByteQueue socket reads drain
// into, an outbound ByteQueue responses are encoded into, and a
// last-activity stamp for the idle timeout. Dispatch is pipelined: every
// complete frame buffered on a connection is decoded in one batch, ONE
// ServedSnapshot is pinned for the whole batch (one refcount round-trip
// however deep the client pipelines), every answer is encoded back-to-back
// into the outbound queue, and the flush writes them with as few
// syscalls as the socket accepts.
//
// Malformed input follows the codec's two severity levels: a payload that
// fails to decode for a valid header gets an ERROR(kBadRequest) response
// and the connection lives on (framing is intact); header-level garbage
// (bad magic/version/type/flags/oversized length) gets a best-effort
// ERROR(kMalformedFrame) and the connection is closed after the flush —
// resynchronizing a corrupt byte stream is guesswork. Both count toward
// decode_errors.
//
// Shutdown is graceful: stop() (thread-safe, idempotent) wakes the loop,
// which closes the listeners, keeps flushing already-queued responses
// until they drain or Options::drain_deadline expires, closes every
// connection, and exits. egoistd follows with RouteService::drain() to
// prove no snapshot leaked.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "host/route_service.hpp"
#include "rpc/byte_queue.hpp"
#include "wire/protocol.hpp"

namespace egoist::rpc {

struct ServerOptions {
  /// TCP listener; port 0 binds an ephemeral port (read it back via
  /// tcp_port()), port < 0 disables TCP.
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// Unix-domain listener; empty disables. The path is unlinked first
  /// (stale socket files from a crashed daemon) and again on shutdown.
  std::string uds_path;
  /// Per-frame payload bound enforced before any payload is buffered.
  std::size_t max_frame = wire::kDefaultMaxFrame;
  /// Connections idle longer than this are closed; <= 0 disables.
  double idle_timeout_s = 60.0;
  /// How long stop() keeps flushing queued responses before closing.
  double drain_deadline_s = 2.0;
  /// Accept backlog and connection cap (excess accepts are closed).
  int max_connections = 512;
};

/// Event-loop counters, readable from any thread while the loop runs.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t error_responses = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t batches = 0;  ///< dispatch batches == snapshot pins
};

class Server {
 public:
  /// Binds the listeners immediately (so tcp_port() is valid before
  /// start()) but serves nothing until start(). Throws std::runtime_error
  /// when neither listener is configured or a bind fails.
  Server(host::RouteService& service, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the event-loop thread. Idempotent.
  void start();

  /// Graceful shutdown: stop accepting, drain queued responses under the
  /// deadline, close everything, join the loop thread. Idempotent; safe
  /// from any thread (including a signal-watcher thread, NOT a handler).
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (after construction), or -1 when TCP is disabled.
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& uds_path() const { return options_.uds_path; }

  ServerStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    ByteQueue in;
    ByteQueue out;
    std::chrono::steady_clock::time_point last_activity;
    bool closing = false;  ///< close once `out` drains (framing corrupt)
  };

  void loop();
  void accept_ready(int listen_fd);
  /// Reads everything available; returns false when the peer closed or a
  /// fatal error occurred.
  bool read_ready(Conn& conn);
  /// Decodes + answers every complete frame in conn.in (one snapshot pin).
  void dispatch(Conn& conn);
  /// Writes as much of conn.out as the socket accepts; false on fatal error.
  bool write_ready(Conn& conn);
  void close_conn(std::size_t index);
  void drain_and_close_all();

  host::RouteService* service_;
  ServerOptions options_;
  int tcp_listen_fd_ = -1;
  int uds_listen_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: stop() wakes poll()
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool stopped_ = false;  ///< guarded by stop_mutex_
  std::mutex stop_mutex_;
  std::vector<Conn> conns_;

  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_active{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> decode_errors{0};
    std::atomic<std::uint64_t> error_responses{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> batches{0};
  } counters_;
};

}  // namespace egoist::rpc
