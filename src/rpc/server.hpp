// rpc::Server — the socket front end of the serving stack.
//
// N independent poll(2)-driven event loops (Options::loops) share one
// host::RouteService. Each loop owns its thread, pollfd set, connection
// table, and counters — loops never touch each other's connections, so
// there is no cross-loop locking on the hot path. TCP scaling comes from
// the kernel: every loop binds its own SO_REUSEPORT listener on the same
// port and the kernel load-balances accepts across them. The single UDS
// listener lives on loop 0, which round-robins accepted fds to the other
// loops through a mutex-guarded inbox plus each loop's self-pipe wakeup.
// RouteService::acquire()/route()/path()/score() are safe from any thread
// by contract, so all loops serve concurrently with the host thread
// driving epochs — exactly the deployment egoistd runs.
//
// Per connection: nonblocking fd, an inbound ByteQueue socket reads drain
// into, an outbound ByteQueue responses are encoded into, and a
// last-activity stamp for the idle timeout. Dispatch is pipelined: every
// complete frame buffered on a connection is decoded in one batch, ONE
// ServedSnapshot is pinned for the whole batch (one refcount round-trip
// however deep the client pipelines), answers are encoded back-to-back
// into a per-loop scratch arena, and the flush gathers [outbound backlog,
// fresh answers] through one sendmsg (writev with MSG_NOSIGNAL) — a
// BATCH_ROUTE frame therefore costs one header decode and one syscall
// regardless of how many lookups it carries.
//
// Malformed input follows the codec's two severity levels: a payload that
// fails to decode for a valid header gets an ERROR(kBadRequest) response
// and the connection lives on (framing is intact); header-level garbage
// (bad magic/version/type/flags/oversized length) gets a best-effort
// ERROR(kMalformedFrame) and the connection is closed after the flush —
// resynchronizing a corrupt byte stream is guesswork. Both count toward
// decode_errors.
//
// Stats are per-loop atomics; stats() sums them with acquire loads, so
// the aggregate is exact once the loops have joined and a monotonic lower
// bound while they run. STATS responses carry both the aggregate (the
// frozen 22-field prefix v1 clients parse) and the per-loop breakdown
// appended by wire v2.
//
// Shutdown is graceful: stop() (thread-safe, idempotent) wakes every
// loop; each closes its listeners, keeps flushing already-queued
// responses until they drain or Options::drain_deadline expires, closes
// its connections, and exits. egoistd follows with RouteService::drain()
// to prove no snapshot leaked.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "host/route_service.hpp"
#include "rpc/byte_queue.hpp"
#include "wire/protocol.hpp"

namespace egoist::rpc {

struct ServerOptions {
  /// TCP listener; port 0 binds an ephemeral port (read it back via
  /// tcp_port()), port < 0 disables TCP.
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// Unix-domain listener; empty disables. The path is unlinked first
  /// (stale socket files from a crashed daemon) and again on shutdown.
  std::string uds_path;
  /// Per-frame payload bound enforced before any payload is buffered.
  std::size_t max_frame = wire::kDefaultMaxFrame;
  /// Connections idle longer than this are closed; <= 0 disables.
  double idle_timeout_s = 60.0;
  /// How long stop() keeps flushing queued responses before closing.
  double drain_deadline_s = 2.0;
  /// Connection cap, split evenly across loops (excess accepts are
  /// closed).
  int max_connections = 512;
  /// Event loops. 1 = the classic single loop; 0 = one per hardware
  /// thread; clamped to [1, 64].
  int loops = 1;
};

/// Event-loop counters, readable from any thread while the loops run.
/// Aggregates are exact after stop(); while serving they are a monotonic
/// lower bound (each loop's counters advance independently).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t error_responses = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t batches = 0;  ///< dispatch batches == snapshot pins
};

class Server {
 public:
  /// Binds the listeners immediately (so tcp_port() is valid before
  /// start()) but serves nothing until start(). Throws std::runtime_error
  /// when neither listener is configured or a bind fails.
  Server(host::RouteService& service, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns one event-loop thread per configured loop. Idempotent.
  void start();

  /// Graceful shutdown: stop accepting, drain queued responses under the
  /// deadline, close everything, join every loop thread. Idempotent; safe
  /// from any thread (including a signal-watcher thread, NOT a handler).
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (after construction), or -1 when TCP is disabled.
  /// With loops > 1 every loop's SO_REUSEPORT listener shares this port.
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& uds_path() const { return options_.uds_path; }

  /// Resolved loop count (Options::loops after the 0 = auto expansion).
  int loops() const { return static_cast<int>(loops_.size()); }

  /// Aggregate across all loops (acquire loads, summed).
  ServerStats stats() const;
  /// One entry per loop, in loop order.
  std::vector<ServerStats> per_loop_stats() const;

 private:
  struct Conn {
    int fd = -1;
    ByteQueue in;
    ByteQueue out;
    std::chrono::steady_clock::time_point last_activity;
    bool closing = false;  ///< close once `out` drains (framing corrupt)
  };

  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_active{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> decode_errors{0};
    std::atomic<std::uint64_t> error_responses{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> batches{0};
  };

  /// Everything one event loop owns. Loops are heap-pinned (unique_ptr)
  /// because they hold atomics, a mutex, and a thread.
  struct Loop {
    std::size_t index = 0;
    int tcp_listen_fd = -1;  ///< own SO_REUSEPORT listener (or -1)
    int uds_listen_fd = -1;  ///< loop 0 only; others receive via inbox
    int wake_fds[2] = {-1, -1};  ///< self-pipe: stop()/handoffs wake poll
    std::thread thread;
    std::vector<Conn> conns;
    std::mutex inbox_mutex;
    std::vector<int> inbox;  ///< UDS fds handed off by loop 0
    AtomicStats counters;
    std::vector<std::uint8_t> scratch;  ///< batch answers, sendmsg-gathered
  };

  void loop_run(Loop& loop);
  void wake(Loop& loop);
  /// Takes ownership of a freshly-accepted fd on this loop (cap check,
  /// nonblocking + TCP_NODELAY, counter bump).
  void adopt_conn(Loop& loop, int fd);
  void accept_ready(Loop& loop, int listen_fd);
  /// Moves fds parked in the inbox into this loop's connection table.
  void drain_inbox(Loop& loop);
  /// Reads everything available; returns false when the peer closed or a
  /// fatal error occurred.
  bool read_ready(Loop& loop, Conn& conn);
  /// Decodes + answers every complete frame in conn.in (one snapshot
  /// pin), then flushes backlog + answers in one gathered sendmsg.
  /// Returns false on fatal write error.
  bool dispatch(Loop& loop, Conn& conn);
  /// Writes conn.out, then `extra`, with one sendmsg per round; unsent
  /// `extra` bytes are queued onto conn.out. False on fatal error.
  bool flush_gather(Loop& loop, Conn& conn,
                    std::span<const std::uint8_t> extra);
  /// Writes as much of conn.out as the socket accepts; false on fatal
  /// error.
  bool write_ready(Loop& loop, Conn& conn);
  void close_conn(Loop& loop, std::size_t index);
  void drain_and_close_all(Loop& loop);
  std::size_t per_loop_conn_cap() const;

  host::RouteService* service_;
  ServerOptions options_;
  int bound_tcp_port_ = -1;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::size_t uds_rr_ = 0;  ///< round-robin cursor; loop 0's thread only
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool stopped_ = false;  ///< guarded by stop_mutex_
  std::mutex stop_mutex_;
};

}  // namespace egoist::rpc
