#include "rpc/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace egoist::rpc {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
  }
}

/// poll() for `events` with a deadline; throws RpcError on timeout.
void wait_or_throw(int fd, short events, Clock::time_point deadline,
                   const char* what) {
  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline) throw RpcError(std::string(what) + ": timeout");
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    pollfd pfd{fd, events, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(std::max<long long>(1, left)));
    if (ready > 0) {
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        throw RpcError(std::string(what) + ": socket error");
      }
      return;  // readable/writable (POLLHUP still lets read() see EOF)
    }
    if (ready < 0 && errno != EINTR) {
      throw RpcError(std::string(what) + ": poll: " + std::strerror(errno));
    }
  }
}

int finish_connect(int fd, double timeout_s, const char* what) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  wait_or_throw(fd, POLLOUT, deadline, what);
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    ::close(fd);
    throw RpcError(std::string(what) + ": connect: " +
                   std::strerror(err != 0 ? err : errno));
  }
  return fd;
}

}  // namespace

Client Client::connect_tcp(const std::string& host, int port,
                           Options options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RpcError(std::string("socket: ") + std::strerror(errno));
  set_nonblocking(fd, true);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw RpcError("bad TCP host " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 &&
      errno != EINPROGRESS) {
    const int saved = errno;
    ::close(fd);
    throw RpcError("connect " + host + ":" + std::to_string(port) + ": " +
                   std::strerror(saved));
  }
  finish_connect(fd, options.connect_timeout_s, "connect_tcp");
  return Client(fd, options);
}

Client Client::connect_uds(const std::string& path, Options options) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw RpcError("UDS path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw RpcError(std::string("socket: ") + std::strerror(errno));
  set_nonblocking(fd, true);
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 &&
      errno != EINPROGRESS && errno != EAGAIN) {
    const int saved = errno;
    ::close(fd);
    throw RpcError("connect " + path + ": " + std::strerror(saved));
  }
  finish_connect(fd, options.connect_timeout_s, "connect_uds");
  return Client(fd, options);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      next_id_(other.next_id_),
      pending_ids_(std::move(other.pending_ids_)),
      out_(std::move(other.out_)),
      in_(std::move(other.in_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    next_id_ = other.next_id_;
    pending_ids_ = std::move(other.pending_ids_);
    out_ = std::move(other.out_);
    in_ = std::move(other.in_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_all(const std::uint8_t* data, std::size_t len) {
  if (fd_ < 0) throw RpcError("send on closed client");
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.request_timeout_s));
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process with SIGPIPE (works for TCP and Unix-domain streams alike).
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_or_throw(fd_, POLLOUT, deadline, "send");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw RpcError(std::string("send: ") +
                   (n < 0 ? std::strerror(errno) : "short write"));
  }
}

void Client::recv_frame(wire::FrameHeader& header,
                        std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) throw RpcError("recv on closed client");
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.request_timeout_s));
  std::uint8_t chunk[65536];
  for (;;) {
    const auto hd = wire::decode_header(in_.readable(), options_.max_frame);
    if (hd.status == wire::DecodeStatus::kOk) {
      const std::size_t frame_len = wire::kHeaderSize + hd.header.payload_len;
      if (in_.size() >= frame_len) {
        header = hd.header;
        const auto bytes = in_.readable();
        payload.assign(bytes.begin() + wire::kHeaderSize,
                       bytes.begin() + static_cast<std::ptrdiff_t>(frame_len));
        in_.consume(frame_len);
        return;
      }
    } else if (hd.status != wire::DecodeStatus::kNeedMore) {
      throw RpcError(std::string("protocol error from server: ") +
                     to_string(hd.status));
    }
    wait_or_throw(fd_, POLLIN, deadline, "recv");
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      in_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) throw RpcError("server closed the connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    throw RpcError(std::string("recv: ") + std::strerror(errno));
  }
}

wire::Response Client::call(wire::MsgType expected_type,
                            const std::vector<std::uint8_t>& frame,
                            std::uint64_t id) {
  if (!pending_ids_.empty()) {
    throw RpcError("blocking call with pipelined responses outstanding");
  }
  send_all(frame.data(), frame.size());
  wire::FrameHeader header;
  std::vector<std::uint8_t> payload;
  recv_frame(header, payload);
  if (header.request_id != id) {
    throw RpcError("response id mismatch: expected " + std::to_string(id) +
                   ", got " + std::to_string(header.request_id));
  }
  auto decoded = wire::decode_response(header, payload);
  if (decoded.status != wire::DecodeStatus::kOk) {
    throw RpcError(std::string("bad response payload: ") +
                   to_string(decoded.status));
  }
  if (const auto* err = std::get_if<wire::ErrorResponse>(&decoded.response)) {
    throw RemoteError(err->code, err->message);
  }
  if (header.type != expected_type) {
    throw RpcError("response type mismatch");
  }
  return std::move(decoded.response);
}

wire::PingResponse Client::ping() {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  wire::encode_ping_request(frame, id);
  return std::get<wire::PingResponse>(call(wire::MsgType::kPing, frame, id));
}

wire::RouteResponse Client::route(std::int32_t src, std::int32_t dst) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  wire::encode_route_request(frame, id, {src, dst});
  return std::get<wire::RouteResponse>(
      call(wire::MsgType::kRoute, frame, id));
}

wire::PathResponse Client::path(std::int32_t src, std::int32_t dst) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  wire::encode_path_request(frame, id, {src, dst});
  return std::get<wire::PathResponse>(call(wire::MsgType::kPath, frame, id));
}

wire::ScoreResponse Client::score(std::int32_t node) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  wire::encode_score_request(frame, id, {node});
  return std::get<wire::ScoreResponse>(
      call(wire::MsgType::kScore, frame, id));
}

wire::StatsResponse Client::stats() {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  wire::encode_stats_request(frame, id);
  return std::get<wire::StatsResponse>(
      call(wire::MsgType::kStats, frame, id));
}

wire::BatchRouteResponse Client::route_batch(
    const std::vector<wire::BatchRoutePair>& pairs) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  wire::encode_batch_route_request(frame, id, {pairs});
  return std::get<wire::BatchRouteResponse>(
      call(wire::MsgType::kBatchRoute, frame, id));
}

void Client::post_route(std::int32_t src, std::int32_t dst) {
  const std::uint64_t id = next_id_++;
  wire::encode_route_request(out_, id, {src, dst});
  pending_ids_.push_back(id);
}

void Client::post_path(std::int32_t src, std::int32_t dst) {
  const std::uint64_t id = next_id_++;
  wire::encode_path_request(out_, id, {src, dst});
  pending_ids_.push_back(id);
}

void Client::post_score(std::int32_t node) {
  const std::uint64_t id = next_id_++;
  wire::encode_score_request(out_, id, {node});
  pending_ids_.push_back(id);
}

void Client::post_route_batch(const std::vector<wire::BatchRoutePair>& pairs) {
  const std::uint64_t id = next_id_++;
  wire::encode_batch_route_request(out_, id, {pairs});
  pending_ids_.push_back(id);
}

void Client::flush() {
  if (out_.empty()) return;
  send_all(out_.data(), out_.size());
  out_.clear();
}

wire::Response Client::take(wire::MsgType expected_type) {
  if (pending_ids_.empty()) {
    throw RpcError("take with no outstanding pipelined request");
  }
  flush();  // implicit: taking forces the queued frames onto the wire
  const std::uint64_t id = pending_ids_.front();
  pending_ids_.pop_front();
  wire::FrameHeader header;
  std::vector<std::uint8_t> payload;
  recv_frame(header, payload);
  if (header.request_id != id) {
    throw RpcError("pipelined response id mismatch: expected " +
                   std::to_string(id) + ", got " +
                   std::to_string(header.request_id));
  }
  auto decoded = wire::decode_response(header, payload);
  if (decoded.status != wire::DecodeStatus::kOk) {
    throw RpcError(std::string("bad response payload: ") +
                   to_string(decoded.status));
  }
  if (const auto* err = std::get_if<wire::ErrorResponse>(&decoded.response)) {
    throw RemoteError(err->code, err->message);
  }
  if (header.type != expected_type) {
    throw RpcError("pipelined response type mismatch");
  }
  return std::move(decoded.response);
}

wire::RouteResponse Client::take_route() {
  return std::get<wire::RouteResponse>(take(wire::MsgType::kRoute));
}

wire::PathResponse Client::take_path() {
  return std::get<wire::PathResponse>(take(wire::MsgType::kPath));
}

wire::ScoreResponse Client::take_score() {
  return std::get<wire::ScoreResponse>(take(wire::MsgType::kScore));
}

wire::BatchRouteResponse Client::take_route_batch() {
  return std::get<wire::BatchRouteResponse>(take(wire::MsgType::kBatchRoute));
}

}  // namespace egoist::rpc
