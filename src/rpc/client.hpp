// rpc::Client — a small blocking wire-protocol client.
//
// Used by the tests and the serve_remote bench; one instance per thread
// (no internal locking). Two usage styles:
//
//   simple   route()/path()/score()/stats()/ping() — one request, one
//            response, blocking with the per-call request timeout.
//   pipelined post_route()/post_path()/post_score() queue frames into an
//            outbound buffer; flush() writes them in one burst; then
//            take_route()/take_path()/take_score() consume the responses
//            in post order. The server answers a pipelined batch off one
//            pinned snapshot, so the batch's answers are mutually
//            consistent. Per-request latency is measured by stamping at
//            flush() and at each take_*() — see bench/serve_remote.
//
// Every response's request_id must match its request (responses arrive in
// order on one connection); a mismatch, a decode error, a timeout, or a
// server ERROR frame throws RpcError. The client never blocks forever:
// all socket waits go through poll(2) with the configured timeout.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "rpc/byte_queue.hpp"
#include "wire/protocol.hpp"

namespace egoist::rpc {

class RpcError : public std::runtime_error {
 public:
  explicit RpcError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when the server answered with an ERROR frame.
class RemoteError : public RpcError {
 public:
  RemoteError(std::uint16_t code, const std::string& message)
      : RpcError("remote error " + std::to_string(code) + ": " + message),
        code_(code) {}
  std::uint16_t code() const { return code_; }

 private:
  std::uint16_t code_;
};

class Client {
 public:
  struct Options {
    double connect_timeout_s = 5.0;
    double request_timeout_s = 5.0;
    std::size_t max_frame = wire::kDefaultMaxFrame;
  };

  /// Connects over TCP (loopback in all current uses).
  static Client connect_tcp(const std::string& host, int port,
                            Options options);
  static Client connect_tcp(const std::string& host, int port) {
    return connect_tcp(host, port, Options{});
  }
  /// Connects over a Unix-domain socket.
  static Client connect_uds(const std::string& path, Options options);
  static Client connect_uds(const std::string& path) {
    return connect_uds(path, Options{});
  }

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  void close();
  bool connected() const { return fd_ >= 0; }

  // --- simple blocking calls ---
  wire::PingResponse ping();
  wire::RouteResponse route(std::int32_t src, std::int32_t dst);
  wire::PathResponse path(std::int32_t src, std::int32_t dst);
  wire::ScoreResponse score(std::int32_t node);
  wire::StatsResponse stats();
  /// Many ROUTE lookups in one frame: one header decode and one send on
  /// each side however many pairs ride along (wire v2, BATCH_ROUTE).
  wire::BatchRouteResponse route_batch(
      const std::vector<wire::BatchRoutePair>& pairs);

  // --- pipelined calls ---
  /// Queues a request frame without writing to the socket yet.
  void post_route(std::int32_t src, std::int32_t dst);
  void post_path(std::int32_t src, std::int32_t dst);
  void post_score(std::int32_t node);
  void post_route_batch(const std::vector<wire::BatchRoutePair>& pairs);
  /// Writes every queued frame to the socket (one burst).
  void flush();
  /// Blocking read of the next pipelined response, which must be of the
  /// matching type and carry the next outstanding request id.
  wire::RouteResponse take_route();
  wire::PathResponse take_path();
  wire::ScoreResponse take_score();
  wire::BatchRouteResponse take_route_batch();
  /// Requests posted (or sent) whose responses have not been taken yet.
  std::size_t outstanding() const { return pending_ids_.size(); }

 private:
  Client(int fd, Options options) : fd_(fd), options_(options) {}

  void send_all(const std::uint8_t* data, std::size_t len);
  /// Reads exactly one frame into header/payload; throws on timeout,
  /// decode error, or EOF.
  void recv_frame(wire::FrameHeader& header,
                  std::vector<std::uint8_t>& payload);
  /// One request, one typed response (ERROR frames throw RemoteError).
  wire::Response call(wire::MsgType expected_type,
                      const std::vector<std::uint8_t>& frame,
                      std::uint64_t id);
  wire::Response take(wire::MsgType expected_type);

  int fd_ = -1;
  Options options_;
  std::uint64_t next_id_ = 1;
  std::deque<std::uint64_t> pending_ids_;  ///< pipelined ids, FIFO
  std::vector<std::uint8_t> out_;  ///< pipelined frames awaiting flush()
  ByteQueue in_;
};

}  // namespace egoist::rpc
