#include "rpc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace egoist::rpc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("rpc::Server: " + what + ": " +
                           std::strerror(errno));
}

int make_tcp_listener(const std::string& host, int port, int backlog,
                      int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("rpc::Server: bad TCP host " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port = ntohs(bound.sin_port);
  }
  set_nonblocking(fd);
  return fd;
}

int make_uds_listener(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("rpc::Server: UDS path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket from a crashed daemon
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  set_nonblocking(fd);
  return fd;
}

}  // namespace

Server::Server(host::RouteService& service, ServerOptions options)
    : service_(&service), options_(std::move(options)) {
  if (options_.tcp_port < 0 && options_.uds_path.empty()) {
    throw std::runtime_error(
        "rpc::Server: no listener configured (need tcp_port >= 0 or a "
        "uds_path)");
  }
  options_.max_frame = std::min(options_.max_frame, wire::kMaxFrameLimit);
  if (options_.tcp_port >= 0) {
    tcp_listen_fd_ = make_tcp_listener(options_.tcp_host, options_.tcp_port,
                                       options_.max_connections,
                                       bound_tcp_port_);
  }
  if (!options_.uds_path.empty()) {
    uds_listen_fd_ =
        make_uds_listener(options_.uds_path, options_.max_connections);
  }
  if (::pipe(wake_fds_) != 0) throw_errno("pipe");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
}

Server::~Server() {
  stop();
  for (const int fd : {tcp_listen_fd_, uds_listen_fd_, wake_fds_[0],
                       wake_fds_[1]}) {
    if (fd >= 0) ::close(fd);
  }
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
}

void Server::start() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (thread_.joinable() || stopped_) return;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void Server::stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_active =
      counters_.connections_active.load(std::memory_order_relaxed);
  s.frames_in = counters_.frames_in.load(std::memory_order_relaxed);
  s.frames_out = counters_.frames_out.load(std::memory_order_relaxed);
  s.decode_errors = counters_.decode_errors.load(std::memory_order_relaxed);
  s.error_responses =
      counters_.error_responses.load(std::memory_order_relaxed);
  s.idle_closed = counters_.idle_closed.load(std::memory_order_relaxed);
  s.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  s.batches = counters_.batches.load(std::memory_order_relaxed);
  return s;
}

void Server::accept_ready(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays armed
    }
    if (conns_.size() >=
        static_cast<std::size_t>(std::max(1, options_.max_connections))) {
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    conn.last_activity = std::chrono::steady_clock::now();
    conns_.push_back(std::move(conn));
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.connections_active.store(conns_.size(),
                                       std::memory_order_relaxed);
  }
}

bool Server::read_ready(Conn& conn) {
  std::uint8_t chunk[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(n));
      counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
      conn.last_activity = std::chrono::steady_clock::now();
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return true;
      // Socket may hold more; cap one connection's share of the loop so a
      // firehose peer cannot starve the rest.
      if (conn.in.size() > options_.max_frame + (1u << 20)) return true;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

void Server::dispatch(Conn& conn) {
  if (conn.closing) return;
  // Collect every complete frame first, then answer the batch off ONE
  // pinned snapshot — the pipelining contract: a client that stuffs K
  // requests into one write gets K answers that are mutually consistent
  // (same publication) for the cost of a single acquire().
  struct Pending {
    std::uint64_t id;
    wire::Request request;
  };
  std::vector<Pending> batch;
  for (;;) {
    const auto bytes = conn.in.readable();
    const auto hd = wire::decode_header(bytes, options_.max_frame);
    if (hd.status == wire::DecodeStatus::kNeedMore) break;
    if (hd.status != wire::DecodeStatus::kOk) {
      // Header-level garbage: framing is lost, answer once and hang up.
      counters_.decode_errors.fetch_add(1, std::memory_order_relaxed);
      counters_.error_responses.fetch_add(1, std::memory_order_relaxed);
      wire::ErrorResponse err;
      err.code = static_cast<std::uint16_t>(wire::ErrorCode::kMalformedFrame);
      err.message = std::string("malformed frame: ") + to_string(hd.status);
      wire::encode_error_response(conn.out.tail(), hd.header.request_id, err);
      counters_.frames_out.fetch_add(1, std::memory_order_relaxed);
      conn.in.clear();
      conn.closing = true;
      break;
    }
    const std::size_t frame_len = wire::kHeaderSize + hd.header.payload_len;
    if (bytes.size() < frame_len) break;  // payload still in flight
    const auto payload = bytes.subspan(wire::kHeaderSize,
                                       hd.header.payload_len);
    auto decoded = wire::decode_request(hd.header, payload);
    if (decoded.status != wire::DecodeStatus::kOk) {
      // Payload-level breakage: framing is intact, the connection lives.
      counters_.decode_errors.fetch_add(1, std::memory_order_relaxed);
      counters_.error_responses.fetch_add(1, std::memory_order_relaxed);
      wire::ErrorResponse err;
      err.code = static_cast<std::uint16_t>(wire::ErrorCode::kBadRequest);
      err.message =
          std::string("bad request payload: ") + to_string(decoded.status);
      wire::encode_error_response(conn.out.tail(), hd.header.request_id, err);
      counters_.frames_out.fetch_add(1, std::memory_order_relaxed);
      conn.in.consume(frame_len);
      continue;
    }
    counters_.frames_in.fetch_add(1, std::memory_order_relaxed);
    batch.push_back({hd.header.request_id, std::move(decoded.request)});
    conn.in.consume(frame_len);
  }
  if (batch.empty()) return;

  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  const host::ServedSnapshot pinned = service_->acquire();
  const auto& snap = pinned.snapshot();
  const std::int32_t n = static_cast<std::int32_t>(snap.size());
  const auto in_range = [n](std::int32_t id) { return id >= 0 && id < n; };
  auto& out = conn.out.tail();

  for (const auto& pending : batch) {
    const std::uint64_t id = pending.id;
    std::visit(
        [&](const auto& req) {
          using T = std::decay_t<decltype(req)>;
          if constexpr (std::is_same_v<T, wire::PingRequest>) {
            wire::PingResponse resp;
            resp.node_count = static_cast<std::uint32_t>(snap.size());
            resp.epoch = snap.epoch();
            resp.publish_seq = pinned.publish_seq();
            wire::encode_ping_response(out, id, resp);
          } else if constexpr (std::is_same_v<T, wire::RouteRequest>) {
            if (!in_range(req.src) || !in_range(req.dst)) {
              counters_.error_responses.fetch_add(1,
                                                  std::memory_order_relaxed);
              wire::encode_error_response(
                  out, id,
                  {static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange),
                   "node id out of range"});
              return;
            }
            const auto answer = pinned.route(req.src, req.dst);
            wire::RouteResponse resp;
            resp.reachable = answer.reachable ? 1 : 0;
            resp.next_hop = answer.next_hop;
            resp.cost = answer.cost;
            resp.epoch = answer.epoch;
            resp.publish_seq = answer.publish_seq;
            wire::encode_route_response(out, id, resp);
          } else if constexpr (std::is_same_v<T, wire::PathRequest>) {
            if (!in_range(req.src) || !in_range(req.dst)) {
              counters_.error_responses.fetch_add(1,
                                                  std::memory_order_relaxed);
              wire::encode_error_response(
                  out, id,
                  {static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange),
                   "node id out of range"});
              return;
            }
            const auto answer = pinned.path(req.src, req.dst);
            wire::PathResponse resp;
            resp.reachable = answer.reachable ? 1 : 0;
            resp.cost = answer.cost;
            resp.epoch = answer.epoch;
            resp.publish_seq = answer.publish_seq;
            resp.hops.assign(answer.nodes.begin(), answer.nodes.end());
            wire::encode_path_response(out, id, resp);
          } else if constexpr (std::is_same_v<T, wire::ScoreRequest>) {
            if (!in_range(req.node)) {
              counters_.error_responses.fetch_add(1,
                                                  std::memory_order_relaxed);
              wire::encode_error_response(
                  out, id,
                  {static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange),
                   "node id out of range"});
              return;
            }
            wire::ScoreResponse resp;
            resp.score = pinned.score(req.node);
            resp.epoch = pinned.epoch();
            resp.publish_seq = pinned.publish_seq();
            wire::encode_score_response(out, id, resp);
          } else if constexpr (std::is_same_v<T, wire::StatsRequest>) {
            const auto service = service_->stats();
            const auto server = stats();
            wire::StatsResponse resp;
            resp.node_count = static_cast<std::uint32_t>(snap.size());
            resp.published_epoch = service.published_epoch;
            resp.publish_seq = pinned.publish_seq();
            resp.queries_route = service.queries_route;
            resp.queries_path = service.queries_path;
            resp.queries_score = service.queries_score;
            resp.stale_served = service.stale_served;
            resp.rows_built = service.rows_built;
            resp.rows_discarded = service.rows_discarded;
            resp.uncached_queries = service.uncached_queries;
            resp.seal_violations = service.seal_violations;
            resp.retired_pending = service.retired_pending;
            resp.connections_accepted = server.connections_accepted;
            resp.connections_active = server.connections_active;
            resp.frames_in = server.frames_in;
            resp.frames_out = server.frames_out;
            resp.decode_errors = server.decode_errors;
            resp.error_responses = server.error_responses;
            resp.idle_closed = server.idle_closed;
            resp.bytes_in = server.bytes_in;
            resp.bytes_out = server.bytes_out;
            resp.batches = server.batches;
            wire::encode_stats_response(out, id, resp);
          }
        },
        pending.request);
    counters_.frames_out.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Server::write_ready(Conn& conn) {
  while (!conn.out.empty()) {
    const auto bytes = conn.out.readable();
    // MSG_NOSIGNAL: a client that vanished mid-response must surface as
    // EPIPE (we close the connection), not kill the daemon with SIGPIPE.
    const ssize_t n =
        ::send(conn.fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.consume(static_cast<std::size_t>(n));
      counters_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Server::close_conn(std::size_t index) {
  ::close(conns_[index].fd);
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
  counters_.connections_active.store(conns_.size(),
                                     std::memory_order_relaxed);
}

void Server::drain_and_close_all() {
  // Stop reading, keep flushing: every response already queued gets its
  // chance to leave under the deadline. poll() only watches writability.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              std::max(0.0, options_.drain_deadline_s)));
  for (;;) {
    std::vector<pollfd> fds;
    for (const auto& conn : conns_) {
      if (!conn.out.empty()) {
        fds.push_back({conn.fd, POLLOUT, 0});
      }
    }
    if (fds.empty()) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const int timeout_ms = static_cast<int>(std::min<std::int64_t>(
        100, std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                   now)
                 .count()));
    const int ready = ::poll(fds.data(), fds.size(),
                             std::max(1, timeout_ms));
    if (ready < 0 && errno != EINTR) break;
    for (std::size_t i = conns_.size(); i-- > 0;) {
      if (!conns_[i].out.empty() && !write_ready(conns_[i])) {
        close_conn(i);
      }
    }
  }
  for (std::size_t i = conns_.size(); i-- > 0;) close_conn(i);
}

void Server::loop() {
  std::vector<pollfd> fds;
  // Index map rebuilt every iteration: fds[0] = wake pipe, then the
  // listeners, then one entry per connection.
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    std::size_t tcp_at = SIZE_MAX;
    std::size_t uds_at = SIZE_MAX;
    if (tcp_listen_fd_ >= 0) {
      tcp_at = fds.size();
      fds.push_back({tcp_listen_fd_, POLLIN, 0});
    }
    if (uds_listen_fd_ >= 0) {
      uds_at = fds.size();
      fds.push_back({uds_listen_fd_, POLLIN, 0});
    }
    const std::size_t conn_base = fds.size();
    for (const auto& conn : conns_) {
      short events = 0;
      if (!conn.closing) events |= POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }

    // Wake at least every 100 ms for the idle sweep.
    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      char scratch[64];
      while (::read(wake_fds_[0], scratch, sizeof(scratch)) > 0) {
      }
    }
    if (tcp_at != SIZE_MAX && (fds[tcp_at].revents & POLLIN)) {
      accept_ready(tcp_listen_fd_);
    }
    if (uds_at != SIZE_MAX && (fds[uds_at].revents & POLLIN)) {
      accept_ready(uds_listen_fd_);
    }

    const auto now = std::chrono::steady_clock::now();
    // Sweep only the connections that were polled this iteration —
    // accept_ready above may have appended fresh ones with no fds entry
    // (they get their first turn next iteration). Downward iteration keeps
    // index i aligned with fds even as close_conn erases.
    const std::size_t polled = fds.size() - conn_base;
    for (std::size_t i = polled; i-- > 0;) {
      auto& conn = conns_[i];
      const auto revents = fds[conn_base + i].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        alive = false;  // peer already hung up; nothing left to flush to
      } else {
        if (alive && (revents & POLLIN)) {
          alive = read_ready(conn);
          if (alive) dispatch(conn);
        }
        if (alive && !conn.out.empty()) {
          alive = write_ready(conn);
        }
        if (alive && conn.closing && conn.out.empty()) alive = false;
        if (alive && options_.idle_timeout_s > 0.0 &&
            std::chrono::duration<double>(now - conn.last_activity).count() >
                options_.idle_timeout_s) {
          counters_.idle_closed.fetch_add(1, std::memory_order_relaxed);
          alive = false;
        }
      }
      if (!alive) close_conn(i);
    }
  }

  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
  }
  drain_and_close_all();
}

}  // namespace egoist::rpc
