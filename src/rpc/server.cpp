#include "rpc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace egoist::rpc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("rpc::Server: " + what + ": " +
                           std::strerror(errno));
}

/// One TCP listener. With SO_REUSEPORT every loop binds its own socket on
/// the same port and the kernel load-balances accepts across them; the
/// option must be set before bind(). The first listener may bind port 0
/// (ephemeral) — the caller reads the resolved port back through
/// bound_port and hands it to the remaining loops.
int make_tcp_listener(const std::string& host, int port, int backlog,
                      int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    ::close(fd);
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("rpc::Server: bad TCP host " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port = ntohs(bound.sin_port);
  }
  set_nonblocking(fd);
  return fd;
}

int make_uds_listener(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("rpc::Server: UDS path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket from a crashed daemon
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  set_nonblocking(fd);
  return fd;
}

}  // namespace

Server::Server(host::RouteService& service, ServerOptions options)
    : service_(&service), options_(std::move(options)) {
  if (options_.tcp_port < 0 && options_.uds_path.empty()) {
    throw std::runtime_error(
        "rpc::Server: no listener configured (need tcp_port >= 0 or a "
        "uds_path)");
  }
  options_.max_frame = std::min(options_.max_frame, wire::kMaxFrameLimit);
  int loop_count = options_.loops;
  if (loop_count == 0) {
    loop_count = static_cast<int>(std::thread::hardware_concurrency());
  }
  loop_count = std::clamp(loop_count, 1, 64);

  loops_.reserve(static_cast<std::size_t>(loop_count));
  for (int i = 0; i < loop_count; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = static_cast<std::size_t>(i);
    loops_.push_back(std::move(loop));
  }
  if (options_.tcp_port >= 0) {
    // Loop 0 resolves the port (possibly ephemeral); the rest join it.
    loops_[0]->tcp_listen_fd =
        make_tcp_listener(options_.tcp_host, options_.tcp_port,
                          options_.max_connections, bound_tcp_port_);
    for (std::size_t i = 1; i < loops_.size(); ++i) {
      int ignored = -1;
      loops_[i]->tcp_listen_fd =
          make_tcp_listener(options_.tcp_host, bound_tcp_port_,
                            options_.max_connections, ignored);
    }
  }
  if (!options_.uds_path.empty()) {
    loops_[0]->uds_listen_fd =
        make_uds_listener(options_.uds_path, options_.max_connections);
  }
  for (auto& loop : loops_) {
    if (::pipe(loop->wake_fds) != 0) throw_errno("pipe");
    set_nonblocking(loop->wake_fds[0]);
    set_nonblocking(loop->wake_fds[1]);
  }
}

Server::~Server() {
  stop();
  for (auto& loop : loops_) {
    for (const int fd : {loop->tcp_listen_fd, loop->uds_listen_fd,
                         loop->wake_fds[0], loop->wake_fds[1]}) {
      if (fd >= 0) ::close(fd);
    }
  }
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
}

void Server::start() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (loops_[0]->thread.joinable() || stopped_) return;
  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    loop->thread = std::thread([this, raw] { loop_run(*raw); });
  }
}

void Server::stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  stop_requested_.store(true, std::memory_order_release);
  for (auto& loop : loops_) wake(*loop);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Loop 0 may have parked a UDS handoff in an inbox right before its
  // target observed the stop flag; with every thread joined, whatever is
  // left can only be closed here.
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> inbox_lock(loop->inbox_mutex);
    for (const int fd : loop->inbox) ::close(fd);
    loop->inbox.clear();
  }
  running_.store(false, std::memory_order_release);
}

void Server::wake(Loop& loop) {
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(loop.wake_fds[1], &byte, 1);
}

ServerStats Server::stats() const {
  // Acquire loads pair with the (relaxed) increments' position in each
  // loop thread's program order at join time: after stop() the sums are
  // exact, while serving they are a consistent monotonic lower bound.
  ServerStats total;
  for (const auto& loop : loops_) {
    const auto& c = loop->counters;
    total.connections_accepted +=
        c.connections_accepted.load(std::memory_order_acquire);
    total.connections_active +=
        c.connections_active.load(std::memory_order_acquire);
    total.frames_in += c.frames_in.load(std::memory_order_acquire);
    total.frames_out += c.frames_out.load(std::memory_order_acquire);
    total.decode_errors += c.decode_errors.load(std::memory_order_acquire);
    total.error_responses +=
        c.error_responses.load(std::memory_order_acquire);
    total.idle_closed += c.idle_closed.load(std::memory_order_acquire);
    total.bytes_in += c.bytes_in.load(std::memory_order_acquire);
    total.bytes_out += c.bytes_out.load(std::memory_order_acquire);
    total.batches += c.batches.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<ServerStats> Server::per_loop_stats() const {
  std::vector<ServerStats> out;
  out.reserve(loops_.size());
  for (const auto& loop : loops_) {
    const auto& c = loop->counters;
    ServerStats s;
    s.connections_accepted =
        c.connections_accepted.load(std::memory_order_acquire);
    s.connections_active =
        c.connections_active.load(std::memory_order_acquire);
    s.frames_in = c.frames_in.load(std::memory_order_acquire);
    s.frames_out = c.frames_out.load(std::memory_order_acquire);
    s.decode_errors = c.decode_errors.load(std::memory_order_acquire);
    s.error_responses = c.error_responses.load(std::memory_order_acquire);
    s.idle_closed = c.idle_closed.load(std::memory_order_acquire);
    s.bytes_in = c.bytes_in.load(std::memory_order_acquire);
    s.bytes_out = c.bytes_out.load(std::memory_order_acquire);
    s.batches = c.batches.load(std::memory_order_acquire);
    out.push_back(s);
  }
  return out;
}

std::size_t Server::per_loop_conn_cap() const {
  const auto cap = static_cast<std::size_t>(
      std::max(1, options_.max_connections));
  return std::max<std::size_t>(1, cap / loops_.size());
}

void Server::adopt_conn(Loop& loop, int fd) {
  if (loop.conns.size() >= per_loop_conn_cap()) {
    ::close(fd);
    return;
  }
  set_nonblocking(fd);
  const int one = 1;
  // No-op (ENOTSUP/EOPNOTSUPP) on UDS fds; essential on TCP so small
  // pipelined frames never park behind Nagle.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Conn conn;
  conn.fd = fd;
  conn.last_activity = std::chrono::steady_clock::now();
  loop.conns.push_back(std::move(conn));
  loop.counters.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  loop.counters.connections_active.store(loop.conns.size(),
                                         std::memory_order_relaxed);
}

void Server::accept_ready(Loop& loop, int listen_fd) {
  const bool distribute =
      listen_fd == loop.uds_listen_fd && loops_.size() > 1;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays armed
    }
    if (distribute) {
      // The kernel balances TCP accepts across SO_REUSEPORT listeners;
      // the single UDS listener balances by hand — round-robin the fd to
      // a peer loop's inbox and wake it.
      const std::size_t target = uds_rr_++ % loops_.size();
      if (target != loop.index) {
        Loop& peer = *loops_[target];
        {
          std::lock_guard<std::mutex> inbox_lock(peer.inbox_mutex);
          peer.inbox.push_back(fd);
        }
        wake(peer);
        continue;
      }
    }
    adopt_conn(loop, fd);
  }
}

void Server::drain_inbox(Loop& loop) {
  std::vector<int> handoff;
  {
    std::lock_guard<std::mutex> inbox_lock(loop.inbox_mutex);
    handoff.swap(loop.inbox);
  }
  for (const int fd : handoff) adopt_conn(loop, fd);
}

bool Server::read_ready(Loop& loop, Conn& conn) {
  std::uint8_t chunk[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(n));
      loop.counters.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
      conn.last_activity = std::chrono::steady_clock::now();
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return true;
      // Socket may hold more; cap one connection's share of the loop so a
      // firehose peer cannot starve the rest.
      if (conn.in.size() > options_.max_frame + (1u << 20)) return true;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool Server::dispatch(Loop& loop, Conn& conn) {
  if (conn.closing) return true;
  // Collect every complete frame first, then answer the batch off ONE
  // pinned snapshot — the pipelining contract: a client that stuffs K
  // requests into one write gets K answers that are mutually consistent
  // (same publication) for the cost of a single acquire().
  struct Pending {
    std::uint64_t id;
    wire::Request request;
  };
  std::vector<Pending> batch;
  for (;;) {
    const auto bytes = conn.in.readable();
    const auto hd = wire::decode_header(bytes, options_.max_frame);
    if (hd.status == wire::DecodeStatus::kNeedMore) break;
    if (hd.status != wire::DecodeStatus::kOk) {
      // Header-level garbage: framing is lost, answer once and hang up.
      loop.counters.decode_errors.fetch_add(1, std::memory_order_relaxed);
      loop.counters.error_responses.fetch_add(1, std::memory_order_relaxed);
      wire::ErrorResponse err;
      err.code = static_cast<std::uint16_t>(wire::ErrorCode::kMalformedFrame);
      err.message = std::string("malformed frame: ") + to_string(hd.status);
      wire::encode_error_response(conn.out.tail(), hd.header.request_id, err);
      loop.counters.frames_out.fetch_add(1, std::memory_order_relaxed);
      conn.in.clear();
      conn.closing = true;
      break;
    }
    const std::size_t frame_len = wire::kHeaderSize + hd.header.payload_len;
    if (bytes.size() < frame_len) break;  // payload still in flight
    const auto payload = bytes.subspan(wire::kHeaderSize,
                                       hd.header.payload_len);
    auto decoded = wire::decode_request(hd.header, payload);
    if (decoded.status != wire::DecodeStatus::kOk) {
      // Payload-level breakage: framing is intact, the connection lives.
      loop.counters.decode_errors.fetch_add(1, std::memory_order_relaxed);
      loop.counters.error_responses.fetch_add(1, std::memory_order_relaxed);
      wire::ErrorResponse err;
      err.code = static_cast<std::uint16_t>(wire::ErrorCode::kBadRequest);
      err.message =
          std::string("bad request payload: ") + to_string(decoded.status);
      wire::encode_error_response(conn.out.tail(), hd.header.request_id, err);
      loop.counters.frames_out.fetch_add(1, std::memory_order_relaxed);
      conn.in.consume(frame_len);
      continue;
    }
    loop.counters.frames_in.fetch_add(1, std::memory_order_relaxed);
    batch.push_back({hd.header.request_id, std::move(decoded.request)});
    conn.in.consume(frame_len);
  }
  if (batch.empty()) return true;

  loop.counters.batches.fetch_add(1, std::memory_order_relaxed);
  const host::ServedSnapshot pinned = service_->acquire();
  const auto& snap = pinned.snapshot();
  const std::int32_t n = static_cast<std::int32_t>(snap.size());
  const auto in_range = [n](std::int32_t id) { return id >= 0 && id < n; };
  // Answers land in the loop's scratch arena (errors discovered during
  // the scan above are already in conn.out, ahead of them — the same
  // ordering the single-buffer dispatch produced); the flush below
  // gathers [conn.out backlog, scratch] through one sendmsg.
  auto& out = loop.scratch;
  out.clear();

  for (const auto& pending : batch) {
    const std::uint64_t id = pending.id;
    std::visit(
        [&](const auto& req) {
          using T = std::decay_t<decltype(req)>;
          if constexpr (std::is_same_v<T, wire::PingRequest>) {
            wire::PingResponse resp;
            resp.node_count = static_cast<std::uint32_t>(snap.size());
            resp.epoch = snap.epoch();
            resp.publish_seq = pinned.publish_seq();
            wire::encode_ping_response(out, id, resp);
          } else if constexpr (std::is_same_v<T, wire::RouteRequest>) {
            if (!in_range(req.src) || !in_range(req.dst)) {
              loop.counters.error_responses.fetch_add(
                  1, std::memory_order_relaxed);
              wire::encode_error_response(
                  out, id,
                  {static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange),
                   "node id out of range"});
              return;
            }
            const auto answer = pinned.route(req.src, req.dst);
            wire::RouteResponse resp;
            resp.reachable = answer.reachable ? 1 : 0;
            resp.next_hop = answer.next_hop;
            resp.cost = answer.cost;
            resp.epoch = answer.epoch;
            resp.publish_seq = answer.publish_seq;
            wire::encode_route_response(out, id, resp);
          } else if constexpr (std::is_same_v<T, wire::BatchRouteRequest>) {
            // All-or-nothing range check: a partial answer would misalign
            // the packed entries with the request's pair order.
            for (const auto& pair : req.pairs) {
              if (!in_range(pair.src) || !in_range(pair.dst)) {
                loop.counters.error_responses.fetch_add(
                    1, std::memory_order_relaxed);
                wire::encode_error_response(
                    out, id,
                    {static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange),
                     "node id out of range in batch"});
                return;
              }
            }
            // The response must itself fit in a frame the peer will
            // accept: 16 fixed bytes + 13 per entry against max_frame.
            const std::uint64_t response_payload =
                16 + std::uint64_t{req.pairs.size()} * 13;
            if (response_payload > options_.max_frame) {
              loop.counters.error_responses.fetch_add(
                  1, std::memory_order_relaxed);
              wire::encode_error_response(
                  out, id,
                  {static_cast<std::uint16_t>(wire::ErrorCode::kBadRequest),
                   "batch response would exceed max frame"});
              return;
            }
            wire::BatchRouteResponse resp;
            resp.epoch = pinned.epoch();
            resp.publish_seq = pinned.publish_seq();
            resp.entries.reserve(req.pairs.size());
            for (const auto& pair : req.pairs) {
              const auto answer = pinned.route(pair.src, pair.dst);
              wire::BatchRouteEntry entry;
              entry.reachable = answer.reachable ? 1 : 0;
              entry.next_hop = answer.next_hop;
              entry.cost = answer.cost;
              resp.entries.push_back(entry);
            }
            wire::encode_batch_route_response(out, id, resp);
          } else if constexpr (std::is_same_v<T, wire::PathRequest>) {
            if (!in_range(req.src) || !in_range(req.dst)) {
              loop.counters.error_responses.fetch_add(
                  1, std::memory_order_relaxed);
              wire::encode_error_response(
                  out, id,
                  {static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange),
                   "node id out of range"});
              return;
            }
            const auto answer = pinned.path(req.src, req.dst);
            wire::PathResponse resp;
            resp.reachable = answer.reachable ? 1 : 0;
            resp.cost = answer.cost;
            resp.epoch = answer.epoch;
            resp.publish_seq = answer.publish_seq;
            resp.hops.assign(answer.nodes.begin(), answer.nodes.end());
            wire::encode_path_response(out, id, resp);
          } else if constexpr (std::is_same_v<T, wire::ScoreRequest>) {
            if (!in_range(req.node)) {
              loop.counters.error_responses.fetch_add(
                  1, std::memory_order_relaxed);
              wire::encode_error_response(
                  out, id,
                  {static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange),
                   "node id out of range"});
              return;
            }
            wire::ScoreResponse resp;
            resp.score = pinned.score(req.node);
            resp.epoch = pinned.epoch();
            resp.publish_seq = pinned.publish_seq();
            wire::encode_score_response(out, id, resp);
          } else if constexpr (std::is_same_v<T, wire::StatsRequest>) {
            const auto service = service_->stats();
            const auto server = stats();
            wire::StatsResponse resp;
            resp.node_count = static_cast<std::uint32_t>(snap.size());
            resp.published_epoch = service.published_epoch;
            resp.publish_seq = pinned.publish_seq();
            resp.queries_route = service.queries_route;
            resp.queries_path = service.queries_path;
            resp.queries_score = service.queries_score;
            resp.stale_served = service.stale_served;
            resp.rows_built = service.rows_built;
            resp.rows_discarded = service.rows_discarded;
            resp.uncached_queries = service.uncached_queries;
            resp.seal_violations = service.seal_violations;
            resp.retired_pending = service.retired_pending;
            resp.connections_accepted = server.connections_accepted;
            resp.connections_active = server.connections_active;
            resp.frames_in = server.frames_in;
            resp.frames_out = server.frames_out;
            resp.decode_errors = server.decode_errors;
            resp.error_responses = server.error_responses;
            resp.idle_closed = server.idle_closed;
            resp.bytes_in = server.bytes_in;
            resp.bytes_out = server.bytes_out;
            resp.batches = server.batches;
            for (const auto& per : per_loop_stats()) {
              wire::PerLoopStats wire_loop;
              wire_loop.connections_accepted = per.connections_accepted;
              wire_loop.connections_active = per.connections_active;
              wire_loop.frames_in = per.frames_in;
              wire_loop.frames_out = per.frames_out;
              wire_loop.bytes_in = per.bytes_in;
              wire_loop.bytes_out = per.bytes_out;
              wire_loop.batches = per.batches;
              resp.per_loop.push_back(wire_loop);
            }
            wire::encode_stats_response(out, id, resp);
          }
        },
        pending.request);
    loop.counters.frames_out.fetch_add(1, std::memory_order_relaxed);
  }
  return flush_gather(loop, conn, loop.scratch);
}

bool Server::flush_gather(Loop& loop, Conn& conn,
                          std::span<const std::uint8_t> extra) {
  std::size_t extra_off = 0;
  for (;;) {
    const auto head = conn.out.readable();
    iovec iov[2];
    int iov_count = 0;
    if (!head.empty()) {
      iov[iov_count].iov_base = const_cast<std::uint8_t*>(head.data());
      iov[iov_count].iov_len = head.size();
      ++iov_count;
    }
    if (extra_off < extra.size()) {
      iov[iov_count].iov_base =
          const_cast<std::uint8_t*>(extra.data() + extra_off);
      iov[iov_count].iov_len = extra.size() - extra_off;
      ++iov_count;
    }
    if (iov_count == 0) return true;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iov_count);
    // sendmsg == writev + flags; MSG_NOSIGNAL keeps a vanished client an
    // EPIPE (we close the connection), not a process-killing SIGPIPE.
    const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      loop.counters.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                        std::memory_order_relaxed);
      conn.last_activity = std::chrono::steady_clock::now();
      std::size_t left = static_cast<std::size_t>(n);
      const std::size_t from_head = std::min(left, head.size());
      if (from_head > 0) conn.out.consume(from_head);
      extra_off += left - from_head;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket is full: park the unsent answers behind the backlog; the
      // loop's POLLOUT pass finishes the job.
      if (extra_off < extra.size()) {
        conn.out.append(extra.data() + extra_off, extra.size() - extra_off);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

bool Server::write_ready(Loop& loop, Conn& conn) {
  while (!conn.out.empty()) {
    const auto bytes = conn.out.readable();
    // MSG_NOSIGNAL: a client that vanished mid-response must surface as
    // EPIPE (we close the connection), not kill the daemon with SIGPIPE.
    const ssize_t n =
        ::send(conn.fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.consume(static_cast<std::size_t>(n));
      loop.counters.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                        std::memory_order_relaxed);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Server::close_conn(Loop& loop, std::size_t index) {
  ::close(loop.conns[index].fd);
  loop.conns.erase(loop.conns.begin() + static_cast<std::ptrdiff_t>(index));
  loop.counters.connections_active.store(loop.conns.size(),
                                         std::memory_order_relaxed);
}

void Server::drain_and_close_all(Loop& loop) {
  // Stop reading, keep flushing: every response already queued gets its
  // chance to leave under the deadline. poll() only watches writability.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              std::max(0.0, options_.drain_deadline_s)));
  for (;;) {
    std::vector<pollfd> fds;
    for (const auto& conn : loop.conns) {
      if (!conn.out.empty()) {
        fds.push_back({conn.fd, POLLOUT, 0});
      }
    }
    if (fds.empty()) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const int timeout_ms = static_cast<int>(std::min<std::int64_t>(
        100, std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                   now)
                 .count()));
    const int ready = ::poll(fds.data(), fds.size(),
                             std::max(1, timeout_ms));
    if (ready < 0 && errno != EINTR) break;
    for (std::size_t i = loop.conns.size(); i-- > 0;) {
      if (!loop.conns[i].out.empty() && !write_ready(loop, loop.conns[i])) {
        close_conn(loop, i);
      }
    }
  }
  for (std::size_t i = loop.conns.size(); i-- > 0;) close_conn(loop, i);
}

void Server::loop_run(Loop& loop) {
  std::vector<pollfd> fds;
  // Index map rebuilt every iteration: fds[0] = wake pipe, then this
  // loop's listeners, then one entry per connection.
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({loop.wake_fds[0], POLLIN, 0});
    std::size_t tcp_at = SIZE_MAX;
    std::size_t uds_at = SIZE_MAX;
    if (loop.tcp_listen_fd >= 0) {
      tcp_at = fds.size();
      fds.push_back({loop.tcp_listen_fd, POLLIN, 0});
    }
    if (loop.uds_listen_fd >= 0) {
      uds_at = fds.size();
      fds.push_back({loop.uds_listen_fd, POLLIN, 0});
    }
    const std::size_t conn_base = fds.size();
    for (const auto& conn : loop.conns) {
      short events = 0;
      if (!conn.closing) events |= POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }

    // Wake at least every 100 ms for the idle sweep.
    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      char scratch[64];
      while (::read(loop.wake_fds[0], scratch, sizeof(scratch)) > 0) {
      }
      // A wake is either stop() (checked at the top) or a UDS handoff
      // from loop 0 — adopt whatever is parked in the inbox.
      drain_inbox(loop);
    }
    if (tcp_at != SIZE_MAX && (fds[tcp_at].revents & POLLIN)) {
      accept_ready(loop, loop.tcp_listen_fd);
    }
    if (uds_at != SIZE_MAX && (fds[uds_at].revents & POLLIN)) {
      accept_ready(loop, loop.uds_listen_fd);
    }

    const auto now = std::chrono::steady_clock::now();
    // Sweep only the connections that were polled this iteration —
    // accept_ready/drain_inbox above may have appended fresh ones with no
    // fds entry (they get their first turn next iteration). Downward
    // iteration keeps index i aligned with fds even as close_conn erases.
    const std::size_t polled = fds.size() - conn_base;
    for (std::size_t i = polled; i-- > 0;) {
      auto& conn = loop.conns[i];
      const auto revents = fds[conn_base + i].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        alive = false;  // peer already hung up; nothing left to flush to
      } else {
        if (alive && (revents & POLLIN)) {
          alive = read_ready(loop, conn);
          if (alive) alive = dispatch(loop, conn);
        }
        if (alive && !conn.out.empty()) {
          alive = write_ready(loop, conn);
        }
        if (alive && conn.closing && conn.out.empty()) alive = false;
        if (alive && options_.idle_timeout_s > 0.0 &&
            std::chrono::duration<double>(now - conn.last_activity).count() >
                options_.idle_timeout_s) {
          loop.counters.idle_closed.fetch_add(1, std::memory_order_relaxed);
          alive = false;
        }
      }
      if (!alive) close_conn(loop, i);
    }
  }

  if (loop.tcp_listen_fd >= 0) {
    ::close(loop.tcp_listen_fd);
    loop.tcp_listen_fd = -1;
  }
  if (loop.uds_listen_fd >= 0) {
    ::close(loop.uds_listen_fd);
    loop.uds_listen_fd = -1;
  }
  drain_and_close_all(loop);
}

}  // namespace egoist::rpc
