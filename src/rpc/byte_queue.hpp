// Per-connection byte ring for the rpc layer.
//
// Each connection owns two of these: an inbound queue the event loop
// appends socket reads into (frames are decoded off the front), and an
// outbound queue encoded responses are appended to (flushed to the socket
// from the front). The storage is one contiguous vector with a head
// cursor; readable bytes are always contiguous (so frame decoding works on
// a plain span, no wrap-around seam), and the head space is compacted away
// once it dominates the buffer — amortized O(1) per byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace egoist::rpc {

class ByteQueue {
 public:
  void append(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  void append(std::span<const std::uint8_t> bytes) {
    append(bytes.data(), bytes.size());
  }

  /// The readable bytes, contiguous, front of queue first.
  std::span<const std::uint8_t> readable() const {
    return {buf_.data() + head_, buf_.size() - head_};
  }

  /// Drops `n` bytes off the front (n <= size()).
  void consume(std::size_t n) {
    head_ += n;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ > buf_.size() / 2 && head_ >= 4096) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::size_t size() const { return buf_.size() - head_; }
  bool empty() const { return size() == 0; }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

  /// Appendable scratch access for encoders that write frames in place.
  std::vector<std::uint8_t>& tail() { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;
};

}  // namespace egoist::rpc
