// Tabular output for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's figures as a table of
// series (one row per x-value, one column per curve). Table renders the
// result both as an aligned ASCII table for the terminal and as CSV for
// plotting, matching the rows/series the paper reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace egoist::util {

/// A simple column-oriented table: a header row plus numeric/text cells.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a row of pre-formatted cells. Must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Appends a row of doubles, formatted with `precision` significant
  /// decimal digits (NaN rendered as "-").
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return columns_.size(); }

  /// Raw access for structured (JSON-lines) emission by exp::ResultSink.
  const std::vector<std::string>& column_names() const { return columns_; }
  const std::vector<std::vector<std::string>>& cell_rows() const { return rows_; }

  /// Writes an aligned, human-readable table. Numeric columns (including
  /// NaN "-" and negative cells) are right-aligned; text columns are
  /// left-aligned, headers following their column's data.
  void write_ascii(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting needed for our numeric content).
  void write_csv(std::ostream& os) const;

  /// Convenience: formats a double the same way add_numeric_row does.
  static std::string format(double v, int precision = 4);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace egoist::util
