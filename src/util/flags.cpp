#include "util/flags.hpp"

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace egoist::util {

namespace {
bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" form when the next token is not itself a flag;
    // otherwise a boolean switch.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Flags::get(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(const std::string& name, const std::string& def) const {
  defaults_.emplace(name, def);
  return get(name).value_or(def);
}

int Flags::get_int(const std::string& name, int def) const {
  defaults_.emplace(name, std::to_string(def));
  const auto v = get(name);
  if (!v) return def;
  try {
    return std::stoi(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" + *v + "'");
  }
}

double Flags::get_double(const std::string& name, double def) const {
  {
    std::ostringstream os;
    os << def;
    defaults_.emplace(name, os.str());
  }
  const auto v = get(name);
  if (!v) return def;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" + *v + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool def) const {
  defaults_.emplace(name, def ? "true" : "false");
  const auto v = get(name);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + *v + "'");
}

std::uint64_t Flags::get_seed(const std::string& name, std::uint64_t def) const {
  defaults_.emplace(name, std::to_string(def));
  const auto v = get(name);
  if (!v) return def;
  try {
    return std::stoull(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a seed, got '" + *v + "'");
  }
}

std::vector<std::string> Flags::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

bool Flags::help_requested() const {
  const auto it = values_.find("help");
  if (it == values_.end()) return false;
  // Mirror get_bool: an explicit false-ish value means "no help".
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::string Flags::usage() const {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& [name, def] : defaults_) {
    os << "  --" << name << "  (default: " << def << ")\n";
  }
  os << "  --help  (print this message and exit)\n";
  return os.str();
}

void Flags::finish(const std::string& description) const {
  if (help_requested()) {
    if (!description.empty()) std::cout << description << "\n\n";
    std::cout << usage();
    std::exit(0);
  }
  queried_["help"] = true;  // an explicit --help=false is consumed, not a typo
  const auto leftover = unqueried();
  if (!leftover.empty()) {
    throw std::invalid_argument("unknown flag: --" + leftover.front());
  }
}

}  // namespace egoist::util
