#include "util/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace egoist::util {

namespace {
bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// Levenshtein edit distance; small strings only (flag names).
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}
}  // namespace

std::optional<std::string> closest_name(const std::string& name,
                                        const std::vector<std::string>& candidates) {
  std::optional<std::string> best;
  std::size_t best_distance = 0;
  for (const auto& candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (!best || d < best_distance) {
      best = candidate;
      best_distance = d;
    }
  }
  // Only suggest plausible typos: within ~a third of the name's length
  // (at least 2 edits so one-letter names still get a hint).
  const std::size_t cutoff =
      std::max<std::size_t>(2, std::max(name.size(), best ? best->size() : 0) / 3);
  if (!best || best_distance > cutoff) return std::nullopt;
  return best;
}

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" form when the next token is not itself a flag;
    // otherwise a boolean switch.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Flags::get(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(const std::string& name, const std::string& def) const {
  defaults_.emplace(name, def);
  return get(name).value_or(def);
}

int Flags::get_int(const std::string& name, int def) const {
  defaults_.emplace(name, std::to_string(def));
  const auto v = get(name);
  if (!v) return def;
  try {
    return std::stoi(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" + *v + "'");
  }
}

double Flags::get_double(const std::string& name, double def) const {
  {
    std::ostringstream os;
    os << def;
    defaults_.emplace(name, os.str());
  }
  const auto v = get(name);
  if (!v) return def;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" + *v + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool def) const {
  defaults_.emplace(name, def ? "true" : "false");
  const auto v = get(name);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + *v + "'");
}

std::uint64_t Flags::get_seed(const std::string& name, std::uint64_t def) const {
  defaults_.emplace(name, std::to_string(def));
  const auto v = get(name);
  if (!v) return def;
  try {
    return std::stoull(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a seed, got '" + *v + "'");
  }
}

double parse_duration_seconds(const std::string& text) {
  const auto fail = [&]() -> double {
    throw std::invalid_argument("bad duration '" + text +
                                "' (expected e.g. 250ms, 5s, 2m, 1h)");
  };
  if (text.empty()) return fail();
  // Split off the longest trailing run of letters as the unit.
  std::size_t unit_at = text.size();
  while (unit_at > 0 && std::isalpha(static_cast<unsigned char>(
                            text[unit_at - 1]))) {
    --unit_at;
  }
  const std::string number = text.substr(0, unit_at);
  const std::string unit = text.substr(unit_at);
  if (number.empty()) return fail();
  double value = 0.0;
  std::size_t used = 0;
  try {
    value = std::stod(number, &used);
  } catch (const std::exception&) {
    return fail();
  }
  if (used != number.size() || value < 0.0 || !std::isfinite(value)) {
    return fail();
  }
  if (unit.empty() || unit == "s") return value;
  if (unit == "ms") return value * 1e-3;
  if (unit == "us") return value * 1e-6;
  if (unit == "ns") return value * 1e-9;
  if (unit == "m" || unit == "min") return value * 60.0;
  if (unit == "h") return value * 3600.0;
  return fail();
}

std::uint64_t parse_size_bytes(const std::string& text) {
  const auto fail = [&]() -> std::uint64_t {
    throw std::invalid_argument("bad size '" + text +
                                "' (expected e.g. 4096, 64K, 8M, 1G)");
  };
  if (text.empty()) return fail();
  std::size_t unit_at = text.size();
  while (unit_at > 0 && std::isalpha(static_cast<unsigned char>(
                            text[unit_at - 1]))) {
    --unit_at;
  }
  const std::string number = text.substr(0, unit_at);
  std::string unit = text.substr(unit_at);
  for (auto& c : unit) c = static_cast<char>(std::tolower(
                               static_cast<unsigned char>(c)));
  if (!unit.empty() && unit.back() == 'b') unit.pop_back();  // "64KB"
  if (number.empty()) return fail();
  std::uint64_t multiplier = 1;
  if (unit == "k") {
    multiplier = 1ull << 10;
  } else if (unit == "m") {
    multiplier = 1ull << 20;
  } else if (unit == "g") {
    multiplier = 1ull << 30;
  } else if (!unit.empty()) {
    return fail();
  }
  // The count may be fractional only if the product is whole ("1.5M" ok,
  // "1.5" bytes not). Parse as double, demand an integral byte count.
  double value = 0.0;
  std::size_t used = 0;
  try {
    value = std::stod(number, &used);
  } catch (const std::exception&) {
    return fail();
  }
  if (used != number.size() || value < 0.0 || !std::isfinite(value)) {
    return fail();
  }
  const double bytes = value * static_cast<double>(multiplier);
  if (bytes > 9.2e18 || bytes != std::floor(bytes)) return fail();
  return static_cast<std::uint64_t>(bytes);
}

double Flags::get_duration(const std::string& name,
                           const std::string& def) const {
  defaults_.emplace(name, def);
  const auto v = get(name);
  try {
    return parse_duration_seconds(v.value_or(def));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("flag --" + name + ": " + e.what());
  }
}

std::uint64_t Flags::get_size(const std::string& name,
                              const std::string& def) const {
  defaults_.emplace(name, def);
  const auto v = get(name);
  try {
    return parse_size_bytes(v.value_or(def));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("flag --" + name + ": " + e.what());
  }
}

std::vector<std::pair<std::string, std::string>> Flags::consume_all() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [name, value] : values_) {
    queried_[name] = true;
    out.emplace_back(name, value);
  }
  return out;
}

std::vector<std::string> Flags::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

bool Flags::help_requested() const {
  const auto it = values_.find("help");
  if (it == values_.end()) return false;
  // Mirror get_bool: an explicit false-ish value means "no help".
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::string Flags::usage() const {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& [name, def] : defaults_) {
    os << "  --" << name << "  (default: " << def << ")\n";
  }
  os << "  --help  (print this message and exit)\n";
  return os.str();
}

void Flags::finish(const std::string& description) const {
  if (help_requested()) {
    if (!description.empty()) std::cout << description << "\n\n";
    std::cout << usage();
    std::exit(0);
  }
  queried_["help"] = true;  // an explicit --help=false is consumed, not a typo
  const auto leftover = unqueried();
  if (!leftover.empty()) {
    std::vector<std::string> known;
    for (const auto& [name, _] : defaults_) known.push_back(name);
    known.push_back("help");
    std::string message = "unknown flag: --" + leftover.front();
    if (const auto hint = closest_name(leftover.front(), known)) {
      message += " (did you mean --" + *hint + "?)";
    }
    throw std::invalid_argument(message);
  }
}

}  // namespace egoist::util
