#include "util/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace egoist::util {

namespace {

// Shift applied to values in bucket block `b` (block 0 = the exact
// buckets, block b >= 1 covers [kSubCount << (b-1), kSubCount << b)).
constexpr int block_shift(std::size_t block) {
  return block == 0 ? 0 : static_cast<int>(block) - 1;
}

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(bucket_count(), 0) {}

std::size_t LatencyHistogram::bucket_count() {
  // Blocks: one exact block of kSubCount buckets, then one block of
  // kSubCount per doubling up to kMaxValue.
  const int max_shift = 40 - kSubBits;  // kMaxValue = 2^40
  return static_cast<std::size_t>(max_shift + 1) * kSubCount;
}

std::size_t LatencyHistogram::bucket_of(std::uint64_t value) {
  if (value >= kMaxValue) return bucket_count() - 1;
  if (value < kSubCount) return static_cast<std::size_t>(value);
  const int exponent = std::bit_width(value) - 1;  // >= kSubBits
  const int shift = exponent - kSubBits;
  const std::uint64_t sub = (value >> shift) - kSubCount;  // [0, kSubCount)
  return (static_cast<std::size_t>(shift) + 1) * kSubCount +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_lower(std::size_t index) {
  const std::size_t block = index / kSubCount;
  const std::uint64_t sub = index % kSubCount;
  if (block == 0) return sub;
  return (kSubCount + sub) << block_shift(block);
}

std::uint64_t LatencyHistogram::bucket_width(std::size_t index) {
  const std::size_t block = index / kSubCount;
  return 1ull << block_shift(block);
}

void LatencyHistogram::record(std::uint64_t value) {
  ++buckets_[bucket_of(value)];
  ++count_;
  sum_ += value;
  max_recorded_ = std::max(max_recorded_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_recorded_ = std::max(max_recorded_, other.max_recorded_);
}

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) throw std::invalid_argument("empty histogram");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("p outside [0, 100]");
  // Rank of the requested sample, 1-based, clamped into [1, count].
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(target);
  if (static_cast<double>(rank) < target) ++rank;
  rank = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen >= rank) {
      // Interpolate inside the bucket by the rank's position among the
      // bucket's samples.
      const std::uint64_t before = seen - buckets_[i];
      const double within = static_cast<double>(rank - before) /
                            static_cast<double>(buckets_[i]);
      return static_cast<double>(bucket_lower(i)) +
             within * static_cast<double>(bucket_width(i));
    }
  }
  return static_cast<double>(max_recorded_);  // unreachable
}

}  // namespace egoist::util
