#include "util/log.hpp"

namespace egoist::util {

namespace {
LogLevel g_threshold = LogLevel::kWarn;
}

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel level) { g_threshold = level; }

const char* log_level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace egoist::util
