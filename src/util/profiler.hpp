// In-process hierarchical profiler.
//
// Usage: drop EGOIST_PROFILE_SCOPE("phase") at the top of a block. Scopes
// nest: a scope opened while another is active becomes its child, and the
// report keys phases by the '/'-joined path ("epoch/evaluate"). Each thread
// keeps its own log (no synchronization on the hot path beyond one relaxed
// atomic load); report() merges all thread logs under a mutex, so it must
// only be called while no scopes are being opened or closed.
//
// The clock is injectable (set_clock) so tests can assert exact durations
// and golden-file the emitted rows. Compiling with EGOIST_PROFILE_DISABLE
// turns the macro into `(void)0` — the no-overhead escape hatch for builds
// that must not pay even the enabled-flag branch.
//
// Report rows feed the experiment sinks as a "profile" panel using the
// stable columns from profile_columns() / phase_cells(); that JSONL shape
// is documented in docs/EXPERIMENTS.md and golden-tested.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace egoist::util {

class Profiler {
 public:
  /// Nanosecond clock; injectable for deterministic tests.
  using ClockFn = std::uint64_t (*)();

  static Profiler& instance();

  /// Profiling is off by default; experiments flip it on for profiled runs.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// nullptr restores the steady-clock default.
  void set_clock(ClockFn clock);

  /// Opens a scope on the calling thread. Returns whether the scope was
  /// recorded (false when disabled), so ProfileScope stays balanced even if
  /// the enabled flag flips mid-scope.
  bool begin(const char* name);
  void end();

  struct Phase {
    std::string path;        ///< '/'-joined scope names, e.g. "epoch/evaluate"
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;  ///< total minus time inside child scopes
  };

  /// Merged per-phase aggregates across every thread that ever profiled,
  /// sorted by path. Call only while no scopes are open or being recorded.
  std::vector<Phase> report() const;

  /// Drops all recorded data (live and retired thread logs). Same
  /// quiescence requirement as report().
  void reset();

 private:
  friend struct ProfilerThreadLog;

  Profiler() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<ClockFn> clock_{nullptr};  ///< nullptr = steady clock

  mutable std::mutex mutex_;
  std::vector<struct ProfilerThreadLog*> logs_;        ///< live threads
  std::vector<std::vector<struct ProfilerNode>> retired_;  ///< exited threads
};

/// Stable column names of the "profile" report panel.
const std::vector<std::string>& profile_columns();

/// Formats one phase as the cell vector matching profile_columns().
std::vector<std::string> phase_cells(const Profiler::Phase& phase);

/// RAII for a profiled run: enables the profiler when `on`, and on
/// destruction restores the off-by-default state and drops the recorded
/// data. Experiments wrap profiled sections in one of these so an error
/// thrown mid-run cannot leak an enabled profiler into later runs.
class ProfileSession {
 public:
  explicit ProfileSession(bool on) : on_(on) {
    if (on_) Profiler::instance().set_enabled(true);
  }
  ~ProfileSession() {
    if (on_) {
      Profiler::instance().set_enabled(false);
      Profiler::instance().reset();
    }
  }

  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

 private:
  bool on_;
};

/// RAII helper behind EGOIST_PROFILE_SCOPE; usable directly when the scope
/// name is computed at runtime.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name)
      : active_(Profiler::instance().begin(name)) {}
  ~ProfileScope() {
    if (active_) Profiler::instance().end();
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  bool active_;
};

}  // namespace egoist::util

#define EGOIST_PROFILE_CAT2(a, b) a##b
#define EGOIST_PROFILE_CAT(a, b) EGOIST_PROFILE_CAT2(a, b)

#ifdef EGOIST_PROFILE_DISABLE
#define EGOIST_PROFILE_SCOPE(name) static_cast<void>(0)
#else
#define EGOIST_PROFILE_SCOPE(name) \
  ::egoist::util::ProfileScope EGOIST_PROFILE_CAT(egoist_profile_scope_, \
                                                  __LINE__)(name)
#endif
