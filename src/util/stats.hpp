// Descriptive statistics used throughout the experiment harnesses.
//
// The paper reports, for each experiment, the mean over the n individual
// node costs together with 95th-percentile confidence intervals; Summary
// computes exactly that. OnlineStats (Welford) accumulates streams without
// storing them, and Ewma reproduces the 1-minute exponentially-weighted
// moving average the paper applies to PlanetLab CPU load readings.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace egoist::util {

/// Batch summary of a sample: mean, stddev, min/max, percentiles and the
/// half-width of the 95% confidence interval on the mean.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double ci95 = 0.0;  ///< 1.96 * stddev / sqrt(n); 0 when count < 2

  /// Computes a Summary over `values`. Returns a zeroed Summary when empty.
  static Summary of(const std::vector<double>& values);
};

/// Returns the p-th percentile (p in [0,100]) using linear interpolation.
/// Throws std::invalid_argument on an empty sample or p outside [0,100].
double percentile(std::vector<double> values, double p);

/// Peak resident set size of this process in bytes (memory telemetry for
/// the scale experiments). 0 when the platform does not expose it.
std::size_t peak_rss_bytes();

/// Streaming mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exponentially weighted moving average over irregularly sampled readings.
///
/// The weight of a new reading decays with the time elapsed since the last
/// one: after `half_life` time units without updates a new reading carries
/// 50% of the average. This mirrors loadavg-style smoothing used by the
/// paper's node-load metric (half_life = 60 s in the experiments).
class Ewma {
 public:
  explicit Ewma(double half_life);

  /// Folds in a reading taken at absolute time `now`. Times must be
  /// non-decreasing across calls.
  void update(double value, double now);

  bool has_value() const { return initialized_; }
  double value() const { return value_; }

 private:
  double half_life_;
  double value_ = 0.0;
  double last_time_ = 0.0;
  bool initialized_ = false;
};

}  // namespace egoist::util
