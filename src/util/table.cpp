#include "util/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace egoist::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table needs >= 1 column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("row width does not match column count");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format(v, precision));
  add_row(std::move(row));
}

std::string Table::format(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

namespace {
/// A cell counts as numeric when it parses fully as a double (covers
/// negatives and scientific notation) or is the NaN placeholder "-".
bool is_numeric_cell(const std::string& cell) {
  if (cell.empty() || cell == "-") return true;
  char* end = nullptr;
  (void)std::strtod(cell.c_str(), &end);
  return end != nullptr && *end == '\0' && end != cell.c_str();
}
}  // namespace

void Table::write_ascii(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  // Numeric columns (every data cell numeric, NaN "-" included) are
  // right-aligned so signs and decimal points line up; text columns are
  // left-aligned. Headers follow their column's data.
  std::vector<bool> numeric(columns_.size(), true);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!is_numeric_cell(row[c])) numeric[c] = false;
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool last = c + 1 == row.size();
      if (last && !numeric[c]) {
        os << row[c];  // no trailing padding after a left-aligned tail
      } else {
        os << (numeric[c] ? std::right : std::left)
           << std::setw(static_cast<int>(width[c])) << row[c];
      }
      os << (last ? "" : "  ");
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "");
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace egoist::util
