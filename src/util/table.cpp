#include "util/table.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace egoist::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table needs >= 1 column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("row width does not match column count");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(format(v, precision));
  add_row(std::move(row));
}

std::string Table::format(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::write_ascii(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c]
         << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "");
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace egoist::util
