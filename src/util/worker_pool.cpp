#include "util/worker_pool.hpp"

#include <stdexcept>

namespace egoist::util {

int WorkerPool::resolve(int requested) {
  if (requested < 0) throw std::invalid_argument("workers must be >= 0");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(hw == 0 ? 1 : hw);
}

WorkerPool::WorkerPool(int threads) {
  if (threads < 1) throw std::invalid_argument("pool needs >= 1 worker");
  helpers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    helpers_.emplace_back(&WorkerPool::worker_loop, this,
                          static_cast<std::size_t>(w));
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : helpers_) t.join();
}

void WorkerPool::work_through(std::size_t worker) {
  while (true) {
    const std::size_t task = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (task >= tasks_) return;
    try {
      (*fn_)(task, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_ || task < error_task_) {
        error_ = std::current_exception();
        error_task_ = task;
      }
    }
  }
}

void WorkerPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    work_through(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_;
    }
    done_cv_.notify_one();
  }
}

void WorkerPool::run(std::size_t tasks, const Task& fn) {
  if (tasks == 0) return;
  fn_ = &fn;
  tasks_ = tasks;
  cursor_.store(0, std::memory_order_relaxed);
  error_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    busy_ = helpers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  work_through(0);  // the calling thread is worker 0
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return busy_ == 0; });
  }
  fn_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

}  // namespace egoist::util
