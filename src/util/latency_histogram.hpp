// Log-bucketed latency histogram, mergeable across threads.
//
// The serving layer (host::RouteService readers, bench/serve_load) records
// one latency sample per query at rates where storing raw samples is off
// the table. LatencyHistogram buckets values HdrHistogram-style: exact
// buckets below 2^kSubBits, then kSubCount linear sub-buckets per power of
// two, which bounds the relative quantization error of any percentile at
// 1/kSubCount (~3%) while keeping the footprint at a few KB. Values are
// unit-agnostic integers; the serving benches record nanoseconds.
//
// Each thread owns its own histogram (record() is not thread-safe) and the
// aggregator merges after join — merge() is exact (bucket-wise add), so
// merging is associative and commutative and percentiles of the merged
// histogram equal percentiles of the concatenated sample streams up to the
// fixed bucket quantization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace egoist::util {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear buckets per power of two.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;
  /// Values above kMaxValue clamp into the last bucket.
  static constexpr std::uint64_t kMaxValue = 1ull << 40;

  LatencyHistogram();

  /// Folds in one sample. Not thread-safe; one histogram per thread.
  void record(std::uint64_t value);

  /// Bucket-wise addition (exact; associative and commutative).
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max_recorded() const { return max_recorded_; }
  double mean() const;

  /// Value at percentile p in [0, 100], interpolated linearly inside the
  /// containing bucket. Throws std::invalid_argument on an empty histogram
  /// or p outside [0, 100].
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }

  /// --- Bucket geometry (exposed for the boundary tests) ---
  static std::size_t bucket_count();
  /// Index of the bucket containing `value` (clamped to the last bucket).
  static std::size_t bucket_of(std::uint64_t value);
  /// Smallest value mapping to bucket `index`.
  static std::uint64_t bucket_lower(std::size_t index);
  /// Number of distinct values mapping to bucket `index`.
  static std::uint64_t bucket_width(std::size_t index);

  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_recorded_ = 0;
};

}  // namespace egoist::util
