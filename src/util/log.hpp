// Lightweight leveled logging for the simulator and protocol stack.
//
// The simulator is single-threaded, so the logger keeps no locks. Messages
// below the global threshold are formatted lazily (the stream expression is
// never evaluated), keeping hot simulation loops cheap when logging is off.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace egoist::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Returns a short tag like "DEBUG"/"INFO " for message prefixes.
const char* log_level_tag(LogLevel level);

namespace detail {
/// One log statement: accumulates a line and flushes it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* component) : level_(level) {
    buffer_ << log_level_tag(level) << " [" << component << "] ";
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    buffer_ << '\n';
    std::clog << buffer_.str();
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream buffer_;
};
}  // namespace detail

}  // namespace egoist::util

/// Usage: EGOIST_LOG(kInfo, "proto") << "flooded LSA seq=" << seq;
#define EGOIST_LOG(level, component)                                     \
  if (::egoist::util::LogLevel::level < ::egoist::util::log_threshold()) \
    ;                                                                    \
  else                                                                   \
    ::egoist::util::detail::LogLine(::egoist::util::LogLevel::level, component)
