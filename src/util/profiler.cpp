#include "util/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

namespace egoist::util {

struct ProfilerNode {
  std::string name;
  int parent = -1;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::vector<int> children;
};

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct OpenFrame {
  int node;
  std::uint64_t start_ns;
};

}  // namespace

/// Per-thread scope log. Node 0 is the root sentinel; real scopes hang off
/// it. On thread exit the log's tree is retired into the global profiler so
/// short-lived worker threads still show up in the report.
struct ProfilerThreadLog {
  explicit ProfilerThreadLog(Profiler& owner) : owner(owner) {
    nodes.emplace_back();  // root sentinel
    std::lock_guard<std::mutex> lock(owner.mutex_);
    owner.logs_.push_back(this);
  }

  ~ProfilerThreadLog() {
    std::lock_guard<std::mutex> lock(owner.mutex_);
    if (nodes.size() > 1) owner.retired_.push_back(std::move(nodes));
    owner.logs_.erase(std::find(owner.logs_.begin(), owner.logs_.end(), this));
  }

  int child(int parent, const char* name) {
    for (int c : nodes[parent].children) {
      if (nodes[c].name == name) return c;
    }
    const int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    nodes[id].name = name;
    nodes[id].parent = parent;
    nodes[parent].children.push_back(id);
    return id;
  }

  void clear() {
    nodes.resize(1);
    nodes[0].children.clear();
    stack.clear();
  }

  Profiler& owner;
  std::vector<ProfilerNode> nodes;
  std::vector<OpenFrame> stack;
};

namespace {

ProfilerThreadLog& thread_log() {
  thread_local ProfilerThreadLog log(Profiler::instance());
  return log;
}

void merge_tree(const std::vector<ProfilerNode>& nodes, int node,
                const std::string& prefix,
                std::map<std::string, Profiler::Phase>& out) {
  for (int c : nodes[node].children) {
    const ProfilerNode& n = nodes[c];
    const std::string path = prefix.empty() ? n.name : prefix + "/" + n.name;
    Profiler::Phase& p = out[path];
    p.path = path;
    p.count += n.count;
    p.total_ns += n.total_ns;
    std::uint64_t child_ns = 0;
    for (int gc : n.children) child_ns += nodes[gc].total_ns;
    p.self_ns += n.total_ns - std::min(n.total_ns, child_ns);
    merge_tree(nodes, c, path, out);
  }
}

std::string format_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::set_clock(ClockFn clock) {
  clock_.store(clock, std::memory_order_relaxed);
}

bool Profiler::begin(const char* name) {
  if (!enabled()) return false;
  const ClockFn clock = clock_.load(std::memory_order_relaxed);
  ProfilerThreadLog& log = thread_log();
  const int parent = log.stack.empty() ? 0 : log.stack.back().node;
  const int node = log.child(parent, name);
  log.stack.push_back({node, clock ? clock() : steady_now_ns()});
  return true;
}

void Profiler::end() {
  const ClockFn clock = clock_.load(std::memory_order_relaxed);
  ProfilerThreadLog& log = thread_log();
  const OpenFrame frame = log.stack.back();
  log.stack.pop_back();
  const std::uint64_t now = clock ? clock() : steady_now_ns();
  ProfilerNode& n = log.nodes[frame.node];
  ++n.count;
  n.total_ns += now - std::min(now, frame.start_ns);
}

std::vector<Profiler::Phase> Profiler::report() const {
  std::map<std::string, Phase> merged;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const ProfilerThreadLog* log : logs_) {
    merge_tree(log->nodes, 0, "", merged);
  }
  for (const auto& nodes : retired_) merge_tree(nodes, 0, "", merged);
  std::vector<Phase> out;
  out.reserve(merged.size());
  for (auto& [path, phase] : merged) out.push_back(std::move(phase));
  return out;  // std::map iteration is already path-sorted
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ProfilerThreadLog* log : logs_) log->clear();
  retired_.clear();
}

const std::vector<std::string>& profile_columns() {
  static const std::vector<std::string> columns = {"phase", "count", "total_ms",
                                                   "mean_us", "self_ms"};
  return columns;
}

std::vector<std::string> phase_cells(const Profiler::Phase& phase) {
  char mean[32];
  const double mean_us =
      phase.count == 0
          ? 0.0
          : static_cast<double>(phase.total_ns) /
                (1e3 * static_cast<double>(phase.count));
  std::snprintf(mean, sizeof(mean), "%.1f", mean_us);
  return {phase.path, std::to_string(phase.count), format_ms(phase.total_ns),
          mean, format_ms(phase.self_ns)};
}

}  // namespace egoist::util
