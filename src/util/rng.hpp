// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in the EGOIST reproduction draws from an
// explicitly seeded Rng so that experiments are reproducible run-to-run.
// The class wraps std::mt19937_64 and provides the distributions the
// underlay/churn/policy models need (uniform, exponential, Pareto,
// log-normal, normal) plus sampling helpers.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace egoist::util {

/// Seeded pseudo-random generator with simulation-oriented helpers.
///
/// Copyable: copying an Rng forks the stream (both copies continue from the
/// same state). Use split() to derive an independent child stream.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Derives an independently seeded child generator. Children created with
  /// distinct tags are decorrelated from each other and from the parent.
  Rng split(std::uint64_t tag) {
    const std::uint64_t mixed =
        (engine_() ^ (tag * 0xBF58476D1CE4E5B9ull)) + 0x94D049BB133111EBull;
    return Rng(mixed);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential variate with the given mean (= 1/rate). Requires mean > 0.
  double exponential_mean(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("exponential mean must be > 0");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Pareto variate with scale x_m > 0 and shape alpha > 0. Heavy-tailed ON
  /// durations in the churn model use this (PlanetLab session times are
  /// well described by a Pareto body).
  double pareto(double x_m, double alpha) {
    if (x_m <= 0.0 || alpha <= 0.0) {
      throw std::invalid_argument("pareto requires x_m > 0 and alpha > 0");
    }
    const double u = std::max(uniform(), 1e-300);
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Normal variate.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal variate parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Fisher-Yates shuffle of a vector (any element type).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Samples m distinct elements uniformly from `pool` (order randomized).
  /// Requires m <= pool.size().
  template <typename T>
  std::vector<T> sample_without_replacement(std::span<const T> pool,
                                            std::size_t m) {
    if (m > pool.size()) {
      throw std::invalid_argument("sample size exceeds pool size");
    }
    std::vector<T> scratch(pool.begin(), pool.end());
    // Partial Fisher-Yates: only the first m positions need to be drawn.
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j = static_cast<std::size_t>(
          uniform_int(static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(scratch.size()) - 1));
      std::swap(scratch[i], scratch[j]);
    }
    scratch.resize(m);
    return scratch;
  }

  /// Picks one element uniformly at random. Requires a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> pool) {
    if (pool.empty()) throw std::invalid_argument("pick from empty pool");
    return pool[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  }

  /// Access to the raw engine for use with std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace egoist::util
