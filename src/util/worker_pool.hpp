// A small reusable worker pool for deterministic fan-out.
//
// The pool owns `size() - 1` persistent threads; the calling thread
// participates as worker 0, so a pool of size 1 never spawns or signals
// anything. run() executes one task function over an index range with
// dynamic load balancing (an atomic cursor): tasks whose outputs go to
// disjoint, per-task slots produce bit-identical results at any pool size
// and any scheduling, which is the contract every parallel caller in this
// codebase relies on (the epoch engine's per-node evaluations, the path
// engine's per-source tree builds).
//
// Exceptions thrown by tasks are captured; after the batch drains, the one
// thrown by the lowest task index is rethrown on the calling thread, so
// failure behavior is also independent of scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace egoist::util {

class WorkerPool {
 public:
  /// A pool of exactly `threads` workers (>= 1; throws otherwise). Use
  /// resolve() to turn a 0 = auto knob into a concrete count first.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(helpers_.size()) + 1; }

  /// Task function: (task index, worker index). Worker indices are dense in
  /// [0, size()): per-worker scratch buffers can be plain vectors.
  using Task = std::function<void(std::size_t, std::size_t)>;

  /// Runs fn for every task in [0, tasks), distributing tasks over the
  /// workers via an atomic cursor, and returns when all have finished.
  /// Not reentrant: run() must not be called from inside a task.
  void run(std::size_t tasks, const Task& fn);

  /// 0 = auto (one worker per hardware thread, at least 1); any positive
  /// value is taken literally. Negative counts throw.
  static int resolve(int requested);

 private:
  void worker_loop(std::size_t worker);
  void work_through(std::size_t worker);

  std::vector<std::thread> helpers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const Task* fn_ = nullptr;          ///< non-null while a batch is active
  std::size_t tasks_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::size_t busy_ = 0;              ///< helpers still inside the batch
  std::uint64_t generation_ = 0;      ///< batch counter (wakeup predicate)
  bool stop_ = false;

  std::mutex error_mutex_;
  std::exception_ptr error_;
  std::size_t error_task_ = 0;
};

}  // namespace egoist::util
