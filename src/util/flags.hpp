// Minimal command-line flag parsing for bench binaries and examples.
//
// Supports "--name=value" and "--name value" forms plus boolean switches
// ("--verbose"). Unknown flags raise an error so typos in experiment sweeps
// fail loudly instead of silently running the default configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace egoist::util {

/// Parsed command line. Construct once from argc/argv, then query typed
/// accessors with per-flag defaults.
class Flags {
 public:
  /// Parses argv[1..argc). Throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  /// Returns the raw string value if the flag was present.
  std::optional<std::string> get(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& def) const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;
  std::uint64_t get_seed(const std::string& name, std::uint64_t def) const;

  /// Duration flag in seconds. Accepts suffixed values ("250ms", "5s",
  /// "2m", "1h", "10us") or a bare number of seconds; `def` is itself
  /// suffixed text so --help shows the idiomatic form (e.g. "30s").
  double get_duration(const std::string& name, const std::string& def) const;

  /// Size flag in bytes. Accepts binary suffixes ("64K", "8M", "1G",
  /// optionally with a trailing B: "64KB") or a bare byte count; `def` is
  /// suffixed text (e.g. "1M").
  std::uint64_t get_size(const std::string& name, const std::string& def) const;

  /// Flags seen on the command line that were never queried; used by
  /// binaries to reject typos after all get_* calls are done.
  std::vector<std::string> unqueried() const;

  /// Every flag present on the command line as (name, raw value), in
  /// sorted-name order, marking them all queried. Used by the scenario CLI,
  /// which forwards arbitrary --key=value flags as parameter overrides.
  std::vector<std::pair<std::string, std::string>> consume_all() const;

  /// True if --help was passed on the command line.
  bool help_requested() const;

  /// One "--name (default: value)" line per flag queried so far; call after
  /// all get_* calls so every flag the binary understands is listed.
  std::string usage() const;

  /// Standard epilogue for a CLI binary: on --help, prints `description`
  /// plus usage() to stdout and exits 0; otherwise throws
  /// std::invalid_argument on any flag that was never queried, suggesting
  /// the closest known flag (typo safety).
  void finish(const std::string& description = "") const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  mutable std::map<std::string, std::string> defaults_;
};

/// Returns the candidate closest to `name` by edit distance, or nullopt
/// when nothing is close enough to be a plausible typo. Shared by Flags
/// and the scenario-parameter reader so both reject typos with the same
/// "did you mean" hint.
std::optional<std::string> closest_name(const std::string& name,
                                        const std::vector<std::string>& candidates);

/// Parses a human duration into seconds: "250ms" -> 0.25, "5s" -> 5,
/// "2m" -> 120, "1.5h" -> 5400, "10us" -> 1e-5; a bare number is seconds.
/// Throws std::invalid_argument on anything else (including negatives).
double parse_duration_seconds(const std::string& text);

/// Parses a human size into bytes with binary (1024) suffixes:
/// "64K" -> 65536, "8M", "1G", optional trailing 'B' ("64KB"), case
/// insensitive; a bare integer is bytes. Throws std::invalid_argument on
/// anything else (including negatives and fractional byte counts).
std::uint64_t parse_size_bytes(const std::string& text);

}  // namespace egoist::util
