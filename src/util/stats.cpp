#include "util/stats.hpp"

#include <algorithm>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace egoist::util {

Summary Summary::of(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  OnlineStats acc;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    acc.add(v);
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  if (s.count >= 2) {
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile of empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

Ewma::Ewma(double half_life) : half_life_(half_life) {
  if (half_life <= 0.0) throw std::invalid_argument("Ewma half_life must be > 0");
}

void Ewma::update(double value, double now) {
  if (!initialized_) {
    value_ = value;
    last_time_ = now;
    initialized_ = true;
    return;
  }
  const double dt = std::max(0.0, now - last_time_);
  // Weight such that after `half_life_` of silence the new reading counts 1/2.
  const double decay = std::exp2(-dt / half_life_);
  value_ = decay * value_ + (1.0 - decay) * value;
  last_time_ = now;
}

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace egoist::util
