#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/metrics.hpp"

namespace egoist::core {

std::vector<NodeId> random_sample(const std::vector<NodeId>& candidates,
                                  std::size_t m, util::Rng& rng) {
  const std::size_t take = std::min(m, candidates.size());
  auto sample = rng.sample_without_replacement(
      std::span<const NodeId>(candidates), take);
  std::sort(sample.begin(), sample.end());
  return sample;
}

double biased_rank(const graph::Digraph& graph, NodeId self, NodeId candidate,
                   const std::vector<double>& direct_cost, int radius) {
  const auto hood = graph::r_hop_neighborhood(graph, candidate, radius);
  if (hood.empty()) return 0.0;
  double denom = 0.0;
  for (NodeId u : hood) {
    if (u == self) continue;  // distance to self is not informative
    if (static_cast<std::size_t>(u) >= direct_cost.size()) {
      throw std::out_of_range("direct_cost too small");
    }
    denom += direct_cost[static_cast<std::size_t>(u)];
  }
  if (denom <= 0.0) return 0.0;
  return static_cast<double>(hood.size()) / denom;
}

std::vector<NodeId> topology_biased_sample(const graph::Digraph& graph,
                                           NodeId self,
                                           const std::vector<double>& direct_cost,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t m, util::Rng& rng,
                                           const BiasedSamplingOptions& options) {
  if (options.radius < 0) throw std::invalid_argument("radius must be >= 0");
  if (options.oversample < 1.0) {
    throw std::invalid_argument("oversample must be >= 1");
  }
  const std::size_t m_prime = std::min(
      candidates.size(),
      static_cast<std::size_t>(
          std::ceil(options.oversample * static_cast<double>(m))));
  auto pool = rng.sample_without_replacement(
      std::span<const NodeId>(candidates), m_prime);

  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(pool.size());
  for (NodeId v : pool) {
    ranked.emplace_back(biased_rank(graph, self, v, direct_cost, options.radius), v);
  }
  // Highest rank first; id breaks ties deterministically.
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<NodeId> sample;
  sample.reserve(std::min(m, ranked.size()));
  for (std::size_t i = 0; i < ranked.size() && sample.size() < m; ++i) {
    sample.push_back(ranked[i].second);
  }
  std::sort(sample.begin(), sample.end());
  return sample;
}

}  // namespace egoist::core
