#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "graph/metrics.hpp"

namespace egoist::core {

namespace {

/// r-hop out-neighborhood of v (excluding v) over a CSR snapshot: same
/// semantics as graph::r_hop_neighborhood on the source Digraph (activity
/// is baked into the snapshot, so no per-edge flag checks remain).
std::vector<NodeId> csr_r_hop_neighborhood(const graph::CsrGraph& g, NodeId v,
                                           int r) {
  if (r < 0) throw std::invalid_argument("radius must be >= 0");
  g.check_node(v);
  std::vector<NodeId> out;
  if (!g.is_active(v)) return out;
  std::vector<int> hops(g.node_count(), -1);
  std::queue<NodeId> frontier;
  hops[static_cast<std::size_t>(v)] = 0;
  frontier.push(v);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    const int next_hop = hops[static_cast<std::size_t>(u)] + 1;
    if (next_hop > r) continue;
    for (NodeId w : g.out_targets(u)) {
      if (hops[static_cast<std::size_t>(w)] != -1) continue;
      hops[static_cast<std::size_t>(w)] = next_hop;
      frontier.push(w);
    }
  }
  // Collect in ascending id order, exactly like the Digraph overload: the
  // rank's denominator is a float sum, so summation order must match for
  // the two paths to produce identical ranks.
  for (std::size_t j = 0; j < hops.size(); ++j) {
    if (static_cast<NodeId>(j) == v) continue;
    if (hops[j] >= 0) out.push_back(static_cast<NodeId>(j));
  }
  return out;
}

double rank_over_neighborhood(const std::vector<NodeId>& hood, NodeId self,
                              const std::vector<double>& direct_cost) {
  if (hood.empty()) return 0.0;
  double denom = 0.0;
  for (NodeId u : hood) {
    if (u == self) continue;  // distance to self is not informative
    if (static_cast<std::size_t>(u) >= direct_cost.size()) {
      throw std::out_of_range("direct_cost too small");
    }
    denom += direct_cost[static_cast<std::size_t>(u)];
  }
  if (denom <= 0.0) return 0.0;
  return static_cast<double>(hood.size()) / denom;
}

template <typename Graph>
std::vector<NodeId> biased_sample_impl(const Graph& graph, NodeId self,
                                       const std::vector<double>& direct_cost,
                                       const std::vector<NodeId>& candidates,
                                       std::size_t m, util::Rng& rng,
                                       const BiasedSamplingOptions& options) {
  if (options.radius < 0) throw std::invalid_argument("radius must be >= 0");
  if (options.oversample < 1.0) {
    throw std::invalid_argument("oversample must be >= 1");
  }
  const std::size_t m_prime = std::min(
      candidates.size(),
      static_cast<std::size_t>(
          std::ceil(options.oversample * static_cast<double>(m))));
  auto pool = rng.sample_without_replacement(
      std::span<const NodeId>(candidates), m_prime);

  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(pool.size());
  for (NodeId v : pool) {
    ranked.emplace_back(biased_rank(graph, self, v, direct_cost, options.radius), v);
  }
  // Highest rank first; id breaks ties deterministically.
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<NodeId> sample;
  sample.reserve(std::min(m, ranked.size()));
  for (std::size_t i = 0; i < ranked.size() && sample.size() < m; ++i) {
    sample.push_back(ranked[i].second);
  }
  std::sort(sample.begin(), sample.end());
  return sample;
}

}  // namespace

std::vector<NodeId> random_sample(const std::vector<NodeId>& candidates,
                                  std::size_t m, util::Rng& rng) {
  const std::size_t take = std::min(m, candidates.size());
  auto sample = rng.sample_without_replacement(
      std::span<const NodeId>(candidates), take);
  std::sort(sample.begin(), sample.end());
  return sample;
}

double biased_rank(const graph::Digraph& graph, NodeId self, NodeId candidate,
                   const std::vector<double>& direct_cost, int radius) {
  return rank_over_neighborhood(
      graph::r_hop_neighborhood(graph, candidate, radius), self, direct_cost);
}

double biased_rank(const graph::CsrGraph& graph, NodeId self, NodeId candidate,
                   const std::vector<double>& direct_cost, int radius) {
  return rank_over_neighborhood(
      csr_r_hop_neighborhood(graph, candidate, radius), self, direct_cost);
}

std::vector<NodeId> topology_biased_sample(const graph::Digraph& graph,
                                           NodeId self,
                                           const std::vector<double>& direct_cost,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t m, util::Rng& rng,
                                           const BiasedSamplingOptions& options) {
  return biased_sample_impl(graph, self, direct_cost, candidates, m, rng,
                            options);
}

std::vector<NodeId> topology_biased_sample(const graph::CsrGraph& graph,
                                           NodeId self,
                                           const std::vector<double>& direct_cost,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t m, util::Rng& rng,
                                           const BiasedSamplingOptions& options) {
  return biased_sample_impl(graph, self, direct_cost, candidates, m, rng,
                            options);
}

}  // namespace egoist::core
