// Local wiring objectives — the cost functions nodes minimize.
//
// A node i evaluating a candidate neighbor set s only needs (a) the direct
// link cost from i to every candidate, and (b) the residual-graph distances
// d_{G-i}(v, j) from every candidate v to every destination j (i's own
// out-edges cannot improve routes that leave through a neighbor, since a
// path re-entering i would have to exit through the same wiring again).
// That makes BR a weighted facility-location-style problem over
// precomputed matrices:
//
//   delay/load:  C_i(s) = sum_j p_ij * min_{v in s} (d_iv + d_{G-i}(v, j))
//   bandwidth:   B_i(s) = sum_j max_{w in s} min(bw_iw, W_{G-i}(w, j))
//
// Both decompose per target as  cost = sum_j w_j * fold(best_{v in s}
// link_value(v, j)), which the interface exposes directly so the
// best-response search can evaluate candidate swaps incrementally in O(n)
// rather than O(k n).
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace egoist::core {

using graph::NodeId;

/// Cost of a candidate wiring for one node. Implementations are immutable
/// snapshots of the network state at evaluation time. "Lower is better"
/// (maximizing objectives negate in fold()).
class WiringObjective {
 public:
  virtual ~WiringObjective() = default;

  /// Candidate neighbor ids (never contains the node itself).
  virtual const std::vector<NodeId>& candidates() const = 0;

  /// The node whose wiring is being optimized.
  virtual NodeId self() const = 0;

  /// Destinations the node cares about (never contains self()).
  virtual const std::vector<NodeId>& targets() const = 0;

  /// Routing preference p_ij of target j.
  virtual double target_weight(NodeId j) const = 0;

  /// Quality of reaching target j through direct neighbor v (delay: path
  /// cost, possibly kUnreachable; bandwidth: bottleneck, possibly 0).
  virtual double link_value(NodeId v, NodeId j) const = 0;

  /// False: per-target best is the minimum link_value (delay/load).
  /// True: the maximum (bandwidth).
  virtual bool maximize_link_value() const = 0;

  /// Folds the per-target best value into a cost contribution (applies the
  /// unreachable penalty for delay, negation for bandwidth).
  virtual double fold(double best_value) const = 0;

  /// Neutral element for the per-target best (kUnreachable or 0).
  double no_link_value() const;

  /// Total cost of a wiring: sum_j weight(j) * fold(best link value).
  double cost(std::span<const NodeId> wiring) const;
};

/// Additive-metric objective (delay, or node load via per-node edge costs).
class DelayObjective final : public WiringObjective {
 public:
  /// direct_cost[v]: measured/announced cost of the direct link self -> v
  ///   (entries for non-candidates are ignored).
  /// residual_dist[v][j]: distance from v to j in G_{-self}.
  /// preference[j]: routing preference p_ij (self entry ignored).
  /// targets: destinations to account for (active nodes, excluding self).
  /// unreachable_penalty: the paper's "M >> n" for unreachable targets.
  DelayObjective(NodeId self, std::vector<NodeId> candidates,
                 std::vector<double> direct_cost,
                 std::vector<std::vector<double>> residual_dist,
                 std::vector<double> preference, std::vector<NodeId> targets,
                 double unreachable_penalty);

  const std::vector<NodeId>& candidates() const override { return candidates_; }
  NodeId self() const override { return self_; }
  const std::vector<NodeId>& targets() const override { return targets_; }
  double target_weight(NodeId j) const override {
    return preference_[static_cast<std::size_t>(j)];
  }
  double link_value(NodeId v, NodeId j) const override;
  bool maximize_link_value() const override { return false; }
  double fold(double best_value) const override;

  /// Distance from self to destination j under `wiring` (direct + residual);
  /// kUnreachable when no neighbor reaches j.
  double distance_to(std::span<const NodeId> wiring, NodeId j) const;

 private:
  NodeId self_;
  std::vector<NodeId> candidates_;
  std::vector<double> direct_cost_;
  std::vector<std::vector<double>> residual_dist_;
  std::vector<double> preference_;
  std::vector<NodeId> targets_;
  double unreachable_penalty_;
};

/// Bottleneck-bandwidth objective (§4.1): maximize the sum over targets of
/// the best single-neighbor bottleneck. cost() = -score so that all search
/// code minimizes.
class BandwidthObjective final : public WiringObjective {
 public:
  /// direct_bw[v]: available bandwidth of the direct link self -> v.
  /// residual_bw[v][j]: bottleneck bandwidth from v to j in G_{-self}.
  BandwidthObjective(NodeId self, std::vector<NodeId> candidates,
                     std::vector<double> direct_bw,
                     std::vector<std::vector<double>> residual_bw,
                     std::vector<NodeId> targets);

  const std::vector<NodeId>& candidates() const override { return candidates_; }
  NodeId self() const override { return self_; }
  const std::vector<NodeId>& targets() const override { return targets_; }
  double target_weight(NodeId) const override { return 1.0; }
  double link_value(NodeId v, NodeId j) const override;
  bool maximize_link_value() const override { return true; }
  double fold(double best_value) const override { return -best_value; }

  /// The positive aggregate-bandwidth score (= -cost).
  double score(std::span<const NodeId> wiring) const { return -cost(wiring); }

  /// Bottleneck bandwidth from self to j under `wiring` (0 if unreachable).
  double bandwidth_to(std::span<const NodeId> wiring, NodeId j) const;

 private:
  NodeId self_;
  std::vector<NodeId> candidates_;
  std::vector<double> direct_bw_;
  std::vector<std::vector<double>> residual_bw_;
  std::vector<NodeId> targets_;
};

}  // namespace egoist::core
