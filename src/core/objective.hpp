// Local wiring objectives — the cost functions nodes minimize.
//
// A node i evaluating a candidate neighbor set s only needs (a) the direct
// link cost from i to every candidate, and (b) the residual-graph distances
// d_{G-i}(v, j) from every candidate v to every destination j (i's own
// out-edges cannot improve routes that leave through a neighbor, since a
// path re-entering i would have to exit through the same wiring again).
// That makes BR a weighted facility-location-style problem over
// precomputed matrices:
//
//   delay/load:  C_i(s) = sum_j p_ij * min_{v in s} (d_iv + d_{G-i}(v, j))
//   bandwidth:   B_i(s) = sum_j max_{w in s} min(bw_iw, W_{G-i}(w, j))
//
// Both decompose per target as  cost = sum_j w_j * fold(best_{v in s}
// link_value(v, j)), which the interface exposes directly so the
// best-response search can evaluate candidate swaps incrementally in O(n)
// rather than O(k n).
//
// Residual matrices are stored as flat row-major graph::DistanceMatrix
// (produced allocation-free by graph::PathEngine); the nested-vector
// constructors remain as conversions for hand-built fixtures and the
// legacy all-pairs path.
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/distance_matrix.hpp"

namespace egoist::core {

using graph::NodeId;

/// Cost of a candidate wiring for one node. Implementations are immutable
/// snapshots of the network state at evaluation time. "Lower is better"
/// (maximizing objectives negate in fold()).
class WiringObjective {
 public:
  virtual ~WiringObjective() = default;

  /// Candidate neighbor ids (never contains the node itself).
  virtual const std::vector<NodeId>& candidates() const = 0;

  /// The node whose wiring is being optimized.
  virtual NodeId self() const = 0;

  /// Destinations the node cares about (never contains self()).
  virtual const std::vector<NodeId>& targets() const = 0;

  /// Routing preference p_ij of target j.
  virtual double target_weight(NodeId j) const = 0;

  /// Quality of reaching target j through direct neighbor v (delay: path
  /// cost, possibly kUnreachable; bandwidth: bottleneck, possibly 0).
  virtual double link_value(NodeId v, NodeId j) const = 0;

  /// Bulk form of link_value for the search's cache: fills
  /// out[s * targets.size() + t] = link_value(sources[s], targets[t]).
  /// The default loops over the virtual link_value; concrete objectives
  /// override with a flat non-virtual loop (the fill dominates evaluator
  /// setup at large n). out.size() must be sources.size() * targets.size().
  virtual void fill_link_values(std::span<const NodeId> sources,
                                std::span<const NodeId> targets,
                                std::span<double> out) const;

  /// False: per-target best is the minimum link_value (delay/load).
  /// True: the maximum (bandwidth).
  virtual bool maximize_link_value() const = 0;

  /// Folds the per-target best value into a cost contribution (applies the
  /// unreachable penalty for delay, negation for bandwidth).
  virtual double fold(double best_value) const = 0;

  /// The value fold() substitutes for an unreachable best (delay: the
  /// "M >> n" penalty; maximizing objectives have no unreachable sentinel
  /// and return 0). The best-response search caches this once and inlines
  /// the fold in its hot loops, so every objective's fold() must equal
  ///   maximize ? -v : (v == kUnreachable ? fold_penalty() : v).
  virtual double fold_penalty() const = 0;

  /// Neutral element for the per-target best (kUnreachable or 0).
  double no_link_value() const;

  /// Total cost of a wiring: sum_j weight(j) * fold(best link value).
  double cost(std::span<const NodeId> wiring) const;
};

/// Additive-metric objective (delay, or node load via per-node edge costs).
class DelayObjective final : public WiringObjective {
 public:
  /// direct_cost[v]: measured/announced cost of the direct link self -> v
  ///   (entries for non-candidates are ignored).
  /// residual_dist(v, j): distance from v to j in G_{-self}.
  /// preference[j]: routing preference p_ij (self entry ignored).
  /// targets: destinations to account for (active nodes, excluding self).
  /// unreachable_penalty: the paper's "M >> n" for unreachable targets.
  DelayObjective(NodeId self, std::vector<NodeId> candidates,
                 std::vector<double> direct_cost,
                 graph::DistanceMatrix residual_dist,
                 std::vector<double> preference, std::vector<NodeId> targets,
                 double unreachable_penalty);

  /// Legacy nested-matrix convenience (converts; throws on ragged input).
  DelayObjective(NodeId self, std::vector<NodeId> candidates,
                 std::vector<double> direct_cost,
                 const std::vector<std::vector<double>>& residual_dist,
                 std::vector<double> preference, std::vector<NodeId> targets,
                 double unreachable_penalty);

  /// Borrowing constructor: the residual matrix stays owned by the caller
  /// (the epoch loop's reusable scratch) and must outlive the objective.
  DelayObjective(NodeId self, std::vector<NodeId> candidates,
                 std::vector<double> direct_cost,
                 const graph::DistanceMatrix* residual_view,
                 std::vector<double> preference, std::vector<NodeId> targets,
                 double unreachable_penalty);

  const std::vector<NodeId>& candidates() const override { return candidates_; }
  NodeId self() const override { return self_; }
  const std::vector<NodeId>& targets() const override { return targets_; }
  double target_weight(NodeId j) const override {
    return preference_[static_cast<std::size_t>(j)];
  }
  double link_value(NodeId v, NodeId j) const override;
  void fill_link_values(std::span<const NodeId> sources,
                        std::span<const NodeId> targets,
                        std::span<double> out) const override;
  bool maximize_link_value() const override { return false; }
  double fold(double best_value) const override;
  double fold_penalty() const override { return unreachable_penalty_; }

  /// Distance from self to destination j under `wiring` (direct + residual);
  /// kUnreachable when no neighbor reaches j.
  double distance_to(std::span<const NodeId> wiring, NodeId j) const;

 private:
  const graph::DistanceMatrix& residual() const {
    return external_residual_ != nullptr ? *external_residual_ : owned_residual_;
  }

  NodeId self_;
  std::vector<NodeId> candidates_;
  std::vector<double> direct_cost_;
  graph::DistanceMatrix owned_residual_;
  const graph::DistanceMatrix* external_residual_ = nullptr;
  std::vector<double> preference_;
  std::vector<NodeId> targets_;
  double unreachable_penalty_;
};

/// Bottleneck-bandwidth objective (§4.1): maximize the sum over targets of
/// the best single-neighbor bottleneck. cost() = -score so that all search
/// code minimizes.
class BandwidthObjective final : public WiringObjective {
 public:
  /// direct_bw[v]: available bandwidth of the direct link self -> v.
  /// residual_bw(v, j): bottleneck bandwidth from v to j in G_{-self}.
  BandwidthObjective(NodeId self, std::vector<NodeId> candidates,
                     std::vector<double> direct_bw,
                     graph::DistanceMatrix residual_bw,
                     std::vector<NodeId> targets);

  /// Legacy nested-matrix convenience (converts; throws on ragged input).
  BandwidthObjective(NodeId self, std::vector<NodeId> candidates,
                     std::vector<double> direct_bw,
                     const std::vector<std::vector<double>>& residual_bw,
                     std::vector<NodeId> targets);

  /// Borrowing constructor (see DelayObjective).
  BandwidthObjective(NodeId self, std::vector<NodeId> candidates,
                     std::vector<double> direct_bw,
                     const graph::DistanceMatrix* residual_view,
                     std::vector<NodeId> targets);

  const std::vector<NodeId>& candidates() const override { return candidates_; }
  NodeId self() const override { return self_; }
  const std::vector<NodeId>& targets() const override { return targets_; }
  double target_weight(NodeId) const override { return 1.0; }
  double link_value(NodeId v, NodeId j) const override;
  void fill_link_values(std::span<const NodeId> sources,
                        std::span<const NodeId> targets,
                        std::span<double> out) const override;
  bool maximize_link_value() const override { return true; }
  double fold(double best_value) const override { return -best_value; }
  double fold_penalty() const override { return 0.0; }  // unused: maximizing

  /// The positive aggregate-bandwidth score (= -cost).
  double score(std::span<const NodeId> wiring) const { return -cost(wiring); }

  /// Bottleneck bandwidth from self to j under `wiring` (0 if unreachable).
  double bandwidth_to(std::span<const NodeId> wiring, NodeId j) const;

 private:
  const graph::DistanceMatrix& residual() const {
    return external_residual_ != nullptr ? *external_residual_ : owned_residual_;
  }

  NodeId self_;
  std::vector<NodeId> candidates_;
  std::vector<double> direct_bw_;
  graph::DistanceMatrix owned_residual_;
  const graph::DistanceMatrix* external_residual_ = nullptr;
  std::vector<NodeId> targets_;
};

/// Sampled-scale objective (§5): scores candidate wirings against a small
/// set of epoch-shared landmark destinations instead of all n targets.
/// The landmark distance matrix is (n rows x L columns): row v holds the
/// distance (shortest) or bottleneck (widest) from node v to each
/// landmark, computed once per epoch by L reverse traversals of the
/// announced overlay and shared by every node's evaluation — so a BR
/// evaluation touches O(|candidates| x L) state and nothing O(n^2).
///
/// Semantics match DelayObjective/BandwidthObjective per landmark:
///   minimize: value(v, l) = direct[v] + dist(v, l)  (kUnreachable-clamped)
///   maximize: value(v, l) = min(direct[v], bottleneck(v, l))
/// Landmark distances are taken on the full announced graph (no G_{-self}
/// exclusion): at scale, paths through the evaluating node's own out-edges
/// are a vanishing fraction of any landmark tree, and the residual
/// exclusion would cost a per-node traversal — this is the documented
/// approximation of the scale regime, not of the dense reference path.
class LandmarkObjective final : public WiringObjective {
 public:
  /// direct[v]: measured direct cost/value of the link self -> v.
  /// landmark_dist: n x |landmark_col range| matrix described above.
  /// landmark_col: node id -> column of landmark_dist (-1 = not a
  ///   landmark); sized n. Both referenced objects must outlive the
  ///   objective (they are the epoch-shared state).
  /// targets: the landmark ids this node scores against (self excluded).
  LandmarkObjective(NodeId self, std::vector<NodeId> candidates,
                    std::vector<double> direct,
                    const graph::DistanceMatrix* landmark_dist,
                    const std::vector<std::int32_t>* landmark_col,
                    std::vector<NodeId> targets, bool maximize,
                    double unreachable_penalty);

  const std::vector<NodeId>& candidates() const override { return candidates_; }
  NodeId self() const override { return self_; }
  const std::vector<NodeId>& targets() const override { return targets_; }
  double target_weight(NodeId) const override { return 1.0; }
  double link_value(NodeId v, NodeId j) const override;
  void fill_link_values(std::span<const NodeId> sources,
                        std::span<const NodeId> targets,
                        std::span<double> out) const override;
  bool maximize_link_value() const override { return maximize_; }
  double fold(double best_value) const override;
  double fold_penalty() const override {
    return maximize_ ? 0.0 : unreachable_penalty_;
  }

 private:
  double value_at(NodeId v, std::size_t col, double direct) const;

  NodeId self_;
  std::vector<NodeId> candidates_;
  std::vector<double> direct_;
  const graph::DistanceMatrix* dist_;
  const std::vector<std::int32_t>* col_;
  std::vector<NodeId> targets_;
  bool maximize_;
  double unreachable_penalty_;
};

}  // namespace egoist::core
