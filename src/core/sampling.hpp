// Scalability via sampling (§5).
//
// At scale a newcomer cannot measure all n nodes or run BR over them.
// Instead it draws candidate samples and computes its wiring over the
// sample only. Two samplers:
//
// - Unbiased: m uniform random nodes.
// - Topology-biased (BRtp): draw m' > m random nodes, rank them by
//       b_ij = |F(v_j)| / sum_{u in F(v_j)} d(v_i, u)
//   where F(v_j) is v_j's r-hop out-neighborhood, and keep the top m. The
//   intuition: a good neighbor fronts a large neighborhood whose members
//   are close to the newcomer.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/path_engine.hpp"
#include "util/rng.hpp"

namespace egoist::core {

using graph::NodeId;

/// m uniform-random distinct nodes from `candidates`.
std::vector<NodeId> random_sample(const std::vector<NodeId>& candidates,
                                  std::size_t m, util::Rng& rng);

/// Parameters of the topology-biased sampler.
struct BiasedSamplingOptions {
  int radius = 2;              ///< r of the r-hop neighborhood
  double oversample = 3.0;     ///< m' = ceil(oversample * m), capped at |candidates|
};

/// Topology-biased sample of size m for newcomer `self`.
///
/// graph:       residual overlay (self's edges need not be present).
/// direct_cost: measured distance from self to every node (indexed by id) —
///              d(v_i, u) in the ranking function.
std::vector<NodeId> topology_biased_sample(const graph::Digraph& graph,
                                           NodeId self,
                                           const std::vector<double>& direct_cost,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t m, util::Rng& rng,
                                           const BiasedSamplingOptions& options = {});

/// CSR-snapshot variant of the topology-biased sampler: the r-hop BFS runs
/// over the PathEngine's flat snapshot instead of the adjacency-list
/// Digraph. Ranks (and therefore samples) are identical to the Digraph
/// overload on a snapshot of the same graph.
std::vector<NodeId> topology_biased_sample(const graph::CsrGraph& graph,
                                           NodeId self,
                                           const std::vector<double>& direct_cost,
                                           const std::vector<NodeId>& candidates,
                                           std::size_t m, util::Rng& rng,
                                           const BiasedSamplingOptions& options = {});

/// The ranking function b_ij (exposed for tests): higher is better.
/// Returns 0 when F(v_j) is empty.
double biased_rank(const graph::Digraph& graph, NodeId self, NodeId candidate,
                   const std::vector<double>& direct_cost, int radius);

/// CSR-snapshot variant of the ranking function.
double biased_rank(const graph::CsrGraph& graph, NodeId self, NodeId candidate,
                   const std::vector<double>& direct_cost, int radius);

}  // namespace egoist::core
