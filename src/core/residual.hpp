// Builders that turn an overlay snapshot into per-node wiring objectives.
//
// A node computing its best response works on the *residual* graph G_{-i}
// (the overlay with its own out-edges removed, §2.1) as learned through the
// link-state protocol, plus its own direct-link measurements. These helpers
// do that derivation: strip the node's out-edges, run the appropriate
// all-pairs computation, and package the result as a WiringObjective.
#pragma once

#include <optional>
#include <vector>

#include "core/objective.hpp"
#include "graph/digraph.hpp"

namespace egoist::core {

/// Penalty used for unreachable destinations when none is supplied:
/// comfortably larger than any realistic path cost ("M >> n").
double default_unreachable_penalty(const graph::Digraph& overlay);

/// Builds a delay/load objective for `self`.
///
/// overlay:      current global wiring (edge weights = announced costs);
///               self's out-edges are ignored (residual graph semantics).
/// direct_cost:  measured direct-link cost self -> v, indexed by id; only
///               candidate entries are read.
/// preference:   p_ij per destination; std::nullopt = uniform over targets.
/// Candidates and targets default to all active nodes except self.
DelayObjective make_delay_objective(
    const graph::Digraph& overlay, NodeId self,
    const std::vector<double>& direct_cost,
    std::optional<std::vector<double>> preference = std::nullopt,
    std::optional<double> unreachable_penalty = std::nullopt);

/// Builds a bandwidth objective for `self` (edge weights = available
/// bandwidth; residual computation = all-pairs widest paths).
BandwidthObjective make_bandwidth_objective(const graph::Digraph& overlay,
                                            NodeId self,
                                            const std::vector<double>& direct_bw);

/// Restricted variants for the sampling policies of §5: candidates and
/// targets are limited to `sample` (the newcomer only measures and reasons
/// about the sampled nodes).
DelayObjective make_sampled_delay_objective(
    const graph::Digraph& overlay, NodeId self,
    const std::vector<double>& direct_cost, const std::vector<NodeId>& sample,
    std::optional<double> unreachable_penalty = std::nullopt);

}  // namespace egoist::core
