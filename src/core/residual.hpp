// Builders that turn an overlay snapshot into per-node wiring objectives.
//
// A node computing its best response works on the *residual* graph G_{-i}
// (the overlay with its own out-edges removed, §2.1) as learned through the
// link-state protocol, plus its own direct-link measurements. These helpers
// do that derivation: strip the node's out-edges, run the appropriate
// all-pairs computation, and package the result as a WiringObjective.
//
// Two paths produce the same objectives:
//
// - The graph::PathEngine overloads (the hot path): the engine holds a CSR
//   snapshot of the overlay and serves G_{-i} as an O(1) residual *view*
//   (no graph copy, no per-call allocations). One engine is shared across
//   every node evaluated against the same snapshot.
// - The Digraph overloads (the legacy reference): materialize the residual
//   Digraph and run graph::all_pairs_* on it. Kept as the independent
//   implementation the equivalence tests compare against, and as the
//   baseline the perf_epoch_scaling bench measures.
//
// Distances from the two paths are bit-identical by construction.
#pragma once

#include <optional>
#include <vector>

#include "core/objective.hpp"
#include "graph/digraph.hpp"
#include "graph/path_engine.hpp"

namespace egoist::core {

/// Penalty used for unreachable destinations when none is supplied:
/// comfortably larger than any realistic path cost ("M >> n").
double default_unreachable_penalty(const graph::Digraph& overlay);

/// As above, from a CSR snapshot (scans the cached max weight instead of
/// every adjacency list).
double default_unreachable_penalty(const graph::CsrGraph& overlay);

/// Builds a delay/load objective for `self`.
///
/// overlay:      current global wiring (edge weights = announced costs);
///               self's out-edges are ignored (residual graph semantics).
/// direct_cost:  measured direct-link cost self -> v, indexed by id; only
///               candidate entries are read.
/// preference:   p_ij per destination; std::nullopt = uniform over targets.
/// Candidates and targets default to all active nodes except self.
DelayObjective make_delay_objective(
    const graph::Digraph& overlay, NodeId self,
    const std::vector<double>& direct_cost,
    std::optional<std::vector<double>> preference = std::nullopt,
    std::optional<double> unreachable_penalty = std::nullopt);

/// Engine-backed variant: residual distances come from the shared CSR
/// snapshot with self's out-edge range excluded. The engine must have been
/// rebuilt from the overlay the caller is deciding on. When `scratch` is
/// non-null the residual matrix is written into it and the objective
/// borrows it (the epoch loop reuses one matrix instead of allocating
/// n^2 doubles per node); it must then outlive the objective.
DelayObjective make_delay_objective(
    graph::PathEngine& engine, NodeId self,
    const std::vector<double>& direct_cost,
    std::optional<std::vector<double>> preference = std::nullopt,
    std::optional<double> unreachable_penalty = std::nullopt,
    graph::DistanceMatrix* scratch = nullptr);

/// Const-engine variant for worker threads: all mutable query state lives
/// in the caller-owned `query` scratch, so any number of workers can build
/// objectives concurrently against one prepared engine (see
/// PathEngine::prepare_shortest). `scratch` semantics as above.
DelayObjective make_delay_objective(
    const graph::PathEngine& engine, graph::PathEngine::QueryScratch& query,
    NodeId self, const std::vector<double>& direct_cost,
    std::optional<std::vector<double>> preference = std::nullopt,
    std::optional<double> unreachable_penalty = std::nullopt,
    graph::DistanceMatrix* scratch = nullptr);

/// Builds a bandwidth objective for `self` (edge weights = available
/// bandwidth; residual computation = all-pairs widest paths).
BandwidthObjective make_bandwidth_objective(const graph::Digraph& overlay,
                                            NodeId self,
                                            const std::vector<double>& direct_bw);

/// Engine-backed variant of the bandwidth objective (scratch as above).
BandwidthObjective make_bandwidth_objective(graph::PathEngine& engine,
                                            NodeId self,
                                            const std::vector<double>& direct_bw,
                                            graph::DistanceMatrix* scratch = nullptr);

/// Const-engine variant (see the delay twin; prepare_widest first).
BandwidthObjective make_bandwidth_objective(
    const graph::PathEngine& engine, graph::PathEngine::QueryScratch& query,
    NodeId self, const std::vector<double>& direct_bw,
    graph::DistanceMatrix* scratch = nullptr);

/// Restricted variants for the sampling policies of §5: candidates and
/// targets are limited to `sample` (the newcomer only measures and reasons
/// about the sampled nodes).
DelayObjective make_sampled_delay_objective(
    const graph::Digraph& overlay, NodeId self,
    const std::vector<double>& direct_cost, const std::vector<NodeId>& sample,
    std::optional<double> unreachable_penalty = std::nullopt);

/// Engine-backed sampled variant: only the sampled sources' residual rows
/// are computed (single-source queries against the shared snapshot).
DelayObjective make_sampled_delay_objective(
    graph::PathEngine& engine, NodeId self,
    const std::vector<double>& direct_cost, const std::vector<NodeId>& sample,
    std::optional<double> unreachable_penalty = std::nullopt);

/// Const-engine sampled variant for worker threads.
DelayObjective make_sampled_delay_objective(
    const graph::PathEngine& engine, graph::PathEngine::QueryScratch& query,
    NodeId self, const std::vector<double>& direct_cost,
    const std::vector<NodeId>& sample,
    std::optional<double> unreachable_penalty = std::nullopt);

}  // namespace egoist::core
