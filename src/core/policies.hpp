// Neighbor-selection policies (§3.2) and Best-Response search (§2.1, §4.1).
//
// - k-Random:  k uniform random candidates.
// - k-Closest: the k candidates with minimum direct link cost.
// - k-Regular: offsets o_j = 1 + (j-1)(n-1)/(k+1) around the id ring.
// - BR:        minimize the local objective. Exact BR is NP-hard (asymmetric
//              k-median for delay; MAX-UNIQUES reduction for bandwidth), so
//              the default is greedy construction + (drop-one, add-one) swap
//              local search, with exhaustive search below a budget — the
//              "fast approximate versions based on local search" the paper
//              deploys, which it verified within 5% of optimal.
//
// HybridBR's donated connectivity links and BR(eps) re-wiring thresholds
// are composed on top of these primitives by the overlay layer.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/objective.hpp"
#include "util/rng.hpp"

namespace egoist::core {

/// Reusable buffers for best_response(): the search caches a
/// candidates x targets link-value matrix per call, and the epoch loop
/// calls it once per node — pointing every call at one scratch object
/// removes the only O(n^2) allocation left on the hot path.
struct BestResponseScratch {
  std::vector<double> link_values;
};

/// Tuning for best_response().
struct BestResponseOptions {
  /// Run exhaustive search when C(|candidates|, k) is at most this;
  /// otherwise greedy + swaps. 0 disables exact search entirely.
  std::uint64_t exact_budget = 20'000;

  /// Maximum full passes of the swap local search.
  int max_swap_passes = 8;

  /// Links the node is committed to regardless of the search (HybridBR's
  /// donated links): they participate in every cost evaluation but do not
  /// count against k.
  std::vector<NodeId> fixed_links;

  /// Warm start for the local search: the node's current wiring. Entries
  /// not in the candidate pool (departed nodes, now-fixed links) are
  /// dropped; remaining slots are filled greedily. Seeding from the current
  /// wiring makes the search sticky — it only moves when a swap strictly
  /// improves — which is how the deployed system avoids flip-flopping on
  /// measurement noise. Ignored by the exhaustive path.
  std::vector<NodeId> seed_wiring;

  /// Optional reusable buffers (see BestResponseScratch); must outlive the
  /// best_response() call. nullptr = allocate per call.
  BestResponseScratch* scratch = nullptr;
};

/// Result of a best-response computation.
struct BestResponseResult {
  std::vector<NodeId> wiring;  ///< chosen free links, ascending (size <= k)
  double cost = 0.0;           ///< objective cost of wiring + fixed links
  bool exact = false;          ///< true when found by exhaustive search
  std::uint64_t evaluations = 0;  ///< objective evaluations performed
};

/// Selects k uniform-random candidates (all candidates when fewer than k).
std::vector<NodeId> select_k_random(const std::vector<NodeId>& candidates,
                                    std::size_t k, util::Rng& rng);

/// Selects the k candidates with minimum direct cost. `direct_cost` is
/// indexed by node id. Ties break toward lower id for determinism.
std::vector<NodeId> select_k_closest(const std::vector<NodeId>& candidates,
                                     const std::vector<double>& direct_cost,
                                     std::size_t k);

/// As select_k_closest but for "bigger is better" metrics (bandwidth).
std::vector<NodeId> select_k_widest(const std::vector<NodeId>& candidates,
                                    const std::vector<double>& direct_value,
                                    std::size_t k);

/// k-Regular offsets for a ring of n ids: o_j = 1 + (j-1)(n-1)/(k+1)
/// (rounded; deduplicated; the paper assumes (n-1) % (k+1) == 0).
std::vector<int> k_regular_offsets(std::size_t n, std::size_t k);

/// k-Regular wiring of node `self` in a ring of `n` ids.
std::vector<NodeId> select_k_regular(NodeId self, std::size_t n, std::size_t k);

/// Best response: choose up to k free links from objective.candidates()
/// minimizing objective.cost(free + fixed).
BestResponseResult best_response(const WiringObjective& objective, std::size_t k,
                                 const BestResponseOptions& options = {});

}  // namespace egoist::core
