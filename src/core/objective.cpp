#include "core/objective.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/shortest_path.hpp"

namespace egoist::core {

namespace {

void validate_common(NodeId self, const std::vector<NodeId>& candidates,
                     std::size_t direct_size,
                     const std::vector<std::vector<double>>& residual,
                     const std::vector<NodeId>& targets) {
  const std::size_t n = residual.size();
  if (direct_size != n) {
    throw std::invalid_argument("direct cost vector size mismatch");
  }
  for (const auto& row : residual) {
    if (row.size() != n) throw std::invalid_argument("residual matrix not square");
  }
  auto in_range = [n](NodeId v) {
    return v >= 0 && static_cast<std::size_t>(v) < n;
  };
  if (!in_range(self)) throw std::out_of_range("self out of range");
  for (NodeId v : candidates) {
    if (!in_range(v)) throw std::out_of_range("candidate out of range");
    if (v == self) throw std::invalid_argument("self cannot be a candidate");
  }
  for (NodeId j : targets) {
    if (!in_range(j)) throw std::out_of_range("target out of range");
  }
}

}  // namespace

double WiringObjective::no_link_value() const {
  return maximize_link_value() ? 0.0 : graph::kUnreachable;
}

double WiringObjective::cost(std::span<const NodeId> wiring) const {
  const bool maximize = maximize_link_value();
  double total = 0.0;
  for (NodeId j : targets()) {
    if (j == self()) continue;
    double best = no_link_value();
    for (NodeId v : wiring) {
      const double value = link_value(v, j);
      best = maximize ? std::max(best, value) : std::min(best, value);
    }
    total += target_weight(j) * fold(best);
  }
  return total;
}

DelayObjective::DelayObjective(NodeId self, std::vector<NodeId> candidates,
                               std::vector<double> direct_cost,
                               std::vector<std::vector<double>> residual_dist,
                               std::vector<double> preference,
                               std::vector<NodeId> targets,
                               double unreachable_penalty)
    : self_(self),
      candidates_(std::move(candidates)),
      direct_cost_(std::move(direct_cost)),
      residual_dist_(std::move(residual_dist)),
      preference_(std::move(preference)),
      targets_(std::move(targets)),
      unreachable_penalty_(unreachable_penalty) {
  validate_common(self_, candidates_, direct_cost_.size(), residual_dist_, targets_);
  if (preference_.size() != residual_dist_.size()) {
    throw std::invalid_argument("preference vector size mismatch");
  }
  if (unreachable_penalty_ < 0.0) {
    throw std::invalid_argument("penalty must be non-negative");
  }
}

double DelayObjective::link_value(NodeId v, NodeId j) const {
  if (v == j) return direct_cost_[static_cast<std::size_t>(v)];
  const double through =
      residual_dist_[static_cast<std::size_t>(v)][static_cast<std::size_t>(j)];
  if (through == graph::kUnreachable) return graph::kUnreachable;
  return direct_cost_[static_cast<std::size_t>(v)] + through;
}

double DelayObjective::fold(double best_value) const {
  return best_value == graph::kUnreachable ? unreachable_penalty_ : best_value;
}

double DelayObjective::distance_to(std::span<const NodeId> wiring, NodeId j) const {
  double best = graph::kUnreachable;
  for (NodeId v : wiring) best = std::min(best, link_value(v, j));
  return best;
}

BandwidthObjective::BandwidthObjective(NodeId self, std::vector<NodeId> candidates,
                                       std::vector<double> direct_bw,
                                       std::vector<std::vector<double>> residual_bw,
                                       std::vector<NodeId> targets)
    : self_(self),
      candidates_(std::move(candidates)),
      direct_bw_(std::move(direct_bw)),
      residual_bw_(std::move(residual_bw)),
      targets_(std::move(targets)) {
  validate_common(self_, candidates_, direct_bw_.size(), residual_bw_, targets_);
}

double BandwidthObjective::link_value(NodeId v, NodeId j) const {
  const double direct = direct_bw_[static_cast<std::size_t>(v)];
  if (v == j) return direct;
  return std::min(
      direct,
      residual_bw_[static_cast<std::size_t>(v)][static_cast<std::size_t>(j)]);
}

double BandwidthObjective::bandwidth_to(std::span<const NodeId> wiring,
                                        NodeId j) const {
  double best = 0.0;
  for (NodeId w : wiring) best = std::max(best, link_value(w, j));
  return best;
}

}  // namespace egoist::core
