#include "core/objective.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/shortest_path.hpp"

namespace egoist::core {

namespace {

void validate_common(NodeId self, const std::vector<NodeId>& candidates,
                     std::size_t direct_size,
                     const graph::DistanceMatrix& residual,
                     const std::vector<NodeId>& targets) {
  const std::size_t n = residual.rows();
  if (residual.cols() != n) {
    throw std::invalid_argument("residual matrix not square");
  }
  if (direct_size != n) {
    throw std::invalid_argument("direct cost vector size mismatch");
  }
  auto in_range = [n](NodeId v) {
    return v >= 0 && static_cast<std::size_t>(v) < n;
  };
  if (!in_range(self)) throw std::out_of_range("self out of range");
  for (NodeId v : candidates) {
    if (!in_range(v)) throw std::out_of_range("candidate out of range");
    if (v == self) throw std::invalid_argument("self cannot be a candidate");
  }
  for (NodeId j : targets) {
    if (!in_range(j)) throw std::out_of_range("target out of range");
  }
}

}  // namespace

double WiringObjective::no_link_value() const {
  return maximize_link_value() ? 0.0 : graph::kUnreachable;
}

void WiringObjective::fill_link_values(std::span<const NodeId> sources,
                                       std::span<const NodeId> targets,
                                       std::span<double> out) const {
  if (out.size() != sources.size() * targets.size()) {
    throw std::invalid_argument("link value buffer size mismatch");
  }
  for (std::size_t s = 0; s < sources.size(); ++s) {
    for (std::size_t t = 0; t < targets.size(); ++t) {
      out[s * targets.size() + t] = link_value(sources[s], targets[t]);
    }
  }
}

double WiringObjective::cost(std::span<const NodeId> wiring) const {
  const bool maximize = maximize_link_value();
  double total = 0.0;
  for (NodeId j : targets()) {
    if (j == self()) continue;
    double best = no_link_value();
    for (NodeId v : wiring) {
      const double value = link_value(v, j);
      best = maximize ? std::max(best, value) : std::min(best, value);
    }
    total += target_weight(j) * fold(best);
  }
  return total;
}

DelayObjective::DelayObjective(NodeId self, std::vector<NodeId> candidates,
                               std::vector<double> direct_cost,
                               graph::DistanceMatrix residual_dist,
                               std::vector<double> preference,
                               std::vector<NodeId> targets,
                               double unreachable_penalty)
    : self_(self),
      candidates_(std::move(candidates)),
      direct_cost_(std::move(direct_cost)),
      owned_residual_(std::move(residual_dist)),
      preference_(std::move(preference)),
      targets_(std::move(targets)),
      unreachable_penalty_(unreachable_penalty) {
  validate_common(self_, candidates_, direct_cost_.size(), residual(), targets_);
  if (preference_.size() != residual().rows()) {
    throw std::invalid_argument("preference vector size mismatch");
  }
  if (unreachable_penalty_ < 0.0) {
    throw std::invalid_argument("penalty must be non-negative");
  }
}

DelayObjective::DelayObjective(NodeId self, std::vector<NodeId> candidates,
                               std::vector<double> direct_cost,
                               const std::vector<std::vector<double>>& residual_dist,
                               std::vector<double> preference,
                               std::vector<NodeId> targets,
                               double unreachable_penalty)
    : DelayObjective(self, std::move(candidates), std::move(direct_cost),
                     graph::DistanceMatrix::from_nested(residual_dist),
                     std::move(preference), std::move(targets),
                     unreachable_penalty) {}

DelayObjective::DelayObjective(NodeId self, std::vector<NodeId> candidates,
                               std::vector<double> direct_cost,
                               const graph::DistanceMatrix* residual_view,
                               std::vector<double> preference,
                               std::vector<NodeId> targets,
                               double unreachable_penalty)
    : self_(self),
      candidates_(std::move(candidates)),
      direct_cost_(std::move(direct_cost)),
      external_residual_(residual_view),
      preference_(std::move(preference)),
      targets_(std::move(targets)),
      unreachable_penalty_(unreachable_penalty) {
  if (external_residual_ == nullptr) {
    throw std::invalid_argument("residual view may not be null");
  }
  validate_common(self_, candidates_, direct_cost_.size(), residual(), targets_);
  if (preference_.size() != residual().rows()) {
    throw std::invalid_argument("preference vector size mismatch");
  }
  if (unreachable_penalty_ < 0.0) {
    throw std::invalid_argument("penalty must be non-negative");
  }
}

double DelayObjective::link_value(NodeId v, NodeId j) const {
  const double direct = direct_cost_[static_cast<std::size_t>(v)];
  if (v == j) return direct;
  const double through =
      residual()(static_cast<std::size_t>(v), static_cast<std::size_t>(j));
  // Clamp before summing: when either leg is unreachable the link is, and
  // summing an unreachable sentinel with a finite leg must not produce a
  // value that escapes the == kUnreachable checks in fold()/distance_to().
  if (through == graph::kUnreachable || direct == graph::kUnreachable) {
    return graph::kUnreachable;
  }
  return direct + through;
}

void DelayObjective::fill_link_values(std::span<const NodeId> sources,
                                      std::span<const NodeId> targets,
                                      std::span<double> out) const {
  if (out.size() != sources.size() * targets.size()) {
    throw std::invalid_argument("link value buffer size mismatch");
  }
  const graph::DistanceMatrix& dist = residual();
  std::size_t i = 0;
  for (const NodeId v : sources) {
    const double direct = direct_cost_[static_cast<std::size_t>(v)];
    const auto row = dist.row(static_cast<std::size_t>(v));
    for (const NodeId j : targets) {
      double value;
      if (v == j) {
        value = direct;
      } else {
        const double through = row[static_cast<std::size_t>(j)];
        value = (through == graph::kUnreachable || direct == graph::kUnreachable)
                    ? graph::kUnreachable
                    : direct + through;
      }
      out[i++] = value;
    }
  }
}

double DelayObjective::fold(double best_value) const {
  return best_value == graph::kUnreachable ? unreachable_penalty_ : best_value;
}

double DelayObjective::distance_to(std::span<const NodeId> wiring, NodeId j) const {
  double best = graph::kUnreachable;
  for (NodeId v : wiring) best = std::min(best, link_value(v, j));
  return best;
}

BandwidthObjective::BandwidthObjective(NodeId self, std::vector<NodeId> candidates,
                                       std::vector<double> direct_bw,
                                       graph::DistanceMatrix residual_bw,
                                       std::vector<NodeId> targets)
    : self_(self),
      candidates_(std::move(candidates)),
      direct_bw_(std::move(direct_bw)),
      owned_residual_(std::move(residual_bw)),
      targets_(std::move(targets)) {
  validate_common(self_, candidates_, direct_bw_.size(), residual(), targets_);
}

BandwidthObjective::BandwidthObjective(NodeId self, std::vector<NodeId> candidates,
                                       std::vector<double> direct_bw,
                                       const std::vector<std::vector<double>>& residual_bw,
                                       std::vector<NodeId> targets)
    : BandwidthObjective(self, std::move(candidates), std::move(direct_bw),
                         graph::DistanceMatrix::from_nested(residual_bw),
                         std::move(targets)) {}

BandwidthObjective::BandwidthObjective(NodeId self, std::vector<NodeId> candidates,
                                       std::vector<double> direct_bw,
                                       const graph::DistanceMatrix* residual_view,
                                       std::vector<NodeId> targets)
    : self_(self),
      candidates_(std::move(candidates)),
      direct_bw_(std::move(direct_bw)),
      external_residual_(residual_view),
      targets_(std::move(targets)) {
  if (external_residual_ == nullptr) {
    throw std::invalid_argument("residual view may not be null");
  }
  validate_common(self_, candidates_, direct_bw_.size(), residual(), targets_);
}

double BandwidthObjective::link_value(NodeId v, NodeId j) const {
  const double direct = direct_bw_[static_cast<std::size_t>(v)];
  if (v == j) return direct;
  return std::min(
      direct,
      residual()(static_cast<std::size_t>(v), static_cast<std::size_t>(j)));
}

void BandwidthObjective::fill_link_values(std::span<const NodeId> sources,
                                          std::span<const NodeId> targets,
                                          std::span<double> out) const {
  if (out.size() != sources.size() * targets.size()) {
    throw std::invalid_argument("link value buffer size mismatch");
  }
  const graph::DistanceMatrix& bw = residual();
  std::size_t i = 0;
  for (const NodeId v : sources) {
    const double direct = direct_bw_[static_cast<std::size_t>(v)];
    const auto row = bw.row(static_cast<std::size_t>(v));
    for (const NodeId j : targets) {
      out[i++] = v == j ? direct
                        : std::min(direct, row[static_cast<std::size_t>(j)]);
    }
  }
}

double BandwidthObjective::bandwidth_to(std::span<const NodeId> wiring,
                                        NodeId j) const {
  double best = 0.0;
  for (NodeId w : wiring) best = std::max(best, link_value(w, j));
  return best;
}

LandmarkObjective::LandmarkObjective(NodeId self, std::vector<NodeId> candidates,
                                     std::vector<double> direct,
                                     const graph::DistanceMatrix* landmark_dist,
                                     const std::vector<std::int32_t>* landmark_col,
                                     std::vector<NodeId> targets, bool maximize,
                                     double unreachable_penalty)
    : self_(self),
      candidates_(std::move(candidates)),
      direct_(std::move(direct)),
      dist_(landmark_dist),
      col_(landmark_col),
      targets_(std::move(targets)),
      maximize_(maximize),
      unreachable_penalty_(unreachable_penalty) {
  if (dist_ == nullptr || col_ == nullptr) {
    throw std::invalid_argument("landmark state may not be null");
  }
  const std::size_t n = dist_->rows();
  if (col_->size() != n || direct_.size() != n) {
    throw std::invalid_argument("landmark state size mismatch");
  }
  auto in_range = [n](NodeId v) {
    return v >= 0 && static_cast<std::size_t>(v) < n;
  };
  if (!in_range(self_)) throw std::out_of_range("self out of range");
  for (NodeId v : candidates_) {
    if (!in_range(v)) throw std::out_of_range("candidate out of range");
    if (v == self_) throw std::invalid_argument("self cannot be a candidate");
  }
  for (NodeId j : targets_) {
    if (!in_range(j) || (*col_)[static_cast<std::size_t>(j)] < 0 ||
        static_cast<std::size_t>((*col_)[static_cast<std::size_t>(j)]) >=
            dist_->cols()) {
      throw std::invalid_argument("target is not a landmark");
    }
  }
  if (unreachable_penalty_ < 0.0) {
    throw std::invalid_argument("penalty must be non-negative");
  }
}

double LandmarkObjective::value_at(NodeId v, std::size_t col,
                                   double direct) const {
  const double through = (*dist_)(static_cast<std::size_t>(v), col);
  if (maximize_) return std::min(direct, through);
  if (through == graph::kUnreachable || direct == graph::kUnreachable) {
    return graph::kUnreachable;
  }
  return direct + through;
}

double LandmarkObjective::link_value(NodeId v, NodeId j) const {
  const double direct = direct_[static_cast<std::size_t>(v)];
  if (v == j) return direct;
  return value_at(v, static_cast<std::size_t>((*col_)[static_cast<std::size_t>(j)]),
                  direct);
}

void LandmarkObjective::fill_link_values(std::span<const NodeId> sources,
                                         std::span<const NodeId> targets,
                                         std::span<double> out) const {
  if (out.size() != sources.size() * targets.size()) {
    throw std::invalid_argument("link value buffer size mismatch");
  }
  std::size_t i = 0;
  for (const NodeId v : sources) {
    const double direct = direct_[static_cast<std::size_t>(v)];
    for (const NodeId j : targets) {
      out[i++] = v == j
                     ? direct
                     : value_at(v,
                                static_cast<std::size_t>(
                                    (*col_)[static_cast<std::size_t>(j)]),
                                direct);
    }
  }
}

double LandmarkObjective::fold(double best_value) const {
  if (maximize_) return -best_value;
  return best_value == graph::kUnreachable ? unreachable_penalty_ : best_value;
}

}  // namespace egoist::core
