#include "core/policies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/shortest_path.hpp"

namespace egoist::core {

namespace {

/// C(n, k) saturating at limit+1 to avoid overflow.
std::uint64_t binomial_capped(std::uint64_t n, std::uint64_t k,
                              std::uint64_t limit) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t numerator = n - k + i;
    if (result > (limit + 1) / numerator * i) return limit + 1;
    result = result * numerator / i;
    if (result > limit) return limit + 1;
  }
  return result;
}

/// Incremental evaluator: caches link_value(v, j) for the candidate pool
/// and tracks, per target, the best and second-best contribution among the
/// currently chosen slots (plus fixed links folded into a baseline), so a
/// candidate add/swap evaluates in O(|targets|).
class Evaluator {
 public:
  Evaluator(const WiringObjective& obj, const std::vector<NodeId>& pool,
            const std::vector<NodeId>& fixed, BestResponseScratch* scratch)
      : obj_(obj),
        pool_(pool),
        maximize_(obj.maximize_link_value()),
        fold_penalty_(obj.fold_penalty()),
        value_storage_(scratch != nullptr ? scratch->link_values
                                          : owned_values_) {
    for (NodeId j : obj.targets()) {
      if (j == obj.self()) continue;
      targets_.push_back(j);
      weights_.push_back(obj.target_weight(j));
    }
    const std::size_t t = targets_.size();
    value_storage_.resize(pool_.size() * t);
    value_ = value_storage_.data();
    // Candidate rows of the link-value cache fill lazily on first touch
    // (see row()): candidates never scanned — e.g. pruned pools — are
    // never materialized, and the fill streams once instead of an eager
    // n^2 pass up front.
    row_filled_.assign(pool_.size(), 0);
    fixed_best_.assign(t, obj.no_link_value());
    for (NodeId v : fixed) {
      for (std::size_t ti = 0; ti < t; ++ti) {
        fixed_best_[ti] = combine(fixed_best_[ti], obj_.link_value(v, targets_[ti]));
      }
    }
    best1_ = fixed_best_;
    best1_slot_.assign(t, kFixedSlot);
    best2_ = fixed_best_;
    add_cost_.assign(pool_.size(), 0.0);
    add_stamp_.assign(pool_.size(), 0);
    owned_off_.assign(1, 0);
  }

  static constexpr int kFixedSlot = -1;

  double combine(double a, double b) const {
    return maximize_ ? std::max(a, b) : std::min(a, b);
  }

  /// Inline fold for the hot loops: the canonical shape every objective's
  /// virtual fold() is documented to match (see fold_penalty()). Saves a
  /// virtual call per target per candidate evaluation.
  double fold(double best) const {
    if (maximize_) return -best;
    return best == graph::kUnreachable ? fold_penalty_ : best;
  }

  /// The per-target sums below run in deterministic 4-lane form: a single
  /// ordered accumulator is a loop-carried FP dependency (~4 cycles per
  /// target) and dominates the whole search at large n. Four independent
  /// lanes folded as (a0+a1)+(a2+a3) keep results deterministic (same
  /// order every call, used identically by all three cost functions) while
  /// quadrupling throughput; they may round differently from the naive
  /// left-to-right sum, which only perturbs exact ties in the local
  /// search.
  template <typename PerTarget>
  double lane_sum(std::size_t t, PerTarget term) const {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t ti = 0;
    for (; ti + 4 <= t; ti += 4) {
      a0 += term(ti);
      a1 += term(ti + 1);
      a2 += term(ti + 2);
      a3 += term(ti + 3);
    }
    for (; ti < t; ++ti) a0 += term(ti);
    return (a0 + a1) + (a2 + a3);
  }

  /// Cost of the current wiring.
  double current_cost() const {
    return lane_sum(targets_.size(), [this](std::size_t ti) {
      return weights_[ti] * fold(best1_[ti]);
    });
  }

  /// Link values of pool candidate `c` against every target, filled on
  /// first use (one virtual bulk call per candidate row; the concrete
  /// objectives stream it from flat arrays).
  const double* row(std::size_t c) {
    const std::size_t t = targets_.size();
    double* value = value_ + c * t;
    if (!row_filled_[c]) {
      obj_.fill_link_values({&pool_[c], 1}, targets_, {value, t});
      row_filled_[c] = 1;
    }
    return value;
  }

  /// Cost if pool candidate `c` were added to the current wiring.
  double cost_with_added(std::size_t c) {
    const std::size_t t = targets_.size();
    const double* value = row(c);
    return lane_sum(t, [this, value](std::size_t ti) {
      return weights_[ti] * fold(combine(best1_[ti], value[ti]));
    });
  }

  /// Cost if slot `slot` were replaced by pool candidate `c`, decomposed
  /// as cost_with_added(c) plus a correction over the targets whose best
  /// link `slot` currently provides (the only targets where the two
  /// differ). With the add-cost memoized per candidate for the duration of
  /// a wiring state (see swap passes below), a full swap scan costs
  /// ~2·|targets| per candidate instead of k·|targets|.
  double cost_with_swap(int slot, std::size_t c) {
    const double* value = row(c);
    if (add_stamp_[c] != wiring_stamp_) {
      add_cost_[c] = cost_with_added(c);
      add_stamp_[c] = wiring_stamp_;
    }
    const std::size_t begin = owned_off_[static_cast<std::size_t>(slot)];
    const std::size_t end = owned_off_[static_cast<std::size_t>(slot) + 1];
    const double correction =
        lane_sum(end - begin, [this, value, begin](std::size_t i) {
          const std::size_t ti = owned_[begin + i];
          return weights_[ti] * (fold(combine(best2_[ti], value[ti])) -
                                 fold(combine(best1_[ti], value[ti])));
        });
    return add_cost_[c] + correction;
  }

  /// Rebuilds the per-target best/second-best from the chosen `slots`.
  /// The fixed-link baseline participates as an unremovable pseudo-slot, so
  /// best2 (the value after removing best1's slot) is always well defined.
  void rebuild(const std::vector<std::size_t>& slots) {
    const std::size_t t = targets_.size();
    for (const std::size_t s : slots) row(s);  // materialize chosen rows
    auto strictly_better = [this](double a, double b) {
      return maximize_ ? a > b : a < b;
    };
    for (std::size_t ti = 0; ti < t; ++ti) {
      double b1 = fixed_best_[ti];
      int s1 = kFixedSlot;
      double b2 = fixed_best_[ti];
      for (std::size_t s = 0; s < slots.size(); ++s) {
        const double v = value_[slots[s] * t + ti];
        if (strictly_better(v, b1)) {
          b2 = b1;
          b1 = v;
          s1 = static_cast<int>(s);
        } else if (strictly_better(v, b2) || (v == b1 && s1 != static_cast<int>(s))) {
          // Ties with best1 from another slot survive best1's removal.
          b2 = v;
        }
      }
      best1_[ti] = b1;
      best1_slot_[ti] = s1;
      best2_[ti] = b2;
    }
    // The wiring changed: invalidate the add-cost memo and re-bin each
    // target under the slot that provides its best link (fixed-owned
    // targets belong to no slot; swapping never changes their term).
    ++wiring_stamp_;
    owned_off_.assign(slots.size() + 1, 0);
    for (std::size_t ti = 0; ti < t; ++ti) {
      if (best1_slot_[ti] >= 0) {
        ++owned_off_[static_cast<std::size_t>(best1_slot_[ti]) + 1];
      }
    }
    for (std::size_t s = 0; s < slots.size(); ++s) {
      owned_off_[s + 1] += owned_off_[s];
    }
    owned_.resize(owned_off_.back());
    owned_cursor_.assign(owned_off_.begin(), owned_off_.end() - 1);
    for (std::size_t ti = 0; ti < t; ++ti) {
      if (best1_slot_[ti] >= 0) {
        owned_[owned_cursor_[static_cast<std::size_t>(best1_slot_[ti])]++] = ti;
      }
    }
  }

 private:
  const WiringObjective& obj_;
  const std::vector<NodeId>& pool_;
  bool maximize_;
  double fold_penalty_;
  std::vector<NodeId> targets_;
  std::vector<double> weights_;
  std::vector<double> owned_values_;     ///< backing when no scratch given
  std::vector<double>& value_storage_;
  double* value_ = nullptr;              ///< value_[c * T + ti]
  std::vector<std::uint8_t> row_filled_;
  std::vector<double> fixed_best_;  ///< per-target best over fixed links
  std::vector<double> best1_;
  std::vector<int> best1_slot_;     ///< slot providing best1 (kFixedSlot = fixed)
  std::vector<double> best2_;       ///< best when best1's slot is removed

  std::uint32_t wiring_stamp_ = 0;        ///< bumped by rebuild()
  std::vector<double> add_cost_;          ///< memo: cost_with_added per candidate
  std::vector<std::uint32_t> add_stamp_;  ///< memo validity stamp
  std::vector<std::size_t> owned_;        ///< target indices binned by slot
  std::vector<std::size_t> owned_off_;    ///< per-slot offsets into owned_
  std::vector<std::size_t> owned_cursor_;
};

}  // namespace

std::vector<NodeId> select_k_random(const std::vector<NodeId>& candidates,
                                    std::size_t k, util::Rng& rng) {
  const std::size_t take = std::min(k, candidates.size());
  auto picked = rng.sample_without_replacement(
      std::span<const NodeId>(candidates), take);
  std::sort(picked.begin(), picked.end());
  return picked;
}

std::vector<NodeId> select_k_closest(const std::vector<NodeId>& candidates,
                                     const std::vector<double>& direct_cost,
                                     std::size_t k) {
  std::vector<NodeId> sorted = candidates;
  for (NodeId v : sorted) {
    if (v < 0 || static_cast<std::size_t>(v) >= direct_cost.size()) {
      throw std::out_of_range("candidate outside direct_cost");
    }
  }
  std::sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    const double ca = direct_cost[static_cast<std::size_t>(a)];
    const double cb = direct_cost[static_cast<std::size_t>(b)];
    if (ca != cb) return ca < cb;
    return a < b;
  });
  sorted.resize(std::min(k, sorted.size()));
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::vector<NodeId> select_k_widest(const std::vector<NodeId>& candidates,
                                    const std::vector<double>& direct_value,
                                    std::size_t k) {
  std::vector<double> negated(direct_value.size());
  for (std::size_t i = 0; i < direct_value.size(); ++i) {
    negated[i] = -direct_value[i];
  }
  return select_k_closest(candidates, negated, k);
}

std::vector<int> k_regular_offsets(std::size_t n, std::size_t k) {
  if (n < 2) throw std::invalid_argument("need n >= 2");
  if (k == 0 || k >= n) throw std::invalid_argument("need 0 < k < n");
  std::vector<int> offsets;
  offsets.reserve(k);
  const double stride =
      static_cast<double>(n - 1) / static_cast<double>(k + 1);
  for (std::size_t j = 1; j <= k; ++j) {
    int o = 1 + static_cast<int>(std::llround(static_cast<double>(j - 1) * stride));
    o = std::min(o, static_cast<int>(n) - 1);
    // Rounding on small rings can collide; nudge forward to keep offsets
    // distinct (they must map to k distinct neighbors).
    while (std::find(offsets.begin(), offsets.end(), o) != offsets.end() &&
           o < static_cast<int>(n) - 1) {
      ++o;
    }
    if (std::find(offsets.begin(), offsets.end(), o) == offsets.end()) {
      offsets.push_back(o);
    }
  }
  return offsets;
}

std::vector<NodeId> select_k_regular(NodeId self, std::size_t n, std::size_t k) {
  if (self < 0 || static_cast<std::size_t>(self) >= n) {
    throw std::out_of_range("self out of range");
  }
  const auto offsets = k_regular_offsets(n, k);
  std::vector<NodeId> wiring;
  wiring.reserve(offsets.size());
  for (int o : offsets) {
    wiring.push_back(static_cast<NodeId>(
        (static_cast<std::size_t>(self) + static_cast<std::size_t>(o)) % n));
  }
  std::sort(wiring.begin(), wiring.end());
  wiring.erase(std::unique(wiring.begin(), wiring.end()), wiring.end());
  return wiring;
}

BestResponseResult best_response(const WiringObjective& objective, std::size_t k,
                                 const BestResponseOptions& options) {
  const std::vector<NodeId>& candidates = objective.candidates();
  BestResponseResult result;

  // Fixed links may not also be picked as free links.
  std::vector<NodeId> pool;
  pool.reserve(candidates.size());
  for (NodeId v : candidates) {
    if (std::find(options.fixed_links.begin(), options.fixed_links.end(), v) ==
        options.fixed_links.end()) {
      pool.push_back(v);
    }
  }
  const std::size_t take = std::min(k, pool.size());

  auto full_wiring = [&](const std::vector<NodeId>& free_links) {
    std::vector<NodeId> all = options.fixed_links;
    all.insert(all.end(), free_links.begin(), free_links.end());
    return all;
  };

  if (take == 0) {
    result.wiring = {};
    result.cost = objective.cost(full_wiring({}));
    result.exact = true;
    result.evaluations = 1;
    return result;
  }

  // Exhaustive search when affordable.
  if (options.exact_budget > 0 &&
      binomial_capped(pool.size(), take, options.exact_budget) <=
          options.exact_budget) {
    std::vector<std::size_t> idx(take);
    for (std::size_t i = 0; i < take; ++i) idx[i] = i;
    std::vector<NodeId> current(take);
    double best_cost = std::numeric_limits<double>::infinity();
    std::vector<NodeId> best;
    while (true) {
      for (std::size_t i = 0; i < take; ++i) current[i] = pool[idx[i]];
      const double c = objective.cost(full_wiring(current));
      ++result.evaluations;
      if (c < best_cost) {
        best_cost = c;
        best = current;
      }
      // Advance the combination (standard odometer).
      int pos = static_cast<int>(take) - 1;
      while (pos >= 0 &&
             idx[static_cast<std::size_t>(pos)] ==
                 static_cast<std::size_t>(pos) + pool.size() - take) {
        --pos;
      }
      if (pos < 0) break;
      ++idx[static_cast<std::size_t>(pos)];
      for (std::size_t i = static_cast<std::size_t>(pos) + 1; i < take; ++i) {
        idx[i] = idx[i - 1] + 1;
      }
    }
    std::sort(best.begin(), best.end());
    result.wiring = std::move(best);
    result.cost = best_cost;
    result.exact = true;
    return result;
  }

  // Greedy construction + swap local search over the cached evaluator.
  Evaluator eval(objective, pool, options.fixed_links, options.scratch);
  std::vector<std::size_t> slots;  // indices into pool
  std::vector<bool> used(pool.size(), false);

  // Warm start from the seed wiring (current links still in the pool).
  for (NodeId v : options.seed_wiring) {
    if (slots.size() >= take) break;
    const auto it = std::find(pool.begin(), pool.end(), v);
    if (it == pool.end()) continue;
    const auto c = static_cast<std::size_t>(it - pool.begin());
    if (used[c]) continue;
    used[c] = true;
    slots.push_back(c);
  }
  if (!slots.empty()) eval.rebuild(slots);

  for (std::size_t round = slots.size(); round < take; ++round) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_idx = pool.size();
    for (std::size_t c = 0; c < pool.size(); ++c) {
      if (used[c]) continue;
      const double cost = eval.cost_with_added(c);
      ++result.evaluations;
      if (cost < best_cost) {
        best_cost = cost;
        best_idx = c;
      }
    }
    if (best_idx == pool.size()) break;
    used[best_idx] = true;
    slots.push_back(best_idx);
    eval.rebuild(slots);
  }
  double current_cost = eval.current_cost();

  for (int pass = 0; pass < options.max_swap_passes; ++pass) {
    bool improved = false;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      for (std::size_t c = 0; c < pool.size(); ++c) {
        if (used[c]) continue;
        const double cost = eval.cost_with_swap(static_cast<int>(s), c);
        ++result.evaluations;
        if (cost + 1e-12 < current_cost) {
          used[slots[s]] = false;
          used[c] = true;
          slots[s] = c;
          eval.rebuild(slots);
          current_cost = eval.current_cost();
          improved = true;
          break;  // re-scan this slot's new link on the next pass
        }
      }
    }
    if (!improved) break;
  }

  std::vector<NodeId> wiring;
  wiring.reserve(slots.size());
  for (std::size_t s : slots) wiring.push_back(pool[s]);
  std::sort(wiring.begin(), wiring.end());
  result.wiring = std::move(wiring);
  result.cost = objective.cost(full_wiring(result.wiring));
  result.exact = false;
  return result;
}

}  // namespace egoist::core
