#include "core/residual.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/shortest_path.hpp"
#include "graph/widest_path.hpp"

namespace egoist::core {

namespace {

graph::Digraph residual_of(const graph::Digraph& overlay, NodeId self) {
  graph::Digraph residual(overlay.node_count());
  for (std::size_t u = 0; u < overlay.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    residual.set_active(uid, overlay.is_active(uid));
    if (uid == self) continue;  // drop self's out-edges: G_{-i}
    for (const auto& e : overlay.out_edges(uid)) {
      residual.set_edge(uid, e.to, e.weight);
    }
  }
  return residual;
}

std::vector<NodeId> others(const graph::Digraph& overlay, NodeId self) {
  std::vector<NodeId> out;
  for (NodeId v : overlay.active_nodes()) {
    if (v != self) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> others(const graph::CsrGraph& overlay, NodeId self) {
  std::vector<NodeId> out;
  for (NodeId v : overlay.active_nodes()) {
    if (v != self) out.push_back(v);
  }
  return out;
}

void check_active_self(const graph::CsrGraph& csr, NodeId self) {
  csr.check_node(self);
  if (!csr.is_active(self)) {
    throw std::invalid_argument("self must be active");
  }
}

std::vector<double> uniform_preference(std::size_t n,
                                       const std::vector<NodeId>& targets) {
  std::vector<double> pref(n, 0.0);
  const double w =
      targets.empty() ? 0.0 : 1.0 / static_cast<double>(targets.size());
  for (NodeId j : targets) pref[static_cast<std::size_t>(j)] = w;
  return pref;
}

std::vector<double> resolve_preference(
    std::optional<std::vector<double>>&& preference, std::size_t n,
    const std::vector<NodeId>& targets) {
  if (!preference) return uniform_preference(n, targets);
  std::vector<double> pref = std::move(*preference);
  if (pref.size() != n) {
    throw std::invalid_argument("preference size mismatch");
  }
  return pref;
}

}  // namespace

double default_unreachable_penalty(const graph::Digraph& overlay) {
  // 1000x the largest finite edge weight (or 1e6 for empty overlays) keeps
  // connectivity dominant without destroying float precision.
  double max_weight = 0.0;
  for (std::size_t u = 0; u < overlay.node_count(); ++u) {
    for (const auto& e : overlay.out_edges(static_cast<NodeId>(u))) {
      max_weight = std::max(max_weight, e.weight);
    }
  }
  const double scale = max_weight > 0.0 ? max_weight : 1.0;
  return 1000.0 * scale * static_cast<double>(std::max<std::size_t>(
                              overlay.node_count(), 1));
}

double default_unreachable_penalty(const graph::CsrGraph& overlay) {
  const double scale = overlay.max_weight() > 0.0 ? overlay.max_weight() : 1.0;
  return 1000.0 * scale * static_cast<double>(std::max<std::size_t>(
                              overlay.node_count(), 1));
}

DelayObjective make_delay_objective(const graph::Digraph& overlay, NodeId self,
                                    const std::vector<double>& direct_cost,
                                    std::optional<std::vector<double>> preference,
                                    std::optional<double> unreachable_penalty) {
  overlay.check_node(self);
  if (!overlay.is_active(self)) {
    throw std::invalid_argument("self must be active");
  }
  const auto residual = residual_of(overlay, self);
  auto dist = graph::DistanceMatrix::from_nested(
      graph::all_pairs_shortest_paths(residual));
  auto candidates = others(overlay, self);
  auto targets = candidates;
  auto pref = resolve_preference(std::move(preference), overlay.node_count(),
                                 targets);
  return DelayObjective(
      self, std::move(candidates), direct_cost, std::move(dist), std::move(pref),
      std::move(targets),
      unreachable_penalty.value_or(default_unreachable_penalty(overlay)));
}

DelayObjective make_delay_objective(graph::PathEngine& engine, NodeId self,
                                    const std::vector<double>& direct_cost,
                                    std::optional<std::vector<double>> preference,
                                    std::optional<double> unreachable_penalty,
                                    graph::DistanceMatrix* scratch) {
  check_active_self(engine.csr(), self);
  auto candidates = others(engine.csr(), self);
  auto targets = candidates;
  auto pref = resolve_preference(std::move(preference), engine.node_count(),
                                 targets);
  const double penalty =
      unreachable_penalty.value_or(default_unreachable_penalty(engine.csr()));
  if (scratch != nullptr) {
    engine.all_shortest(self, *scratch);
    return DelayObjective(self, std::move(candidates), direct_cost, scratch,
                          std::move(pref), std::move(targets), penalty);
  }
  return DelayObjective(self, std::move(candidates), direct_cost,
                        engine.all_shortest(self), std::move(pref),
                        std::move(targets), penalty);
}

DelayObjective make_delay_objective(const graph::PathEngine& engine,
                                    graph::PathEngine::QueryScratch& query,
                                    NodeId self,
                                    const std::vector<double>& direct_cost,
                                    std::optional<std::vector<double>> preference,
                                    std::optional<double> unreachable_penalty,
                                    graph::DistanceMatrix* scratch) {
  check_active_self(engine.csr(), self);
  auto candidates = others(engine.csr(), self);
  auto targets = candidates;
  auto pref = resolve_preference(std::move(preference), engine.node_count(),
                                 targets);
  const double penalty =
      unreachable_penalty.value_or(default_unreachable_penalty(engine.csr()));
  if (scratch != nullptr) {
    engine.all_shortest(self, *scratch, query);
    return DelayObjective(self, std::move(candidates), direct_cost, scratch,
                          std::move(pref), std::move(targets), penalty);
  }
  graph::DistanceMatrix dist;
  engine.all_shortest(self, dist, query);
  return DelayObjective(self, std::move(candidates), direct_cost,
                        std::move(dist), std::move(pref), std::move(targets),
                        penalty);
}

BandwidthObjective make_bandwidth_objective(const graph::Digraph& overlay,
                                            NodeId self,
                                            const std::vector<double>& direct_bw) {
  overlay.check_node(self);
  if (!overlay.is_active(self)) {
    throw std::invalid_argument("self must be active");
  }
  const auto residual = residual_of(overlay, self);
  auto bw = graph::DistanceMatrix::from_nested(
      graph::all_pairs_widest_paths(residual));
  auto candidates = others(overlay, self);
  auto targets = candidates;
  return BandwidthObjective(self, std::move(candidates), direct_bw, std::move(bw),
                            std::move(targets));
}

BandwidthObjective make_bandwidth_objective(graph::PathEngine& engine,
                                            NodeId self,
                                            const std::vector<double>& direct_bw,
                                            graph::DistanceMatrix* scratch) {
  check_active_self(engine.csr(), self);
  auto candidates = others(engine.csr(), self);
  auto targets = candidates;
  if (scratch != nullptr) {
    engine.all_widest(self, *scratch);
    return BandwidthObjective(self, std::move(candidates), direct_bw, scratch,
                              std::move(targets));
  }
  return BandwidthObjective(self, std::move(candidates), direct_bw,
                            engine.all_widest(self), std::move(targets));
}

BandwidthObjective make_bandwidth_objective(
    const graph::PathEngine& engine, graph::PathEngine::QueryScratch& query,
    NodeId self, const std::vector<double>& direct_bw,
    graph::DistanceMatrix* scratch) {
  check_active_self(engine.csr(), self);
  auto candidates = others(engine.csr(), self);
  auto targets = candidates;
  if (scratch != nullptr) {
    engine.all_widest(self, *scratch, query);
    return BandwidthObjective(self, std::move(candidates), direct_bw, scratch,
                              std::move(targets));
  }
  graph::DistanceMatrix bw;
  engine.all_widest(self, bw, query);
  return BandwidthObjective(self, std::move(candidates), direct_bw,
                            std::move(bw), std::move(targets));
}

DelayObjective make_sampled_delay_objective(
    const graph::Digraph& overlay, NodeId self,
    const std::vector<double>& direct_cost, const std::vector<NodeId>& sample,
    std::optional<double> unreachable_penalty) {
  overlay.check_node(self);
  if (!overlay.is_active(self)) {
    throw std::invalid_argument("self must be active");
  }
  for (NodeId v : sample) {
    overlay.check_node(v);
    if (v == self) throw std::invalid_argument("sample may not contain self");
  }
  const auto residual = residual_of(overlay, self);
  // Only rows for sampled nodes are needed; compute them directly.
  graph::DistanceMatrix dist(overlay.node_count(), overlay.node_count(),
                             graph::kUnreachable);
  for (NodeId v : sample) {
    if (!overlay.is_active(v)) continue;
    const auto row = graph::dijkstra(residual, v).dist;
    std::copy(row.begin(), row.end(),
              dist.row(static_cast<std::size_t>(v)).begin());
  }
  return DelayObjective(
      self, sample, direct_cost, std::move(dist),
      uniform_preference(overlay.node_count(), sample), sample,
      unreachable_penalty.value_or(default_unreachable_penalty(overlay)));
}

DelayObjective make_sampled_delay_objective(
    graph::PathEngine& engine, NodeId self,
    const std::vector<double>& direct_cost, const std::vector<NodeId>& sample,
    std::optional<double> unreachable_penalty) {
  const auto& csr = engine.csr();
  check_active_self(csr, self);
  for (NodeId v : sample) {
    csr.check_node(v);
    if (v == self) throw std::invalid_argument("sample may not contain self");
  }
  const std::size_t n = engine.node_count();
  graph::DistanceMatrix dist(n, n, graph::kUnreachable);
  for (NodeId v : sample) {
    if (!csr.is_active(v)) continue;
    engine.shortest_from(v, self, dist.row(static_cast<std::size_t>(v)));
  }
  return DelayObjective(
      self, sample, direct_cost, std::move(dist),
      uniform_preference(n, sample), sample,
      unreachable_penalty.value_or(default_unreachable_penalty(csr)));
}

DelayObjective make_sampled_delay_objective(
    const graph::PathEngine& engine, graph::PathEngine::QueryScratch& query,
    NodeId self, const std::vector<double>& direct_cost,
    const std::vector<NodeId>& sample,
    std::optional<double> unreachable_penalty) {
  const auto& csr = engine.csr();
  check_active_self(csr, self);
  for (NodeId v : sample) {
    csr.check_node(v);
    if (v == self) throw std::invalid_argument("sample may not contain self");
  }
  const std::size_t n = engine.node_count();
  graph::DistanceMatrix dist(n, n, graph::kUnreachable);
  for (NodeId v : sample) {
    if (!csr.is_active(v)) continue;
    engine.shortest_from(v, self, dist.row(static_cast<std::size_t>(v)), query);
  }
  return DelayObjective(
      self, sample, direct_cost, std::move(dist),
      uniform_preference(n, sample), sample,
      unreachable_penalty.value_or(default_unreachable_penalty(csr)));
}

}  // namespace egoist::core
