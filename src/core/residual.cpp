#include "core/residual.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/shortest_path.hpp"
#include "graph/widest_path.hpp"

namespace egoist::core {

namespace {

graph::Digraph residual_of(const graph::Digraph& overlay, NodeId self) {
  graph::Digraph residual(overlay.node_count());
  for (std::size_t u = 0; u < overlay.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    residual.set_active(uid, overlay.is_active(uid));
    if (uid == self) continue;  // drop self's out-edges: G_{-i}
    for (const auto& e : overlay.out_edges(uid)) {
      residual.set_edge(uid, e.to, e.weight);
    }
  }
  return residual;
}

std::vector<NodeId> others(const graph::Digraph& overlay, NodeId self) {
  std::vector<NodeId> out;
  for (NodeId v : overlay.active_nodes()) {
    if (v != self) out.push_back(v);
  }
  return out;
}

}  // namespace

double default_unreachable_penalty(const graph::Digraph& overlay) {
  // 1000x the largest finite edge weight (or 1e6 for empty overlays) keeps
  // connectivity dominant without destroying float precision.
  double max_weight = 0.0;
  for (std::size_t u = 0; u < overlay.node_count(); ++u) {
    for (const auto& e : overlay.out_edges(static_cast<NodeId>(u))) {
      max_weight = std::max(max_weight, e.weight);
    }
  }
  const double scale = max_weight > 0.0 ? max_weight : 1.0;
  return 1000.0 * scale * static_cast<double>(std::max<std::size_t>(
                              overlay.node_count(), 1));
}

DelayObjective make_delay_objective(const graph::Digraph& overlay, NodeId self,
                                    const std::vector<double>& direct_cost,
                                    std::optional<std::vector<double>> preference,
                                    std::optional<double> unreachable_penalty) {
  overlay.check_node(self);
  if (!overlay.is_active(self)) {
    throw std::invalid_argument("self must be active");
  }
  const auto residual = residual_of(overlay, self);
  auto dist = graph::all_pairs_shortest_paths(residual);
  auto candidates = others(overlay, self);
  auto targets = candidates;

  std::vector<double> pref;
  if (preference) {
    pref = std::move(*preference);
    if (pref.size() != overlay.node_count()) {
      throw std::invalid_argument("preference size mismatch");
    }
  } else {
    // Uniform preference over targets.
    pref.assign(overlay.node_count(), 0.0);
    const double w =
        targets.empty() ? 0.0 : 1.0 / static_cast<double>(targets.size());
    for (NodeId j : targets) pref[static_cast<std::size_t>(j)] = w;
  }

  return DelayObjective(
      self, std::move(candidates), direct_cost, std::move(dist), std::move(pref),
      std::move(targets),
      unreachable_penalty.value_or(default_unreachable_penalty(overlay)));
}

BandwidthObjective make_bandwidth_objective(const graph::Digraph& overlay,
                                            NodeId self,
                                            const std::vector<double>& direct_bw) {
  overlay.check_node(self);
  if (!overlay.is_active(self)) {
    throw std::invalid_argument("self must be active");
  }
  const auto residual = residual_of(overlay, self);
  auto bw = graph::all_pairs_widest_paths(residual);
  auto candidates = others(overlay, self);
  auto targets = candidates;
  return BandwidthObjective(self, std::move(candidates), direct_bw, std::move(bw),
                            std::move(targets));
}

DelayObjective make_sampled_delay_objective(
    const graph::Digraph& overlay, NodeId self,
    const std::vector<double>& direct_cost, const std::vector<NodeId>& sample,
    std::optional<double> unreachable_penalty) {
  overlay.check_node(self);
  if (!overlay.is_active(self)) {
    throw std::invalid_argument("self must be active");
  }
  for (NodeId v : sample) {
    overlay.check_node(v);
    if (v == self) throw std::invalid_argument("sample may not contain self");
  }
  const auto residual = residual_of(overlay, self);
  // Only rows for sampled nodes are needed; compute them directly.
  std::vector<std::vector<double>> dist(
      overlay.node_count(),
      std::vector<double>(overlay.node_count(), graph::kUnreachable));
  for (NodeId v : sample) {
    if (!overlay.is_active(v)) continue;
    dist[static_cast<std::size_t>(v)] = graph::dijkstra(residual, v).dist;
  }
  std::vector<double> pref(overlay.node_count(), 0.0);
  const double w =
      sample.empty() ? 0.0 : 1.0 / static_cast<double>(sample.size());
  for (NodeId j : sample) pref[static_cast<std::size_t>(j)] = w;
  return DelayObjective(
      self, sample, direct_cost, std::move(dist), std::move(pref), sample,
      unreachable_penalty.value_or(default_unreachable_penalty(overlay)));
}

}  // namespace egoist::core
