#include "wire/protocol.hpp"

#include <bit>
#include <cstring>

namespace egoist::wire {

namespace {

// Byte-at-a-time little-endian primitives: endian-independent, no
// alignment or aliasing traps, and the compiler folds them into single
// moves on LE targets.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked cursor over one frame's bytes. Every read_* returns
/// false (and leaves the output untouched) instead of reading past the
/// end, so a truncated payload can never over-read.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

  bool read_u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = bytes_[pos_++];
    return true;
  }

  bool read_u16(std::uint16_t& v) {
    if (remaining() < 2) return false;
    v = static_cast<std::uint16_t>(bytes_[pos_] |
                                   (std::uint16_t{bytes_[pos_ + 1]} << 8));
    pos_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{bytes_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{bytes_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool read_i32(std::int32_t& v) {
    std::uint32_t raw = 0;
    if (!read_u32(raw)) return false;
    v = static_cast<std::int32_t>(raw);
    return true;
  }

  bool read_f64(double& v) {
    std::uint64_t raw = 0;
    if (!read_u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  }

  bool read_bytes(std::size_t len, std::span<const std::uint8_t>& out) {
    if (remaining() < len) return false;
    out = std::span<const std::uint8_t>(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void put_header(std::vector<std::uint8_t>& out, MsgType type, bool response,
                std::uint64_t id, std::uint32_t payload_len) {
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, response ? 1 : 0);
  put_u64(out, id);
  put_u32(out, payload_len);
}

/// Appends header + payload; the payload length is patched in after the
/// body writer ran, so encoders never pre-compute sizes.
template <typename BodyFn>
void encode_frame(std::vector<std::uint8_t>& out, MsgType type, bool response,
                  std::uint64_t id, BodyFn&& body) {
  const std::size_t header_at = out.size();
  put_header(out, type, response, id, 0);
  const std::size_t payload_at = out.size();
  body(out);
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - payload_at);
  // Patch payload_len (last 4 header bytes), little-endian.
  for (int i = 0; i < 4; ++i) {
    out[header_at + kHeaderSize - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload_len >> (8 * i));
  }
}

}  // namespace

bool is_known_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MsgType::kPing) &&
         raw <= static_cast<std::uint8_t>(MsgType::kBatchRoute);
}

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kBadFlags: return "bad-flags";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kBadPayload: return "bad-payload";
  }
  return "unknown";
}

// --- Encoders -------------------------------------------------------------

void encode_ping_request(std::vector<std::uint8_t>& out, std::uint64_t id) {
  encode_frame(out, MsgType::kPing, false, id, [](auto&) {});
}

void encode_route_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                          const RouteRequest& req) {
  encode_frame(out, MsgType::kRoute, false, id, [&](auto& o) {
    put_i32(o, req.src);
    put_i32(o, req.dst);
  });
}

void encode_path_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                         const PathRequest& req) {
  encode_frame(out, MsgType::kPath, false, id, [&](auto& o) {
    put_i32(o, req.src);
    put_i32(o, req.dst);
  });
}

void encode_score_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                          const ScoreRequest& req) {
  encode_frame(out, MsgType::kScore, false, id,
               [&](auto& o) { put_i32(o, req.node); });
}

void encode_stats_request(std::vector<std::uint8_t>& out, std::uint64_t id) {
  encode_frame(out, MsgType::kStats, false, id, [](auto&) {});
}

void encode_batch_route_request(std::vector<std::uint8_t>& out,
                                std::uint64_t id,
                                const BatchRouteRequest& req) {
  encode_frame(out, MsgType::kBatchRoute, false, id, [&](auto& o) {
    put_u32(o, static_cast<std::uint32_t>(req.pairs.size()));
    for (const auto& pair : req.pairs) {
      put_i32(o, pair.src);
      put_i32(o, pair.dst);
    }
  });
}

void encode_ping_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                          const PingResponse& resp) {
  encode_frame(out, MsgType::kPing, true, id, [&](auto& o) {
    put_u32(o, resp.node_count);
    put_i32(o, resp.epoch);
    put_u64(o, resp.publish_seq);
  });
}

void encode_route_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const RouteResponse& resp) {
  encode_frame(out, MsgType::kRoute, true, id, [&](auto& o) {
    put_u8(o, resp.reachable);
    put_i32(o, resp.next_hop);
    put_f64(o, resp.cost);
    put_i32(o, resp.epoch);
    put_u64(o, resp.publish_seq);
  });
}

void encode_path_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                          const PathResponse& resp) {
  encode_frame(out, MsgType::kPath, true, id, [&](auto& o) {
    put_u8(o, resp.reachable);
    put_f64(o, resp.cost);
    put_i32(o, resp.epoch);
    put_u64(o, resp.publish_seq);
    put_u32(o, static_cast<std::uint32_t>(resp.hops.size()));
    for (const std::int32_t hop : resp.hops) put_i32(o, hop);
  });
}

void encode_score_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const ScoreResponse& resp) {
  encode_frame(out, MsgType::kScore, true, id, [&](auto& o) {
    put_f64(o, resp.score);
    put_i32(o, resp.epoch);
    put_u64(o, resp.publish_seq);
  });
}

void encode_stats_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const StatsResponse& resp) {
  encode_frame(out, MsgType::kStats, true, id, [&](auto& o) {
    put_u32(o, resp.node_count);
    put_i32(o, resp.published_epoch);
    put_u64(o, resp.publish_seq);
    put_u64(o, resp.queries_route);
    put_u64(o, resp.queries_path);
    put_u64(o, resp.queries_score);
    put_u64(o, resp.stale_served);
    put_u64(o, resp.rows_built);
    put_u64(o, resp.rows_discarded);
    put_u64(o, resp.uncached_queries);
    put_u64(o, resp.seal_violations);
    put_u64(o, resp.retired_pending);
    put_u64(o, resp.connections_accepted);
    put_u64(o, resp.connections_active);
    put_u64(o, resp.frames_in);
    put_u64(o, resp.frames_out);
    put_u64(o, resp.decode_errors);
    put_u64(o, resp.error_responses);
    put_u64(o, resp.idle_closed);
    put_u64(o, resp.bytes_in);
    put_u64(o, resp.bytes_out);
    put_u64(o, resp.batches);
    // v2 appendix: the per-loop breakdown after the frozen 22-field prefix.
    put_u32(o, static_cast<std::uint32_t>(resp.per_loop.size()));
    for (const auto& loop : resp.per_loop) {
      put_u64(o, loop.connections_accepted);
      put_u64(o, loop.connections_active);
      put_u64(o, loop.frames_in);
      put_u64(o, loop.frames_out);
      put_u64(o, loop.bytes_in);
      put_u64(o, loop.bytes_out);
      put_u64(o, loop.batches);
    }
  });
}

void encode_error_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const ErrorResponse& resp) {
  encode_frame(out, MsgType::kError, true, id, [&](auto& o) {
    put_u16(o, resp.code);
    put_u32(o, static_cast<std::uint32_t>(resp.message.size()));
    for (const char c : resp.message) {
      put_u8(o, static_cast<std::uint8_t>(c));
    }
  });
}

void encode_batch_route_response(std::vector<std::uint8_t>& out,
                                 std::uint64_t id,
                                 const BatchRouteResponse& resp) {
  encode_frame(out, MsgType::kBatchRoute, true, id, [&](auto& o) {
    put_i32(o, resp.epoch);
    put_u64(o, resp.publish_seq);
    put_u32(o, static_cast<std::uint32_t>(resp.entries.size()));
    for (const auto& entry : resp.entries) {
      put_u8(o, entry.reachable);
      put_i32(o, entry.next_hop);
      put_f64(o, entry.cost);
    }
  });
}

// --- Decoders -------------------------------------------------------------

HeaderDecode decode_header(std::span<const std::uint8_t> bytes,
                           std::size_t max_frame) {
  HeaderDecode out;
  if (bytes.size() < kHeaderSize) {
    out.status = DecodeStatus::kNeedMore;
    return out;
  }
  Reader r(bytes.first(kHeaderSize));
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint16_t flags = 0;
  r.read_u32(magic);
  r.read_u8(version);
  r.read_u8(type);
  r.read_u16(flags);
  r.read_u64(out.header.request_id);
  r.read_u32(out.header.payload_len);
  if (magic != kMagic) {
    out.status = DecodeStatus::kBadMagic;
    return out;
  }
  if (version < kMinVersion || version > kVersion) {
    out.status = DecodeStatus::kBadVersion;
    return out;
  }
  if (!is_known_type(type)) {
    out.status = DecodeStatus::kBadType;
    return out;
  }
  // BATCH_ROUTE is a v2 addition: a v1 peer that never learned the type
  // gets the same kBadType it would produce itself.
  if (static_cast<MsgType>(type) == MsgType::kBatchRoute && version < 2) {
    out.status = DecodeStatus::kBadType;
    return out;
  }
  if ((flags & ~std::uint16_t{1}) != 0) {
    out.status = DecodeStatus::kBadFlags;
    return out;
  }
  const std::size_t bound = std::min(max_frame, kMaxFrameLimit);
  if (out.header.payload_len > bound) {
    out.status = DecodeStatus::kOversized;
    return out;
  }
  out.header.version = version;
  out.header.type = static_cast<MsgType>(type);
  out.header.response = (flags & 1) != 0;
  out.status = DecodeStatus::kOk;
  return out;
}

RequestDecode decode_request(const FrameHeader& header,
                             std::span<const std::uint8_t> payload) {
  RequestDecode out;
  if (header.response || header.type == MsgType::kError) {
    out.status = DecodeStatus::kBadType;
    return out;
  }
  if (payload.size() != header.payload_len) {
    out.status = DecodeStatus::kBadPayload;
    return out;
  }
  Reader r(payload);
  switch (header.type) {
    case MsgType::kPing: {
      if (!r.exhausted()) return out;
      out.request = PingRequest{};
      break;
    }
    case MsgType::kRoute: {
      RouteRequest req;
      if (!r.read_i32(req.src) || !r.read_i32(req.dst) || !r.exhausted()) {
        return out;
      }
      out.request = req;
      break;
    }
    case MsgType::kPath: {
      PathRequest req;
      if (!r.read_i32(req.src) || !r.read_i32(req.dst) || !r.exhausted()) {
        return out;
      }
      out.request = req;
      break;
    }
    case MsgType::kScore: {
      ScoreRequest req;
      if (!r.read_i32(req.node) || !r.exhausted()) return out;
      out.request = req;
      break;
    }
    case MsgType::kStats: {
      if (!r.exhausted()) return out;
      out.request = StatsRequest{};
      break;
    }
    case MsgType::kBatchRoute: {
      BatchRouteRequest req;
      std::uint32_t count = 0;
      if (!r.read_u32(count)) return out;
      // Reject empty batches and require the pair list to tile the
      // remaining payload exactly. The count is widened to u64 before the
      // multiply so a hostile count near UINT32_MAX cannot wrap to a small
      // product; the remaining() equality also bounds the reserve by the
      // (already size-capped) frame, mirroring the PATH hop-list proof.
      if (count == 0) return out;
      if (r.remaining() != std::uint64_t{count} * 8) return out;
      req.pairs.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        BatchRoutePair pair;
        if (!r.read_i32(pair.src) || !r.read_i32(pair.dst)) return out;
        req.pairs.push_back(pair);
      }
      if (!r.exhausted()) return out;
      out.request = std::move(req);
      break;
    }
    case MsgType::kError:
      return out;  // unreachable (rejected above)
  }
  out.status = DecodeStatus::kOk;
  return out;
}

ResponseDecode decode_response(const FrameHeader& header,
                               std::span<const std::uint8_t> payload) {
  ResponseDecode out;
  if (!header.response) {
    out.status = DecodeStatus::kBadType;
    return out;
  }
  if (payload.size() != header.payload_len) {
    out.status = DecodeStatus::kBadPayload;
    return out;
  }
  Reader r(payload);
  switch (header.type) {
    case MsgType::kPing: {
      PingResponse resp;
      if (!r.read_u32(resp.node_count) || !r.read_i32(resp.epoch) ||
          !r.read_u64(resp.publish_seq) || !r.exhausted()) {
        return out;
      }
      out.response = resp;
      break;
    }
    case MsgType::kRoute: {
      RouteResponse resp;
      if (!r.read_u8(resp.reachable) || !r.read_i32(resp.next_hop) ||
          !r.read_f64(resp.cost) || !r.read_i32(resp.epoch) ||
          !r.read_u64(resp.publish_seq) || !r.exhausted()) {
        return out;
      }
      out.response = resp;
      break;
    }
    case MsgType::kPath: {
      PathResponse resp;
      std::uint32_t hop_count = 0;
      if (!r.read_u8(resp.reachable) || !r.read_f64(resp.cost) ||
          !r.read_i32(resp.epoch) || !r.read_u64(resp.publish_seq) ||
          !r.read_u32(hop_count)) {
        return out;
      }
      // Hop list length must tile the remaining payload exactly; the
      // remaining() check also caps the reserve, so a hostile hop_count
      // cannot force an allocation beyond the (already bounded) frame.
      if (r.remaining() != std::size_t{hop_count} * 4) return out;
      resp.hops.reserve(hop_count);
      for (std::uint32_t i = 0; i < hop_count; ++i) {
        std::int32_t hop = 0;
        if (!r.read_i32(hop)) return out;
        resp.hops.push_back(hop);
      }
      if (!r.exhausted()) return out;
      out.response = std::move(resp);
      break;
    }
    case MsgType::kScore: {
      ScoreResponse resp;
      if (!r.read_f64(resp.score) || !r.read_i32(resp.epoch) ||
          !r.read_u64(resp.publish_seq) || !r.exhausted()) {
        return out;
      }
      out.response = resp;
      break;
    }
    case MsgType::kStats: {
      StatsResponse resp;
      if (!r.read_u32(resp.node_count) || !r.read_i32(resp.published_epoch) ||
          !r.read_u64(resp.publish_seq) || !r.read_u64(resp.queries_route) ||
          !r.read_u64(resp.queries_path) || !r.read_u64(resp.queries_score) ||
          !r.read_u64(resp.stale_served) || !r.read_u64(resp.rows_built) ||
          !r.read_u64(resp.rows_discarded) ||
          !r.read_u64(resp.uncached_queries) ||
          !r.read_u64(resp.seal_violations) ||
          !r.read_u64(resp.retired_pending) ||
          !r.read_u64(resp.connections_accepted) ||
          !r.read_u64(resp.connections_active) ||
          !r.read_u64(resp.frames_in) || !r.read_u64(resp.frames_out) ||
          !r.read_u64(resp.decode_errors) ||
          !r.read_u64(resp.error_responses) || !r.read_u64(resp.idle_closed) ||
          !r.read_u64(resp.bytes_in) || !r.read_u64(resp.bytes_out) ||
          !r.read_u64(resp.batches)) {
        return out;
      }
      // v1 frames stop at the frozen 22-field prefix; v2 appends the
      // per-loop breakdown (u32 loop count + 7 u64 per loop).
      if (header.version >= 2) {
        std::uint32_t loop_count = 0;
        if (!r.read_u32(loop_count)) return out;
        if (r.remaining() != std::uint64_t{loop_count} * 56) return out;
        resp.per_loop.reserve(loop_count);
        for (std::uint32_t i = 0; i < loop_count; ++i) {
          PerLoopStats loop;
          if (!r.read_u64(loop.connections_accepted) ||
              !r.read_u64(loop.connections_active) ||
              !r.read_u64(loop.frames_in) || !r.read_u64(loop.frames_out) ||
              !r.read_u64(loop.bytes_in) || !r.read_u64(loop.bytes_out) ||
              !r.read_u64(loop.batches)) {
            return out;
          }
          resp.per_loop.push_back(loop);
        }
      }
      if (!r.exhausted()) return out;
      out.response = std::move(resp);
      break;
    }
    case MsgType::kError: {
      ErrorResponse resp;
      std::uint32_t len = 0;
      if (!r.read_u16(resp.code) || !r.read_u32(len)) return out;
      std::span<const std::uint8_t> text;
      if (!r.read_bytes(len, text) || !r.exhausted()) return out;
      resp.message.assign(reinterpret_cast<const char*>(text.data()),
                          text.size());
      out.response = std::move(resp);
      break;
    }
    case MsgType::kBatchRoute: {
      BatchRouteResponse resp;
      std::uint32_t count = 0;
      if (!r.read_i32(resp.epoch) || !r.read_u64(resp.publish_seq) ||
          !r.read_u32(count)) {
        return out;
      }
      // Same hostile-count discipline as the request side: widen before
      // multiplying (13-byte entries) and demand exact tiling so the
      // reserve stays bounded by the frame size.
      if (count == 0) return out;
      if (r.remaining() != std::uint64_t{count} * 13) return out;
      resp.entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        BatchRouteEntry entry;
        if (!r.read_u8(entry.reachable) || !r.read_i32(entry.next_hop) ||
            !r.read_f64(entry.cost)) {
          return out;
        }
        resp.entries.push_back(entry);
      }
      if (!r.exhausted()) return out;
      out.response = std::move(resp);
      break;
    }
  }
  out.status = DecodeStatus::kOk;
  return out;
}

}  // namespace egoist::wire
