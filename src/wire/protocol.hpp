// The egoistd wire protocol: versioned, length-prefixed binary frames.
//
// This is the out-of-process leg of the serving stack (the in-process leg
// is host::RouteService). A client and the rpc::Server exchange frames,
// each a fixed 20-byte header followed by a typed payload:
//
//   offset  size  field
//        0     4  magic        "EGOR" (0x45 0x47 0x4F 0x52 on the wire)
//        4     1  version      kMinVersion..kVersion; others are rejected
//        5     1  type         MsgType (PING / ROUTE / PATH / SCORE /
//                              STATS / ERROR / BATCH_ROUTE)
//        6     2  flags        bit 0: response; all other bits must be 0
//        8     8  request_id   echoed verbatim in the matching response
//       16     4  payload_len  bytes that follow; bounded by max_frame
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern in a u64 (NaN survives — SCORE of an offline node is NaN by
// contract). The header's payload_len is validated against the receiver's
// max_frame bound BEFORE any payload is buffered, so a hostile length
// cannot force an allocation.
//
// Decoding never throws and never over-reads: every primitive read is
// bounds-checked against the frame it was handed, truncated or malformed
// input yields a typed DecodeStatus, and a payload that does not consume
// exactly payload_len bytes is rejected (kBadPayload). kNeedMore is not an
// error — it tells a streaming caller to buffer more bytes.
//
// Versioning rule: the header layout (magic through payload_len) is frozen
// forever; bumping kVersion is reserved for payload-format changes. A
// receiver speaks the half-open range [kMinVersion, kVersion]: frames
// carrying any version it speaks are accepted (the decoded FrameHeader
// records which one), anything else is rejected (kBadVersion) rather than
// guessed at. Version 2 appended the per-loop breakdown to the STATS
// response — the 22 shared fields are a frozen prefix, so a v2 receiver
// still parses a v1 STATS frame (empty per_loop) — and introduced
// BATCH_ROUTE, which is rejected (kBadType) on a v1 frame. New message
// types extend the enum without a version bump; unknown types are
// rejected (kBadType).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace egoist::wire {

inline constexpr std::uint32_t kMagic = 0x524F4745u;  // "EGOR" little-endian
inline constexpr std::uint8_t kVersion = 2;     ///< what encoders emit
inline constexpr std::uint8_t kMinVersion = 1;  ///< oldest version accepted
inline constexpr std::size_t kHeaderSize = 20;

/// Default per-frame payload bound; servers and clients may lower it, and
/// nothing may raise it above kMaxFrameLimit.
inline constexpr std::size_t kDefaultMaxFrame = 1u << 20;  // 1 MiB
inline constexpr std::size_t kMaxFrameLimit = 16u << 20;   // 16 MiB

enum class MsgType : std::uint8_t {
  kPing = 1,   ///< liveness + deployment shape (node count, publish seq)
  kRoute = 2,  ///< next hop + cost of a shortest announced-cost path
  kPath = 3,   ///< full hop list of same
  kScore = 4,  ///< single-node routing-cost score (NaN when offline)
  kStats = 5,  ///< service + server counters
  kError = 6,  ///< response-only: typed failure for one request
  kBatchRoute = 7,  ///< many ROUTE lookups in one frame (v2+)
};

/// True for values that name a known message type.
bool is_known_type(std::uint8_t raw);

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMore,     ///< streaming: not enough bytes yet (never an error)
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadFlags,     ///< reserved flag bits set
  kOversized,    ///< payload_len exceeds the receiver's max_frame bound
  kBadPayload,   ///< payload truncated, trailing, or semantically malformed
};

const char* to_string(DecodeStatus status);

struct FrameHeader {
  std::uint8_t version = kVersion;
  MsgType type = MsgType::kPing;
  bool response = false;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

// --- Typed payloads -------------------------------------------------------

struct PingRequest {};

struct PingResponse {
  std::uint32_t node_count = 0;   ///< overlay size n
  std::int32_t epoch = 0;         ///< epoch of the current publication
  std::uint64_t publish_seq = 0;
};

struct RouteRequest {
  std::int32_t src = -1;
  std::int32_t dst = -1;
};

struct RouteResponse {
  std::uint8_t reachable = 0;
  std::int32_t next_hop = -1;
  double cost = 0.0;              ///< +inf when unreachable
  std::int32_t epoch = 0;
  std::uint64_t publish_seq = 0;
};

struct PathRequest {
  std::int32_t src = -1;
  std::int32_t dst = -1;
};

struct PathResponse {
  std::uint8_t reachable = 0;
  double cost = 0.0;
  std::int32_t epoch = 0;
  std::uint64_t publish_seq = 0;
  std::vector<std::int32_t> hops;  ///< src..dst; empty when unreachable
};

struct ScoreRequest {
  std::int32_t node = -1;
};

/// One (src, dst) lookup inside a BATCH_ROUTE frame.
struct BatchRoutePair {
  std::int32_t src = -1;
  std::int32_t dst = -1;
};

/// BATCH_ROUTE request: one header, u32 count, then `count` packed
/// src/dst pairs (8 bytes each). A pipelined client that used to send
/// depth-16 ROUTE frames (16 header decodes, 16 response sends) sends one
/// frame and gets one response frame back. count == 0 is rejected
/// (kBadPayload) — an empty batch is always a framing bug — and count must
/// tile the payload exactly, so a hostile count can neither over-read nor
/// force an allocation beyond the (already bounded) frame.
struct BatchRouteRequest {
  std::vector<BatchRoutePair> pairs;
};

/// One answer slot of a BATCH_ROUTE response (13 bytes packed).
struct BatchRouteEntry {
  std::uint8_t reachable = 0;
  std::int32_t next_hop = -1;
  double cost = 0.0;  ///< +inf when unreachable
};

/// BATCH_ROUTE response: epoch + publish_seq once (the whole batch is
/// answered off ONE pinned snapshot, so they are shared by construction),
/// then `count` packed entries in request order.
struct BatchRouteResponse {
  std::int32_t epoch = 0;
  std::uint64_t publish_seq = 0;
  std::vector<BatchRouteEntry> entries;
};

struct ScoreResponse {
  double score = 0.0;             ///< NaN for an offline node
  std::int32_t epoch = 0;
  std::uint64_t publish_seq = 0;
};

struct StatsRequest {};

/// Per-event-loop slice of the server's transport counters (v2+). The
/// shared StatsResponse fields hold the exact aggregate; these are the
/// per-loop break-down a multi-loop server serves from.
struct PerLoopStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t batches = 0;
};

/// One coherent sample of the daemon's counters: the RouteService's
/// publication/query telemetry plus the rpc::Server's transport counters.
/// The 22 fields up to `batches` are a frozen prefix shared with wire
/// version 1; version 2 appends the per-loop breakdown, and a v1 frame
/// decodes with `per_loop` empty — old clients still parse the shared
/// fields, old frames still satisfy new receivers.
struct StatsResponse {
  std::uint32_t node_count = 0;
  std::int32_t published_epoch = 0;
  std::uint64_t publish_seq = 0;
  // RouteService (host/route_service.hpp Stats)
  std::uint64_t queries_route = 0;
  std::uint64_t queries_path = 0;
  std::uint64_t queries_score = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t rows_built = 0;
  std::uint64_t rows_discarded = 0;
  std::uint64_t uncached_queries = 0;
  std::uint64_t seal_violations = 0;
  std::uint64_t retired_pending = 0;
  // rpc::Server
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t error_responses = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t batches = 0;        ///< dispatch batches == snapshot pins
  // v2+: per-event-loop breakdown (empty when decoded from a v1 frame).
  std::vector<PerLoopStats> per_loop;
};

enum class ErrorCode : std::uint16_t {
  kMalformedFrame = 1,  ///< header-level garbage; the connection will close
  kBadRequest = 2,      ///< payload undecodable for its advertised type
  kOutOfRange = 3,      ///< node id outside [0, n)
  kShuttingDown = 4,    ///< server draining; retry elsewhere
};

struct ErrorResponse {
  std::uint16_t code = 0;
  std::string message;            ///< short human-readable diagnostic
};

using Request = std::variant<PingRequest, RouteRequest, PathRequest,
                             ScoreRequest, StatsRequest, BatchRouteRequest>;
using Response =
    std::variant<PingResponse, RouteResponse, PathResponse, ScoreResponse,
                 StatsResponse, ErrorResponse, BatchRouteResponse>;

// --- Encoding -------------------------------------------------------------
// Every encoder appends one complete frame (header + payload) to `out`.

void encode_ping_request(std::vector<std::uint8_t>& out, std::uint64_t id);
void encode_route_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                          const RouteRequest& req);
void encode_path_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                         const PathRequest& req);
void encode_score_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                          const ScoreRequest& req);
void encode_stats_request(std::vector<std::uint8_t>& out, std::uint64_t id);
void encode_batch_route_request(std::vector<std::uint8_t>& out,
                                std::uint64_t id,
                                const BatchRouteRequest& req);

void encode_ping_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                          const PingResponse& resp);
void encode_route_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const RouteResponse& resp);
void encode_path_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                          const PathResponse& resp);
void encode_score_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const ScoreResponse& resp);
void encode_stats_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const StatsResponse& resp);
void encode_error_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const ErrorResponse& resp);
void encode_batch_route_response(std::vector<std::uint8_t>& out,
                                 std::uint64_t id,
                                 const BatchRouteResponse& resp);

// --- Decoding -------------------------------------------------------------

struct HeaderDecode {
  DecodeStatus status = DecodeStatus::kNeedMore;
  FrameHeader header;
};

/// Validates the fixed header at the front of `bytes`. kNeedMore when
/// fewer than kHeaderSize bytes are available; kOversized when payload_len
/// exceeds `max_frame`. Does not look at the payload.
HeaderDecode decode_header(std::span<const std::uint8_t> bytes,
                           std::size_t max_frame = kDefaultMaxFrame);

struct RequestDecode {
  DecodeStatus status = DecodeStatus::kBadPayload;
  Request request;
};

struct ResponseDecode {
  DecodeStatus status = DecodeStatus::kBadPayload;
  Response response;
};

/// Decodes the payload of a request frame whose header already validated.
/// `payload` must be exactly header.payload_len bytes; under- or
/// over-consumption yields kBadPayload. A response-flagged header or an
/// ERROR type yields kBadType (ERROR is response-only).
RequestDecode decode_request(const FrameHeader& header,
                             std::span<const std::uint8_t> payload);

/// Decodes the payload of a response frame whose header already validated.
ResponseDecode decode_response(const FrameHeader& header,
                               std::span<const std::uint8_t> payload);

}  // namespace egoist::wire
