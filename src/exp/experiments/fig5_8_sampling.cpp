// Figs 5-8: scalability via sampling (paper: n = 295, k = 3, r = 2).
//
// A base overlay is built incrementally with a base strategy (Fig 5: BR;
// Fig 6: k-Random; Fig 7: k-Regular; Fig 8: k-Closest). A newcomer then
// joins using each strategy restricted to a sample of m nodes (m = 6..20):
// k-Random / k-Regular / k-Closest with random sampling, BR with random
// sampling, and BRtp (BR with topology-biased sampling,
// b_ij = |F(v_j)| / sum_{u in F(v_j)} d(v_i, u), radius r).
//
// The series report the newcomer's realized cost (distance to all base
// destinations over the final graph) normalized by the cost of a newcomer
// running BR with NO sampling. The base size/degree/radius are scenario
// knobs (base-n, degree, radius) so smoke tests can shrink the experiment;
// the defaults reproduce the paper's figures.
#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/residual.hpp"
#include "core/sampling.hpp"
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"
#include "net/delay_space.hpp"

namespace egoist::exp {

namespace {

using core::NodeId;

enum class Base { kBr, kRandom, kRegular, kClosest };

const char* base_name(Base base) {
  switch (base) {
    case Base::kBr: return "BR";
    case Base::kRandom: return "k-Random";
    case Base::kRegular: return "k-Regular";
    case Base::kClosest: return "k-Closest";
  }
  return "?";
}

/// Geometry of one figure run: base overlay size, newcomer degree budget,
/// biased-sampling radius, and the swept sample sizes.
struct SamplingSetup {
  std::size_t base_nodes = 295;
  std::size_t degree = 3;
  int radius = 2;
  std::size_t m_min = 6;
  std::size_t m_max = 20;
  std::size_t m_step = 2;
};

/// Direct (true) delays from `src` to every node id < total.
std::vector<double> direct_delays(const net::DelaySpace& delays, NodeId src,
                                  std::size_t total) {
  std::vector<double> out(total, 0.0);
  for (std::size_t v = 0; v < total; ++v) {
    if (static_cast<NodeId>(v) != src) out[v] = delays.delay(src, static_cast<int>(v));
  }
  return out;
}

/// Builds the base graph (node setup.base_nodes stays inactive) with the
/// given strategy. Graph weights are true delays. Overlay connections are
/// TCP, hence usable in both directions (with direction-specific costs):
/// wiring v -> w also installs w -> v, which keeps incrementally built
/// graphs strongly connected (otherwise all edges would point backward in
/// join order and late joiners would be unreachable).
graph::Digraph build_base(Base base, const SamplingSetup& setup,
                          const net::DelaySpace& delays, util::Rng& rng) {
  const std::size_t base_nodes = setup.base_nodes;
  graph::Digraph g(base_nodes + 1);
  g.set_active(static_cast<NodeId>(base_nodes), false);
  auto wire = [&](NodeId v, const std::vector<NodeId>& links) {
    for (NodeId w : links) {
      g.set_edge(v, w, delays.delay(v, w));
      g.set_edge(w, v, delays.delay(w, v));
    }
  };
  switch (base) {
    case Base::kBr: {
      // Incremental construction: only nodes 0..j-1 are active when j joins.
      for (std::size_t v = 1; v < base_nodes; ++v) {
        g.set_active(static_cast<NodeId>(v), false);
      }
      for (std::size_t j = 1; j < base_nodes; ++j) {
        const auto self = static_cast<NodeId>(j);
        g.set_active(self, true);
        const auto direct = direct_delays(delays, self, base_nodes + 1);
        const auto objective = core::make_delay_objective(g, self, direct);
        core::BestResponseOptions options;
        options.exact_budget = 0;
        const auto br = core::best_response(objective, setup.degree, options);
        wire(self, br.wiring);
      }
      break;
    }
    case Base::kRandom: {
      std::vector<NodeId> all(base_nodes);
      std::iota(all.begin(), all.end(), 0);
      for (std::size_t v = 0; v < base_nodes; ++v) {
        std::vector<NodeId> candidates;
        for (NodeId w : all) {
          if (w != static_cast<NodeId>(v)) candidates.push_back(w);
        }
        wire(static_cast<NodeId>(v),
             core::select_k_random(candidates, setup.degree, rng));
      }
      break;
    }
    case Base::kRegular: {
      for (std::size_t v = 0; v < base_nodes; ++v) {
        wire(static_cast<NodeId>(v),
             core::select_k_regular(static_cast<NodeId>(v), base_nodes,
                                    setup.degree));
      }
      break;
    }
    case Base::kClosest: {
      std::vector<NodeId> all(base_nodes);
      std::iota(all.begin(), all.end(), 0);
      for (std::size_t v = 0; v < base_nodes; ++v) {
        std::vector<NodeId> candidates;
        for (NodeId w : all) {
          if (w != static_cast<NodeId>(v)) candidates.push_back(w);
        }
        wire(static_cast<NodeId>(v),
             core::select_k_closest(
                 candidates, direct_delays(delays, static_cast<NodeId>(v),
                                           base_nodes + 1),
                 setup.degree));
      }
      break;
    }
  }
  return g;
}

/// The newcomer's realized cost: mean distance to all base nodes over the
/// base graph + the chosen wiring (full-information evaluation). The
/// engine holds the base snapshot, so each evaluation reuses the shared
/// base trees instead of re-running an all-pairs computation; `scratch`
/// carries the borrowed residual matrix across calls.
double newcomer_cost(graph::PathEngine& engine, std::size_t base_nodes,
                     const std::vector<double>& direct,
                     const std::vector<NodeId>& wiring,
                     graph::DistanceMatrix& scratch) {
  const auto self = static_cast<NodeId>(base_nodes);
  const auto objective = core::make_delay_objective(
      engine, self, direct, std::nullopt, std::nullopt, &scratch);
  return objective.cost(wiring);
}

struct SampledCosts {
  double k_random = 0.0;
  double k_regular = 0.0;
  double k_closest = 0.0;
  double br = 0.0;
  double brtp = 0.0;
};

/// One trial of all sampled strategies at sample size m.
SampledCosts sampled_trial(graph::PathEngine& engine, const SamplingSetup& setup,
                           const std::vector<double>& direct, std::size_t m,
                           util::Rng& rng, graph::DistanceMatrix& scratch) {
  const auto self = static_cast<NodeId>(setup.base_nodes);
  std::vector<NodeId> candidates(setup.base_nodes);
  std::iota(candidates.begin(), candidates.end(), 0);

  const auto sample = core::random_sample(candidates, m, rng);
  SampledCosts costs;
  // k-Random within the sample.
  costs.k_random =
      newcomer_cost(engine, setup.base_nodes, direct,
                    core::select_k_random(sample, setup.degree, rng), scratch);
  // k-Regular within the sample: regular index offsets in the sorted sample.
  {
    std::vector<NodeId> wiring;
    const auto offsets = core::k_regular_offsets(sample.size() + 1, setup.degree);
    for (int o : offsets) {
      wiring.push_back(sample[static_cast<std::size_t>(o - 1) % sample.size()]);
    }
    std::sort(wiring.begin(), wiring.end());
    wiring.erase(std::unique(wiring.begin(), wiring.end()), wiring.end());
    costs.k_regular =
        newcomer_cost(engine, setup.base_nodes, direct, wiring, scratch);
  }
  // k-Closest within the sample.
  costs.k_closest = newcomer_cost(
      engine, setup.base_nodes, direct,
      core::select_k_closest(sample, direct, setup.degree), scratch);
  // BR restricted to the sample (search on the sampled objective; evaluate
  // on the full one).
  core::BestResponseOptions options;
  options.exact_budget = 0;
  {
    const auto objective =
        core::make_sampled_delay_objective(engine, self, direct, sample);
    const auto br = core::best_response(objective, setup.degree, options);
    costs.br = newcomer_cost(engine, setup.base_nodes, direct, br.wiring, scratch);
  }
  // BRtp: topology-biased sample over the CSR snapshot, then BR on it.
  {
    core::BiasedSamplingOptions bias;
    bias.radius = setup.radius;
    const auto biased = core::topology_biased_sample(engine.csr(), self, direct,
                                                     candidates, m, rng, bias);
    const auto objective =
        core::make_sampled_delay_objective(engine, self, direct, biased);
    const auto br = core::best_response(objective, setup.degree, options);
    costs.brtp =
        newcomer_cost(engine, setup.base_nodes, direct, br.wiring, scratch);
  }
  return costs;
}

void run_figure(Base base, int figure_number, const SamplingSetup& setup,
                const net::DelaySpace& delays, std::uint64_t seed, int trials,
                ResultSink& sink) {
  util::Rng rng(seed);
  auto base_graph = build_base(base, setup, delays, rng);
  const auto self = static_cast<NodeId>(setup.base_nodes);
  // The newcomer is present (active) but not yet wired; the base graph is
  // exactly its residual graph G_{-i}.
  base_graph.set_active(self, true);
  const auto direct = direct_delays(delays, self, setup.base_nodes + 1);

  // One shared snapshot of the base overlay: the newcomer has no out-edges
  // yet, so its residual view equals the base and every query below reuses
  // the engine's base trees.
  graph::PathEngine engine(base_graph);
  graph::DistanceMatrix scratch;

  // BR with no sampling: the normalization baseline.
  double baseline;
  {
    const auto objective = core::make_delay_objective(
        engine, self, direct, std::nullopt, std::nullopt, &scratch);
    core::BestResponseOptions options;
    options.exact_budget = 0;
    baseline = core::best_response(objective, setup.degree, options).cost;
  }

  sink.section(
      "Fig " + std::to_string(figure_number) + ": sampling on a " +
          base_name(base) + " graph (n=" + std::to_string(setup.base_nodes) +
          ", k=" + std::to_string(setup.degree) +
          ", r=" + std::to_string(setup.radius) + ")",
      "Newcomer's cost / BR-no-sampling cost vs sample size m.");
  util::Table table(
      {"m", "k-Random", "k-Regular", "k-Closest", "BR", "BRtp"});
  for (std::size_t m = setup.m_min; m <= setup.m_max; m += setup.m_step) {
    SampledCosts mean;
    for (int t = 0; t < trials; ++t) {
      const auto c = sampled_trial(engine, setup, direct, m, rng, scratch);
      mean.k_random += c.k_random;
      mean.k_regular += c.k_regular;
      mean.k_closest += c.k_closest;
      mean.br += c.br;
      mean.brtp += c.brtp;
    }
    const double norm = baseline * trials;
    table.add_numeric_row({static_cast<double>(m), mean.k_random / norm,
                           mean.k_regular / norm, mean.k_closest / norm,
                           mean.br / norm, mean.brtp / norm},
                          3);
  }
  sink.table(std::string("fig") + std::to_string(figure_number), table);
  sink.text("\n");
}

}  // namespace

void run_fig5_8_sampling(const ParamReader& params, ResultSink& sink) {
  const auto seed = params.get_seed("seed", 42);
  const int trials = params.get_int("trials", 5);
  SamplingSetup setup;
  setup.base_nodes =
      static_cast<std::size_t>(params.get_int("base-n", static_cast<int>(setup.base_nodes)));
  setup.degree =
      static_cast<std::size_t>(params.get_int("degree", static_cast<int>(setup.degree)));
  setup.radius = params.get_int("radius", setup.radius);
  setup.m_min = static_cast<std::size_t>(params.get_int("m-min", static_cast<int>(setup.m_min)));
  setup.m_max = static_cast<std::size_t>(params.get_int("m-max", static_cast<int>(setup.m_max)));
  setup.m_step = static_cast<std::size_t>(params.get_int("m-step", static_cast<int>(setup.m_step)));
  if (setup.base_nodes < setup.m_max || setup.m_min < 1 || setup.m_step < 1 ||
      setup.m_max < setup.m_min || trials < 1) {
    throw std::invalid_argument(
        "need 1 <= m-min <= m-max <= base-n, m-step >= 1, trials >= 1");
  }

  const auto delays = net::make_planetlab_like(setup.base_nodes + 1, seed);
  run_figure(Base::kBr, 5, setup, delays, seed ^ 5u, trials, sink);
  run_figure(Base::kRandom, 6, setup, delays, seed ^ 6u, trials, sink);
  run_figure(Base::kRegular, 7, setup, delays, seed ^ 7u, trials, sink);
  run_figure(Base::kClosest, 8, setup, delays, seed ^ 8u, trials, sink);
}

}  // namespace egoist::exp
