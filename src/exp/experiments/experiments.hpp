// Run functions of every registered experiment (one .cpp per figure or
// study under exp/experiments/). The registry (exp/registry.cpp) is the
// single table tying names and summaries to these functions.
#pragma once

#include "exp/params.hpp"
#include "exp/result_sink.hpp"

namespace egoist::exp {

void run_fig1_delay_ping(const ParamReader& params, ResultSink& sink);
void run_fig1_delay_coords(const ParamReader& params, ResultSink& sink);
void run_fig1_node_load(const ParamReader& params, ResultSink& sink);
void run_fig1_avail_bw(const ParamReader& params, ResultSink& sink);
void run_fig2_churn(const ParamReader& params, ResultSink& sink);
void run_fig3_rewirings(const ParamReader& params, ResultSink& sink);
void run_fig4_free_riders(const ParamReader& params, ResultSink& sink);
void run_fig5_8_sampling(const ParamReader& params, ResultSink& sink);
void run_fig10_multipath_bw(const ParamReader& params, ResultSink& sink);
void run_fig11_disjoint_paths(const ParamReader& params, ResultSink& sink);
void run_overhead_accounting(const ParamReader& params, ResultSink& sink);
void run_ablation_design_choices(const ParamReader& params, ResultSink& sink);
void run_perf_epoch_scaling(const ParamReader& params, ResultSink& sink);
void run_steady_state(const ParamReader& params, ResultSink& sink);
void run_scale_frontier(const ParamReader& params, ResultSink& sink);
void run_serve_load(const ParamReader& params, ResultSink& sink);
void run_serve_remote(const ParamReader& params, ResultSink& sink);

}  // namespace egoist::exp
