// scale_frontier: how far the substrate seam pushes n (§5 scale regime).
//
// For each n in n-list, builds an OverlayHost on the chosen underlay
// backend (procedural by default — O(n) substrate state, O(1) advance),
// deploys one BR/HybridBR overlay in §5 scale mode (sampled candidates x
// epoch-shared landmark destinations — no O(n^2) residual state), runs the
// requested BR epochs, and reports wall time alongside the memory
// telemetry that proves the O(n k + probed-pairs) claim: substrate bytes,
// measurement-plane bytes, probed-pair count, and process peak RSS.
//
// Quality is tracked by a sampled oracle: shortest-path routing cost over
// the true-cost overlay graph from score-sources random online sources
// (full all-pairs scoring would itself be O(n^2) and is exactly what this
// experiment exists to avoid).
//
// `workers = N` (default 0) runs the BR epochs through the parallel epoch
// pipeline with N workers (0 keeps the sequential epoch); `profile = true`
// enables the in-process profiler around the timed epochs and emits
// per-phase rows ("profile" panel; see docs/EXPERIMENTS.md).
//
// Long-horizon churn (ISSUE 7): `churn-horizon = N` (epochs, 0 = static
// membership) synthesizes a §4.4 ON/OFF trace over the timed region and
// replays it between epochs through the network escape hatch — membership
// flips land outside the clock, the epochs they perturb inside it.
// `incremental = true` runs the dirty-set epochs (tolerance mode,
// `drift-threshold`, default 0.05) and the rows report evaluated /
// skipped_evals / dirty_frac / dirty_nodes; `compare-full = true`
// additionally runs the full-recompute variant of every n on the same
// trace and reports speedup_vs_full on the incremental rows.
#include <algorithm>
#include <chrono>
#include <iomanip>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "churn/churn.hpp"
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"
#include "graph/shortest_path.hpp"
#include "util/profiler.hpp"

namespace egoist::exp {

namespace {

struct FrontierRow {
  std::size_t n = 0;
  std::string variant;         ///< "full" or "incremental"
  std::string underlay;
  double build_ms = 0.0;       ///< host construction + deploy (bootstrap)
  double epoch_ms_mean = 0.0;
  double epoch_ms_min = 0.0;
  int rewirings = 0;
  std::uint64_t evaluated = 0;   ///< node evaluations in the timed epochs
  std::uint64_t skipped = 0;     ///< evaluations skipped (incremental)
  double dirty_frac = 1.0;       ///< evaluated / (evaluated + skipped)
  std::size_t dirty_nodes = 0;   ///< marked nodes after the last epoch
  double speedup_vs_full = 0.0;  ///< 0 = n/a (needs compare-full)
  double churn_rate = 0.0;       ///< paper's metric over the replayed trace
  double mean_cost = 0.0;      ///< sampled-source mean routing cost (ms)
  std::size_t unreachable = 0; ///< unreachable sampled pairs
  std::size_t substrate_bytes = 0;
  std::size_t plane_bytes = 0;
  std::size_t probed_pairs = 0;
  std::size_t peak_rss_bytes = 0;
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

void run_scale_frontier(const ParamReader& params, ResultSink& sink) {
  std::vector<std::size_t> n_list;
  for (const auto& item :
       split_csv(params.get_string("n-list", "1000,2000,5000,10000,20000"))) {
    const int v = std::stoi(item);
    if (v < 8) throw std::invalid_argument("n must be >= 8");
    n_list.push_back(static_cast<std::size_t>(v));
  }
  if (n_list.empty()) throw std::invalid_argument("empty n-list");

  overlay::OverlayConfig config;
  config.policy = overlay::parse_policy(params.get_string("policy", "BR"));
  config.metric =
      overlay::parse_metric(params.get_string("metric", "delay(ping)"));
  config.k = static_cast<std::size_t>(params.get_int("k", 10));
  config.seed = params.get_seed("seed", 42);
  config.br_sample =
      static_cast<std::size_t>(params.get_int("br-sample", 32));
  config.br_landmarks =
      static_cast<std::size_t>(params.get_int("br-landmarks", 64));
  if (config.br_sample == 0) {
    throw std::invalid_argument("scale_frontier requires br-sample > 0");
  }
  // 0 keeps the sequential epoch; >= 1 switches to the parallel pipeline
  // (bit-identical trajectory at any positive count). Negatives are
  // rejected by the overlay config validation.
  config.epoch_workers = params.get_int("workers", 0);

  auto env_config = parse_underlay(params);
  // The whole point of this experiment is the scale regime; default to the
  // procedural backend unless the scenario explicitly asks for dense.
  if (params.spec().find("underlay") == nullptr) {
    env_config.underlay = net::UnderlayKind::kProcedural;
  }
  env_config.coord_warmup_rounds =
      params.get_int("coord-warmup", env_config.coord_warmup_rounds);

  const int warmup = params.get_int("warmup", 0);
  const int epochs = params.get_int("epochs", 1);
  if (warmup < 0 || epochs < 1) {
    throw std::invalid_argument("need warmup >= 0 and epochs >= 1");
  }
  const double epoch_s = params.get_double("epoch-seconds", 60.0);
  const int score_sources = params.get_int("score-sources", 16);
  const bool profile = params.get_bool("profile", false);
  // Churn replay + incremental dirty-set knobs (see the header comment).
  const int churn_horizon = params.get_int("churn-horizon", 0);
  const double churn_timescale = params.get_double("churn-timescale", 0.2);
  const bool incremental = params.get_bool("incremental", false);
  const double drift_threshold = params.get_double("drift-threshold", 0.05);
  const bool compare_full = params.get_bool("compare-full", false);
  if (churn_horizon < 0) {
    throw std::invalid_argument("churn-horizon must be >= 0");
  }
  util::ProfileSession profile_session(profile);

  sink.section(
      "scale frontier: " +
          std::string(overlay::to_string(config.policy)) + " on " +
          overlay::to_string(config.metric) + ", " +
          net::to_string(env_config.underlay) + " underlay",
      "One overlay in scale mode (sample=" +
          std::to_string(config.br_sample) +
          ", landmarks=" + std::to_string(config.br_landmarks) +
          ", k=" + std::to_string(config.k) + "); " + std::to_string(epochs) +
          " timed BR epoch(s) per n after " + std::to_string(warmup) +
          " warmup. Memory columns are the O(n k + probed-pairs) evidence.");

  const std::vector<std::string> kColumns{
      "n",           "variant",         "underlay",    "workers",
      "build_ms",    "epoch_ms_mean",   "epoch_ms_min", "rewirings",
      "evaluated",   "skipped_evals",   "dirty_frac",  "dirty_nodes",
      "speedup_vs_full", "mean_cost",   "unreachable", "churn_rate",
      "substrate_bytes", "plane_bytes", "probed_pairs", "peak_rss_bytes"};
  util::Table table(kColumns);

  // One measured deployment: builds the host, replays the (shared) churn
  // trace between timed epochs through the network escape hatch, and
  // fills every telemetry column. `run_incremental` toggles the dirty-set
  // epochs; the trace and every seed are identical across variants, so
  // full vs incremental compare the same workload.
  const auto run_variant = [&](std::size_t n, bool run_incremental,
                               const std::optional<churn::ChurnTrace>& trace) {
    overlay::OverlayConfig variant_config = config;
    variant_config.incremental = run_incremental;
    variant_config.drift_threshold = run_incremental ? drift_threshold : 0.0;

    FrontierRow row;
    row.n = n;
    row.variant = run_incremental ? "incremental" : "full";
    row.underlay = net::to_string(env_config.underlay);

    const auto build_start = std::chrono::steady_clock::now();
    host::OverlayHost deployment(n, variant_config.seed, env_config);
    const auto handle = deployment.deploy(
        host::OverlaySpec(variant_config).epoch_period(epoch_s));
    row.build_ms = ms_since(build_start);

    if (warmup > 0) deployment.run_epochs(handle, warmup);

    // Time run_epoch() only, via the escape hatch (substrate advancement
    // and event dispatch outside the clock), as perf_epoch_scaling does.
    auto& env = deployment.environment(handle);
    auto& net = deployment.network(handle);
    // Trace time 0 = start of the timed region: take nodes that begin OFF
    // down before the first timed epoch (outside the clock).
    std::size_t next_event = 0;
    if (trace) {
      const auto& initial = trace->initial_on();
      for (std::size_t v = 0; v < initial.size(); ++v) {
        if (!initial[v]) net.set_online(static_cast<int>(v), false);
      }
      row.churn_rate = trace->churn_rate();
    }
    // Profile the timed epochs only: drop whatever bootstrap and warmup
    // recorded.
    if (profile) util::Profiler::instance().reset();
    const std::uint64_t evals_mark = net.total_evaluations();
    const std::uint64_t skips_mark = net.total_skipped_evals();
    row.epoch_ms_min = std::numeric_limits<double>::infinity();
    for (int e = 0; e < epochs; ++e) {
      env.advance(epoch_s);
      if (trace) {
        // Membership flips up to the end of this epoch land before its
        // clock starts; the epoch then pays their re-evaluation cost.
        const double until = (e + 1) * epoch_s;
        const auto& events = trace->events();
        for (; next_event < events.size() && events[next_event].time <= until;
             ++next_event) {
          net.set_online(events[next_event].node, events[next_event].on);
        }
      }
      const auto start = std::chrono::steady_clock::now();
      row.rewirings += net.run_epoch();
      const double ms = ms_since(start);
      row.epoch_ms_mean += ms;
      row.epoch_ms_min = std::min(row.epoch_ms_min, ms);
    }
    row.epoch_ms_mean /= epochs;
    row.evaluated = net.total_evaluations() - evals_mark;
    row.skipped = net.total_skipped_evals() - skips_mark;
    const double total_evals = static_cast<double>(row.evaluated + row.skipped);
    row.dirty_frac =
        total_evals > 0.0 ? static_cast<double>(row.evaluated) / total_evals
                          : 1.0;
    row.dirty_nodes = net.dirty_count();

    if (profile) {
      std::vector<std::string> columns{"n", "variant", "workers"};
      const auto& phase_columns = util::profile_columns();
      columns.insert(columns.end(), phase_columns.begin(),
                     phase_columns.end());
      for (const auto& phase : util::Profiler::instance().report()) {
        std::vector<std::string> cells{std::to_string(n), row.variant,
                                       std::to_string(config.epoch_workers)};
        const auto phase_cells = util::phase_cells(phase);
        cells.insert(cells.end(), phase_cells.begin(), phase_cells.end());
        sink.row("profile", columns, cells);
      }
    }

    // Sampled oracle score: routing cost from a few true-cost sources.
    if (score_sources > 0 && config.metric != overlay::Metric::kBandwidth) {
      const auto true_graph = net.true_cost_graph();
      const auto online = net.online_nodes();
      util::Rng source_rng(config.seed ^ (0x5CA1Eull + n));
      const auto sources = source_rng.sample_without_replacement(
          std::span<const overlay::NodeId>(online),
          std::min<std::size_t>(static_cast<std::size_t>(score_sources),
                                online.size()));
      double total = 0.0;
      std::size_t reachable = 0;
      for (const auto src : sources) {
        const auto tree = graph::dijkstra(true_graph, src);
        for (const auto dst : online) {
          if (dst == src) continue;
          const double d = tree.dist[static_cast<std::size_t>(dst)];
          if (d == graph::kUnreachable) {
            ++row.unreachable;
          } else {
            total += d;
            ++reachable;
          }
        }
      }
      row.mean_cost = reachable > 0 ? total / static_cast<double>(reachable) : 0.0;
    }

    row.substrate_bytes = deployment.substrate()->memory_bytes();
    row.plane_bytes = env.plane_memory_bytes();
    row.probed_pairs = env.probed_pairs();
    row.peak_rss_bytes = util::peak_rss_bytes();
    return row;
  };

  const auto add_row = [&](const FrontierRow& row) {
    std::ostringstream build_ms, mean_ms, min_ms, dirty_frac, speedup, cost,
        rate;
    build_ms << std::fixed << std::setprecision(1) << row.build_ms;
    mean_ms << std::fixed << std::setprecision(1) << row.epoch_ms_mean;
    min_ms << std::fixed << std::setprecision(1) << row.epoch_ms_min;
    dirty_frac << std::fixed << std::setprecision(3) << row.dirty_frac;
    if (row.speedup_vs_full > 0.0) {
      speedup << std::fixed << std::setprecision(3) << row.speedup_vs_full;
    } else {
      speedup << "-";
    }
    cost << std::fixed << std::setprecision(3) << row.mean_cost;
    rate << std::fixed << std::setprecision(4) << row.churn_rate;
    table.add_row({std::to_string(row.n),
                   row.variant,
                   row.underlay,
                   std::to_string(config.epoch_workers),
                   build_ms.str(),
                   mean_ms.str(),
                   min_ms.str(),
                   std::to_string(row.rewirings),
                   std::to_string(row.evaluated),
                   std::to_string(row.skipped),
                   dirty_frac.str(),
                   std::to_string(row.dirty_nodes),
                   speedup.str(),
                   cost.str(),
                   std::to_string(row.unreachable),
                   rate.str(),
                   std::to_string(row.substrate_bytes),
                   std::to_string(row.plane_bytes),
                   std::to_string(row.probed_pairs),
                   std::to_string(row.peak_rss_bytes)});
  };

  for (const std::size_t n : n_list) {
    // One trace per n, shared verbatim by both variants: full vs
    // incremental replay the same joins and leaves.
    std::optional<churn::ChurnTrace> trace;
    if (churn_horizon > 0) {
      churn::ChurnConfig churn_config;
      churn_config.timescale = churn_timescale;
      churn_config.initial_on_fraction = 0.9;
      trace.emplace(n, churn_horizon * epoch_s, config.seed ^ 0xC0FFEEull,
                    churn_config);
    }
    if (incremental && compare_full) {
      const FrontierRow full = run_variant(n, false, trace);
      FrontierRow inc = run_variant(n, true, trace);
      if (full.epoch_ms_mean > 0.0 && inc.epoch_ms_mean > 0.0) {
        inc.speedup_vs_full = full.epoch_ms_mean / inc.epoch_ms_mean;
      }
      add_row(full);
      add_row(inc);
    } else {
      add_row(run_variant(n, incremental, trace));
    }
  }

  // One emission only: JsonLinesSink expands the table into one structured
  // row per n.
  sink.table("scale_frontier", table);
}

}  // namespace egoist::exp
