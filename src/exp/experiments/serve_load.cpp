// serve_load: the concurrent snapshot-serving bench (RouteService).
//
// Deploys one BR overlay at n (procedural underlay by default, §5 scale
// mode) and attaches a host::RouteService. `readers` threads then replay
// route lookups against the service — sources drawn from a small hot pool
// (`sources`, the row-cache working set), destinations drawn per `mix`
// (zipf or uniform over all n ids) — WHILE the host thread keeps running
// churned BR epochs, each of which publishes a fresh snapshot through the
// RCU swap. Per-reader latencies go into util::LatencyHistogram (one per
// thread, merged after join), so the row reports p50/p99/p999 in
// microseconds alongside queries/sec and the service's epoch telemetry
// (swaps, stale serves, row-cache builds, seal violations).
//
// Each entry in the `mix` list gets its own serving window (fresh
// RouteService, fresh reader pool) on the same deployment, so one run
// emits one row per destination mix. The host loop always completes at
// least one epoch per window — swap count > 0 by construction — and then
// keeps going until `duration` wall seconds have elapsed (or `max-epochs`
// epochs ran, whichever is first).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <span>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "churn/churn.hpp"
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"
#include "host/route_service.hpp"
#include "util/latency_histogram.hpp"

namespace egoist::exp {

namespace {

/// Zipf sampler over ranks [0, n): P(rank r) ~ (r + 1)^-s. Destination id
/// == rank; with s ~ 1 a handful of nodes absorb most lookups, the classic
/// hot-content skew.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent) : cdf_(n) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
      cdf_[r] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  overlay::NodeId draw(util::Rng& rng) const {
    const auto it =
        std::upper_bound(cdf_.begin(), cdf_.end(), rng.uniform());
    return static_cast<overlay::NodeId>(
        std::min<std::size_t>(static_cast<std::size_t>(it - cdf_.begin()),
                              cdf_.size() - 1));
  }

 private:
  std::vector<double> cdf_;
};

struct ReaderTally {
  util::LatencyHistogram latency;  ///< nanoseconds per route() call
  std::uint64_t queries = 0;
  std::uint64_t unreachable = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

void run_serve_load(const ParamReader& params, ResultSink& sink) {
  const int n_param = params.get_int("n", 10000);
  if (n_param < 8) throw std::invalid_argument("n must be >= 8");
  const std::size_t n = static_cast<std::size_t>(n_param);
  const int readers = params.get_int("readers", 4);
  if (readers < 1) throw std::invalid_argument("readers must be >= 1");
  const double duration_s = params.get_double("duration", 6.0);
  if (duration_s <= 0.0) throw std::invalid_argument("duration must be > 0");
  const auto mixes = split_csv(params.get_string("mix", "zipf,uniform"));
  if (mixes.empty()) throw std::invalid_argument("empty mix list");
  for (const auto& mix : mixes) {
    if (mix != "zipf" && mix != "uniform") {
      throw std::invalid_argument("mix must be zipf or uniform, got " + mix);
    }
  }
  const double zipf_exponent = params.get_double("zipf-exponent", 0.9);
  const int sources = params.get_int("sources", 8);
  if (sources < 1) throw std::invalid_argument("sources must be >= 1");
  const int max_epochs = params.get_int("max-epochs", 64);
  if (max_epochs < 1) throw std::invalid_argument("max-epochs must be >= 1");
  const int warmup = params.get_int("warmup", 2);
  if (warmup < 0) throw std::invalid_argument("warmup must be >= 0");
  const double epoch_s = params.get_double("epoch-seconds", 60.0);

  overlay::OverlayConfig config;
  config.policy = overlay::parse_policy(params.get_string("policy", "BR"));
  config.metric =
      overlay::parse_metric(params.get_string("metric", "delay(ping)"));
  config.k = static_cast<std::size_t>(params.get_int("k", 10));
  config.seed = params.get_seed("seed", 42);
  config.br_sample = static_cast<std::size_t>(params.get_int("br-sample", 32));
  config.br_landmarks =
      static_cast<std::size_t>(params.get_int("br-landmarks", 64));
  config.epoch_workers = params.get_int("workers", 0);
  config.incremental = params.get_bool("incremental", false);
  if (config.incremental) {
    config.drift_threshold = params.get_double("drift-threshold", 0.05);
  }

  auto env_config = parse_underlay(params);
  // Serving is a scale-regime workload; default to the O(n) substrate.
  if (params.spec().find("underlay") == nullptr) {
    env_config.underlay = net::UnderlayKind::kProcedural;
  }
  env_config.coord_warmup_rounds =
      params.get_int("coord-warmup", env_config.coord_warmup_rounds);

  host::RouteService::Options service_options;
  service_options.max_cached_sources =
      static_cast<std::size_t>(params.get_int("max-cached-sources", 256));
  service_options.verify_seals = params.get_bool("verify-seals", true);

  host::OverlaySpec spec(config);
  spec.epoch_period(epoch_s);
  const double churn_timescale = params.get_double("churn-timescale", 1.0);
  if (params.get_bool("churn", true)) {
    // The trace must cover warmup plus every serving window's worst case.
    churn::ChurnConfig churn_config;
    churn_config.timescale = churn_timescale;
    churn_config.initial_on_fraction = 0.9;
    const double horizon =
        (warmup + static_cast<double>(mixes.size()) * max_epochs) * epoch_s;
    spec.churn(churn::ChurnTrace(n, horizon, config.seed ^ 0xC0FFEEull,
                                 churn_config));
  }

  host::OverlayHost host(n, config.seed, env_config);
  const auto handle = host.deploy(spec);
  if (warmup > 0) host.run_epochs(handle, warmup);

  sink.section(
      "serve load: " + std::string(overlay::to_string(config.policy)) +
          " n=" + std::to_string(n) + " on " +
          net::to_string(env_config.underlay) + " underlay",
      std::to_string(readers) + " reader thread(s) replaying route lookups "
          "against a RouteService (hot pool of " + std::to_string(sources) +
          " sources, " + params.get_string("mix", "zipf,uniform") +
          " destination mix) while churned BR epochs publish snapshots "
          "through the RCU swap. Latencies are per-query wall time in "
          "microseconds; qps is the aggregate reader throughput over the "
          "serving window.");

  const std::vector<std::string> kColumns{
      "n",            "underlay",     "readers",       "sources",
      "mix",          "duration_s",   "epochs",        "swaps",
      "rewirings",    "queries",      "qps",           "p50_us",
      "p99_us",       "p999_us",      "max_us",        "unreachable",
      "stale_served", "rows_built",   "rows_discarded", "uncached_queries",
      "seal_violations", "peak_rss_bytes"};
  util::Table table(kColumns);

  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const std::string& mix = mixes[m];
    const bool zipf = mix == "zipf";
    const ZipfSampler zipf_sampler(zipf ? n : 1, zipf_exponent);

    // Hot source pool: drawn from the currently online set, so the row
    // cache covers the whole pool and queries stay O(1) after the first
    // touch per publication.
    util::Rng pool_rng(config.seed ^ (0x5E47Eull + m));
    const auto online = host.snapshot(handle).online_nodes();
    const auto pool = pool_rng.sample_without_replacement(
        std::span<const overlay::NodeId>(online),
        std::min<std::size_t>(static_cast<std::size_t>(sources),
                              online.size()));

    host::RouteService service(host, handle, service_options);
    const std::uint64_t rewirings_mark =
        host.snapshot(handle).total_rewirings();

    std::atomic<bool> stop{false};
    std::vector<ReaderTally> tallies(static_cast<std::size_t>(readers));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        auto& tally = tallies[static_cast<std::size_t>(r)];
        util::Rng rng(config.seed ^ (m * 1000 + 17 * r + 1));
        const auto n_id = static_cast<std::int64_t>(n);
        while (!stop.load(std::memory_order_relaxed)) {
          const auto src = pool[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(pool.size()) - 1))];
          const auto dst = zipf
                               ? zipf_sampler.draw(rng)
                               : static_cast<overlay::NodeId>(
                                     rng.uniform_int(0, n_id - 1));
          const auto start = std::chrono::steady_clock::now();
          const auto answer = service.route(src, dst);
          const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
          tally.latency.record(static_cast<std::uint64_t>(ns));
          ++tally.queries;
          if (!answer.reachable) ++tally.unreachable;
        }
      });
    }

    // The serving window: epochs churn and publish under the readers. The
    // do-while guarantees at least one swap per window.
    const auto serve_start = std::chrono::steady_clock::now();
    int epochs_run = 0;
    do {
      host.run_epochs(handle, 1);
      ++epochs_run;
    } while (seconds_since(serve_start) < duration_s &&
             epochs_run < max_epochs);
    stop.store(true, std::memory_order_relaxed);
    for (auto& thread : threads) thread.join();
    const double elapsed = seconds_since(serve_start);

    util::LatencyHistogram merged;
    std::uint64_t queries = 0;
    std::uint64_t unreachable = 0;
    for (const auto& tally : tallies) {
      merged.merge(tally.latency);
      queries += tally.queries;
      unreachable += tally.unreachable;
    }
    service.reclaim();
    const auto stats = service.stats();
    const std::uint64_t rewirings =
        host.snapshot(handle).total_rewirings() - rewirings_mark;

    const auto us = [](double nanos) {
      std::ostringstream out;
      out << std::fixed << std::setprecision(2) << nanos / 1000.0;
      return out.str();
    };
    std::ostringstream elapsed_str, qps_str;
    elapsed_str << std::fixed << std::setprecision(2) << elapsed;
    qps_str << std::fixed << std::setprecision(0)
            << static_cast<double>(queries) / elapsed;
    table.add_row({std::to_string(n),
                   net::to_string(env_config.underlay),
                   std::to_string(readers),
                   std::to_string(pool.size()),
                   mix,
                   elapsed_str.str(),
                   std::to_string(epochs_run),
                   std::to_string(stats.swaps),
                   std::to_string(rewirings),
                   std::to_string(queries),
                   qps_str.str(),
                   us(merged.count() ? merged.p50() : 0.0),
                   us(merged.count() ? merged.p99() : 0.0),
                   us(merged.count() ? merged.p999() : 0.0),
                   us(static_cast<double>(merged.max_recorded())),
                   std::to_string(unreachable),
                   std::to_string(stats.stale_served),
                   std::to_string(stats.rows_built),
                   std::to_string(stats.rows_discarded),
                   std::to_string(stats.uncached_queries),
                   std::to_string(stats.seal_violations),
                   std::to_string(util::peak_rss_bytes())});
  }

  sink.table("serve_load", table);
}

}  // namespace egoist::exp
