// serve_load: the concurrent snapshot-serving bench (RouteService) — the
// IN-PROCESS leg of the serving stack (serve_remote is the socket leg).
//
// Deploys one BR overlay at n (procedural underlay by default, §5 scale
// mode) and attaches a host::RouteService. `readers` threads then replay
// route lookups against the service — sources drawn from a small hot pool
// (`sources`, the row-cache working set), destinations drawn per `mix`
// (zipf or uniform over all n ids) — WHILE the host thread keeps running
// churned BR epochs, each of which publishes a fresh snapshot through the
// RCU swap. Per-reader latencies go into util::LatencyHistogram (one per
// thread, merged after join), so the row reports p50/p99/p999 in
// microseconds alongside queries/sec and the service's epoch telemetry
// (swaps, stale serves, row-cache builds, seal violations).
//
// Each entry in the `mix` list gets its own serving window (fresh
// RouteService, fresh reader pool) on the same deployment, so one run
// emits one row per destination mix. The host loop always completes at
// least one epoch per window — swap count > 0 by construction — and then
// keeps going until `duration` wall seconds have elapsed (or `max-epochs`
// epochs ran, whichever is first). The deployment builder and window loop
// live in exp/serve_workload.{hpp,cpp}, shared with serve_remote so the
// two legs measure exactly the same workload.
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"
#include "exp/serve_workload.hpp"
#include "host/route_service.hpp"
#include "util/stats.hpp"

namespace egoist::exp {

void run_serve_load(const ParamReader& params, ResultSink& sink) {
  const int readers = params.get_int("readers", 4);
  if (readers < 1) throw std::invalid_argument("readers must be >= 1");
  const double duration_s = params.get_double("duration", 6.0);
  if (duration_s <= 0.0) throw std::invalid_argument("duration must be > 0");
  const auto mixes = split_csv(params.get_string("mix", "zipf,uniform"));
  if (mixes.empty()) throw std::invalid_argument("empty mix list");
  for (const auto& mix : mixes) {
    if (mix != "zipf" && mix != "uniform") {
      throw std::invalid_argument("mix must be zipf or uniform, got " + mix);
    }
  }
  const double zipf_exponent = params.get_double("zipf-exponent", 0.9);
  const int sources = params.get_int("sources", 8);
  if (sources < 1) throw std::invalid_argument("sources must be >= 1");
  const int max_epochs = params.get_int("max-epochs", 64);
  if (max_epochs < 1) throw std::invalid_argument("max-epochs must be >= 1");

  const auto deployment = read_serve_deployment(
      params, static_cast<double>(mixes.size()) * max_epochs);
  const std::size_t n = deployment.n;
  auto serving = deploy_serving_overlay(deployment);
  host::OverlayHost& host = *serving.host;
  const auto handle = serving.handle;

  sink.section(
      "serve load: " +
          std::string(overlay::to_string(deployment.config.policy)) +
          " n=" + std::to_string(n) + " on " +
          net::to_string(deployment.env.underlay) + " underlay",
      std::to_string(readers) + " reader thread(s) replaying route lookups "
          "against a RouteService (hot pool of " + std::to_string(sources) +
          " sources, " + params.get_string("mix", "zipf,uniform") +
          " destination mix) while churned BR epochs publish snapshots "
          "through the RCU swap. Latencies are per-query wall time in "
          "microseconds; qps is the aggregate reader throughput over the "
          "serving window.");

  const std::vector<std::string> kColumns{
      "n",            "underlay",     "readers",       "sources",
      "mix",          "duration_s",   "epochs",        "swaps",
      "rewirings",    "queries",      "qps",           "p50_us",
      "p99_us",       "p999_us",      "max_us",        "unreachable",
      "stale_served", "rows_built",   "rows_discarded", "uncached_queries",
      "seal_violations", "peak_rss_bytes"};
  util::Table table(kColumns);

  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const std::string& mix = mixes[m];
    const auto pool =
        hot_source_pool(host.snapshot(handle), deployment.config.seed, m,
                        static_cast<std::size_t>(sources));

    host::RouteService service(host, handle, deployment.service_options);
    const std::uint64_t rewirings_mark =
        host.snapshot(handle).total_rewirings();

    const auto window = run_inproc_window(
        host, handle, service, pool, mix == "zipf", zipf_exponent, n, readers,
        duration_s, max_epochs, deployment.config.seed, m);

    service.reclaim();
    const auto stats = service.stats();
    const std::uint64_t rewirings =
        host.snapshot(handle).total_rewirings() - rewirings_mark;

    const auto us = [](double nanos) {
      std::ostringstream out;
      out << std::fixed << std::setprecision(2) << nanos / 1000.0;
      return out.str();
    };
    std::ostringstream elapsed_str, qps_str;
    elapsed_str << std::fixed << std::setprecision(2) << window.elapsed_s;
    qps_str << std::fixed << std::setprecision(0)
            << static_cast<double>(window.queries) / window.elapsed_s;
    table.add_row({std::to_string(n),
                   net::to_string(deployment.env.underlay),
                   std::to_string(readers),
                   std::to_string(pool.size()),
                   mix,
                   elapsed_str.str(),
                   std::to_string(window.epochs),
                   std::to_string(stats.swaps),
                   std::to_string(rewirings),
                   std::to_string(window.queries),
                   qps_str.str(),
                   us(window.latency.count() ? window.latency.p50() : 0.0),
                   us(window.latency.count() ? window.latency.p99() : 0.0),
                   us(window.latency.count() ? window.latency.p999() : 0.0),
                   us(static_cast<double>(window.latency.max_recorded())),
                   std::to_string(window.unreachable),
                   std::to_string(stats.stale_served),
                   std::to_string(stats.rows_built),
                   std::to_string(stats.rows_discarded),
                   std::to_string(stats.uncached_queries),
                   std::to_string(stats.seal_violations),
                   std::to_string(util::peak_rss_bytes())});
  }

  sink.table("serve_load", table);
}

}  // namespace egoist::exp
