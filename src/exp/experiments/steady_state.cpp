// steady_state: the generic sweep cell — one policy, one metric, one
// (n, k, seed) point. Deploys a single overlay on a fresh Environment,
// warms it up, samples the metric-appropriate score over the tail epochs
// and reports one row. Grids like "sweep.n = 50,100 / sweep.policy =
// BR,HybridBR" expand into independent cells of exactly this experiment,
// which is what the CI smoke sweep and the lockstep determinism test run.
#include <stdexcept>

#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

void run_steady_state(const ParamReader& params, ResultSink& sink) {
  overlay::OverlayConfig config;
  const auto n = static_cast<std::size_t>(params.get_int("n", 50));
  config.policy = overlay::parse_policy(params.get_string("policy", "BR"));
  config.metric = overlay::parse_metric(params.get_string("metric", "delay(ping)"));
  config.k = static_cast<std::size_t>(params.get_int("k", 5));
  config.seed = params.get_seed("seed", 42);
  config.epsilon = params.get_double("epsilon", config.epsilon);
  config.donated_links = static_cast<std::size_t>(
      params.get_int("donated-links", static_cast<int>(config.donated_links)));
  config.backbone =
      overlay::parse_backbone(params.get_string("backbone", "cycles"));
  config.path_backend =
      overlay::parse_path_backend(params.get_string("backend", "engine"));
  config.path_workers = params.get_int("path-workers", config.path_workers);
  config.preference_zipf_exponent =
      params.get_double("zipf", config.preference_zipf_exponent);
  if (config.policy == overlay::Policy::kFullMesh) config.k = n - 1;
  // Substrate backend (dense default keeps outputs byte-identical) and the
  // optional §5 scale-mode sampling knobs.
  const auto env_config = parse_underlay(params);
  config.br_sample =
      static_cast<std::size_t>(params.get_int("br-sample", 0));
  config.br_landmarks = static_cast<std::size_t>(
      params.get_int("br-landmarks", static_cast<int>(config.br_landmarks)));

  RunOptions options;
  options.warmup_epochs = params.get_int("warmup", 20);
  options.sample_epochs = params.get_int("sample", 10);

  // Score with the metric's natural quantity; "score" overrides (cost /
  // bandwidth / efficiency) for cross-metric comparisons.
  const std::string score_name = params.get_string(
      "score", config.metric == overlay::Metric::kBandwidth ? "bandwidth"
                                                            : "cost");
  Score score;
  if (score_name == "cost") {
    score = Score::kRoutingCost;
  } else if (score_name == "bandwidth") {
    score = Score::kBandwidth;
  } else if (score_name == "efficiency") {
    score = Score::kEfficiency;
  } else {
    throw std::invalid_argument("unknown score '" + score_name +
                                "' (want cost, bandwidth, efficiency)");
  }

  const auto result =
      run_single(n, config.seed, env_config, config, score, options);

  sink.section(
      "steady state: " + std::string(overlay::to_string(config.policy)) +
          " on " + overlay::to_string(config.metric),
      "Mean per-node " + score_name + " (95% CI) over " +
          std::to_string(options.sample_epochs) + " tail epochs after " +
          std::to_string(options.warmup_epochs) + " warmup epochs.");
  util::Table table({"policy", "metric", "n", "k", "mean", "ci95",
                     "re-wirings/epoch"});
  table.add_row({overlay::to_string(config.policy),
                 overlay::to_string(config.metric), std::to_string(n),
                 std::to_string(config.k),
                 util::Table::format(result.summary.mean, 4),
                 util::Table::format(result.summary.ci95, 4),
                 util::Table::format(result.rewirings_per_epoch, 2)});
  sink.table("steady_state", table);
}

}  // namespace egoist::exp
