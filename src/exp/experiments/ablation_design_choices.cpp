// Ablation study for the design choices §3.3-§3.4 argues for:
//
//  (a) Backbone construction: EGOIST's donated ring cycles vs an MST mesh
//      (Young et al. style) — efficiency under churn and splice cost
//      (backbone links rebuilt per membership event).
//  (b) Re-wiring mode: delayed (epoch) vs immediate repair — efficiency
//      under churn vs extra evaluations.
//  (c) Audits: free-rider impact with and without coordinate cross-checks.
#include "exp/churn_replay.hpp"
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

namespace {

ChurnReplayResult run_churny(const CommonArgs& args,
                             overlay::OverlayConfig config, double mean_on_s,
                             int epochs) {
  churn::ChurnConfig churn_config;
  churn_config.mean_on_s = mean_on_s;
  churn_config.mean_off_s = mean_on_s / 3.0;
  churn_config.initial_on_fraction = 0.75;
  churn::ChurnTrace trace(args.n, epochs * 60.0, args.seed ^ 0xAB1u,
                          churn_config);
  host::OverlayHost host(args.n, args.seed);
  const auto overlay = host.deploy(host::OverlaySpec(config)
                                       .epoch_period(60.0)
                                       .staggered(args.seed ^ 0xAB2u)
                                       .churn(std::move(trace)));
  ChurnReplayOptions replay;
  replay.epochs = epochs;
  replay.warmup_epochs = 5;
  return replay_churn(host, overlay, replay);
}

}  // namespace

void run_ablation_design_choices(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  const int epochs = params.get_int("epochs", 25);

  overlay::OverlayConfig base;
  base.k = 5;
  base.seed = args.seed;

  // --- (a) Backbone construction under churn ---
  sink.section(
      "Ablation (a): HybridBR backbone — ring cycles vs MST mesh",
      "Mean efficiency under two churn intensities; cycles splice locally, "
      "the MST is a centralized rebuild per membership event (§3.3).");
  {
    util::Table table({"churn mean-ON (s)", "cycles eff", "mst eff"});
    for (double mean_on : {2000.0, 200.0}) {
      auto cycles = base;
      cycles.policy = overlay::Policy::kHybridBR;
      cycles.backbone = overlay::Backbone::kCycles;
      auto mst = cycles;
      mst.backbone = overlay::Backbone::kMst;
      table.add_numeric_row(
          {mean_on, run_churny(args, cycles, mean_on, epochs).mean_efficiency,
           run_churny(args, mst, mean_on, epochs).mean_efficiency},
          4);
    }
    sink.table("backbone", table);
  }

  // --- (b) Re-wiring mode ---
  sink.text("\n");
  sink.section(
      "Ablation (b): delayed vs immediate re-wiring (plain BR)",
      "Immediate repair buys efficiency under churn at the price of more "
      "re-wirings (probing/computation).");
  {
    util::Table table(
        {"churn mean-ON (s)", "delayed eff", "immediate eff",
         "delayed rewires", "immediate rewires"});
    for (double mean_on : {2000.0, 200.0}) {
      auto delayed = base;
      delayed.policy = overlay::Policy::kBestResponse;
      delayed.rewire_mode = overlay::RewireMode::kDelayed;
      auto immediate = delayed;
      immediate.rewire_mode = overlay::RewireMode::kImmediate;
      const auto d = run_churny(args, delayed, mean_on, epochs);
      const auto i = run_churny(args, immediate, mean_on, epochs);
      table.add_numeric_row({mean_on, d.mean_efficiency, i.mean_efficiency,
                             static_cast<double>(d.total_rewirings),
                             static_cast<double>(i.total_rewirings)},
                            4);
    }
    sink.table("rewire_mode", table);
  }

  // --- (c) Audits vs a flagrant cheater ---
  sink.text("\n");
  sink.section(
      "Ablation (c): coordinate audits vs a 4x-inflating free rider",
      "Mean routing cost with the cheater, without and with audits "
      "(lower is better; audits replace flagged announcements with the "
      "coordinate estimate, §3.4).");
  {
    util::Table table({"audits", "mean cost (ms)"});
    for (bool audits : {false, true}) {
      auto config = base;
      config.policy = overlay::Policy::kBestResponse;
      config.cheaters = {3};
      config.cheat_factor = 4.0;
      config.enable_audits = audits;
      const auto result = run_single(args.n, args.seed, config,
                                     Score::kRoutingCost, args.run_options());
      table.add_row({audits ? "on" : "off",
                     util::Table::format(result.summary.mean, 2)});
    }
    sink.table("audits", table);
  }
}

}  // namespace egoist::exp
