// Fig 10: available-bandwidth gain from multipath transfer.
//
// Over a bandwidth-metric BR overlay (per k), every source-target pair is
// evaluated two ways: (a) k parallel sessions through the source's
// first-hop neighbors vs the single IP-path session, and (b) the
// theoretical bound when every peer allows redirection (max-flow over the
// overlay, capped by the source's aggregate peering capacity) vs the IP
// path. Per-session shaping at AS peering points is what multipath evades.
#include "apps/multipath.hpp"
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

void run_fig10_multipath_bw(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  const double session_cap = params.get_double("session-cap", 2.0);
  const int min_providers = params.get_int("min-providers", 2);
  const int max_providers = params.get_int("max-providers", 5);

  sink.section(
      "Fig 10: available bandwidth gain, n=" + std::to_string(args.n),
      "Mean gain over all source-target pairs (95% CI) vs k: parallel "
      "first-hop sessions and the all-peers-redirect max-flow bound, both "
      "normalized by the single IP-path rate.");

  const net::PeeringModel peering(args.n, args.seed ^ 0xA5u, min_providers,
                                  max_providers, session_cap);

  util::Table table({"k", "parallel gain", "ci95", "max-flow gain", "ci95"});
  for (int k = args.k_min; k <= args.k_max; ++k) {
    overlay::OverlayConfig config;
    config.policy = overlay::Policy::kBestResponse;
    config.metric = overlay::Metric::kBandwidth;
    config.k = static_cast<std::size_t>(k);
    config.seed = args.seed ^ static_cast<std::uint64_t>(k);
    host::OverlayHost deployment(args.n, args.seed);
    const auto overlay = deployment.deploy(host::OverlaySpec(config));
    deployment.run_epochs(overlay, args.warmup);
    const auto snapshot = deployment.snapshot(overlay);
    const auto& overlay_bw = snapshot.true_bandwidth_graph();
    const auto& bw = deployment.environment(overlay).bandwidth();

    std::vector<double> parallel_gains, maxflow_gains;
    for (int src = 0; src < static_cast<int>(args.n); ++src) {
      for (int dst = 0; dst < static_cast<int>(args.n); ++dst) {
        if (src == dst) continue;
        const double ip = apps::ip_path_rate(bw, peering, src, dst);
        if (ip <= 0.0) continue;
        const auto parallel =
            apps::parallel_transfer(overlay_bw, bw, peering, src, dst);
        parallel_gains.push_back(parallel.total_rate / ip);
        maxflow_gains.push_back(apps::maxflow_rate(overlay_bw, peering, src, dst) /
                                ip);
      }
    }
    const auto p = util::Summary::of(parallel_gains);
    const auto m = util::Summary::of(maxflow_gains);
    table.add_numeric_row(
        {static_cast<double>(k), p.mean, p.ci95, m.mean, m.ci95}, 3);
  }
  sink.table("gain_vs_k", table);
}

}  // namespace egoist::exp
