// serve_remote: the out-of-process serving bench — spawns egoistd and
// hammers it over loopback TCP and a Unix-domain socket.
//
// One daemon process per `loops` value is forked (the egoistd binary next
// to this one, or knob `egoistd-bin`), configured with exactly the
// deployment knobs this scenario carries — the deployment builder is
// shared (exp/serve_workload.hpp), so each daemon's overlay is
// bit-identical to the local comparison overlay this process deploys.
// After a daemon's "EGOISTD READY" handshake, each (transport × mix ×
// mode) triple gets one serving window: `readers` client threads, each
// with its own rpc::Client, replay the serve_load workload — hot source
// pool, zipf or uniform destinations — while the daemon keeps churning
// epochs on its side of the socket. Mode `pipeline` posts `pipeline-depth`
// single ROUTE frames per burst; mode `batch` (knob `batch`) ships the
// same depth as ONE BATCH_ROUTE frame — one header decode and one send
// per direction instead of depth of each. Per-request latency is stamped
// at flush() and measured at each take_*() (the honest pipelined number:
// full round trip including queueing behind the batch).
//
// The per_loop_qps column splits a window's answer rate across the
// daemon's event loops (per-loop frames_out deltas from the v2 STATS
// breakdown, scaled by depth for batch windows) — the direct read on
// whether SO_REUSEPORT / the UDS round-robin actually spread the load.
//
// After the remote windows, the same workload runs in-process against the
// local overlay (`inproc-compare`) — serve_load's exact inner loop — so
// every mix gets socket rows and an in-process row side by side: the cost
// of the wire. Each daemon is then SIGTERMed and must exit 0 after
// proving RouteService::drain — the "daemon" table carries one row per
// daemon (loops, host_cpus, exit code, drain flag, transport counters),
// which CI gates on (qps floor, loop scaling, decode_errors == 0,
// seal_violations == 0, clean exit).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"
#include "exp/serve_workload.hpp"
#include "host/route_service.hpp"
#include "rpc/client.hpp"
#include "util/stats.hpp"

namespace egoist::exp {

namespace {

/// The spawned daemon: pid plus the read end of its stdout.
struct Daemon {
  pid_t pid = -1;
  int out_fd = -1;
  int tcp_port = -1;
  std::string uds_path;
  int loops = 1;
};

std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

Daemon spawn_daemon(const std::string& binary,
                    const std::vector<std::string>& args) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("pipe failed: " + std::string(strerror(errno)));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("fork failed: " + std::string(strerror(errno)));
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    // exec failed; the parent sees EOF before READY and reports it.
    ::perror("execv egoistd");
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  // Nonblocking read end: read_line polls with a deadline instead of
  // hanging forever on a silent daemon.
  ::fcntl(pipe_fds[0], F_SETFL,
          ::fcntl(pipe_fds[0], F_GETFL, 0) | O_NONBLOCK);
  Daemon daemon;
  daemon.pid = pid;
  daemon.out_fd = pipe_fds[0];
  return daemon;
}

void kill_daemon(Daemon& daemon) {
  if (daemon.pid < 0) return;
  ::kill(daemon.pid, SIGKILL);
  ::waitpid(daemon.pid, nullptr, 0);
  ::close(daemon.out_fd);
  daemon.pid = -1;
}

/// Reads one '\n'-terminated line from the daemon's stdout, waiting up to
/// the deadline. Returns false on EOF (daemon died).
bool read_line(int fd, std::string& line,
               std::chrono::steady_clock::time_point deadline) {
  line.clear();
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n == 1) {
      if (c == '\n') return true;
      line.push_back(c);
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        throw std::runtime_error("timed out waiting for egoistd output");
      }
      struct pollfd pfd = {fd, POLLIN, 0};
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                          left.count(), 1000)));
      continue;
    }
    throw std::runtime_error("reading egoistd output: " +
                             std::string(strerror(errno)));
  }
}

/// "key=value" token scan over a daemon status line.
std::string line_field(const std::string& line, const std::string& key) {
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token.size() > key.size() + 1 &&
        token.compare(0, key.size(), key) == 0 && token[key.size()] == '=') {
      return token.substr(key.size() + 1);
    }
  }
  return "";
}

/// One remote serving window: `readers` threads of ROUTE lookups — depth
/// pipelined single frames per burst, or one BATCH_ROUTE frame carrying
/// the depth when batch_mode is set.
WindowResult run_remote_window(const std::string& transport,
                               const std::string& host, int tcp_port,
                               const std::string& uds_path,
                               std::span<const overlay::NodeId> pool,
                               bool zipf, double zipf_exponent, std::size_t n,
                               int readers, int depth, bool batch_mode,
                               double duration_s, std::uint64_t seed,
                               std::size_t window) {
  const ZipfSampler zipf_sampler(zipf ? n : 1, zipf_exponent);

  struct ClientTally {
    util::LatencyHistogram latency;
    std::uint64_t queries = 0;
    std::uint64_t unreachable = 0;
    std::string error;
  };

  std::atomic<bool> stop{false};
  std::vector<ClientTally> tallies(static_cast<std::size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      auto& tally = tallies[static_cast<std::size_t>(r)];
      try {
        rpc::Client client =
            transport == "uds" ? rpc::Client::connect_uds(uds_path)
                               : rpc::Client::connect_tcp(host, tcp_port);
        util::Rng rng(seed ^ (window * 1000 +
                              17 * static_cast<std::size_t>(r) + 1));
        const auto n_id = static_cast<std::int64_t>(n);
        const auto draw_src = [&] {
          return pool[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(pool.size()) - 1))];
        };
        const auto draw_dst = [&] {
          return zipf ? zipf_sampler.draw(rng)
                      : static_cast<overlay::NodeId>(
                            rng.uniform_int(0, n_id - 1));
        };
        std::vector<wire::BatchRoutePair> pairs;
        while (!stop.load(std::memory_order_relaxed)) {
          if (batch_mode) {
            pairs.clear();
            for (int i = 0; i < depth; ++i) {
              pairs.push_back({draw_src(), draw_dst()});
            }
            client.post_route_batch(pairs);
            client.flush();
            const auto sent = std::chrono::steady_clock::now();
            const auto resp = client.take_route_batch();
            // One frame answered the whole burst; every lookup in it paid
            // the same round trip.
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - sent)
                    .count();
            for (const auto& entry : resp.entries) {
              tally.latency.record(static_cast<std::uint64_t>(ns));
              ++tally.queries;
              if (!entry.reachable) ++tally.unreachable;
            }
          } else {
            for (int i = 0; i < depth; ++i) {
              client.post_route(draw_src(), draw_dst());
            }
            client.flush();
            // Every request in the batch left the socket at flush time,
            // so each take measures its full pipelined round trip.
            const auto sent = std::chrono::steady_clock::now();
            for (int i = 0; i < depth; ++i) {
              const auto resp = client.take_route();
              const auto ns =
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - sent)
                      .count();
              tally.latency.record(static_cast<std::uint64_t>(ns));
              ++tally.queries;
              if (!resp.reachable) ++tally.unreachable;
            }
          }
        }
      } catch (const std::exception& e) {
        tally.error = e.what();
        stop.store(true, std::memory_order_relaxed);
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
                 .count() < duration_s &&
         !stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();

  WindowResult result;
  result.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  for (const auto& tally : tallies) {
    if (!tally.error.empty()) {
      throw std::runtime_error("remote window (" + transport +
                               "): " + tally.error);
    }
    result.latency.merge(tally.latency);
    result.queries += tally.queries;
    result.unreachable += tally.unreachable;
  }
  return result;
}

std::string format_us(double nanos) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << nanos / 1000.0;
  return out.str();
}

std::string format_fixed(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

/// "qps0/qps1/..." — the window's answer rate split across the daemon's
/// loops, from the v2 per-loop frames_out deltas. Batch windows answer
/// `depth` lookups per frame, hence the scale factor. Approximate by a
/// couple of frames (the control client's own STATS traffic lands on one
/// loop) — telemetry, not an invariant.
std::string per_loop_qps_column(const wire::StatsResponse& before,
                                const wire::StatsResponse& after,
                                std::uint64_t per_frame, double elapsed_s) {
  if (after.per_loop.empty() ||
      after.per_loop.size() != before.per_loop.size() || elapsed_s <= 0.0) {
    return "-";
  }
  std::string out;
  for (std::size_t i = 0; i < after.per_loop.size(); ++i) {
    const std::uint64_t frames =
        after.per_loop[i].frames_out - before.per_loop[i].frames_out;
    if (i > 0) out += "/";
    out += format_fixed(
        static_cast<double>(frames * per_frame) / elapsed_s, 0);
  }
  return out;
}

}  // namespace

void run_serve_remote(const ParamReader& params, ResultSink& sink) {
  const int readers = params.get_int("readers", 4);
  if (readers < 1) throw std::invalid_argument("readers must be >= 1");
  const double duration_s = params.get_double("duration", 2.0);
  if (duration_s <= 0.0) throw std::invalid_argument("duration must be > 0");
  const auto mixes = split_csv(params.get_string("mix", "zipf,uniform"));
  for (const auto& mix : mixes) {
    if (mix != "zipf" && mix != "uniform") {
      throw std::invalid_argument("mix must be zipf or uniform, got " + mix);
    }
  }
  const auto transports = split_csv(params.get_string("transports", "uds,tcp"));
  for (const auto& transport : transports) {
    if (transport != "uds" && transport != "tcp") {
      throw std::invalid_argument("transports must be uds or tcp, got " +
                                  transport);
    }
  }
  if (mixes.empty() || transports.empty()) {
    throw std::invalid_argument("empty mix or transports list");
  }
  std::vector<int> loops_list;
  for (const auto& text : split_csv(params.get_string("loops", "1"))) {
    int value = 0;
    try {
      value = std::stoi(text);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad loops value: " + text);
    }
    if (value < 0 || value > 64) {
      throw std::invalid_argument("loops must be in [0, 64], got " + text);
    }
    loops_list.push_back(value);
  }
  if (loops_list.empty()) throw std::invalid_argument("empty loops list");
  const bool batch = params.get_bool("batch", true);
  std::vector<std::string> modes{"pipeline"};
  if (batch) modes.push_back("batch");
  const double zipf_exponent = params.get_double("zipf-exponent", 0.9);
  const int sources = params.get_int("sources", 8);
  if (sources < 1) throw std::invalid_argument("sources must be >= 1");
  const int max_epochs = params.get_int("max-epochs", 64);
  if (max_epochs < 1) throw std::invalid_argument("max-epochs must be >= 1");
  const int depth = params.get_int("pipeline-depth", 16);
  if (depth < 1) throw std::invalid_argument("pipeline-depth must be >= 1");
  const bool inproc_compare = params.get_bool("inproc-compare", true);
  const double ready_timeout_s = params.get_double("ready-timeout", 300.0);
  std::string egoistd_bin = params.get_string("egoistd-bin", "");
  if (egoistd_bin.empty()) {
    // Beside this binary (the bench layout), else the sibling bench/
    // directory (in-process callers like the registry smoke test).
    egoistd_bin = self_dir() + "/egoistd";
    if (::access(egoistd_bin.c_str(), X_OK) != 0) {
      const auto sibling = self_dir() + "/../bench/egoistd";
      if (::access(sibling.c_str(), X_OK) == 0) egoistd_bin = sibling;
    }
  }

  // Each daemon keeps churning across every one of its remote windows, so
  // its churn trace must cover the worst case; the local comparison
  // overlay runs at most one window per mix on top.
  const int windows_per_daemon =
      static_cast<int>(transports.size() * mixes.size() * modes.size());
  const int inproc_windows =
      static_cast<int>(inproc_compare ? mixes.size() : 0);
  const auto deployment = read_serve_deployment(
      params,
      static_cast<double>(windows_per_daemon + inproc_windows) * max_epochs);
  const std::size_t n = deployment.n;

  // Daemon args: listeners + epoch bound + the forwarded deployment
  // knobs; --loops is per daemon, appended at spawn.
  std::vector<std::string> base_args{
      "--listen", "127.0.0.1:0", "--max-epochs",
      std::to_string(windows_per_daemon * max_epochs)};
  for (const char* key : serve_deployment_keys()) {
    if (const auto* value = params.spec().find(key)) {
      base_args.push_back("--" + std::string(key) + "=" + *value);
    }
  }

  // Spawn every daemon first (fork while this process is still small, and
  // the warmups overlap), then deploy the local comparison overlay while
  // they build theirs.
  std::vector<Daemon> daemons;
  ServingOverlay serving;
  try {
    for (std::size_t d = 0; d < loops_list.size(); ++d) {
      const std::string uds_path = "/tmp/egoistd-" +
                                   std::to_string(::getpid()) + "-l" +
                                   std::to_string(loops_list[d]) + ".sock";
      auto args = base_args;
      args.push_back("--uds");
      args.push_back(uds_path);
      args.push_back("--loops");
      args.push_back(std::to_string(loops_list[d]));
      daemons.push_back(spawn_daemon(egoistd_bin, args));
    }
    serving = deploy_serving_overlay(deployment);
  } catch (...) {
    for (auto& daemon : daemons) kill_daemon(daemon);
    throw;
  }

  host::OverlayHost& local_host = *serving.host;
  const auto handle = serving.handle;

  sink.section(
      "serve remote: egoistd n=" + std::to_string(n) + " over " +
          params.get_string("transports", "uds,tcp") + ", loops " +
          params.get_string("loops", "1"),
      std::to_string(readers) + " client thread(s), depth " +
          std::to_string(depth) + ", hammer one spawned egoistd daemon per "
          "loops value with the serve_load workload (hot pool of " +
          std::to_string(sources) + " sources, " +
          params.get_string("mix", "zipf,uniform") + " destination mix) "
          "while it churns epochs behind the socket; mode pipeline posts "
          "depth single ROUTE frames per burst, mode batch ships the same "
          "depth as one BATCH_ROUTE frame. Latency is the full round trip "
          "in microseconds; per_loop_qps splits the answer rate across the "
          "daemon's event loops. The inproc rows replay the identical "
          "workload against an in-process RouteService on a bit-identical "
          "local overlay — the cost of the wire.");

  util::Table table({"transport", "mix", "loops", "mode", "n", "clients",
                     "depth", "duration_s", "epochs", "queries", "qps",
                     "per_loop_qps", "p50_us", "p99_us", "p999_us", "max_us",
                     "unreachable", "decode_errors", "error_responses",
                     "seal_violations"});

  const auto add_row = [&](const std::string& transport,
                           const std::string& mix, const std::string& loops,
                           const std::string& mode, int row_depth,
                           const WindowResult& window,
                           const std::string& per_loop_qps,
                           std::uint64_t epochs, std::uint64_t decode_errors,
                           std::uint64_t error_responses,
                           std::uint64_t seal_violations) {
    table.add_row(
        {transport, mix, loops, mode, std::to_string(n),
         std::to_string(readers), std::to_string(row_depth),
         format_fixed(window.elapsed_s, 2), std::to_string(epochs),
         std::to_string(window.queries),
         format_fixed(static_cast<double>(window.queries) / window.elapsed_s,
                      0),
         per_loop_qps,
         format_us(window.latency.count() ? window.latency.p50() : 0.0),
         format_us(window.latency.count() ? window.latency.p99() : 0.0),
         format_us(window.latency.count() ? window.latency.p999() : 0.0),
         format_us(static_cast<double>(window.latency.max_recorded())),
         std::to_string(window.unreachable), std::to_string(decode_errors),
         std::to_string(error_responses), std::to_string(seal_violations)});
  };

  util::Table daemon_table(
      {"loops", "host_cpus", "exit_code", "drained", "epochs",
       "connections_accepted", "frames_in", "frames_out", "batches",
       "bytes_in", "bytes_out", "decode_errors", "error_responses",
       "idle_closed", "seal_violations"});
  const unsigned host_cpus = std::thread::hardware_concurrency();

  std::size_t window_index = 0;
  try {
    for (auto& daemon : daemons) {
      // READY handshake: the daemon's overlay is warmed and listeners live.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(ready_timeout_s));
      std::string line;
      for (;;) {
        if (!read_line(daemon.out_fd, line, deadline)) {
          throw std::runtime_error("egoistd exited before READY (" +
                                   egoistd_bin + ")");
        }
        if (line.rfind("EGOISTD READY", 0) == 0) break;
      }
      daemon.tcp_port = std::stoi(line_field(line, "tcp"));
      daemon.uds_path = line_field(line, "uds");
      daemon.loops = std::stoi(line_field(line, "loops"));
      if (line_field(line, "n") != std::to_string(n)) {
        throw std::runtime_error("egoistd deployed a different n: " + line);
      }
      const std::string loops_text = std::to_string(daemon.loops);

      // Control client for the daemon's counters (UDS when available).
      rpc::Client control =
          !daemon.uds_path.empty() && daemon.uds_path != "-"
              ? rpc::Client::connect_uds(daemon.uds_path)
              : rpc::Client::connect_tcp("127.0.0.1", daemon.tcp_port);

      for (const auto& transport : transports) {
        for (const auto& mix : mixes) {
          for (const auto& mode : modes) {
            const auto pool =
                hot_source_pool(local_host.snapshot(handle),
                                deployment.config.seed, window_index,
                                static_cast<std::size_t>(sources));
            const bool batch_mode = mode == "batch";
            const auto before = control.stats();
            const auto window = run_remote_window(
                transport, "127.0.0.1", daemon.tcp_port, daemon.uds_path,
                pool, mix == "zipf", zipf_exponent, n, readers, depth,
                batch_mode, duration_s, deployment.config.seed,
                window_index);
            const auto after = control.stats();
            add_row(transport, mix, loops_text, mode, depth, window,
                    per_loop_qps_column(
                        before, after,
                        batch_mode ? static_cast<std::uint64_t>(depth) : 1,
                        window.elapsed_s),
                    after.publish_seq - before.publish_seq,
                    after.decode_errors - before.decode_errors,
                    after.error_responses - before.error_responses,
                    after.seal_violations);
            ++window_index;
          }
        }
      }
      const auto final_stats = control.stats();

      // Graceful shutdown: SIGTERM, then the EXIT line and exit status.
      ::kill(daemon.pid, SIGTERM);
      std::string exit_line;
      {
        const auto exit_deadline = std::chrono::steady_clock::now() +
                                   std::chrono::seconds(60);
        std::string exit_scan;
        try {
          while (read_line(daemon.out_fd, exit_scan, exit_deadline)) {
            if (exit_scan.rfind("EGOISTD EXIT", 0) == 0) {
              exit_line = exit_scan;
            }
          }
        } catch (const std::exception&) {
          // Timeout reading EXIT: fall through to waitpid, report status.
        }
      }
      ::close(daemon.out_fd);
      int status = 0;
      ::waitpid(daemon.pid, &status, 0);
      const int exit_code =
          WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
      daemon.pid = -1;

      const auto exit_field = [&](const std::string& key) {
        const auto value = line_field(exit_line, key);
        return value.empty() ? std::string("-1") : value;  // line missing
      };
      daemon_table.add_row(
          {loops_text, std::to_string(host_cpus), std::to_string(exit_code),
           exit_field("drained"), exit_field("epochs"),
           std::to_string(final_stats.connections_accepted),
           std::to_string(final_stats.frames_in),
           std::to_string(final_stats.frames_out),
           std::to_string(final_stats.batches),
           std::to_string(final_stats.bytes_in),
           std::to_string(final_stats.bytes_out),
           std::to_string(final_stats.decode_errors),
           std::to_string(final_stats.error_responses),
           std::to_string(final_stats.idle_closed),
           std::to_string(final_stats.seal_violations)});
    }
  } catch (...) {
    for (auto& daemon : daemons) kill_daemon(daemon);
    throw;
  }

  // The in-process comparison leg: serve_load's exact inner loop on the
  // bit-identical local overlay.
  if (inproc_compare) {
    for (const auto& mix : mixes) {
      const auto pool =
          hot_source_pool(local_host.snapshot(handle), deployment.config.seed,
                          window_index, static_cast<std::size_t>(sources));
      host::RouteService service(local_host, handle,
                                 deployment.service_options);
      const auto window = run_inproc_window(
          local_host, handle, service, pool, mix == "zipf", zipf_exponent, n,
          readers, duration_s, max_epochs, deployment.config.seed,
          window_index);
      service.reclaim();
      const auto stats = service.stats();
      add_row("inproc", mix, "0", "inproc", 0, window, "-",
              static_cast<std::uint64_t>(window.epochs), 0, 0,
              stats.seal_violations);
      ++window_index;
    }
  }

  sink.table("serve_remote", table);
  sink.table("daemon", daemon_table);
}

}  // namespace egoist::exp
