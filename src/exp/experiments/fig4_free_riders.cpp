// Fig 4: robustness to free riders who announce inflated (2x) link costs
// to discourage others from routing through them.
//
// Left: a single free rider, k = 2..8 — the cost of the free rider and of
// the other nodes, each normalized by the corresponding cost in a
// cheater-free run (ratio ~= 1 means the lie neither helped nor hurt).
// Right: k = 2 with 0..16 free riders (up to a third of the overlay).
#include <algorithm>

#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

namespace {

struct SplitCosts {
  double cheaters = 0.0;      ///< mean cost of the free riders
  double non_cheaters = 0.0;  ///< mean cost of everyone else
};

/// Runs one overlay; `riders` are the nodes whose costs are averaged into
/// SplitCosts.cheaters, and they actually lie only when `lie` is set (the
/// honest baseline uses the same split so ratios compare the same nodes).
SplitCosts run_split(const CommonArgs& args, std::size_t k,
                     const std::vector<int>& riders, bool lie) {
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.k = k;
  config.metric = overlay::Metric::kDelayPing;
  config.seed = args.seed ^ (k * 31);
  if (lie) config.cheaters = riders;
  config.cheat_factor = 2.0;
  const auto result = run_single(args.n, args.seed, config, Score::kRoutingCost,
                                 args.run_options());

  SplitCosts split;
  util::OnlineStats cheat_stats, honest_stats;
  for (std::size_t v = 0; v < result.node_means.size(); ++v) {
    const bool is_rider =
        std::find(riders.begin(), riders.end(), static_cast<int>(v)) !=
        riders.end();
    (is_rider ? cheat_stats : honest_stats).add(result.node_means[v]);
  }
  split.cheaters = cheat_stats.count() ? cheat_stats.mean() : 0.0;
  split.non_cheaters = honest_stats.mean();
  return split;
}

}  // namespace

void run_fig4_free_riders(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  const int free_rider = params.get_int("free-rider", 7);

  // --- Left: one free rider across k ---
  sink.section(
      "Fig 4 (left): one free rider, n=" + std::to_string(args.n),
      "Cost with the free rider / cost without, for the free rider itself "
      "and for the other nodes (1.0 = lying changed nothing).");
  {
    util::Table table({"k", "free rider", "non free riders"});
    for (int k = args.k_min; k <= args.k_max; ++k) {
      const auto honest =
          run_split(args, static_cast<std::size_t>(k), {free_rider}, false);
      const auto cheated =
          run_split(args, static_cast<std::size_t>(k), {free_rider}, true);
      table.add_numeric_row(
          {static_cast<double>(k), cheated.cheaters / honest.cheaters,
           cheated.non_cheaters / honest.non_cheaters},
          3);
    }
    sink.table("single_rider", table);
  }

  // --- Right: many free riders at k = 2 ---
  sink.text("\n");
  sink.section(
      "Fig 4 (right): many free riders, n=" + std::to_string(args.n) + ", k=2",
      "Cost with f free riders / cost without, as f grows to a third of "
      "the population.");
  {
    util::Table table({"free riders", "free riders' cost", "others' cost"});
    for (int f : {0, 2, 4, 6, 8, 10, 12, 14, 16}) {
      std::vector<int> riders;
      for (int c = 0; c < f; ++c) riders.push_back(3 * c);  // spread out
      const auto honest = run_split(args, 2, riders, false);
      const auto cheated = run_split(args, 2, riders, true);
      table.add_numeric_row(
          {static_cast<double>(f),
           f == 0 ? 1.0 : cheated.cheaters / honest.cheaters,
           cheated.non_cheaters / honest.non_cheaters},
          3);
    }
    sink.table("many_riders", table);
  }
}

}  // namespace egoist::exp
