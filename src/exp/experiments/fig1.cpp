// Fig 1, all four panels: individual cost of each neighbor-selection
// policy, normalized by BR, as a function of k. One registered experiment
// per panel (metric), sharing the panel driver below.
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

namespace {

overlay::OverlayConfig policy_config(overlay::Policy policy, std::size_t k,
                                     overlay::Metric metric, std::uint64_t seed) {
  overlay::OverlayConfig config;
  config.policy = policy;
  config.k = k;
  config.metric = metric;
  config.seed = seed;
  return config;
}

/// Runs one Fig 1 panel and emits its table.
///
/// For cost metrics (delay/load) the series are cost(policy)/cost(BR) >= 1;
/// for bandwidth the series are bw(policy)/bw(BR) <= 1 (paper's
/// "Total Av.Bwth / BR Av.Bwth"). `with_mesh` adds the full-mesh reference
/// (k = n-1), the RON-style lower bound of the top-left panel.
void run_fig1_panel(overlay::Metric metric, bool with_mesh,
                    const CommonArgs& args, ResultSink& sink) {
  const bool bandwidth = metric == overlay::Metric::kBandwidth;
  const Score score = bandwidth ? Score::kBandwidth : Score::kRoutingCost;

  std::vector<std::string> columns{"k",        "BR(abs)",   "k-Random",
                                   "k-Regular", "k-Closest"};
  if (with_mesh) columns.push_back("FullMesh");
  util::Table table(columns);

  for (int k = args.k_min; k <= args.k_max; ++k) {
    // One host per k: every policy's overlay runs concurrently on the
    // shared substrate through its own identically-seeded measurement
    // plane, mirroring the paper's concurrently deployed per-policy
    // agents — each policy sees the same substrate realization.
    host::OverlayHost host(args.n, args.seed);
    const auto options = args.run_options();
    auto deploy = [&](overlay::Policy policy, std::size_t use_k) {
      return host.deploy(host::OverlaySpec(policy_config(
                             policy, use_k, metric, args.seed ^ use_k))
                             .epoch_period(options.epoch_seconds));
    };

    std::vector<host::OverlayHandle> handles{
        deploy(overlay::Policy::kBestResponse, static_cast<std::size_t>(k)),
        deploy(overlay::Policy::kRandom, static_cast<std::size_t>(k)),
        deploy(overlay::Policy::kRegular, static_cast<std::size_t>(k)),
        deploy(overlay::Policy::kClosest, static_cast<std::size_t>(k))};
    if (with_mesh) handles.push_back(deploy(overlay::Policy::kFullMesh, args.n - 1));

    const auto results = run_and_score(host, handles, score, options);
    const auto& br = results[0];
    auto normalized = [&](const RunResult& r) {
      // Cost metrics: policy/BR (>= 1). Bandwidth: policy/BR (<= 1).
      return r.summary.mean / br.summary.mean;
    };

    std::vector<double> row{static_cast<double>(k), br.summary.mean,
                            normalized(results[1]), normalized(results[2]),
                            normalized(results[3])};
    if (with_mesh) row.push_back(normalized(results[4]));
    table.add_numeric_row(row, 3);
  }
  sink.table("cost_vs_k", table);
  sink.text("\n(normalized to BR; cost metrics: >1 means worse than BR,\n"
            " bandwidth: <1 means less aggregate bandwidth than BR)\n");
}

}  // namespace

void run_fig1_delay_ping(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  sink.section(
      "Fig 1 (top-left): delay via ping",
      "Individual cost / BR cost vs k, 50-node EGOIST overlay; full mesh "
      "(k=n-1) is the lower bound a RON-style O(n^2) design achieves.");
  run_fig1_panel(overlay::Metric::kDelayPing, /*with_mesh=*/true, args, sink);
}

void run_fig1_delay_coords(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  sink.section(
      "Fig 1 (top-right): delay via virtual coordinates",
      "Individual cost / BR cost vs k when link delays come from the "
      "(cheaper, less accurate) coordinate system instead of ping.");
  run_fig1_panel(overlay::Metric::kDelayCoords, /*with_mesh=*/false, args, sink);
}

void run_fig1_node_load(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  sink.section(
      "Fig 1 (bottom-left): node load",
      "Individual cost / BR cost vs k; every outgoing link of a node costs "
      "the node's own EWMA-smoothed load, so BR routes around busy hosts.");
  run_fig1_panel(overlay::Metric::kNodeLoad, /*with_mesh=*/false, args, sink);
}

void run_fig1_avail_bw(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  sink.section(
      "Fig 1 (bottom-right): available bandwidth",
      "Total available bandwidth / BR available bandwidth vs k (<= 1); BR "
      "maximizes the sum of bottleneck bandwidths to all destinations.");
  run_fig1_panel(overlay::Metric::kBandwidth, /*with_mesh=*/false, args, sink);
}

}  // namespace egoist::exp
