// §4.3 overhead accounting: the paper's closed-form per-node loads vs the
// byte counts measured from the simulated link-state protocol.
//
//   ping measurement: (n - k - 1) * 320 / T            bps per node
//   coordinates:      (320 + 32 n) / T                 bps per node
//   link-state:       (192 + 32 k) / T_announce        bps per node
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"
#include "net/measurement.hpp"
#include "proto/link_state.hpp"
#include "sim/simulator.hpp"

namespace egoist::exp {

void run_overhead_accounting(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  const double epoch = params.get_double("epoch", 60.0);
  const double announce = params.get_double("announce", 20.0);
  const int rounds = params.get_int("rounds", 30);

  sink.section(
      "Overhead accounting (Section 4.3)",
      "Closed-form per-node protocol loads (bps) and the measured "
      "link-state announcement load from a simulated flood.");

  // --- Closed forms across k ---
  {
    util::Table table({"k", "ping bps/node", "coords bps/node", "LSA bps/node"});
    for (int k = args.k_min; k <= args.k_max; ++k) {
      table.add_numeric_row(
          {static_cast<double>(k),
           net::PingProber::ping_load_bps(args.n, static_cast<std::size_t>(k),
                                          epoch),
           net::OverheadFormulas::coord_load_bps(args.n, epoch),
           net::OverheadFormulas::lsa_load_bps(static_cast<std::size_t>(k),
                                               announce)},
          2);
    }
    sink.table("closed_forms", table);
  }

  // --- Measured LSA origination load vs the formula ---
  // Every node announces its k links every `announce` seconds for `rounds`
  // rounds; the formula counts origination traffic (the flood fan-out is
  // the same for every protocol of this class and scales with nk).
  sink.text("\n");
  {
    util::Table table({"k", "formula bps/node", "originated bps/node",
                       "flooded bps/node"});
    for (int k = args.k_min; k <= args.k_max; ++k) {
      sim::Simulator sim;
      proto::LinkStateProtocol proto(sim, args.n,
                                     [](proto::NodeId, proto::NodeId) { return 0.005; });
      // Ring + extra offsets to emulate a k-regular overlay wiring.
      for (std::size_t u = 0; u < args.n; ++u) {
        std::vector<proto::LinkEntry> links;
        for (int j = 1; j <= k; ++j) {
          links.push_back(
              {static_cast<proto::NodeId>((u + static_cast<std::size_t>(j) * 7) %
                                          args.n),
               1.0});
        }
        proto.set_links(static_cast<proto::NodeId>(u), std::move(links));
      }
      double originated_bits = 0.0;
      for (int r = 0; r < rounds; ++r) {
        for (std::size_t u = 0; u < args.n; ++u) {
          proto.originate(static_cast<proto::NodeId>(u));
          originated_bits += 192.0 + 32.0 * k;
        }
        sim.run_for(announce);
      }
      const double horizon = rounds * announce;
      const double per_node_originated =
          originated_bits / horizon / static_cast<double>(args.n);
      const double per_node_flooded =
          proto.bits_sent() / horizon / static_cast<double>(args.n);
      table.add_numeric_row(
          {static_cast<double>(k),
           net::OverheadFormulas::lsa_load_bps(static_cast<std::size_t>(k),
                                               announce),
           per_node_originated, per_node_flooded},
          2);
    }
    sink.table("measured_lsa", table);
    sink.text("\n(originated matches the formula; flooded shows the nk "
              "dissemination cost, still far below the n^2 of a full "
              "mesh)\n");
  }
}

}  // namespace egoist::exp
