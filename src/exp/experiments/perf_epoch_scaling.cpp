// Epoch wall-time scaling of the BR hot path (ISSUE 2 acceptance bench,
// extended with the parallel epoch pipeline in ISSUE 6).
//
// Measures EgoistNetwork::run_epoch() wall time for BR / HybridBR overlays
// at growing n, on four variants:
//
//   legacy      residual Digraph copy + all-pairs per node (the seed's path)
//   engine      graph::PathEngine, serial (CSR snapshot + reused workspace)
//   engine-mt   graph::PathEngine with the per-source worker pool
//   engine-par  the parallel epoch pipeline (snapshot -> parallel evaluate
//               -> deterministic merge), at epoch_workers = 1 and at the
//               resolved `workers` knob
//   full-quiet  sequential full recompute on a quiet measurement plane
//               (ping jitter / drift zeroed) after `inc-warmup` epochs —
//               the steady-state baseline for the incremental row
//   incremental dirty-set epochs (ISSUE 7; tau = 0 exact mode) on the same
//               quiet deployment — must re-wire identically to full-quiet
//               and reports evaluated / skipped / dirty_frac
//
// legacy / engine / engine-mt run the sequential epoch and produce
// bit-identical distances, so they walk the *same* wiring trajectory for a
// fixed seed — their re-wiring counts double as a correctness cross-check
// (they must match, and the run fails when they do not). engine-par runs
// the pipeline semantics (every node evaluates against the epoch-start
// snapshot), a *different* deterministic trajectory: its cross-check is
// internal — every engine-par row must re-wire exactly like the
// engine-par workers=1 baseline, at any worker count.
//
// The `workers` knob (0 = auto) is resolved to a concrete pool size via
// util::WorkerPool::resolve up front, and every row reports that actual
// count — a row claiming workers=0 is a reporting bug and aborts the run.
// `profile = true` enables the in-process profiler around the timed epochs
// and emits per-phase rows ("profile" panel; see docs/EXPERIMENTS.md).
//
// Emits a machine-readable JSON report (console, and the `json` knob names
// a file) so CI can track the perf trajectory, plus per-measurement rows
// through the structured sink. Timings are wall-clock and thus not
// deterministic; rewiring counts and trajectories are. The report carries
// `host_cpus` so speedups are read against the hardware that produced them.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"
#include "util/profiler.hpp"
#include "util/worker_pool.hpp"

namespace egoist::exp {

namespace {

struct BackendSpec {
  std::string name;
  overlay::PathBackend backend;
  int path_workers;   ///< per-source tree builds inside one evaluation
  int epoch_workers;  ///< 0 = sequential epoch; >= 1 = parallel pipeline
  bool incremental = false;  ///< dirty-set epochs (exact mode, tau = 0)
  bool quiet = false;        ///< quiet measurement plane (no jitter/drift)
};

struct Measurement {
  std::string policy;
  std::size_t n = 0;
  std::string backend;
  int workers = 1;         ///< actual pool size driving this row (never 0)
  double epoch_ms_mean = 0.0;
  double epoch_ms_min = 0.0;
  int rewirings = 0;       ///< total over the timed epochs (trajectory check)
  double speedup = 0.0;    ///< vs. `baseline` at same (policy, n); 0 = n/a
  std::string baseline;    ///< what `speedup` is relative to ("" = n/a)
  std::size_t substrate_bytes = 0;  ///< substrate storage at this n
  /// Process-wide peak RSS high-water mark when the row finished. RSS is
  /// monotonic across the whole process, so rows within one run can only
  /// report a non-decreasing value (the BENCH_6 HybridBR rows all froze at
  /// the BR n-max's peak); read rss_delta_bytes for a per-row figure.
  std::size_t peak_rss_bytes = 0;
  std::size_t rss_delta_bytes = 0;  ///< peak-RSS growth during this row
  std::uint64_t evaluated = 0;      ///< node evaluations in the timed epochs
  std::uint64_t skipped = 0;        ///< evaluations skipped (incremental)
  double dirty_frac = 1.0;          ///< evaluated / (evaluated + skipped)
};

std::vector<std::size_t> parse_n_list(const std::string& csv) {
  std::vector<std::size_t> out;
  for (const auto& item : split_csv(csv)) {
    const int v = std::stoi(item);
    if (v < 3) throw std::invalid_argument("n must be >= 3");
    out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) throw std::invalid_argument("empty n-list");
  return out;
}

std::vector<overlay::Policy> parse_policies(const std::string& csv) {
  std::vector<overlay::Policy> out;
  for (const auto& item : split_csv(csv)) {
    if (item == "BR") {
      out.push_back(overlay::Policy::kBestResponse);
    } else if (item == "HybridBR") {
      out.push_back(overlay::Policy::kHybridBR);
    } else {
      throw std::invalid_argument("unknown policy (want BR, HybridBR): " + item);
    }
  }
  if (out.empty()) throw std::invalid_argument("empty policies");
  return out;
}

Measurement measure(overlay::Policy policy, std::size_t n,
                    const BackendSpec& spec, std::size_t k, int warmup,
                    int epochs, std::uint64_t seed,
                    const overlay::EnvironmentConfig& env_config,
                    bool profile) {
  overlay::OverlayConfig config;
  config.policy = policy;
  config.metric = overlay::Metric::kDelayPing;
  config.k = std::min(k, n - 1);
  config.donated_links = 2;
  config.seed = seed;
  config.path_backend = spec.backend;
  config.path_workers = spec.path_workers;
  config.epoch_workers = spec.epoch_workers;
  config.incremental = spec.incremental;  // tau = 0: exact dirty-set mode

  const std::size_t rss_before = util::peak_rss_bytes();
  host::OverlayHost deployment(n, seed, env_config);
  const auto handle = deployment.deploy(host::OverlaySpec(config));
  deployment.run_epochs(handle, warmup);
  // Timing loop: drive the engine directly through the host's escape
  // hatch so the clock covers run_epoch() only — substrate advancement and
  // event dispatch stay outside the measurement.
  auto& env = deployment.environment(handle);
  auto& net = deployment.network(handle);

  Measurement m;
  m.policy = overlay::to_string(policy);
  m.n = n;
  m.backend = spec.name;
  m.workers = spec.epoch_workers > 0 ? spec.epoch_workers : spec.path_workers;
  if (m.workers <= 0) {
    throw std::runtime_error("refusing to report a workers=0 row for " +
                             spec.name + " (resolve the pool size first)");
  }
  // Profile the timed epochs only: drop whatever warmup recorded.
  if (profile) util::Profiler::instance().reset();
  const std::uint64_t evals_mark = net.total_evaluations();
  const std::uint64_t skips_mark = net.total_skipped_evals();
  m.epoch_ms_min = std::numeric_limits<double>::infinity();
  for (int e = 0; e < epochs; ++e) {
    env.advance(60.0);
    const auto start = std::chrono::steady_clock::now();
    m.rewirings += net.run_epoch();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    m.epoch_ms_mean += ms;
    m.epoch_ms_min = std::min(m.epoch_ms_min, ms);
  }
  m.epoch_ms_mean /= epochs;
  m.evaluated = net.total_evaluations() - evals_mark;
  m.skipped = net.total_skipped_evals() - skips_mark;
  const double total = static_cast<double>(m.evaluated + m.skipped);
  m.dirty_frac = total > 0.0 ? static_cast<double>(m.evaluated) / total : 1.0;
  m.substrate_bytes = deployment.substrate()->memory_bytes();
  m.peak_rss_bytes = util::peak_rss_bytes();
  m.rss_delta_bytes = m.peak_rss_bytes - rss_before;
  return m;
}

std::string json_report(const std::vector<Measurement>& results, std::size_t k,
                        int warmup, int epochs, std::uint64_t seed) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  out << "{\"bench\":\"perf_epoch_scaling\",\"metric\":\"delay(ping)\","
      << "\"k\":" << k << ",\"warmup\":" << warmup << ",\"epochs\":" << epochs
      << ",\"seed\":" << seed
      << ",\"host_cpus\":" << std::thread::hardware_concurrency()
      << ",\"peak_rss_note\":\"peak_rss_bytes is the process-wide monotonic "
         "high-water mark at row completion (later rows can only repeat or "
         "raise it); rss_delta_bytes is the high-water growth attributable "
         "to the row itself\""
      << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    if (i > 0) out << ",";
    out << "{\"policy\":\"" << m.policy << "\",\"n\":" << m.n
        << ",\"backend\":\"" << m.backend << "\",\"workers\":" << m.workers
        << ",\"epoch_ms_mean\":" << m.epoch_ms_mean
        << ",\"epoch_ms_min\":" << m.epoch_ms_min
        << ",\"rewirings\":" << m.rewirings
        << ",\"evaluated\":" << m.evaluated << ",\"skipped\":" << m.skipped
        << ",\"dirty_frac\":" << m.dirty_frac
        << ",\"substrate_bytes\":" << m.substrate_bytes
        << ",\"peak_rss_bytes\":" << m.peak_rss_bytes
        << ",\"rss_delta_bytes\":" << m.rss_delta_bytes;
    if (m.speedup > 0.0) {
      out << ",\"speedup\":" << m.speedup << ",\"baseline\":\"" << m.baseline
          << "\"";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

const std::vector<std::string> kRowColumns{
    "policy", "n", "backend", "workers", "epoch_ms_mean", "epoch_ms_min",
    "rewirings", "evaluated", "skipped", "dirty_frac", "speedup", "baseline",
    "substrate_bytes", "peak_rss_bytes", "rss_delta_bytes"};

std::vector<std::string> row_cells(const Measurement& m) {
  std::ostringstream mean_ms, min_ms, dirty_frac, speedup;
  mean_ms << std::fixed << std::setprecision(3) << m.epoch_ms_mean;
  min_ms << std::fixed << std::setprecision(3) << m.epoch_ms_min;
  dirty_frac << std::fixed << std::setprecision(3) << m.dirty_frac;
  if (m.speedup > 0.0) {
    speedup << std::fixed << std::setprecision(3) << m.speedup;
  } else {
    speedup << "-";
  }
  return {m.policy,     std::to_string(m.n), m.backend,
          std::to_string(m.workers),          mean_ms.str(),
          min_ms.str(), std::to_string(m.rewirings),
          std::to_string(m.evaluated), std::to_string(m.skipped),
          dirty_frac.str(), speedup.str(),
          m.baseline.empty() ? "-" : m.baseline,
          std::to_string(m.substrate_bytes),
          std::to_string(m.peak_rss_bytes),
          std::to_string(m.rss_delta_bytes)};
}

std::vector<std::string> profile_row_columns() {
  std::vector<std::string> columns{"policy", "n", "backend", "workers"};
  const auto& phase_columns = util::profile_columns();
  columns.insert(columns.end(), phase_columns.begin(), phase_columns.end());
  return columns;
}

void emit_profile_rows(ResultSink& sink, const Measurement& m) {
  const auto columns = profile_row_columns();
  for (const auto& phase : util::Profiler::instance().report()) {
    std::vector<std::string> cells{m.policy, std::to_string(m.n), m.backend,
                                   std::to_string(m.workers)};
    const auto phase_cells = util::phase_cells(phase);
    cells.insert(cells.end(), phase_cells.begin(), phase_cells.end());
    sink.row("profile", columns, cells);
  }
}

}  // namespace

void run_perf_epoch_scaling(const ParamReader& params, ResultSink& sink) {
  const auto n_list = parse_n_list(params.get_string("n-list", "50,100,200,400"));
  const auto policies = parse_policies(params.get_string("policies", "BR,HybridBR"));
  const auto k = static_cast<std::size_t>(params.get_int("k", 5));
  const int warmup = params.get_int("warmup", 1);
  // The quiet-plane rows (full-quiet / incremental) measure the steady
  // state: by default they warm up long enough for the overlay to converge
  // and the dirty set to drain, so the timed epochs are post-warmup.
  const int inc_warmup = params.get_int("inc-warmup", 6);
  const int epochs = params.get_int("epochs", 3);
  if (warmup < 0 || inc_warmup < 0 || epochs < 1) {
    throw std::invalid_argument("need warmup >= 0, inc-warmup >= 0, epochs >= 1");
  }
  const std::uint64_t seed = params.get_seed("seed", 42);
  // Resolve the 0 = auto knob to the actual pool size once, up front, and
  // thread the concrete count everywhere: the BENCH_5 `workers:0` rows were
  // a reporting bug (the config default leaked into the report while the
  // engine sized its pool internally).
  const int workers = util::WorkerPool::resolve(params.get_int("workers", 0));
  const bool profile = params.get_bool("profile", false);
  const int legacy_max_n = params.get_int("legacy-max-n", 400);
  const std::string json_path = params.get_string("json", "");
  const auto env_config = parse_underlay(params);

  sink.section(
      "perf: epoch scaling",
      "run_epoch() wall time per backend; rewiring counts must agree within\n"
      "each semantics family (sequential backends vs legacy, engine-par vs\n"
      "its workers=1 baseline) — bit-identical trajectories for a fixed\n"
      "seed.");

  std::vector<BackendSpec> specs{
      {"legacy", overlay::PathBackend::kLegacy, 1, 0},
      {"engine", overlay::PathBackend::kCsrEngine, 1, 0},
      {"engine-mt", overlay::PathBackend::kCsrEngine, workers, 0},
      {"engine-par", overlay::PathBackend::kCsrEngine, 1, 1},
  };
  if (workers > 1) {
    specs.push_back({"engine-par", overlay::PathBackend::kCsrEngine, 1, workers});
  }
  // Incremental dirty-set rows run on a quiet measurement plane (no ping
  // jitter, no drift), where the overlay converges and the dirty set can
  // drain; full-quiet is the sequential full recompute of the *same*
  // deployment and the incremental row's baseline and trajectory
  // reference — exact mode must re-wire identically, or the run fails.
  specs.push_back({"full-quiet", overlay::PathBackend::kCsrEngine, 1, 0,
                   /*incremental=*/false, /*quiet=*/true});
  specs.push_back({"incremental", overlay::PathBackend::kCsrEngine, 1, 0,
                   /*incremental=*/true, /*quiet=*/true});
  auto quiet_env = env_config;
  quiet_env.ping_jitter_ms = 0.0;
  quiet_env.delay_drift_volatility = 0.0;

  util::ProfileSession profile_session(profile);

  std::vector<Measurement> results;
  {
    std::ostringstream head;
    head << std::left << std::setw(10) << "policy" << std::setw(7) << "n"
         << std::setw(12) << "backend" << std::setw(9) << "workers"
         << std::setw(14) << "epoch ms" << std::setw(14) << "min ms"
         << std::setw(10) << "rewires" << "speedup\n";
    head << std::string(80, '-') << "\n";
    sink.text(head.str());
  }
  int trajectory_mismatches = 0;
  std::string mismatch_report;
  for (const auto policy : policies) {
    for (const std::size_t n : n_list) {
      double legacy_ms = 0.0;
      int legacy_rewirings = -1;
      double par1_ms = 0.0;
      int par1_rewirings = -1;
      double fullq_ms = 0.0;
      int fullq_rewirings = -1;
      for (const auto& spec : specs) {
        if (spec.name == "legacy" &&
            n > static_cast<std::size_t>(legacy_max_n)) {
          continue;
        }
        auto m = measure(policy, n, spec, k, spec.quiet ? inc_warmup : warmup,
                         epochs, seed, spec.quiet ? quiet_env : env_config,
                         profile);
        const bool pipeline = spec.epoch_workers > 0;
        if (spec.name == "legacy") {
          legacy_ms = m.epoch_ms_mean;
          legacy_rewirings = m.rewirings;
        } else if (spec.name == "full-quiet") {
          // Quiet plane, sequential full recompute: the incremental row's
          // baseline. Different environment, so no legacy cross-check.
          fullq_ms = m.epoch_ms_mean;
          fullq_rewirings = m.rewirings;
        } else if (spec.name == "incremental") {
          if (fullq_ms > 0.0 && m.epoch_ms_mean > 0.0) {
            m.speedup = fullq_ms / m.epoch_ms_mean;
            m.baseline = "full-quiet";
          }
          // Exact mode (tau = 0): the dirty-set run must walk the very
          // same trajectory as the full recompute, bit for bit.
          if (fullq_rewirings >= 0 && m.rewirings != fullq_rewirings) {
            ++trajectory_mismatches;
            mismatch_report += "TRAJECTORY MISMATCH: " + m.policy +
                               " n=" + std::to_string(n) +
                               " incremental rewired " +
                               std::to_string(m.rewirings) +
                               " vs full-quiet " +
                               std::to_string(fullq_rewirings) + "\n";
          }
        } else if (pipeline && spec.epoch_workers == 1) {
          // The pipeline's own single-thread baseline: later engine-par
          // rows check their trajectory and speedup against this row.
          par1_ms = m.epoch_ms_mean;
          par1_rewirings = m.rewirings;
          if (legacy_ms > 0.0 && m.epoch_ms_mean > 0.0) {
            m.speedup = legacy_ms / m.epoch_ms_mean;
            m.baseline = "legacy";
          }
        } else {
          const double base_ms = pipeline ? par1_ms : legacy_ms;
          if (base_ms > 0.0 && m.epoch_ms_mean > 0.0) {
            m.speedup = base_ms / m.epoch_ms_mean;
            m.baseline = pipeline ? "engine-par@1" : "legacy";
          }
          // Enforce the trajectory cross-check the banner promises, within
          // each semantics family: sequential backends must re-wire like
          // legacy; every engine-par row must re-wire like engine-par@1
          // (the bit-identical-at-any-worker-count contract).
          const int expected = pipeline ? par1_rewirings : legacy_rewirings;
          const std::string reference = pipeline ? "engine-par@1" : "legacy";
          if (expected >= 0 && m.rewirings != expected) {
            ++trajectory_mismatches;
            mismatch_report += "TRAJECTORY MISMATCH: " + m.policy +
                               " n=" + std::to_string(n) + " " + m.backend +
                               " workers=" + std::to_string(m.workers) +
                               " rewired " + std::to_string(m.rewirings) +
                               " vs " + reference + " " +
                               std::to_string(expected) + "\n";
          }
        }
        std::ostringstream line;
        line << std::left << std::setw(10) << m.policy << std::setw(7) << m.n
             << std::setw(12) << m.backend << std::setw(9) << m.workers
             << std::setw(14) << std::fixed << std::setprecision(2)
             << m.epoch_ms_mean << std::setw(14) << m.epoch_ms_min
             << std::setw(10) << m.rewirings;
        if (m.speedup > 0.0) {
          line << std::setprecision(2) << m.speedup << "x vs " << m.baseline;
        } else {
          line << "-";
        }
        line << "\n";
        sink.text(line.str());
        sink.row("scaling", kRowColumns, row_cells(m));
        if (profile) emit_profile_rows(sink, m);
        results.push_back(std::move(m));
      }
    }
  }

  const std::string json = json_report(results, k, warmup, epochs, seed);
  sink.text("\nJSON: " + json + "\n");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error("cannot write " + json_path);
    out << json << "\n";
    sink.text("wrote " + json_path + "\n");
  }
  if (trajectory_mismatches > 0) {
    throw std::runtime_error(
        mismatch_report + "error: " + std::to_string(trajectory_mismatches) +
        " row(s) diverged from their reference trajectory");
  }
}

}  // namespace egoist::exp
