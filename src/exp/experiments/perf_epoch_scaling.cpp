// Epoch wall-time scaling of the BR hot path (ISSUE 2 acceptance bench).
//
// Measures EgoistNetwork::run_epoch() wall time for BR / HybridBR overlays
// at growing n, on three residual-path backends:
//
//   legacy     residual Digraph copy + all-pairs per node (the seed's path)
//   engine     graph::PathEngine, serial (CSR snapshot + reused workspace)
//   engine-mt  graph::PathEngine with the per-source worker pool
//
// All backends produce bit-identical distances, so for a fixed seed every
// variant walks the *same* wiring trajectory — the re-wiring counts printed
// per row double as a correctness cross-check (they must match, and the
// run fails when they do not). Timings cover run_epoch() only; substrate
// advancement runs outside the clock.
//
// Emits a machine-readable JSON report (console, and the `json` knob names
// a file) so CI can track the perf trajectory, plus per-measurement rows
// through the structured sink. Timings are wall-clock and thus not
// deterministic; rewiring counts and trajectories are.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

namespace {

struct BackendSpec {
  std::string name;
  overlay::PathBackend backend;
  int workers;
};

struct Measurement {
  std::string policy;
  std::size_t n = 0;
  std::string backend;
  int workers = 1;
  double epoch_ms_mean = 0.0;
  double epoch_ms_min = 0.0;
  int rewirings = 0;       ///< total over the timed epochs (trajectory check)
  double speedup = 0.0;    ///< vs. legacy at same (policy, n); 0 = n/a
  std::size_t substrate_bytes = 0;  ///< substrate storage at this n
  std::size_t peak_rss_bytes = 0;   ///< process peak RSS after the run
};

std::vector<std::size_t> parse_n_list(const std::string& csv) {
  std::vector<std::size_t> out;
  for (const auto& item : split_csv(csv)) {
    const int v = std::stoi(item);
    if (v < 3) throw std::invalid_argument("n must be >= 3");
    out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) throw std::invalid_argument("empty n-list");
  return out;
}

std::vector<overlay::Policy> parse_policies(const std::string& csv) {
  std::vector<overlay::Policy> out;
  for (const auto& item : split_csv(csv)) {
    if (item == "BR") {
      out.push_back(overlay::Policy::kBestResponse);
    } else if (item == "HybridBR") {
      out.push_back(overlay::Policy::kHybridBR);
    } else {
      throw std::invalid_argument("unknown policy (want BR, HybridBR): " + item);
    }
  }
  if (out.empty()) throw std::invalid_argument("empty policies");
  return out;
}

Measurement measure(overlay::Policy policy, std::size_t n,
                    const BackendSpec& spec, std::size_t k, int warmup,
                    int epochs, std::uint64_t seed,
                    const overlay::EnvironmentConfig& env_config) {
  overlay::OverlayConfig config;
  config.policy = policy;
  config.metric = overlay::Metric::kDelayPing;
  config.k = std::min(k, n - 1);
  config.donated_links = 2;
  config.seed = seed;
  config.path_backend = spec.backend;
  config.path_workers = spec.workers;

  host::OverlayHost deployment(n, seed, env_config);
  const auto handle = deployment.deploy(host::OverlaySpec(config));
  deployment.run_epochs(handle, warmup);
  // Timing loop: drive the engine directly through the host's escape
  // hatch so the clock covers run_epoch() only — substrate advancement and
  // event dispatch stay outside the measurement.
  auto& env = deployment.environment(handle);
  auto& net = deployment.network(handle);

  Measurement m;
  m.policy = overlay::to_string(policy);
  m.n = n;
  m.backend = spec.name;
  m.workers = spec.workers;
  m.epoch_ms_min = std::numeric_limits<double>::infinity();
  for (int e = 0; e < epochs; ++e) {
    env.advance(60.0);
    const auto start = std::chrono::steady_clock::now();
    m.rewirings += net.run_epoch();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    m.epoch_ms_mean += ms;
    m.epoch_ms_min = std::min(m.epoch_ms_min, ms);
  }
  m.epoch_ms_mean /= epochs;
  m.substrate_bytes = deployment.substrate()->memory_bytes();
  m.peak_rss_bytes = util::peak_rss_bytes();
  return m;
}

std::string json_report(const std::vector<Measurement>& results, std::size_t k,
                        int warmup, int epochs, std::uint64_t seed) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  out << "{\"bench\":\"perf_epoch_scaling\",\"metric\":\"delay(ping)\","
      << "\"k\":" << k << ",\"warmup\":" << warmup << ",\"epochs\":" << epochs
      << ",\"seed\":" << seed << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& m = results[i];
    if (i > 0) out << ",";
    out << "{\"policy\":\"" << m.policy << "\",\"n\":" << m.n
        << ",\"backend\":\"" << m.backend << "\",\"workers\":" << m.workers
        << ",\"epoch_ms_mean\":" << m.epoch_ms_mean
        << ",\"epoch_ms_min\":" << m.epoch_ms_min
        << ",\"rewirings\":" << m.rewirings
        << ",\"substrate_bytes\":" << m.substrate_bytes
        << ",\"peak_rss_bytes\":" << m.peak_rss_bytes;
    if (m.speedup > 0.0) out << ",\"speedup_vs_legacy\":" << m.speedup;
    out << "}";
  }
  out << "]}";
  return out.str();
}

const std::vector<std::string> kRowColumns{
    "policy", "n", "backend", "workers", "epoch_ms_mean", "epoch_ms_min",
    "rewirings", "speedup_vs_legacy", "substrate_bytes", "peak_rss_bytes"};

std::vector<std::string> row_cells(const Measurement& m) {
  std::ostringstream mean_ms, min_ms, speedup;
  mean_ms << std::fixed << std::setprecision(3) << m.epoch_ms_mean;
  min_ms << std::fixed << std::setprecision(3) << m.epoch_ms_min;
  if (m.speedup > 0.0) {
    speedup << std::fixed << std::setprecision(3) << m.speedup;
  } else {
    speedup << "-";
  }
  return {m.policy,     std::to_string(m.n), m.backend,
          std::to_string(m.workers),          mean_ms.str(),
          min_ms.str(), std::to_string(m.rewirings), speedup.str(),
          std::to_string(m.substrate_bytes),
          std::to_string(m.peak_rss_bytes)};
}

}  // namespace

void run_perf_epoch_scaling(const ParamReader& params, ResultSink& sink) {
  const auto n_list = parse_n_list(params.get_string("n-list", "50,100,200,400"));
  const auto policies = parse_policies(params.get_string("policies", "BR,HybridBR"));
  const auto k = static_cast<std::size_t>(params.get_int("k", 5));
  const int warmup = params.get_int("warmup", 1);
  const int epochs = params.get_int("epochs", 3);
  if (warmup < 0 || epochs < 1) {
    throw std::invalid_argument("need warmup >= 0 and epochs >= 1");
  }
  const std::uint64_t seed = params.get_seed("seed", 42);
  const int workers = params.get_int("workers", 0);
  const int legacy_max_n = params.get_int("legacy-max-n", 400);
  const std::string json_path = params.get_string("json", "");
  const auto env_config = parse_underlay(params);

  sink.section(
      "perf: epoch scaling",
      "run_epoch() wall time per backend; rewiring counts must agree across\n"
      "backends (bit-identical trajectories for a fixed seed).");

  const std::vector<BackendSpec> specs{
      {"legacy", overlay::PathBackend::kLegacy, 1},
      {"engine", overlay::PathBackend::kCsrEngine, 1},
      {"engine-mt", overlay::PathBackend::kCsrEngine, workers},
  };

  std::vector<Measurement> results;
  {
    std::ostringstream head;
    head << std::left << std::setw(10) << "policy" << std::setw(7) << "n"
         << std::setw(11) << "backend" << std::setw(9) << "workers"
         << std::setw(14) << "epoch ms" << std::setw(14) << "min ms"
         << std::setw(10) << "rewires" << "speedup\n";
    head << std::string(78, '-') << "\n";
    sink.text(head.str());
  }
  int trajectory_mismatches = 0;
  std::string mismatch_report;
  for (const auto policy : policies) {
    for (const std::size_t n : n_list) {
      double legacy_ms = 0.0;
      int legacy_rewirings = -1;
      for (const auto& spec : specs) {
        if (spec.name == "legacy" &&
            n > static_cast<std::size_t>(legacy_max_n)) {
          continue;
        }
        auto m = measure(policy, n, spec, k, warmup, epochs, seed, env_config);
        if (spec.name == "legacy") {
          legacy_ms = m.epoch_ms_mean;
          legacy_rewirings = m.rewirings;
        } else {
          if (legacy_ms > 0.0 && m.epoch_ms_mean > 0.0) {
            m.speedup = legacy_ms / m.epoch_ms_mean;
          }
          // Enforce the trajectory cross-check the banner promises: all
          // backends must walk the same wiring sequence for a fixed seed.
          if (legacy_rewirings >= 0 && m.rewirings != legacy_rewirings) {
            ++trajectory_mismatches;
            mismatch_report += "TRAJECTORY MISMATCH: " + m.policy +
                               " n=" + std::to_string(n) + " " + m.backend +
                               " rewired " + std::to_string(m.rewirings) +
                               " vs legacy " + std::to_string(legacy_rewirings) +
                               "\n";
          }
        }
        std::ostringstream line;
        line << std::left << std::setw(10) << m.policy << std::setw(7) << m.n
             << std::setw(11) << m.backend << std::setw(9) << m.workers
             << std::setw(14) << std::fixed << std::setprecision(2)
             << m.epoch_ms_mean << std::setw(14) << m.epoch_ms_min
             << std::setw(10) << m.rewirings;
        if (m.speedup > 0.0) {
          line << std::setprecision(2) << m.speedup << "x";
        } else {
          line << "-";
        }
        line << "\n";
        sink.text(line.str());
        sink.row("scaling", kRowColumns, row_cells(m));
        results.push_back(std::move(m));
      }
    }
  }

  const std::string json = json_report(results, k, warmup, epochs, seed);
  sink.text("\nJSON: " + json + "\n");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error("cannot write " + json_path);
    out << json << "\n";
    sink.text("wrote " + json_path + "\n");
  }
  if (trajectory_mismatches > 0) {
    throw std::runtime_error(
        mismatch_report + "error: " + std::to_string(trajectory_mismatches) +
        " backend(s) diverged from the legacy trajectory");
  }
}

}  // namespace egoist::exp
