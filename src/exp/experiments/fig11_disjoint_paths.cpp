// Fig 11: number of edge-disjoint overlay paths between source and target
// vs k, over a delay-metric BR overlay — the redirection substrate for
// real-time (delay/loss-sensitive) traffic.
//
// As an extension (the experiment the paper defers to future work), the
// experiment also simulates redundant streaming over those disjoint paths
// and reports the in-deadline delivery ratio.
#include "apps/streaming.hpp"
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

void run_fig11_disjoint_paths(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  const int pairs = params.get_int("pairs", 200);

  sink.section(
      "Fig 11: disjoint paths, n=" + std::to_string(args.n),
      "Mean number of edge-disjoint overlay paths between random "
      "source-target pairs vs k (95% CI), plus the redundant-streaming "
      "delivery ratio over those paths (extension experiment).");

  util::Table table({"k", "disjoint paths", "ci95", "delivery ratio"});
  util::Rng pair_rng(args.seed ^ 0xD15u);
  for (int k = args.k_min; k <= args.k_max; ++k) {
    overlay::OverlayConfig config;
    config.policy = overlay::Policy::kBestResponse;
    config.metric = overlay::Metric::kDelayPing;
    config.k = static_cast<std::size_t>(k);
    config.seed = args.seed ^ static_cast<std::uint64_t>(k * 13);
    host::OverlayHost deployment(args.n, args.seed);
    const auto overlay = deployment.deploy(host::OverlaySpec(config));
    deployment.run_epochs(overlay, args.warmup);
    const auto snapshot = deployment.snapshot(overlay);
    const auto& g = snapshot.true_cost_graph();

    std::vector<double> counts;
    util::OnlineStats delivery;
    apps::StreamingConfig streaming;
    streaming.packets = 200;
    for (int p = 0; p < pairs; ++p) {
      const int src = static_cast<int>(pair_rng.uniform_int(0, args.n - 1));
      int dst = static_cast<int>(pair_rng.uniform_int(0, args.n - 2));
      if (dst >= src) ++dst;
      const int paths = apps::disjoint_path_count(g, src, dst);
      counts.push_back(static_cast<double>(paths));
      if (paths > 0) {
        const auto routes = apps::extract_disjoint_paths(g, src, dst, paths);
        if (!routes.empty()) {
          delivery.add(apps::simulate_redundant_streaming(g, routes, streaming,
                                                          pair_rng)
                           .delivery_ratio());
        }
      }
    }
    const auto s = util::Summary::of(counts);
    table.add_numeric_row(
        {static_cast<double>(k), s.mean, s.ci95, delivery.mean()}, 3);
  }
  sink.table("paths_vs_k", table);
}

}  // namespace egoist::exp
