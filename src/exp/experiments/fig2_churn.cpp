// Fig 2: node efficiency under churn, normalized to BR.
//
// Left panel: trace-driven churn (PlanetLab-like ON/OFF processes) for
// k = 3..8. Right panel: k = 5 with the churn timescale swept so the
// measured churn rate spans ~1e-5 .. 0.1 (the paper's definition:
// Churn = (1/T) sum_i |U_{i-1} symdiff U_i| / max(|U_{i-1}|,|U_i|)).
//
// Efficiency replaces routing cost because churn can partition the overlay;
// eps_i = mean over reachable targets of 1/d and 0 for unreachable ones.
// All five policies run concurrently on one OverlayHost per table row —
// the staggered T/n scheduling and the trace replay are the host's
// staggered mode.
#include <algorithm>
#include <memory>

#include "exp/churn_replay.hpp"
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

namespace {

const std::vector<overlay::Policy> kComparedPolicies{
    overlay::Policy::kRandom, overlay::Policy::kRegular,
    overlay::Policy::kClosest, overlay::Policy::kHybridBR};

/// Runs BR plus the compared policies under the given churn trace on one
/// shared host and returns their mean tail efficiencies: [BR, k-Random,
/// k-Regular, k-Closest, HybridBR].
std::vector<double> run_under_churn(
    const CommonArgs& args, std::size_t k,
    const std::shared_ptr<const churn::ChurnTrace>& trace, int epochs,
    int warmup) {
  host::OverlayHost host(args.n, args.seed);
  auto deploy = [&](overlay::Policy policy) {
    overlay::OverlayConfig config;
    config.policy = policy;
    config.k = k;
    config.metric = overlay::Metric::kDelayPing;
    config.seed = args.seed ^ (k * 7919);
    if (policy == overlay::Policy::kHybridBR) config.donated_links = 2;
    return host.deploy(host::OverlaySpec(config)
                           .epoch_period(60.0)
                           .staggered(args.seed ^ 0x0BDEu)
                           .churn(trace));
  };

  std::vector<host::OverlayHandle> handles{deploy(overlay::Policy::kBestResponse)};
  for (const auto policy : kComparedPolicies) handles.push_back(deploy(policy));

  ChurnReplayOptions replay;
  replay.epochs = epochs;
  replay.warmup_epochs = warmup;
  const auto results = replay_churn(host, handles, replay);

  std::vector<double> efficiencies;
  efficiencies.reserve(results.size());
  for (const auto& r : results) efficiencies.push_back(r.mean_efficiency);
  return efficiencies;
}

churn::ChurnConfig trace_config(double mean_on_s) {
  churn::ChurnConfig config;
  config.mean_on_s = mean_on_s;
  config.mean_off_s = mean_on_s / 3.0;  // ~75% availability
  config.initial_on_fraction = 0.75;
  return config;
}

}  // namespace

void run_fig2_churn(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  const int epochs = params.get_int("epochs", 40);
  const int warmup = params.get_int("churn-warmup", 10);

  const double horizon = epochs * 60.0;

  // --- Left panel: trace-driven churn, efficiency vs k ---
  sink.section(
      "Fig 2 (left): trace-driven churn, n=" + std::to_string(args.n),
      "Node efficiency / BR efficiency vs k under PlanetLab-like ON/OFF "
      "churn (heavy-tailed sessions, ~75% availability).");
  {
    util::Table table({"k", "BR(abs eff)", "k-Random", "k-Regular", "k-Closest",
                       "HybridBR", "churn"});
    const auto trace = std::make_shared<const churn::ChurnTrace>(
        args.n, horizon, args.seed ^ 0xC4u, trace_config(3600.0));
    for (int k = std::max(args.k_min, 3); k <= args.k_max; ++k) {
      const auto eff = run_under_churn(args, static_cast<std::size_t>(k), trace,
                                       epochs, warmup);
      const double br = eff[0];
      std::vector<double> row{static_cast<double>(k), br};
      for (std::size_t p = 1; p < eff.size(); ++p) {
        row.push_back(br > 0.0 ? eff[p] / br : 0.0);
      }
      row.push_back(trace->churn_rate());
      table.add_numeric_row(row, 4);
    }
    sink.table("trace_driven", table);
  }

  // --- Right panel: parameterized churn at k = 5 ---
  sink.text("\n");
  sink.section(
      "Fig 2 (right): parameterized churn, n=" + std::to_string(args.n) +
          ", k=5",
      "Node efficiency / BR efficiency vs measured churn rate; HybridBR "
      "overtakes BR once churn events outpace the O(T/n) healing time.");
  {
    util::Table table({"target", "churn(measured)", "BR(abs eff)", "k-Random",
                       "k-Regular", "k-Closest", "HybridBR"});
    for (const double target : {1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1}) {
      // churn ~ 2 / mean_on for 75% availability (see churn.hpp).
      const auto trace = std::make_shared<const churn::ChurnTrace>(
          args.n, horizon, args.seed ^ 0xC8u, trace_config(2.0 / target));
      const auto eff = run_under_churn(args, 5, trace, epochs, warmup);
      const double br = eff[0];
      std::vector<double> row{target, trace->churn_rate(), br};
      for (std::size_t p = 1; p < eff.size(); ++p) {
        row.push_back(br > 0.0 ? eff[p] / br : 0.0);
      }
      table.add_numeric_row(row, 4);
    }
    sink.table("parameterized", table);
  }
}

}  // namespace egoist::exp
