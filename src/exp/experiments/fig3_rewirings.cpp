// Fig 3: re-wiring dynamics of BR.
//
// Left: total re-wirings per (one-minute) epoch over time, k = 2..8 — the
// rate drops quickly to a small steady state sustained by delay drift.
// Center: BR cost (normalized by full mesh) and steady-state re-wirings
// per epoch vs k — more links buy little cost but cost more re-wiring.
// Right: the same with BR(eps = 0.1), which slashes re-wirings at marginal
// cost impact.
#include "exp/common.hpp"
#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

namespace {

overlay::OverlayConfig br_config(std::size_t k, double epsilon,
                                 std::uint64_t seed) {
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.k = k;
  config.metric = overlay::Metric::kDelayPing;
  config.epsilon = epsilon;
  config.seed = seed;
  return config;
}

struct SteadyState {
  double cost = 0.0;        ///< mean node cost over the sampled tail
  double rewirings = 0.0;   ///< mean re-wirings per epoch over the tail
};

SteadyState steady_state(const CommonArgs& args, std::size_t k, double epsilon) {
  const auto result =
      run_single(args.n, args.seed, br_config(k, epsilon, args.seed ^ k),
                 Score::kRoutingCost, args.run_options());
  return SteadyState{result.summary.mean, result.rewirings_per_epoch};
}

}  // namespace

void run_fig3_rewirings(const ParamReader& params, ResultSink& sink) {
  const auto args = CommonArgs::parse(params);
  const int timeline_epochs = params.get_int("timeline-epochs", 60);

  // --- Left: re-wirings per epoch over time ---
  sink.section("Fig 3 (left): re-wirings per epoch over time",
               "Total re-wirings in the overlay per one-minute epoch; "
               "columns are k = 2, 3, 4, 5, 8 as in the paper.");
  {
    // One BR overlay per k, all on one host; the per-epoch counts stream
    // out of the epoch-end subscriptions while the host drives everything.
    const std::vector<std::size_t> ks{2, 3, 4, 5, 8};
    host::OverlayHost host(args.n, args.seed);
    std::vector<std::vector<int>> rewires_per_epoch(ks.size());
    std::vector<host::SubscriptionId> subscriptions;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const auto handle = host.deploy(
          host::OverlaySpec(br_config(ks[i], 0.0, args.seed ^ ks[i])));
      subscriptions.push_back(host.on_epoch_end(
          handle, [&rewires_per_epoch, i](const host::EpochEvent& event) {
            rewires_per_epoch[i].push_back(event.rewired);
          }));
    }
    host.run_epochs(timeline_epochs);
    for (const auto id : subscriptions) host.unsubscribe(id);

    util::Table table({"minute", "k=2", "k=3", "k=4", "k=5", "k=8"});
    for (int e = 0; e < timeline_epochs; ++e) {
      if (!(e < 10 || (e + 1) % 5 == 0)) continue;
      std::vector<double> row{static_cast<double>(e + 1)};
      for (std::size_t i = 0; i < ks.size(); ++i) {
        row.push_back(
            static_cast<double>(rewires_per_epoch[i][static_cast<std::size_t>(e)]));
      }
      table.add_numeric_row(row, 0);
    }
    sink.table("timeline", table);
  }

  // --- Center and right: cost vs re-wirings as a function of k ---
  auto sweep = [&](double epsilon, const char* panel, const char* title,
                   const char* caption) {
    sink.text("\n");
    sink.section(title, caption);
    // Full-mesh reference cost for normalization.
    overlay::OverlayConfig mesh_config;
    mesh_config.policy = overlay::Policy::kFullMesh;
    mesh_config.k = args.n - 1;
    mesh_config.seed = args.seed;
    const double mesh_cost =
        run_single(args.n, args.seed, mesh_config, Score::kRoutingCost,
                   args.run_options())
            .summary.mean;

    util::Table table({"k", "cost/full-mesh", "re-wirings/epoch"});
    for (int k = args.k_min; k <= args.k_max; ++k) {
      const auto s = steady_state(args, static_cast<std::size_t>(k), epsilon);
      table.add_numeric_row(
          {static_cast<double>(k), s.cost / mesh_cost, s.rewirings}, 3);
    }
    sink.table(panel, table);
  };

  sweep(0.0, "steady_state", "Fig 3 (center): exact-threshold BR",
        "Normalized cost (vs full mesh) and steady-state re-wirings per "
        "epoch vs k.");
  sweep(0.1, "steady_state_eps", "Fig 3 (right): BR(0.1)",
        "Re-wiring only on >10% improvement: re-wirings collapse while the "
        "normalized cost barely moves.");
}

}  // namespace egoist::exp
