#include "exp/result_sink.hpp"

#include <ostream>

namespace egoist::exp {

namespace {

/// Escapes a string for inclusion in a JSON string literal.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

void write_string_array(std::ostream& os, const std::vector<std::string>& items) {
  os << "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    os << (i ? "," : "") << json_string(items[i]);
  }
  os << "]";
}

}  // namespace

// --- ConsoleSink ---

void ConsoleSink::section(const std::string& title, const std::string& caption) {
  os_ << "=== " << title << " ===\n" << caption << "\n\n";
}

void ConsoleSink::table(const std::string&, const util::Table& t) {
  t.write_ascii(os_);
}

void ConsoleSink::text(const std::string& raw) { os_ << raw; }

// --- JsonLinesSink ---

void JsonLinesSink::begin_scenario(const std::string& scenario,
                                   const std::string& experiment,
                                   const Params& params) {
  scenario_ = scenario;
  os_ << "{\"type\":\"scenario\",\"scenario\":" << json_string(scenario)
      << ",\"experiment\":" << json_string(experiment) << ",\"params\":{";
  for (std::size_t i = 0; i < params.size(); ++i) {
    os_ << (i ? "," : "") << json_string(params[i].first) << ":"
        << json_string(params[i].second);
  }
  os_ << "}}\n";
}

void JsonLinesSink::section(const std::string& title, const std::string& caption) {
  os_ << "{\"type\":\"section\",\"scenario\":" << json_string(scenario_)
      << ",\"title\":" << json_string(title) << ",\"caption\":"
      << json_string(caption) << "}\n";
}

void JsonLinesSink::row(const std::string& panel,
                        const std::vector<std::string>& columns,
                        const std::vector<std::string>& cells) {
  os_ << "{\"type\":\"row\",\"scenario\":" << json_string(scenario_)
      << ",\"panel\":" << json_string(panel) << ",\"columns\":";
  write_string_array(os_, columns);
  os_ << ",\"cells\":";
  write_string_array(os_, cells);
  os_ << "}\n";
}

void JsonLinesSink::table(const std::string& panel, const util::Table& t) {
  for (const auto& cells : t.cell_rows()) row(panel, t.column_names(), cells);
}

// --- TeeSink ---

void TeeSink::begin_scenario(const std::string& scenario,
                             const std::string& experiment, const Params& params) {
  for (auto* s : sinks_) s->begin_scenario(scenario, experiment, params);
}
void TeeSink::section(const std::string& title, const std::string& caption) {
  for (auto* s : sinks_) s->section(title, caption);
}
void TeeSink::table(const std::string& panel, const util::Table& t) {
  for (auto* s : sinks_) s->table(panel, t);
}
void TeeSink::row(const std::string& panel, const std::vector<std::string>& columns,
                  const std::vector<std::string>& cells) {
  for (auto* s : sinks_) s->row(panel, columns, cells);
}
void TeeSink::text(const std::string& raw) {
  for (auto* s : sinks_) s->text(raw);
}
void TeeSink::end_scenario() {
  for (auto* s : sinks_) s->end_scenario();
}

// --- BufferSink ---

void BufferSink::begin_scenario(const std::string& scenario,
                                const std::string& experiment,
                                const Params& params) {
  Event ev;
  ev.kind = Event::Kind::kBegin;
  ev.a = scenario;
  ev.b = experiment;
  ev.params = params;
  events_.push_back(std::move(ev));
}

void BufferSink::section(const std::string& title, const std::string& caption) {
  Event ev;
  ev.kind = Event::Kind::kSection;
  ev.a = title;
  ev.b = caption;
  events_.push_back(std::move(ev));
}

void BufferSink::table(const std::string& panel, const util::Table& t) {
  Event ev;
  ev.kind = Event::Kind::kTable;
  ev.a = panel;
  ev.table = std::make_shared<const util::Table>(t);
  events_.push_back(std::move(ev));
}

void BufferSink::row(const std::string& panel,
                     const std::vector<std::string>& columns,
                     const std::vector<std::string>& cells) {
  Event ev;
  ev.kind = Event::Kind::kRow;
  ev.a = panel;
  ev.columns = columns;
  ev.cells = cells;
  events_.push_back(std::move(ev));
}

void BufferSink::text(const std::string& raw) {
  Event ev;
  ev.kind = Event::Kind::kText;
  ev.a = raw;
  events_.push_back(std::move(ev));
}

void BufferSink::end_scenario() {
  Event ev;
  ev.kind = Event::Kind::kEnd;
  events_.push_back(std::move(ev));
}

void BufferSink::replay(ResultSink& sink) const {
  for (const auto& ev : events_) {
    switch (ev.kind) {
      case Event::Kind::kBegin: sink.begin_scenario(ev.a, ev.b, ev.params); break;
      case Event::Kind::kSection: sink.section(ev.a, ev.b); break;
      case Event::Kind::kTable: sink.table(ev.a, *ev.table); break;
      case Event::Kind::kRow: sink.row(ev.a, ev.columns, ev.cells); break;
      case Event::Kind::kText: sink.text(ev.a); break;
      case Event::Kind::kEnd: sink.end_scenario(); break;
    }
  }
}

}  // namespace egoist::exp
