#include "exp/churn_replay.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace egoist::exp {

std::vector<ChurnReplayResult> replay_churn(
    host::OverlayHost& host, const std::vector<host::OverlayHandle>& overlays,
    const ChurnReplayOptions& options) {
  if (options.epochs < 0) {
    throw std::invalid_argument("need epochs >= 0");
  }

  struct Accumulator {
    util::OnlineStats efficiency;
    int epoch = 0;  ///< epochs seen by this run
  };
  std::vector<Accumulator> accs(overlays.size());

  std::vector<host::SubscriptionId> subscriptions;
  subscriptions.reserve(overlays.size());
  for (std::size_t i = 0; i < overlays.size(); ++i) {
    subscriptions.push_back(host.on_epoch_end(
        overlays[i],
        [&host, &accs, &options, i](const host::EpochEvent& event) {
          auto& acc = accs[i];
          ++acc.epoch;
          if (acc.epoch <= options.warmup_epochs ||
              acc.epoch > options.epochs || event.online_count < 2) {
            return;
          }
          const auto snapshot = host.snapshot(event.overlay);
          for (double eff : snapshot.node_efficiencies()) {
            acc.efficiency.add(eff);
          }
        }));
  }

  for (std::size_t i = 0; i < overlays.size(); ++i) {
    if (accs[i].epoch < options.epochs) {
      host.run_epochs(overlays[i], options.epochs - accs[i].epoch);
    }
  }
  for (const auto id : subscriptions) host.unsubscribe(id);

  std::vector<ChurnReplayResult> results;
  results.reserve(overlays.size());
  for (std::size_t i = 0; i < overlays.size(); ++i) {
    results.push_back(ChurnReplayResult{accs[i].efficiency.mean(),
                                        host.total_rewirings(overlays[i])});
  }
  return results;
}

ChurnReplayResult replay_churn(host::OverlayHost& host,
                               host::OverlayHandle overlay,
                               const ChurnReplayOptions& options) {
  return replay_churn(host, std::vector<host::OverlayHandle>{overlay}, options)
      .front();
}

}  // namespace egoist::exp
