#include "exp/churn_replay.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace egoist::exp {

ChurnReplayResult replay_churn(overlay::Environment& env,
                               overlay::EgoistNetwork& net,
                               const churn::ChurnTrace& trace,
                               const ChurnReplayOptions& options) {
  const std::size_t n = net.size();
  if (trace.node_count() != n) {
    throw std::invalid_argument("churn trace node count != overlay size");
  }
  if (options.epochs < 0 || options.epoch_seconds <= 0.0) {
    throw std::invalid_argument("need epochs >= 0 and epoch_seconds > 0");
  }

  // Apply the trace's initial state.
  for (std::size_t v = 0; v < n; ++v) {
    if (!trace.initial_on()[v]) net.set_online(static_cast<int>(v), false);
  }

  std::size_t next_event = 0;
  util::OnlineStats efficiency;
  const auto& events = trace.events();
  const double slot = options.epoch_seconds / static_cast<double>(n);
  util::Rng order_rng(options.order_seed);
  for (int e = 0; e < options.epochs; ++e) {
    auto order = net.online_nodes();
    order_rng.shuffle(order);
    std::size_t turn = 0;
    for (std::size_t s = 0; s < n; ++s) {
      const double t = e * options.epoch_seconds + (s + 1) * slot;
      while (next_event < events.size() && events[next_event].time <= t) {
        net.set_online(events[next_event].node, events[next_event].on);
        ++next_event;
      }
      env.advance(slot);
      if (turn < order.size() && net.online_count() >= 2) {
        if (net.is_online(order[turn])) net.run_node(order[turn]);
        ++turn;
      }
    }
    if (e < options.warmup_epochs || net.online_count() < 2) continue;
    for (double eff : net.node_efficiencies()) efficiency.add(eff);
  }
  return ChurnReplayResult{efficiency.mean(), net.total_rewirings()};
}

}  // namespace egoist::exp
