#include "exp/params.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/flags.hpp"

namespace egoist::exp {

namespace {
void record(std::vector<std::pair<std::string, std::string>>& defaults,
            const std::string& key, const std::string& def) {
  for (const auto& [k, _] : defaults) {
    if (k == key) return;
  }
  defaults.emplace_back(key, def);
}
}  // namespace

const std::string* ParamReader::find_and_mark(const std::string& key) const {
  if (std::find(read_.begin(), read_.end(), key) == read_.end()) {
    read_.push_back(key);
  }
  return spec_->find(key);
}

std::string ParamReader::get_string(const std::string& key,
                                    const std::string& def) const {
  record(defaults_, key, def);
  const auto* v = find_and_mark(key);
  return v ? *v : def;
}

int ParamReader::get_int(const std::string& key, int def) const {
  record(defaults_, key, std::to_string(def));
  const auto* v = find_and_mark(key);
  if (!v) return def;
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario knob '" + key +
                                "' expects an integer, got '" + *v + "'");
  }
}

double ParamReader::get_double(const std::string& key, double def) const {
  {
    std::ostringstream os;
    os << def;
    record(defaults_, key, os.str());
  }
  const auto* v = find_and_mark(key);
  if (!v) return def;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario knob '" + key +
                                "' expects a number, got '" + *v + "'");
  }
}

bool ParamReader::get_bool(const std::string& key, bool def) const {
  record(defaults_, key, def ? "true" : "false");
  const auto* v = find_and_mark(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("scenario knob '" + key +
                              "' expects a boolean, got '" + *v + "'");
}

std::uint64_t ParamReader::get_seed(const std::string& key,
                                    std::uint64_t def) const {
  record(defaults_, key, std::to_string(def));
  const auto* v = find_and_mark(key);
  if (!v) return def;
  try {
    std::size_t used = 0;
    const std::uint64_t parsed = std::stoull(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario knob '" + key +
                                "' expects a seed, got '" + *v + "'");
  }
}

std::vector<std::string> ParamReader::unread() const {
  std::vector<std::string> out;
  for (const auto& [key, _] : spec_->params) {
    if (std::find(read_.begin(), read_.end(), key) == read_.end()) {
      out.push_back(key);
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParamReader::known() const {
  auto out = defaults_;
  std::sort(out.begin(), out.end());
  return out;
}

void ParamReader::finish() const {
  const auto leftover = unread();
  if (leftover.empty()) return;
  std::vector<std::string> names;
  for (const auto& [key, _] : defaults_) names.push_back(key);
  // Knobs can arrive from the scenario file or as --flag overrides, so the
  // message names both sources and the hint also covers the CLI control
  // flags (mirrors exp/cli.cpp) — a misspelled --jsonl lands here too.
  static const std::vector<std::string> kControlFlags{
      "scenario", "experiment", "jsonl", "jobs", "list", "help"};
  std::string message = "unknown knob '" + leftover.front() +
                        "' for experiment " + spec_->experiment +
                        " (set in scenario '" + spec_->name +
                        "' or as a --flag override)";
  if (const auto hint = util::closest_name(leftover.front(), names)) {
    message += " — did you mean '" + *hint + "'?";
  } else if (const auto control =
                 util::closest_name(leftover.front(), kControlFlags)) {
    message += " — did you mean the control flag --" + *control + "?";
  }
  throw std::invalid_argument(message);
}

}  // namespace egoist::exp
