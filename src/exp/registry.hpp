// The experiment registry: every paper figure (and the perf/ablation
// studies) is one named experiment with a run function over (ParamReader,
// ResultSink). Scenario files select an experiment by name; the thin
// bench/ binaries are one registry lookup each. docs/EXPERIMENTS.md is the
// human-readable index of this table.
#pragma once

#include <string>
#include <vector>

#include "exp/params.hpp"
#include "exp/result_sink.hpp"

namespace egoist::exp {

struct Experiment {
  std::string name;     ///< registry key ("fig2_churn", "steady_state", ...)
  std::string summary;  ///< one-line description for --list / --help
  void (*run)(const ParamReader& params, ResultSink& sink);
};

/// All registered experiments, in documentation order.
const std::vector<Experiment>& experiments();

/// Looks up an experiment; nullptr when the name is unknown.
const Experiment* find_experiment(const std::string& name);

}  // namespace egoist::exp
