// Staggered, unsynchronized epoch measurement under a churn trace, on the
// OverlayHost API.
//
// The paper's churn experiments (§4.4, Fig 2) do not run synchronized
// epochs: on average one node re-evaluates its wiring every T/n seconds,
// with churn events applied in time order between evaluations. That is
// what gives BR its O(T/n) healing time — any node's re-wiring can
// reconnect a partitioned BR overlay, while k-Random/k-Regular must wait
// for the specific cut nodes' turns.
//
// The scheduling itself now lives in host::OverlayHost's staggered mode
// (deploy with OverlaySpec::staggered(order_seed).churn(trace)); what
// remains here is the measurement convention the churn figures share:
// sample every online node's efficiency at each post-warmup epoch end,
// skipping epochs that end with fewer than two nodes online.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/common.hpp"
#include "host/overlay_host.hpp"

namespace egoist::exp {

struct ChurnReplayOptions {
  int epochs = 40;         ///< total epochs to run
  int warmup_epochs = 10;  ///< epochs excluded from the efficiency mean
};

struct ChurnReplayResult {
  double mean_efficiency = 0.0;       ///< over per-node samples of the tail epochs
  std::uint64_t total_rewirings = 0;  ///< the overlay's lifetime count after the run
};

/// Drives every overlay in `overlays` (deployed staggered, typically with
/// a churn trace) for `options.epochs` more epochs and collects each one's
/// mean tail efficiency through epoch-end subscriptions. Epochs with fewer
/// than two online nodes are never sampled. Fully deterministic for fixed
/// specs.
std::vector<ChurnReplayResult> replay_churn(
    host::OverlayHost& host, const std::vector<host::OverlayHandle>& overlays,
    const ChurnReplayOptions& options);

/// Single-overlay convenience overload.
ChurnReplayResult replay_churn(host::OverlayHost& host,
                               host::OverlayHandle overlay,
                               const ChurnReplayOptions& options);

}  // namespace egoist::exp
