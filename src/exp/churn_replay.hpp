// Staggered, unsynchronized epoch scheduling under a churn trace.
//
// The paper's churn experiments (§4.4, Fig 2) do not run synchronized
// epochs: on average one node re-evaluates its wiring every T/n seconds,
// with churn events applied in time order between evaluations. That is
// what gives BR its O(T/n) healing time — any node's re-wiring can
// reconnect a partitioned BR overlay, while k-Random/k-Regular must wait
// for the specific cut nodes' turns. This loop used to be duplicated in
// fig2_churn and ablation_design_choices; it is now the one scheduling
// implementation both experiments (and the tests) share.
#pragma once

#include <cstdint>

#include "churn/churn.hpp"
#include "overlay/network.hpp"

namespace egoist::exp {

struct ChurnReplayOptions {
  int epochs = 40;              ///< total epochs to run
  int warmup_epochs = 10;       ///< epochs excluded from the efficiency mean
  double epoch_seconds = 60.0;  ///< T: one node evaluates every T/n seconds
  std::uint64_t order_seed = 0; ///< per-epoch evaluation-order shuffle stream
};

struct ChurnReplayResult {
  double mean_efficiency = 0.0;     ///< over per-node samples of the tail epochs
  std::uint64_t total_rewirings = 0;  ///< net.total_rewirings() after the run
};

/// Applies `trace`'s initial ON/OFF state to `net`, then replays its events
/// in time order interleaved with staggered per-node evaluations (one slot
/// of T/n seconds per node per epoch, evaluation order re-shuffled each
/// epoch from `order_seed`). Epochs with fewer than two online nodes are
/// never sampled. Fully deterministic for fixed inputs.
ChurnReplayResult replay_churn(overlay::Environment& env,
                               overlay::EgoistNetwork& net,
                               const churn::ChurnTrace& trace,
                               const ChurnReplayOptions& options);

}  // namespace egoist::exp
