#include "exp/runner.hpp"

#include <stdexcept>

#include "exp/params.hpp"
#include "exp/registry.hpp"
#include "util/flags.hpp"

namespace egoist::exp {

void run_scenario(const ScenarioSpec& spec, ResultSink& sink) {
  if (!spec.axes.empty()) {
    throw std::invalid_argument(
        "scenario '" + spec.name +
        "' declares sweep axes; expand_grid/run_sweep it instead");
  }
  const Experiment* experiment = find_experiment(spec.experiment);
  if (!experiment) {
    std::vector<std::string> names;
    for (const auto& e : experiments()) names.push_back(e.name);
    std::string message = "unknown experiment: " + spec.experiment;
    if (const auto hint = util::closest_name(spec.experiment, names)) {
      message += " (did you mean " + *hint + "?)";
    }
    throw std::invalid_argument(message);
  }
  ParamReader params(spec);
  sink.begin_scenario(spec.name, spec.experiment, spec.params);
  experiment->run(params, sink);
  params.finish();  // after the run, so every knob the experiment reads counts
  sink.end_scenario();
}

}  // namespace egoist::exp
