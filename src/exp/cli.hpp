// main() bodies for the thin experiment binaries.
//
// Every bench/fig* binary is one call to run_scenario_main: it loads the
// figure's checked-in scenario file (scenarios/<name>.scn, located via the
// build-time EGOIST_SCENARIO_DIR), layers any --key=value flags on top as
// knob overrides, and runs the result through the scenario driver.
// bench/egoist_sweep is run_sweep_main: the same machinery for an
// arbitrary scenario file or registry experiment, plus grid execution
// (--jobs) and experiment discovery (--list).
#pragma once

#include <string>

namespace egoist::exp {

/// Shared control flags (everything else overrides scenario knobs):
///   --scenario FILE   run this scenario file instead of the default
///   --jsonl FILE      also stream JSON-lines results to FILE ("-" = stdout)
///   --jobs N          grid cells run N at a time (0 = hardware threads)
///   --help            description, scenario path and knobs
/// Returns the process exit code (0 ok, 1 on any error).
int run_scenario_main(const std::string& scenario_name, int argc,
                      const char* const* argv, const std::string& description);

/// egoist_sweep: --scenario FILE or --experiment NAME (+ the control flags
/// above, plus --list to enumerate registered experiments).
int run_sweep_main(int argc, const char* const* argv);

/// The checked-in scenario file for `name`: EGOIST_SCENARIO_DIR/<name>.scn.
std::string default_scenario_path(const std::string& name);

}  // namespace egoist::exp
