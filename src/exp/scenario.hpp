// Declarative experiment scenarios.
//
// A ScenarioSpec names one experiment from the registry (exp/registry.hpp)
// plus its knobs as ordered key=value string pairs. Specs come from
// scenario files — one "key = value" per line, '#' comments, see
// scenarios/*.scn and docs/EXPERIMENTS.md — with CLI flags layered on top
// as overrides. Keys prefixed "sweep." declare grid axes: their
// comma-separated values are expanded into one cell per combination by
// expand_grid(), which the SweepRunner (exp/sweep.hpp) executes.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace egoist::exp {

using Params = std::vector<std::pair<std::string, std::string>>;

struct ScenarioSpec {
  std::string name;        ///< display name: file stem, or the experiment name
  std::string experiment;  ///< registry key, e.g. "fig1_delay_ping"
  Params params;           ///< knobs, in declaration order
  Params axes;             ///< grid axes ("sweep.<key>" entries, prefix stripped)

  /// Sets or overrides a knob. Keys starting with "sweep." go to axes
  /// (prefix stripped); the reserved key "experiment" retargets the spec.
  void set(const std::string& key, const std::string& value);

  /// The current value of a knob, if set.
  const std::string* find(const std::string& key) const;
};

/// Parses scenario-file syntax. Throws std::invalid_argument on malformed
/// lines; `where` names the source (file path) for error messages.
ScenarioSpec parse_scenario_text(const std::string& text, const std::string& name,
                                 const std::string& where = "<scenario>");

/// Loads and parses a scenario file; the spec's name is the file stem.
/// Throws std::runtime_error when the file cannot be read.
ScenarioSpec load_scenario_file(const std::string& path);

/// Expands the grid axes into one fully-resolved cell per combination, in
/// declaration order with the last axis varying fastest. Cells are named
/// "<name>[k1=v1,k2=v2]" and carry no axes of their own. A spec without
/// axes expands to itself, unchanged.
std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& spec);

/// Splits a comma-separated value into trimmed items ("a, b" -> {"a","b"});
/// the splitter behind grid axes and list-valued knobs (perf's n-list).
std::vector<std::string> split_csv(const std::string& csv);

}  // namespace egoist::exp
