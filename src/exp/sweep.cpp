#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/runner.hpp"

namespace egoist::exp {

void run_sweep(const ScenarioSpec& spec, const SweepOptions& options,
               ResultSink& sink) {
  const auto cells = expand_grid(spec);

  std::size_t jobs;
  if (options.jobs > 0) {
    jobs = static_cast<std::size_t>(options.jobs);
  } else if (options.jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  } else {
    throw std::invalid_argument("jobs must be >= 0");
  }
  jobs = std::min(jobs, cells.size());

  std::vector<BufferSink> buffers(cells.size());
  std::vector<std::exception_ptr> errors(cells.size());

  if (jobs <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      try {
        run_scenario(cells[i], buffers[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= cells.size()) return;
        try {
          run_scenario(cells[i], buffers[i]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  // Deterministic merge: cell order, stopping at the first failed cell so
  // output is a prefix of the sequential run's output even on error.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
    buffers[i].replay(sink);
  }
}

}  // namespace egoist::exp
