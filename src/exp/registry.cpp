#include "exp/registry.hpp"

#include "exp/experiments/experiments.hpp"

namespace egoist::exp {

const std::vector<Experiment>& experiments() {
  static const std::vector<Experiment> kExperiments{
      {"fig1_delay_ping",
       "Fig 1 (top-left): individual cost vs k, delay via ping, normalized "
       "to BR, with the full-mesh reference",
       &run_fig1_delay_ping},
      {"fig1_delay_coords",
       "Fig 1 (top-right): individual cost vs k, delay from Vivaldi "
       "coordinates, normalized to BR",
       &run_fig1_delay_coords},
      {"fig1_node_load",
       "Fig 1 (bottom-left): individual cost vs k under the node CPU-load "
       "metric, normalized to BR",
       &run_fig1_node_load},
      {"fig1_avail_bw",
       "Fig 1 (bottom-right): aggregate available bandwidth vs k, each "
       "policy normalized to BR",
       &run_fig1_avail_bw},
      {"fig2_churn",
       "Fig 2: node efficiency under trace-driven and parameterized churn, "
       "normalized to BR",
       &run_fig2_churn},
      {"fig3_rewirings",
       "Fig 3: BR re-wiring dynamics — per-epoch timeline, steady state vs "
       "k, BR(eps) sensitivity",
       &run_fig3_rewirings},
      {"fig4_free_riders",
       "Fig 4: robustness to free riders announcing 2x-inflated link costs",
       &run_fig4_free_riders},
      {"fig5_8_sampling",
       "Figs 5-8: scalability via sampling — a newcomer joins each base "
       "overlay from a sample of m nodes",
       &run_fig5_8_sampling},
      {"fig10_multipath_bw",
       "Fig 10: available-bandwidth gain from multipath transfer over a "
       "bandwidth-metric BR overlay",
       &run_fig10_multipath_bw},
      {"fig11_disjoint_paths",
       "Fig 11: edge-disjoint overlay paths between random pairs vs k over "
       "a delay-metric BR overlay",
       &run_fig11_disjoint_paths},
      {"overhead_accounting",
       "section 4.3 overhead accounting: measured protocol byte counts vs "
       "the paper's closed-form per-node loads",
       &run_overhead_accounting},
      {"ablation_design_choices",
       "ablations for the section 3.3-3.4 design choices: ring-cycle vs "
       "MST backbone, delayed vs immediate re-wiring, audits on/off",
       &run_ablation_design_choices},
      {"perf_epoch_scaling",
       "epoch wall-time scaling of BR/HybridBR on the legacy residual path "
       "vs the CSR PathEngine, with machine-readable JSON output",
       &run_perf_epoch_scaling},
      {"steady_state",
       "generic sweep cell: one policy on one metric at one (n, k, seed) "
       "point, reporting the tail-epoch score",
       &run_steady_state},
      {"scale_frontier",
       "section 5 scale regime: BR epochs at n up to 20k on the procedural "
       "underlay with sampled candidates, landmark objectives and memory "
       "telemetry",
       &run_scale_frontier},
      {"serve_load",
       "concurrent snapshot serving: reader threads replay route lookups "
       "against a RouteService while churned BR epochs publish snapshots, "
       "reporting qps and p50/p99/p999 latency",
       &run_serve_load},
      {"serve_remote",
       "out-of-process serving: spawns the egoistd daemon and hammers it "
       "over loopback TCP and a Unix-domain socket with pipelined "
       "wire-protocol clients, side by side with the in-process leg",
       &run_serve_remote},
  };
  return kExperiments;
}

const Experiment* find_experiment(const std::string& name) {
  for (const auto& experiment : experiments()) {
    if (experiment.name == name) return &experiment;
  }
  return nullptr;
}

}  // namespace egoist::exp
