// Typed access to a scenario's knobs, with the same typo safety as
// util::Flags: every key an experiment understands is recorded (with its
// default) as it is read, and finish() rejects keys that were never read,
// suggesting the closest known knob. This is what makes a misspelled knob
// in a scenario file or on the CLI fail loudly instead of silently running
// the default configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace egoist::exp {

class ParamReader {
 public:
  explicit ParamReader(const ScenarioSpec& spec) : spec_(&spec) {}

  const ScenarioSpec& spec() const { return *spec_; }

  std::string get_string(const std::string& key, const std::string& def) const;
  int get_int(const std::string& key, int def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def = false) const;
  std::uint64_t get_seed(const std::string& key, std::uint64_t def) const;

  /// Keys present in the spec that were never read.
  std::vector<std::string> unread() const;

  /// Every (key, default) recorded by the get_* calls so far, in key order.
  std::vector<std::pair<std::string, std::string>> known() const;

  /// Throws std::invalid_argument on any unread key, naming the scenario
  /// and suggesting the closest known knob. Call after the experiment ran
  /// (i.e. after every get_* it will ever perform).
  void finish() const;

 private:
  const std::string* find_and_mark(const std::string& key) const;

  const ScenarioSpec* spec_;
  mutable std::vector<std::string> read_;
  mutable std::vector<std::pair<std::string, std::string>> defaults_;
};

}  // namespace egoist::exp
