// ScenarioRunner: one scenario in, structured results out.
#pragma once

#include "exp/result_sink.hpp"
#include "exp/scenario.hpp"

namespace egoist::exp {

/// Runs one fully-resolved scenario (no grid axes) through the registry:
/// emits begin_scenario, runs the experiment, then rejects unread knobs
/// (typo safety) and closes the scenario. Throws std::invalid_argument on
/// an unknown experiment (with a closest-name hint), on unread knobs, and
/// whatever the experiment itself throws.
void run_scenario(const ScenarioSpec& spec, ResultSink& sink);

}  // namespace egoist::exp
