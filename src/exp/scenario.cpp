#include "exp/scenario.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace egoist::exp {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

void set_in(Params& params, const std::string& key, const std::string& value) {
  for (auto& [k, v] : params) {
    if (k == key) {
      v = value;
      return;
    }
  }
  params.emplace_back(key, value);
}

}  // namespace

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(trim(item));
  return out;
}

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  if (key == "experiment") {
    experiment = value;
    return;
  }
  constexpr const char kSweepPrefix[] = "sweep.";
  if (key.rfind(kSweepPrefix, 0) == 0) {
    const std::string axis = key.substr(sizeof(kSweepPrefix) - 1);
    if (axis.empty()) throw std::invalid_argument("empty sweep axis name");
    set_in(axes, axis, value);
    return;
  }
  set_in(params, key, value);
}

const std::string* ScenarioSpec::find(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

ScenarioSpec parse_scenario_text(const std::string& text, const std::string& name,
                                 const std::string& where) {
  ScenarioSpec spec;
  spec.name = name;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(where + ":" + std::to_string(line_no) +
                                  ": expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument(where + ":" + std::to_string(line_no) +
                                  ": empty key");
    }
    spec.set(key, value);
  }
  if (spec.experiment.empty()) {
    throw std::invalid_argument(where + ": scenario sets no 'experiment'");
  }
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read scenario file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  // Name the spec after the file stem: "scenarios/fig2_churn.scn" -> fig2_churn.
  std::string stem = path;
  const auto slash = stem.find_last_of("/\\");
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const auto dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  return parse_scenario_text(text.str(), stem, path);
}

std::vector<ScenarioSpec> expand_grid(const ScenarioSpec& spec) {
  if (spec.axes.empty()) return {spec};

  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
  for (const auto& [key, csv] : spec.axes) {
    auto values = split_csv(csv);
    if (values.empty()) {
      throw std::invalid_argument("sweep axis '" + key + "' has no values");
    }
    axes.emplace_back(key, std::move(values));
  }

  std::vector<ScenarioSpec> cells;
  std::vector<std::size_t> index(axes.size(), 0);
  while (true) {
    ScenarioSpec cell;
    cell.experiment = spec.experiment;
    cell.params = spec.params;
    std::string suffix;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const auto& [key, values] = axes[a];
      cell.set(key, values[index[a]]);
      suffix += (a ? "," : "") + key + "=" + values[index[a]];
    }
    cell.name = spec.name + "[" + suffix + "]";
    cells.push_back(std::move(cell));

    // Odometer increment, last axis fastest.
    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++index[a] < axes[a].second.size()) break;
      index[a] = 0;
      if (a == 0) return cells;
    }
  }
}

}  // namespace egoist::exp
