// Shared measurement loop for the figure experiments, on the OverlayHost
// API.
//
// Each figure experiment reconstructs one figure of the paper: it deploys
// one overlay per policy on a shared host (one substrate, per-overlay
// measurement planes — the paper's concurrent per-policy PlanetLab
// agents), drives wiring epochs through the host's event loop, samples the
// per-node scores over the tail of the run through epoch-end subscriptions
// and WiringSnapshots, and emits the same normalized series the figure
// shows.
#pragma once

#include <string>
#include <vector>

#include "exp/params.hpp"
#include "host/overlay_host.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace egoist::exp {

/// What a run measures.
enum class Score {
  kRoutingCost,   ///< uniform routing cost (delay / load), lower is better
  kBandwidth,     ///< mean bottleneck bandwidth, higher is better
  kEfficiency,    ///< mean 1/d efficiency (churn experiments)
};

struct RunOptions {
  int warmup_epochs = 20;   ///< epochs before sampling starts
  int sample_epochs = 10;   ///< epochs whose scores are averaged
  double epoch_seconds = 60.0;
};

struct RunResult {
  util::Summary summary;           ///< over per-node scores (paper's mean + CI)
  std::vector<double> node_means;  ///< per-node mean over sampled epochs
  double rewirings_per_epoch = 0.0;
};

/// Reads `score` out of an epoch-end snapshot (scores are ordered like
/// snapshot.online_nodes()).
std::vector<double> snapshot_scores(const host::WiringSnapshot& snapshot,
                                    Score score);

/// Drives every overlay in `overlays` for warmup + sample more epochs on
/// `host` (concurrent overlays advance together on the shared clock) and
/// collects the chosen score over the sampled tail, one RunResult per
/// overlay. The overlays must have been deployed with
/// epoch_period == options.epoch_seconds.
std::vector<RunResult> run_and_score(host::OverlayHost& host,
                                     const std::vector<host::OverlayHandle>& overlays,
                                     Score score, const RunOptions& options);

/// Single-overlay convenience overload.
RunResult run_and_score(host::OverlayHost& host, host::OverlayHandle overlay,
                        Score score, const RunOptions& options);

/// The classic one-shot deployment: a fresh single-overlay host (substrate
/// seeded with `env_seed`), one overlay from `config`, run and scored.
RunResult run_single(std::size_t n, std::uint64_t env_seed,
                     const overlay::OverlayConfig& config, Score score,
                     const RunOptions& options);

/// As above, on an explicit substrate configuration (underlay backend,
/// sparse-plane threshold, generator knobs).
RunResult run_single(std::size_t n, std::uint64_t env_seed,
                     const overlay::EnvironmentConfig& env_config,
                     const overlay::OverlayConfig& config, Score score,
                     const RunOptions& options);

/// Reads the shared substrate knob `underlay` (dense | procedural) into an
/// EnvironmentConfig. dense is the default, so experiments that parse this
/// knob keep byte-identical default outputs.
overlay::EnvironmentConfig parse_underlay(const ParamReader& params);

/// Standard knobs shared by the figure experiments.
struct CommonArgs {
  std::size_t n = 50;
  std::uint64_t seed = 42;
  int warmup = 20;
  int sample = 10;
  int k_min = 2;
  int k_max = 8;

  static CommonArgs parse(const ParamReader& params);
  RunOptions run_options() const;
};

}  // namespace egoist::exp
