// Shared measurement loop for the figure experiments.
//
// Each figure experiment reconstructs one figure of the paper: it deploys
// one overlay per policy on a shared Environment, runs wiring epochs with
// the substrate advancing in between, samples the per-node scores over the
// tail of the run (the paper averages over long PlanetLab runs), and
// emits the same normalized series the figure shows. This used to live in
// bench/common/; it moved here when the benches became thin wrappers over
// the scenario driver.
#pragma once

#include <string>
#include <vector>

#include "exp/params.hpp"
#include "overlay/network.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace egoist::exp {

/// What a run measures.
enum class Score {
  kRoutingCost,   ///< uniform routing cost (delay / load), lower is better
  kBandwidth,     ///< mean bottleneck bandwidth, higher is better
  kEfficiency,    ///< mean 1/d efficiency (churn experiments)
};

struct RunOptions {
  int warmup_epochs = 20;   ///< epochs before sampling starts
  int sample_epochs = 10;   ///< epochs whose scores are averaged
  double epoch_seconds = 60.0;
};

struct RunResult {
  util::Summary summary;           ///< over per-node scores (paper's mean + CI)
  std::vector<double> node_means;  ///< per-node mean over sampled epochs
  double rewirings_per_epoch = 0.0;
};

/// Runs `net` for warmup + sample epochs, advancing `env` by epoch_seconds
/// before each epoch, and collects the chosen score.
RunResult run_and_score(overlay::Environment& env, overlay::EgoistNetwork& net,
                        Score score, const RunOptions& options);

/// Standard knobs shared by the figure experiments.
struct CommonArgs {
  std::size_t n = 50;
  std::uint64_t seed = 42;
  int warmup = 20;
  int sample = 10;
  int k_min = 2;
  int k_max = 8;

  static CommonArgs parse(const ParamReader& params);
  RunOptions run_options() const;
};

}  // namespace egoist::exp
