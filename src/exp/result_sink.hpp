// Structured result emission for the scenario driver.
//
// Every experiment reports through one ResultSink: sections (figure
// headers), result tables, free-form console text (footnotes), and — for
// experiments with custom console layouts — bare structured rows. Console
// rendering and machine-readable JSON lines are two implementations of the
// same interface, so a run can print exactly what the old hand-rolled
// binaries printed while simultaneously streaming rows to a .jsonl file.
//
// JSON-lines schema (one object per line; docs/EXPERIMENTS.md):
//   {"type":"scenario","scenario":S,"experiment":E,"params":{k:v,...}}
//   {"type":"section","scenario":S,"title":T,"caption":C}
//   {"type":"row","scenario":S,"panel":P,"columns":[...],"cells":[...]}
// Cells are the formatted strings the console table shows, so sequential
// and parallel sweeps can be byte-compared for trajectory drift.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "util/table.hpp"

namespace egoist::exp {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Scenario metadata; called once, before any other event.
  virtual void begin_scenario(const std::string& scenario,
                              const std::string& experiment,
                              const Params& params) = 0;

  /// A figure/panel header ("=== title ===" + caption on the console).
  virtual void section(const std::string& title, const std::string& caption) = 0;

  /// One result table; `panel` is a stable id for structured consumers.
  virtual void table(const std::string& panel, const util::Table& t) = 0;

  /// One structured row without console rendering (for experiments that
  /// lay out their console output by hand, e.g. perf_epoch_scaling).
  virtual void row(const std::string& panel,
                   const std::vector<std::string>& columns,
                   const std::vector<std::string>& cells) = 0;

  /// Free-form console text, written verbatim (include trailing newlines).
  /// Structured sinks ignore it.
  virtual void text(const std::string& raw) = 0;

  virtual void end_scenario() {}
};

/// Renders to a terminal in the pre-driver bench binaries' format. For
/// the all-numeric figure tables the bytes are identical to the pre-driver
/// output; tables with text columns differ only by Table's text-column
/// left-alignment.
class ConsoleSink final : public ResultSink {
 public:
  explicit ConsoleSink(std::ostream& os) : os_(os) {}

  void begin_scenario(const std::string&, const std::string&,
                      const Params&) override {}
  void section(const std::string& title, const std::string& caption) override;
  void table(const std::string& panel, const util::Table& t) override;
  void row(const std::string&, const std::vector<std::string>&,
           const std::vector<std::string>&) override {}
  void text(const std::string& raw) override;

 private:
  std::ostream& os_;
};

/// Streams the structured schema above, one JSON object per line.
class JsonLinesSink final : public ResultSink {
 public:
  explicit JsonLinesSink(std::ostream& os) : os_(os) {}

  void begin_scenario(const std::string& scenario, const std::string& experiment,
                      const Params& params) override;
  void section(const std::string& title, const std::string& caption) override;
  void table(const std::string& panel, const util::Table& t) override;
  void row(const std::string& panel, const std::vector<std::string>& columns,
           const std::vector<std::string>& cells) override;
  void text(const std::string&) override {}

 private:
  std::ostream& os_;
  std::string scenario_;
};

/// Fans every event out to several sinks (console + jsonl, typically).
class TeeSink final : public ResultSink {
 public:
  explicit TeeSink(std::vector<ResultSink*> sinks) : sinks_(std::move(sinks)) {}

  void begin_scenario(const std::string& scenario, const std::string& experiment,
                      const Params& params) override;
  void section(const std::string& title, const std::string& caption) override;
  void table(const std::string& panel, const util::Table& t) override;
  void row(const std::string& panel, const std::vector<std::string>& columns,
           const std::vector<std::string>& cells) override;
  void text(const std::string& raw) override;
  void end_scenario() override;

 private:
  std::vector<ResultSink*> sinks_;
};

/// Records events for later replay — the sweep runner gives each parallel
/// cell a BufferSink so the merged output is in deterministic cell order.
class BufferSink final : public ResultSink {
 public:
  void begin_scenario(const std::string& scenario, const std::string& experiment,
                      const Params& params) override;
  void section(const std::string& title, const std::string& caption) override;
  void table(const std::string& panel, const util::Table& t) override;
  void row(const std::string& panel, const std::vector<std::string>& columns,
           const std::vector<std::string>& cells) override;
  void text(const std::string& raw) override;
  void end_scenario() override;

  /// Re-emits every recorded event into `sink`, in order.
  void replay(ResultSink& sink) const;

  bool empty() const { return events_.empty(); }

 private:
  struct Event {
    enum class Kind { kBegin, kSection, kTable, kRow, kText, kEnd } kind;
    std::string a, b;  // scenario/experiment, title/caption, panel, raw
    Params params;
    std::shared_ptr<const util::Table> table;
    std::vector<std::string> columns, cells;
  };
  std::vector<Event> events_;
};

}  // namespace egoist::exp
