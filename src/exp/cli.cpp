#include "exp/cli.hpp"

#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "util/flags.hpp"

#ifndef EGOIST_SCENARIO_DIR
#define EGOIST_SCENARIO_DIR "scenarios"
#endif

namespace egoist::exp {

namespace {

bool is_control_flag(const std::string& name) {
  return name == "scenario" || name == "experiment" || name == "jsonl" ||
         name == "jobs" || name == "list" || name == "help";
}

/// Applies every non-control flag as a scenario knob override.
void apply_overrides(ScenarioSpec& spec, const util::Flags& flags) {
  for (const auto& [key, value] : flags.consume_all()) {
    if (!is_control_flag(key)) spec.set(key, value);
  }
}

/// Runs `spec` (grid-aware) to the console, plus JSON lines when asked.
/// "--jsonl -" claims stdout for the JSON stream, so the console tables
/// are suppressed to keep it one parseable object per line.
void run_to_sinks(const ScenarioSpec& spec, int jobs, const std::string& jsonl) {
  ConsoleSink console(std::cout);
  std::vector<ResultSink*> sinks;
  if (jsonl != "-") sinks.push_back(&console);
  std::ofstream jsonl_file;
  std::unique_ptr<JsonLinesSink> jsonl_sink;
  if (!jsonl.empty()) {
    if (jsonl == "-") {
      jsonl_sink = std::make_unique<JsonLinesSink>(std::cout);
    } else {
      jsonl_file.open(jsonl);
      if (!jsonl_file) throw std::runtime_error("cannot write " + jsonl);
      jsonl_sink = std::make_unique<JsonLinesSink>(jsonl_file);
    }
    sinks.push_back(jsonl_sink.get());
  }
  TeeSink tee(sinks);
  SweepOptions options;
  options.jobs = jobs;
  run_sweep(spec, options, tee);
}

void print_knobs(const ScenarioSpec& spec) {
  if (!spec.params.empty()) {
    std::cout << "knobs (scenario file values; any --key=value overrides):\n";
    for (const auto& [key, value] : spec.params) {
      std::cout << "  --" << key << "  (" << value << ")\n";
    }
  }
  if (!spec.axes.empty()) {
    std::cout << "sweep axes:\n";
    for (const auto& [key, values] : spec.axes) {
      std::cout << "  --sweep." << key << "  (" << values << ")\n";
    }
  }
}

void print_control_flags() {
  std::cout << "control flags:\n"
               "  --scenario FILE  (run this scenario file)\n"
               "  --jsonl FILE     (also stream JSON-lines results; - = stdout)\n"
               "  --jobs N         (parallel grid cells; 0 = hardware threads)\n"
               "  --help           (this message)\n";
}

}  // namespace

std::string default_scenario_path(const std::string& name) {
  return std::string(EGOIST_SCENARIO_DIR) + "/" + name + ".scn";
}

int run_scenario_main(const std::string& scenario_name, int argc,
                      const char* const* argv, const std::string& description) {
  try {
    const util::Flags flags(argc, argv);
    // egoist_sweep-only flags must not be silently swallowed here — a user
    // who passes --experiment believes they retargeted the run.
    for (const char* sweep_only : {"experiment", "list"}) {
      if (flags.get(sweep_only)) {
        throw std::invalid_argument(
            std::string("--") + sweep_only +
            " is an egoist_sweep flag; this binary always runs the '" +
            scenario_name + "' scenario (use --scenario FILE to substitute "
            "a file, or egoist_sweep to run anything)");
      }
    }
    const std::string path =
        flags.get_string("scenario", default_scenario_path(scenario_name));
    const std::string jsonl = flags.get_string("jsonl", "");
    const int jobs = flags.get_int("jobs", 1);

    if (flags.help_requested()) {
      std::cout << description << "\n\n"
                << "scenario file: " << path << "\n";
      try {
        print_knobs(load_scenario_file(path));
      } catch (const std::exception&) {
        // Help still works when the scenario file is not readable.
      }
      print_control_flags();
      return 0;
    }

    ScenarioSpec spec = load_scenario_file(path);
    apply_overrides(spec, flags);
    run_to_sinks(spec, jobs, jsonl);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

int run_sweep_main(int argc, const char* const* argv) {
  try {
    const util::Flags flags(argc, argv);
    const std::string path = flags.get_string("scenario", "");
    const std::string experiment = flags.get_string("experiment", "");
    const std::string jsonl = flags.get_string("jsonl", "");
    const int jobs = flags.get_int("jobs", 1);
    const bool list = flags.get_bool("list");

    if (flags.help_requested()) {
      std::cout
          << "egoist_sweep: run any experiment scenario or grid sweep.\n\n"
             "usage:\n"
             "  egoist_sweep --scenario FILE [--key=value ...]\n"
             "  egoist_sweep --experiment NAME [--key=value ...]\n"
             "  egoist_sweep --list\n\n"
             "Scenario files are key = value lines (see scenarios/*.scn and\n"
             "docs/EXPERIMENTS.md); 'sweep.<knob> = v1,v2' declares a grid\n"
             "axis. Any other --key=value flag overrides a scenario knob,\n"
             "including --sweep.<knob>=v1,v2 axes.\n";
      print_control_flags();
      std::cout << "  --experiment NAME  (run a registered experiment with "
                   "its defaults)\n"
                   "  --list             (list registered experiments)\n";
      return 0;
    }
    if (list) {
      for (const auto& e : experiments()) {
        std::cout << e.name << "\n    " << e.summary << "\n";
      }
      return 0;
    }
    if (path.empty() == experiment.empty()) {
      throw std::invalid_argument(
          "pass exactly one of --scenario FILE or --experiment NAME "
          "(--help for usage)");
    }

    ScenarioSpec spec;
    if (!path.empty()) {
      spec = load_scenario_file(path);
    } else {
      spec.name = experiment;
      spec.experiment = experiment;
    }
    apply_overrides(spec, flags);
    run_to_sinks(spec, jobs, jsonl);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace egoist::exp
