#include "exp/common.hpp"

#include <stdexcept>

namespace egoist::exp {

std::vector<double> snapshot_scores(const host::WiringSnapshot& snapshot,
                                    Score score) {
  switch (score) {
    case Score::kRoutingCost: return snapshot.node_costs();
    case Score::kBandwidth: return snapshot.node_bandwidth_scores();
    case Score::kEfficiency: return snapshot.node_efficiencies();
  }
  throw std::logic_error("unknown score");
}

std::vector<RunResult> run_and_score(host::OverlayHost& host,
                                     const std::vector<host::OverlayHandle>& overlays,
                                     Score score, const RunOptions& options) {
  const int total = options.warmup_epochs + options.sample_epochs;

  struct Accumulator {
    std::vector<double> sums;
    std::vector<int> counts;
    int rewirings = 0;
    int epoch = 0;  ///< epochs seen by this run (not the overlay's lifetime)
  };
  std::vector<Accumulator> accs(overlays.size());
  for (auto& acc : accs) {
    acc.sums.assign(host.size(), 0.0);
    acc.counts.assign(host.size(), 0);
  }

  std::vector<host::SubscriptionId> subscriptions;
  subscriptions.reserve(overlays.size());
  for (std::size_t i = 0; i < overlays.size(); ++i) {
    subscriptions.push_back(host.on_epoch_end(
        overlays[i], [&host, &accs, &options, total, score,
                      i](const host::EpochEvent& event) {
          auto& acc = accs[i];
          ++acc.epoch;
          // Warmup epochs are discarded; epochs beyond the sampling window
          // (possible when concurrent overlays are driven past this one's
          // target) are ignored.
          if (acc.epoch <= options.warmup_epochs || acc.epoch > total) return;
          acc.rewirings += event.rewired;
          const auto snapshot = host.snapshot(event.overlay);
          const auto& online = snapshot.online_nodes();
          const auto scores = snapshot_scores(snapshot, score);
          for (std::size_t j = 0; j < online.size(); ++j) {
            acc.sums[static_cast<std::size_t>(online[j])] += scores[j];
            acc.counts[static_cast<std::size_t>(online[j])] += 1;
          }
        }));
  }

  // Each overlay runs `total` epochs beyond its state at call time; the
  // subscription counts epochs locally, so earlier host activity does not
  // shift the sampling window. Driving one overlay advances the others at
  // the same timestamps, so later iterations only mop up stragglers.
  for (std::size_t i = 0; i < overlays.size(); ++i) {
    if (accs[i].epoch < total) host.run_epochs(overlays[i], total - accs[i].epoch);
  }
  for (const auto id : subscriptions) host.unsubscribe(id);

  std::vector<RunResult> results;
  results.reserve(overlays.size());
  for (const auto& acc : accs) {
    RunResult result;
    for (std::size_t v = 0; v < acc.sums.size(); ++v) {
      if (acc.counts[v] > 0) {
        result.node_means.push_back(acc.sums[v] / acc.counts[v]);
      }
    }
    result.summary = util::Summary::of(result.node_means);
    result.rewirings_per_epoch =
        options.sample_epochs > 0
            ? static_cast<double>(acc.rewirings) / options.sample_epochs
            : 0.0;
    results.push_back(std::move(result));
  }
  return results;
}

RunResult run_and_score(host::OverlayHost& host, host::OverlayHandle overlay,
                        Score score, const RunOptions& options) {
  return run_and_score(host, std::vector<host::OverlayHandle>{overlay}, score,
                       options)
      .front();
}

RunResult run_single(std::size_t n, std::uint64_t env_seed,
                     const overlay::OverlayConfig& config, Score score,
                     const RunOptions& options) {
  return run_single(n, env_seed, overlay::EnvironmentConfig{}, config, score,
                    options);
}

RunResult run_single(std::size_t n, std::uint64_t env_seed,
                     const overlay::EnvironmentConfig& env_config,
                     const overlay::OverlayConfig& config, Score score,
                     const RunOptions& options) {
  host::OverlayHost host(n, env_seed, env_config);
  const auto overlay = host.deploy(
      host::OverlaySpec(config).epoch_period(options.epoch_seconds));
  return run_and_score(host, overlay, score, options);
}

overlay::EnvironmentConfig parse_underlay(const ParamReader& params) {
  overlay::EnvironmentConfig env;
  env.underlay =
      net::parse_underlay_kind(params.get_string("underlay", "dense"));
  return env;
}

CommonArgs CommonArgs::parse(const ParamReader& params) {
  CommonArgs args;
  args.n = static_cast<std::size_t>(params.get_int("n", static_cast<int>(args.n)));
  args.seed = params.get_seed("seed", args.seed);
  args.warmup = params.get_int("warmup", args.warmup);
  args.sample = params.get_int("sample", args.sample);
  args.k_min = params.get_int("k-min", args.k_min);
  args.k_max = params.get_int("k-max", args.k_max);
  if (args.k_min < 1 || args.k_max < args.k_min) {
    throw std::invalid_argument("need 1 <= k-min <= k-max");
  }
  return args;
}

RunOptions CommonArgs::run_options() const {
  RunOptions options;
  options.warmup_epochs = warmup;
  options.sample_epochs = sample;
  return options;
}

}  // namespace egoist::exp
