#include "exp/common.hpp"

#include <stdexcept>

namespace egoist::exp {

RunResult run_and_score(overlay::Environment& env, overlay::EgoistNetwork& net,
                        Score score, const RunOptions& options) {
  auto sample_scores = [&]() -> std::vector<double> {
    switch (score) {
      case Score::kRoutingCost: return net.node_costs();
      case Score::kBandwidth: return net.node_bandwidth_scores();
      case Score::kEfficiency: return net.node_efficiencies();
    }
    throw std::logic_error("unknown score");
  };

  for (int e = 0; e < options.warmup_epochs; ++e) {
    env.advance(options.epoch_seconds);
    net.run_epoch();
  }
  std::vector<double> sums(net.size(), 0.0);
  std::vector<int> counts(net.size(), 0);
  int rewirings = 0;
  for (int e = 0; e < options.sample_epochs; ++e) {
    env.advance(options.epoch_seconds);
    rewirings += net.run_epoch();
    const auto online = net.online_nodes();
    const auto scores = sample_scores();
    for (std::size_t i = 0; i < online.size(); ++i) {
      sums[static_cast<std::size_t>(online[i])] += scores[i];
      counts[static_cast<std::size_t>(online[i])] += 1;
    }
  }
  RunResult result;
  for (std::size_t v = 0; v < sums.size(); ++v) {
    if (counts[v] > 0) result.node_means.push_back(sums[v] / counts[v]);
  }
  result.summary = util::Summary::of(result.node_means);
  result.rewirings_per_epoch =
      options.sample_epochs > 0
          ? static_cast<double>(rewirings) / options.sample_epochs
          : 0.0;
  return result;
}

CommonArgs CommonArgs::parse(const ParamReader& params) {
  CommonArgs args;
  args.n = static_cast<std::size_t>(params.get_int("n", static_cast<int>(args.n)));
  args.seed = params.get_seed("seed", args.seed);
  args.warmup = params.get_int("warmup", args.warmup);
  args.sample = params.get_int("sample", args.sample);
  args.k_min = params.get_int("k-min", args.k_min);
  args.k_max = params.get_int("k-max", args.k_max);
  if (args.k_min < 1 || args.k_max < args.k_min) {
    throw std::invalid_argument("need 1 <= k-min <= k-max");
  }
  return args;
}

RunOptions CommonArgs::run_options() const {
  RunOptions options;
  options.warmup_epochs = warmup;
  options.sample_epochs = sample;
  return options;
}

}  // namespace egoist::exp
