// Shared machinery for the serving benches (serve_load, serve_remote) and
// the egoistd daemon.
//
// All three construct the SAME deployment from the same knob set: one BR
// overlay in §5 scale mode on the procedural underlay, churned, warmed up,
// then served from — in-process through a host::RouteService (serve_load,
// the in-process comparison leg of serve_remote) or out-of-process through
// egoistd's rpc::Server. Keeping the knob reader and deployment builder in
// one place is what makes the remote bench's local comparison overlay
// bit-identical to the daemon's: both sides call read_serve_deployment +
// deploy_serving_overlay with the same scenario knobs, and the whole stack
// is deterministic from there.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "exp/params.hpp"
#include "host/overlay_host.hpp"
#include "host/route_service.hpp"
#include "util/latency_histogram.hpp"
#include "util/rng.hpp"

namespace egoist::exp {

/// Zipf sampler over ranks [0, n): P(rank r) ~ (r + 1)^-s. Destination id
/// == rank; with s ~ 1 a handful of nodes absorb most lookups, the classic
/// hot-content skew.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);
  overlay::NodeId draw(util::Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// The serving deployment read off a scenario: overlay + substrate +
/// service knobs. Two processes that construct this from the same knobs
/// and run the same number of epochs hold bit-identical overlays.
struct ServeDeployment {
  std::size_t n = 10000;
  overlay::OverlayConfig config;
  overlay::EnvironmentConfig env;
  bool churn = true;
  double churn_timescale = 1.0;
  /// Virtual seconds of churn trace to generate (must cover warmup plus
  /// every epoch the deployment will ever run).
  double churn_horizon_s = 0.0;
  int warmup = 2;
  double epoch_seconds = 60.0;
  host::RouteService::Options service_options;
};

/// Reads the shared serving knobs (n, k, policy, metric, seed, underlay,
/// br-sample, br-landmarks, coord-warmup, workers, incremental,
/// drift-threshold, churn, churn-timescale, warmup, epoch-seconds,
/// max-cached-sources, verify-seals). `horizon_epochs` sizes the churn
/// trace: the worst-case epoch count the caller will drive.
ServeDeployment read_serve_deployment(const ParamReader& params,
                                      double horizon_epochs);

/// The knob names read_serve_deployment understands. A spawner forwards
/// exactly these (when present in its own scenario) to egoistd, so both
/// processes construct the deployment from identical knobs — the basis of
/// the remote bench's in-process comparison.
std::span<const char* const> serve_deployment_keys();

struct ServingOverlay {
  std::unique_ptr<host::OverlayHost> host;
  host::OverlayHandle handle;
};

/// Builds the host, deploys the overlay (with its churn trace) and runs
/// the warmup epochs.
ServingOverlay deploy_serving_overlay(const ServeDeployment& deployment);

/// The hot source pool for serving window `window`: `sources` distinct
/// nodes sampled from the currently-online set with the window-tagged
/// stream serve_load has always used.
std::vector<overlay::NodeId> hot_source_pool(const host::WiringSnapshot& snap,
                                             std::uint64_t seed,
                                             std::size_t window,
                                             std::size_t sources);

/// One serving window's aggregate measurement (in-process or remote).
struct WindowResult {
  double elapsed_s = 0.0;
  int epochs = 0;
  std::uint64_t queries = 0;
  std::uint64_t unreachable = 0;
  util::LatencyHistogram latency;  ///< nanoseconds per query
};

/// Runs one in-process serving window: `readers` threads hammer
/// `service` with the serve_load workload (hot `pool` sources, zipf or
/// uniform destinations over [0, n)) while the calling thread drives
/// epochs — at least one, then until `duration_s` elapses or `max_epochs`
/// ran. This is serve_load's inner loop, shared so serve_remote's
/// in-process comparison column measures exactly the same thing.
WindowResult run_inproc_window(host::OverlayHost& host,
                               host::OverlayHandle handle,
                               host::RouteService& service,
                               std::span<const overlay::NodeId> pool,
                               bool zipf, double zipf_exponent, std::size_t n,
                               int readers, double duration_s, int max_epochs,
                               std::uint64_t seed, std::size_t window);

}  // namespace egoist::exp
