// SweepRunner: grid execution on a thread pool.
//
// A scenario with "sweep." axes expands into a grid of cells (one
// fully-resolved ScenarioSpec per combination). Cells are embarrassingly
// parallel by construction: every cell builds its own Environment and
// overlay stack from its own seed knob — no RNG stream is shared across
// cells — so a cell's trajectory is bit-identical whether the grid runs on
// one thread or sixteen. Each worker records into a per-cell BufferSink
// and the merged output replays in cell order, so the emitted bytes are
// also independent of the job count (the lockstep test in
// tests/exp/sweep_lockstep_test.cpp enforces both properties).
#pragma once

#include "exp/result_sink.hpp"
#include "exp/scenario.hpp"

namespace egoist::exp {

struct SweepOptions {
  /// Worker threads; 0 = one per hardware thread (capped at the cell count).
  int jobs = 1;
};

/// Expands `spec`'s grid and runs every cell, `jobs` at a time, replaying
/// each cell's output into `sink` in cell order. A spec without axes runs
/// as a single cell. The first cell failure (in cell order) is rethrown
/// after all workers drain; completed cells before it still emit.
void run_sweep(const ScenarioSpec& spec, const SweepOptions& options,
               ResultSink& sink);

}  // namespace egoist::exp
