#include "exp/serve_workload.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "churn/churn.hpp"
#include "exp/common.hpp"

namespace egoist::exp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : cdf_(n) {
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
}

overlay::NodeId ZipfSampler::draw(util::Rng& rng) const {
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), rng.uniform());
  return static_cast<overlay::NodeId>(
      std::min<std::size_t>(static_cast<std::size_t>(it - cdf_.begin()),
                            cdf_.size() - 1));
}

ServeDeployment read_serve_deployment(const ParamReader& params,
                                      double horizon_epochs) {
  ServeDeployment d;
  const int n_param = params.get_int("n", 10000);
  if (n_param < 8) throw std::invalid_argument("n must be >= 8");
  d.n = static_cast<std::size_t>(n_param);

  d.config.policy = overlay::parse_policy(params.get_string("policy", "BR"));
  d.config.metric =
      overlay::parse_metric(params.get_string("metric", "delay(ping)"));
  d.config.k = static_cast<std::size_t>(params.get_int("k", 10));
  d.config.seed = params.get_seed("seed", 42);
  d.config.br_sample =
      static_cast<std::size_t>(params.get_int("br-sample", 32));
  d.config.br_landmarks =
      static_cast<std::size_t>(params.get_int("br-landmarks", 64));
  d.config.epoch_workers = params.get_int("workers", 0);
  d.config.incremental = params.get_bool("incremental", false);
  if (d.config.incremental) {
    d.config.drift_threshold = params.get_double("drift-threshold", 0.05);
  }

  d.env = parse_underlay(params);
  // Serving is a scale-regime workload; default to the O(n) substrate.
  if (params.spec().find("underlay") == nullptr) {
    d.env.underlay = net::UnderlayKind::kProcedural;
  }
  d.env.coord_warmup_rounds =
      params.get_int("coord-warmup", d.env.coord_warmup_rounds);

  d.warmup = params.get_int("warmup", 2);
  if (d.warmup < 0) throw std::invalid_argument("warmup must be >= 0");
  d.epoch_seconds = params.get_double("epoch-seconds", 60.0);
  d.churn = params.get_bool("churn", true);
  d.churn_timescale = params.get_double("churn-timescale", 1.0);
  d.churn_horizon_s = (d.warmup + horizon_epochs) * d.epoch_seconds;

  d.service_options.max_cached_sources =
      static_cast<std::size_t>(params.get_int("max-cached-sources", 256));
  d.service_options.verify_seals = params.get_bool("verify-seals", true);
  return d;
}

std::span<const char* const> serve_deployment_keys() {
  static constexpr const char* kKeys[] = {
      "n",           "policy",          "metric",
      "k",           "seed",            "br-sample",
      "br-landmarks", "workers",        "incremental",
      "drift-threshold", "underlay",    "coord-warmup",
      "warmup",      "epoch-seconds",   "churn",
      "churn-timescale", "max-cached-sources", "verify-seals"};
  return std::span<const char* const>(kKeys);
}

ServingOverlay deploy_serving_overlay(const ServeDeployment& deployment) {
  host::OverlaySpec spec(deployment.config);
  spec.epoch_period(deployment.epoch_seconds);
  if (deployment.churn) {
    churn::ChurnConfig churn_config;
    churn_config.timescale = deployment.churn_timescale;
    churn_config.initial_on_fraction = 0.9;
    spec.churn(churn::ChurnTrace(deployment.n, deployment.churn_horizon_s,
                                 deployment.config.seed ^ 0xC0FFEEull,
                                 churn_config));
  }
  ServingOverlay out;
  out.host = std::make_unique<host::OverlayHost>(
      deployment.n, deployment.config.seed, deployment.env);
  out.handle = out.host->deploy(spec);
  if (deployment.warmup > 0) {
    out.host->run_epochs(out.handle, deployment.warmup);
  }
  return out;
}

std::vector<overlay::NodeId> hot_source_pool(const host::WiringSnapshot& snap,
                                             std::uint64_t seed,
                                             std::size_t window,
                                             std::size_t sources) {
  util::Rng pool_rng(seed ^ (0x5E47Eull + window));
  const auto& online = snap.online_nodes();
  return pool_rng.sample_without_replacement(
      std::span<const overlay::NodeId>(online),
      std::min<std::size_t>(sources, online.size()));
}

WindowResult run_inproc_window(host::OverlayHost& host,
                               host::OverlayHandle handle,
                               host::RouteService& service,
                               std::span<const overlay::NodeId> pool,
                               bool zipf, double zipf_exponent, std::size_t n,
                               int readers, double duration_s, int max_epochs,
                               std::uint64_t seed, std::size_t window) {
  const ZipfSampler zipf_sampler(zipf ? n : 1, zipf_exponent);

  struct ReaderTally {
    util::LatencyHistogram latency;
    std::uint64_t queries = 0;
    std::uint64_t unreachable = 0;
  };

  std::atomic<bool> stop{false};
  std::vector<ReaderTally> tallies(static_cast<std::size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      auto& tally = tallies[static_cast<std::size_t>(r)];
      util::Rng rng(seed ^ (window * 1000 + 17 * static_cast<std::size_t>(r) +
                            1));
      const auto n_id = static_cast<std::int64_t>(n);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto src = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
        const auto dst =
            zipf ? zipf_sampler.draw(rng)
                 : static_cast<overlay::NodeId>(rng.uniform_int(0, n_id - 1));
        const auto start = std::chrono::steady_clock::now();
        const auto answer = service.route(src, dst);
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        tally.latency.record(static_cast<std::uint64_t>(ns));
        ++tally.queries;
        if (!answer.reachable) ++tally.unreachable;
      }
    });
  }

  // The serving window: epochs churn and publish under the readers. The
  // do-while guarantees at least one swap per window.
  const auto serve_start = std::chrono::steady_clock::now();
  WindowResult result;
  do {
    host.run_epochs(handle, 1);
    ++result.epochs;
  } while (seconds_since(serve_start) < duration_s &&
           result.epochs < max_epochs);
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();
  result.elapsed_s = seconds_since(serve_start);

  for (const auto& tally : tallies) {
    result.latency.merge(tally.latency);
    result.queries += tally.queries;
    result.unreachable += tally.unreachable;
  }
  return result;
}

}  // namespace egoist::exp
