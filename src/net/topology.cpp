#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include "graph/shortest_path.hpp"

namespace egoist::net {

namespace {

constexpr double kPlaneSize = 1000.0;   // logical plane edge, "km"
constexpr double kMsPerUnit = 0.05;     // propagation delay per plane unit

double plane_distance(const std::pair<double, double>& a,
                      const std::pair<double, double>& b) {
  const double dx = a.first - b.first;
  const double dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

void add_undirected_link(graph::Digraph& g, graph::NodeId u, graph::NodeId v,
                         double delay) {
  g.set_edge(u, v, delay);
  g.set_edge(v, u, delay);
}

}  // namespace

Underlay make_waxman(std::size_t routers, std::uint64_t seed, double alpha,
                     double beta) {
  if (routers < 2) throw std::invalid_argument("need >= 2 routers");
  if (alpha <= 0.0 || beta <= 0.0) {
    throw std::invalid_argument("waxman parameters must be positive");
  }
  util::Rng rng(seed);
  Underlay u{graph::Digraph(routers), {}};
  u.positions.reserve(routers);
  for (std::size_t i = 0; i < routers; ++i) {
    u.positions.emplace_back(rng.uniform(0.0, kPlaneSize),
                             rng.uniform(0.0, kPlaneSize));
  }
  const double scale = kPlaneSize * std::numbers::sqrt2;
  for (std::size_t i = 0; i < routers; ++i) {
    for (std::size_t j = i + 1; j < routers; ++j) {
      const double dist = plane_distance(u.positions[i], u.positions[j]);
      if (rng.chance(alpha * std::exp(-dist / (beta * scale)))) {
        add_undirected_link(u.routers, static_cast<graph::NodeId>(i),
                            static_cast<graph::NodeId>(j), dist * kMsPerUnit);
      }
    }
  }
  // Stitch disconnected components to their nearest connected router.
  std::vector<bool> reached(routers, false);
  std::vector<std::size_t> frontier{0};
  reached[0] = true;
  while (!frontier.empty()) {
    const std::size_t at = frontier.back();
    frontier.pop_back();
    for (const auto& e : u.routers.out_edges(static_cast<graph::NodeId>(at))) {
      if (!reached[static_cast<std::size_t>(e.to)]) {
        reached[static_cast<std::size_t>(e.to)] = true;
        frontier.push_back(static_cast<std::size_t>(e.to));
      }
    }
  }
  for (std::size_t i = 0; i < routers; ++i) {
    if (reached[i]) continue;
    // Attach i's whole component via i's nearest reached router.
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < routers; ++j) {
      if (!reached[j]) continue;
      const double dist = plane_distance(u.positions[i], u.positions[j]);
      if (dist < best_dist) {
        best_dist = dist;
        best = j;
      }
    }
    add_undirected_link(u.routers, static_cast<graph::NodeId>(i),
                        static_cast<graph::NodeId>(best), best_dist * kMsPerUnit);
    // Re-flood from i to absorb its component.
    reached[i] = true;
    frontier.push_back(i);
    while (!frontier.empty()) {
      const std::size_t at = frontier.back();
      frontier.pop_back();
      for (const auto& e : u.routers.out_edges(static_cast<graph::NodeId>(at))) {
        if (!reached[static_cast<std::size_t>(e.to)]) {
          reached[static_cast<std::size_t>(e.to)] = true;
          frontier.push_back(static_cast<std::size_t>(e.to));
        }
      }
    }
  }
  return u;
}

Underlay make_barabasi_albert(std::size_t routers, std::uint64_t seed,
                              std::size_t m) {
  if (m < 1) throw std::invalid_argument("m must be >= 1");
  if (routers < m + 1) throw std::invalid_argument("need > m routers");
  util::Rng rng(seed);
  Underlay u{graph::Digraph(routers), {}};
  u.positions.reserve(routers);
  for (std::size_t i = 0; i < routers; ++i) {
    u.positions.emplace_back(rng.uniform(0.0, kPlaneSize),
                             rng.uniform(0.0, kPlaneSize));
  }
  // Degree-proportional target selection via the repeated-endpoints trick:
  // every link endpoint appears once in `endpoints`, so uniform draws from
  // it are degree-biased.
  std::vector<graph::NodeId> endpoints;
  // Seed clique over the first m+1 routers.
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = i + 1; j <= m; ++j) {
      add_undirected_link(u.routers, static_cast<graph::NodeId>(i),
                          static_cast<graph::NodeId>(j),
                          plane_distance(u.positions[i], u.positions[j]) * kMsPerUnit);
      endpoints.push_back(static_cast<graph::NodeId>(i));
      endpoints.push_back(static_cast<graph::NodeId>(j));
    }
  }
  for (std::size_t i = m + 1; i < routers; ++i) {
    std::vector<graph::NodeId> chosen;
    while (chosen.size() < m) {
      const graph::NodeId target =
          endpoints[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(endpoints.size()) - 1))];
      if (target == static_cast<graph::NodeId>(i)) continue;
      if (std::find(chosen.begin(), chosen.end(), target) != chosen.end()) continue;
      chosen.push_back(target);
    }
    for (const graph::NodeId target : chosen) {
      add_undirected_link(
          u.routers, static_cast<graph::NodeId>(i), target,
          plane_distance(u.positions[i],
                         u.positions[static_cast<std::size_t>(target)]) *
              kMsPerUnit);
      endpoints.push_back(static_cast<graph::NodeId>(i));
      endpoints.push_back(target);
    }
  }
  return u;
}

DelaySpace delay_space_from_underlay(const Underlay& underlay,
                                     std::size_t overlay_nodes,
                                     std::uint64_t seed, double asymmetry) {
  const std::size_t routers = underlay.routers.node_count();
  if (overlay_nodes > routers) {
    throw std::invalid_argument("more overlay nodes than routers");
  }
  util::Rng rng(seed);
  std::vector<graph::NodeId> all(routers);
  std::iota(all.begin(), all.end(), 0);
  const auto attach = rng.sample_without_replacement(
      std::span<const graph::NodeId>(all), overlay_nodes);

  graph::DistanceMatrix d(overlay_nodes, overlay_nodes, 0.0);
  for (std::size_t i = 0; i < overlay_nodes; ++i) {
    const auto tree = graph::dijkstra(underlay.routers, attach[i]);
    for (std::size_t j = 0; j < overlay_nodes; ++j) {
      if (i == j) continue;
      const double base = tree.dist[static_cast<std::size_t>(attach[j])];
      if (base == graph::kUnreachable) {
        throw std::logic_error("underlay must be connected");
      }
      const double skew = 1.0 + asymmetry * rng.uniform(-1.0, 1.0);
      d(i, j) = base * skew;
    }
  }
  return DelaySpace::from_matrix(std::move(d));
}

}  // namespace egoist::net
