// Node CPU-load model.
//
// The paper's node-load metric assigns every outgoing overlay link of a
// node the node's measured CPU load (loadavg smoothed by a 1-minute EWMA),
// so path cost = sum of the loads of the nodes along the path. PlanetLab
// load is notoriously bursty and heavy-tailed; LoadModel combines a
// persistent per-node base level (some hosts are just busy), a slow
// mean-reverting component, and occasional spikes.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fields.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace egoist::net {

struct LoadConfig {
  double base_mu = 0.6;        ///< lognormal mu of the per-node base load
  double base_sigma = 0.8;     ///< heavy tail: some nodes are always loaded
  double revert_rate = 0.02;   ///< mean reversion of the fluctuation per second
  double volatility = 0.25;    ///< fluctuation innovation scale
  double spike_rate = 1.0 / 600.0;  ///< spikes per second per node
  double spike_magnitude = 4.0;     ///< multiplicative spike factor
  double spike_decay = 1.0 / 120.0; ///< spike decay rate per second
};

/// Time-varying true load per node (arbitrary loadavg-like units, > 0; the
/// dense stateful implementation of net::LoadField).
class LoadModel final : public LoadField {
 public:
  LoadModel(std::size_t n, std::uint64_t seed, LoadConfig config = {});

  std::size_t size() const override { return n_; }

  /// Instantaneous true load of the node.
  double load(int node) const override;

  /// Advances all load processes by dt seconds.
  void advance(double dt);

 private:
  std::size_t check(int node) const;

  std::size_t n_;
  LoadConfig config_;
  util::Rng rng_;
  std::vector<double> base_;
  std::vector<double> fluctuation_;  ///< additive, mean zero
  std::vector<double> spike_;        ///< additive, decaying
};

/// Local load estimator: periodic readings smoothed by a 1-minute EWMA,
/// exactly the measurement pipeline of §4.1 ("exponentially-weighted moving
/// average of that load calculated over a given interval (taken to be
/// 1 minute in our experiments)").
class LoadEstimator {
 public:
  explicit LoadEstimator(double half_life_s = 60.0) : ewma_(half_life_s) {}

  void observe(double true_load, double now_s) { ewma_.update(true_load, now_s); }
  bool has_estimate() const { return ewma_.has_value(); }
  double estimate() const { return ewma_.value(); }

 private:
  util::Ewma ewma_;
};

}  // namespace egoist::net
