// Available-bandwidth underlay model.
//
// The paper probes available bandwidth between PlanetLab pairs with
// pathChirp. We model each directed overlay pair (i, j) as an access-link
// pair plus a shared-core component: avail_bw(i,j,t) =
// min(uplink_i, downlink_j, core_ij) - cross_traffic(t). Cross traffic
// follows a mean-reverting (AR(1)) process so bandwidth varies smoothly in
// time, which is what forces BR re-wirings in the bandwidth experiments.
//
// The same module hosts the AS / peering-point model of Fig 9-10: every
// node belongs to a (possibly multihomed) AS, and each session crossing a
// peering point is individually rate-limited — the mechanism that makes
// multipath redirection through overlay neighbors profitable.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fields.hpp"
#include "util/rng.hpp"

namespace egoist::net {

/// Knobs for the bandwidth generator (units: Mbps).
struct BandwidthConfig {
  double uplink_mean = 60.0;     ///< lognormal mean node uplink capacity
  double uplink_sigma = 0.7;     ///< lognormal sigma (heavy tail)
  double core_mean = 150.0;      ///< per-pair core capacity mean
  double core_sigma = 0.5;
  double cross_fraction = 0.35;  ///< mean fraction of capacity used by cross traffic
  double cross_volatility = 0.2; ///< AR(1) innovation scale (relative)
  double revert_rate = 0.05;     ///< mean reversion per second
};

/// Time-varying true available bandwidth per directed pair (the dense
/// stateful implementation of net::BandwidthField).
class BandwidthModel final : public BandwidthField {
 public:
  BandwidthModel(std::size_t n, std::uint64_t seed, BandwidthConfig config = {});

  std::size_t size() const override { return n_; }

  /// True available bandwidth i -> j (Mbps) at the current model time.
  double avail_bw(int i, int j) const override;

  /// Static capacity (no cross traffic) of the i -> j pair.
  double capacity(int i, int j) const override;

  /// Advances the cross-traffic processes by dt seconds.
  void advance(double dt);

 private:
  std::size_t index(int i, int j) const;

  std::size_t n_;
  BandwidthConfig config_;
  util::Rng rng_;
  std::vector<double> uplink_;       ///< per-node uplink capacity
  std::vector<double> downlink_;     ///< per-node downlink capacity
  std::vector<double> core_;         ///< per-pair core capacity
  std::vector<double> cross_;        ///< per-pair cross-traffic fraction in [0, 0.95]
};

/// AS-level peering model for the multipath experiments (Fig 9/10).
///
/// Each overlay node lives in an AS; each AS is multihomed to
/// `providers` peering points. Any end-to-end session is throttled to the
/// per-session cap of the peering point it (deterministically) hashes to,
/// so distinct first-hop neighbors can exit via distinct peering points.
class PeeringModel {
 public:
  PeeringModel(std::size_t n, std::uint64_t seed, int min_providers = 1,
               int max_providers = 3, double session_cap_mbps = 2.0);

  std::size_t size() const { return n_; }
  int providers(int node) const;

  /// Peering point (0 .. providers-1) that a session from `src` to first
  /// hop `via` exits through.
  int egress_point(int src, int via) const;

  /// Per-session rate cap at src's given peering point (Mbps).
  double session_cap(int src, int point) const;

  /// Maximum aggregate rate out of `src` when one session can be placed on
  /// each peering point (= sum of caps): the |AS_i| multiplier of §6.1.
  double max_aggregate_rate(int src) const;

 private:
  std::size_t n_;
  std::vector<int> providers_;
  std::vector<std::vector<double>> caps_;  ///< caps_[node][point]
  std::vector<std::uint64_t> salt_;
};

}  // namespace egoist::net
