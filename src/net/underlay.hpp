// Pluggable underlay backends — the substrate storage/compute tradeoff.
//
// DenseUnderlay bundles the historical stateful models (DelaySpace,
// BandwidthModel, LoadModel): n^2 storage, an O(n^2) advance() that walks
// every AR(1) cross-traffic process, and bit-exact reproduction of every
// figure for a fixed seed. That caps the §5 scaling study at a few hundred
// nodes.
//
// ProceduralUnderlay removes the wall: it stores only O(n) per-node
// attributes (cluster, plane position, access penalty, link capacities,
// base load) — each itself a pure function of (seed, node) via counter-
// based hashing, so node i's attributes do not depend on n — and computes
// every per-pair quantity on demand as a pure function of
// (seed, i, j, quantized time). Temporal variation comes from a hash
// lattice: an Ornstein-Uhlenbeck-like value is the smoothstep interpolation
// of unit Gaussians hashed at consecutive multiples of the process's
// correlation time, calibrated to the dense models' stationary moments.
// advance() is O(1): it moves the clock.
//
// The two backends produce *different realizations* of the same
// distributions — dense stays the reference for reproduced figures,
// procedural opens n in the tens of thousands (the scale_frontier
// experiment). Both are deterministic in (n, seed, config).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/bandwidth.hpp"
#include "net/delay_space.hpp"
#include "net/fields.hpp"
#include "net/load.hpp"

namespace egoist::net {

/// Which substrate backend a deployment runs on.
enum class UnderlayKind {
  kDense,       ///< stateful n^2 models (the default; bit-exact reference)
  kProcedural,  ///< counter-hashed O(n) substrate for the scale regime
};

const char* to_string(UnderlayKind kind);
UnderlayKind parse_underlay_kind(const std::string& name);

/// --- Counter-based hashing primitives (SplitMix64-style) ---
/// Exposed for tests and for measurement planes that derive procedural
/// noise (overlay::Environment's sparse delay drift).

/// Stateless mix of a seed and three counters into a uniform 64-bit word.
std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c);

/// Uniform double in (0, 1) from a hash word.
double hash_unit(std::uint64_t h);

/// Standard normal from a hash word (Box-Muller over two derived uniforms).
double hash_gaussian(std::uint64_t h);

/// Stationary unit-variance OU-like noise: smoothstep interpolation of the
/// Gaussians hashed at floor(t/tau) and floor(t/tau)+1 on stream
/// (seed, a, b). Continuous in t, decorrelated beyond ~tau, and a pure
/// function of its arguments.
double ou_noise(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                double t, double tau);

/// One substrate backend: the three true-quantity fields plus the dynamic
/// clock. Field references stay valid for the backend's lifetime.
class UnderlayBackend {
 public:
  virtual ~UnderlayBackend() = default;

  virtual UnderlayKind kind() const = 0;
  virtual std::size_t size() const = 0;

  virtual const DelayField& delays() const = 0;
  virtual const BandwidthField& bandwidth() const = 0;
  virtual const LoadField& load() const = 0;

  /// Advances the dynamic processes by dt seconds. Dense: O(n^2) AR(1)
  /// sweeps. Procedural: O(1) (moves the clock).
  virtual void advance(double dt) = 0;

  /// Bytes of substrate state held by this backend (storage telemetry for
  /// the scale experiments; excludes the Vivaldi coordinate system, which
  /// is O(n) and backend-independent).
  virtual std::size_t memory_bytes() const = 0;
};

/// Exactly the historical substrate: the three stateful models constructed
/// with the seeds Substrate has always used, advanced in the same order,
/// so every fixed-seed figure output is byte-identical to the pre-seam
/// code.
class DenseUnderlay final : public UnderlayBackend {
 public:
  DenseUnderlay(std::size_t n, std::uint64_t seed, const GeoDelayConfig& geo,
                const BandwidthConfig& bandwidth, const LoadConfig& load);

  UnderlayKind kind() const override { return UnderlayKind::kDense; }
  std::size_t size() const override { return delays_.size(); }
  const DelayField& delays() const override { return delays_; }
  const BandwidthField& bandwidth() const override { return bandwidth_; }
  const LoadField& load() const override { return load_; }
  void advance(double dt) override;
  std::size_t memory_bytes() const override;

  /// The concrete models, for callers that need the full dense API.
  const DelaySpace& delay_space() const { return delays_; }
  const BandwidthModel& bandwidth_model() const { return bandwidth_; }
  const LoadModel& load_model() const { return load_; }

 private:
  DelaySpace delays_;
  BandwidthModel bandwidth_;
  LoadModel load_;
};

/// Knobs of the procedural substrate. The geo/bandwidth/load structures are
/// shared with the dense generators so one scenario config describes both
/// backends; the procedural backend additionally quantizes time.
struct ProceduralUnderlayConfig {
  GeoDelayConfig geo;
  BandwidthConfig bandwidth;
  LoadConfig load;
};

class ProceduralUnderlay final : public UnderlayBackend {
 public:
  ProceduralUnderlay(std::size_t n, std::uint64_t seed,
                     ProceduralUnderlayConfig config = {});

  UnderlayKind kind() const override { return UnderlayKind::kProcedural; }
  std::size_t size() const override { return n_; }
  const DelayField& delays() const override { return delay_field_; }
  const BandwidthField& bandwidth() const override { return bandwidth_field_; }
  const LoadField& load() const override { return load_field_; }
  void advance(double dt) override;
  std::size_t memory_bytes() const override;

  double now() const { return now_; }
  const ProceduralUnderlayConfig& config() const { return config_; }

  /// Cluster ("continent") of a node, mirroring planetlab_like_clusters.
  int cluster(int node) const;

  /// --- The pure per-pair functions (also reachable via the fields) ---
  double delay(int i, int j) const;
  double capacity(int i, int j) const;
  double avail_bw(int i, int j) const;  ///< at the current model time
  double node_load(int node) const;     ///< at the current model time

 private:
  struct DelayView final : DelayField {
    const ProceduralUnderlay* owner = nullptr;
    std::size_t size() const override { return owner->n_; }
    double delay(int i, int j) const override { return owner->delay(i, j); }
  };
  struct BandwidthView final : BandwidthField {
    const ProceduralUnderlay* owner = nullptr;
    std::size_t size() const override { return owner->n_; }
    double avail_bw(int i, int j) const override {
      return owner->avail_bw(i, j);
    }
    double capacity(int i, int j) const override {
      return owner->capacity(i, j);
    }
  };
  struct LoadView final : LoadField {
    const ProceduralUnderlay* owner = nullptr;
    std::size_t size() const override { return owner->n_; }
    double load(int node) const override { return owner->node_load(node); }
  };

  std::size_t check(int v) const;
  double cross_fraction(int i, int j) const;

  std::size_t n_;
  std::uint64_t seed_;
  ProceduralUnderlayConfig config_;
  double now_ = 0.0;

  /// O(n) per-node attributes; attr[i] is a pure function of (seed, i).
  std::vector<std::int32_t> cluster_;
  std::vector<double> pos_x_, pos_y_;   ///< delay-plane coordinates (ms)
  std::vector<double> access_;          ///< last-mile penalty (ms)
  std::vector<double> uplink_, downlink_;
  std::vector<double> load_base_;

  /// Derived stationary-moment calibration (see underlay.cpp).
  double jitter_sigma_ = 0.0;
  double mu_core_ = 0.0;
  double cross_std_ = 0.0, cross_tau_ = 1.0;
  double load_std_ = 0.0, load_tau_ = 1.0;

  DelayView delay_field_;
  BandwidthView bandwidth_field_;
  LoadView load_field_;
};

/// Factory used by overlay::Substrate: builds the requested backend with
/// the substrate's historical seeds.
std::unique_ptr<UnderlayBackend> make_underlay(
    UnderlayKind kind, std::size_t n, std::uint64_t seed,
    const GeoDelayConfig& geo, const BandwidthConfig& bandwidth,
    const LoadConfig& load);

}  // namespace egoist::net
