#include "net/bandwidth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace egoist::net {

BandwidthModel::BandwidthModel(std::size_t n, std::uint64_t seed,
                               BandwidthConfig config)
    : n_(n), config_(config), rng_(seed) {
  if (n < 2) throw std::invalid_argument("need >= 2 nodes");
  uplink_.resize(n);
  downlink_.resize(n);
  const double mu_up = std::log(config_.uplink_mean) -
                       0.5 * config_.uplink_sigma * config_.uplink_sigma;
  for (std::size_t i = 0; i < n; ++i) {
    uplink_[i] = rng_.lognormal(mu_up, config_.uplink_sigma);
    downlink_[i] = rng_.lognormal(mu_up, config_.uplink_sigma) * 1.5;
  }
  const double mu_core =
      std::log(config_.core_mean) - 0.5 * config_.core_sigma * config_.core_sigma;
  core_.resize(n * n);
  cross_.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      core_[i * n + j] = rng_.lognormal(mu_core, config_.core_sigma);
      cross_[i * n + j] = std::clamp(
          config_.cross_fraction + 0.3 * config_.cross_fraction * rng_.normal(0, 1),
          0.0, 0.95);
    }
  }
}

std::size_t BandwidthModel::index(int i, int j) const {
  if (i < 0 || j < 0 || static_cast<std::size_t>(i) >= n_ ||
      static_cast<std::size_t>(j) >= n_) {
    throw std::out_of_range("node id out of range");
  }
  if (i == j) throw std::invalid_argument("no self pair");
  return static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(j);
}

double BandwidthModel::capacity(int i, int j) const {
  const std::size_t idx = index(i, j);
  return std::min({uplink_[static_cast<std::size_t>(i)],
                   downlink_[static_cast<std::size_t>(j)], core_[idx]});
}

double BandwidthModel::avail_bw(int i, int j) const {
  const std::size_t idx = index(i, j);
  return std::max(0.0, capacity(i, j) * (1.0 - cross_[idx]));
}

void BandwidthModel::advance(double dt) {
  if (dt < 0.0) throw std::invalid_argument("dt must be >= 0");
  const double pull = std::min(1.0, config_.revert_rate * dt);
  const double noise = config_.cross_volatility * std::sqrt(std::max(dt, 0.0));
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      double& c = cross_[i * n_ + j];
      c += pull * (config_.cross_fraction - c) +
           noise * config_.cross_fraction * rng_.normal(0.0, 1.0);
      c = std::clamp(c, 0.0, 0.95);
    }
  }
}

PeeringModel::PeeringModel(std::size_t n, std::uint64_t seed, int min_providers,
                           int max_providers, double session_cap_mbps)
    : n_(n) {
  if (min_providers < 1 || max_providers < min_providers) {
    throw std::invalid_argument("invalid provider bounds");
  }
  if (session_cap_mbps <= 0.0) {
    throw std::invalid_argument("session cap must be positive");
  }
  util::Rng rng(seed);
  providers_.resize(n);
  caps_.resize(n);
  salt_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    providers_[i] =
        static_cast<int>(rng.uniform_int(min_providers, max_providers));
    caps_[i].resize(static_cast<std::size_t>(providers_[i]));
    for (double& cap : caps_[i]) {
      // Caps differ across peering points (e.g. the 1 vs 2 Mbps of Fig 9).
      cap = session_cap_mbps * rng.uniform(0.5, 1.5);
    }
    salt_[i] = static_cast<std::uint64_t>(rng.uniform_int(0, 1'000'000'000));
  }
}

int PeeringModel::providers(int node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= n_) {
    throw std::out_of_range("node id out of range");
  }
  return providers_[static_cast<std::size_t>(node)];
}

int PeeringModel::egress_point(int src, int via) const {
  const int p = providers(src);
  if (via < 0 || static_cast<std::size_t>(via) >= n_) {
    throw std::out_of_range("node id out of range");
  }
  // Deterministic hash: which peering point the IP path to `via` crosses.
  const std::uint64_t h =
      (static_cast<std::uint64_t>(via) * 0x9E3779B97F4A7C15ull) ^
      salt_[static_cast<std::size_t>(src)];
  return static_cast<int>(h % static_cast<std::uint64_t>(p));
}

double PeeringModel::session_cap(int src, int point) const {
  const int p = providers(src);
  if (point < 0 || point >= p) throw std::out_of_range("peering point out of range");
  return caps_[static_cast<std::size_t>(src)][static_cast<std::size_t>(point)];
}

double PeeringModel::max_aggregate_rate(int src) const {
  const int p = providers(src);
  double total = 0.0;
  for (int point = 0; point < p; ++point) total += session_cap(src, point);
  return total;
}

}  // namespace egoist::net
