#include "net/measurement.hpp"

#include <algorithm>
#include <stdexcept>

namespace egoist::net {

PingProber::PingProber(const DelayField& delays, std::uint64_t seed,
                       double jitter_ms, int samples)
    : delays_(delays), rng_(seed), jitter_ms_(jitter_ms), samples_(samples) {
  if (samples < 1) throw std::invalid_argument("need >= 1 sample");
  if (jitter_ms < 0.0) throw std::invalid_argument("jitter must be >= 0");
}

double PingProber::estimate_one_way(int i, int j) {
  const double rtt = delays_.rtt(i, j);
  double sum = 0.0;
  for (int s = 0; s < samples_; ++s) {
    // Queueing adds delay, never removes it: fold the absolute value.
    sum += rtt + std::abs(rng_.normal(0.0, jitter_ms_));
  }
  return sum / static_cast<double>(samples_) / 2.0;
}

double PingProber::bits_per_estimate() const {
  return 2.0 * OverheadConstants::kPingMessageBits * samples_;
}

double PingProber::ping_load_bps(std::size_t n, std::size_t k, double epoch_s) {
  if (epoch_s <= 0.0) throw std::invalid_argument("epoch must be positive");
  // Degenerate overlays (n <= k + 1): every other node is already a
  // neighbor, so there is nothing to re-probe. Clamp instead of letting the
  // unsigned (n - k - 1) underflow.
  if (n <= k + 1) return 0.0;
  return static_cast<double>(n - k - 1) * OverheadConstants::kPingMessageBits /
         epoch_s;
}

BandwidthProber::BandwidthProber(const BandwidthField& bw, std::uint64_t seed,
                                 double relative_error)
    : bw_(bw), rng_(seed), relative_error_(relative_error) {
  if (relative_error < 0.0 || relative_error >= 1.0) {
    throw std::invalid_argument("relative error in [0, 1)");
  }
}

double BandwidthProber::estimate(int i, int j) {
  const double truth = bw_.avail_bw(i, j);
  return std::max(0.0, truth * (1.0 + relative_error_ * rng_.normal(0.0, 1.0)));
}

double OverheadFormulas::coord_load_bps(std::size_t n, double epoch_s) {
  if (epoch_s <= 0.0) throw std::invalid_argument("epoch must be positive");
  return (OverheadConstants::kCoordRequestBits +
          OverheadConstants::kCoordPerNodeBits * static_cast<double>(n)) /
         epoch_s;
}

double OverheadFormulas::lsa_load_bps(std::size_t k, double announce_s) {
  if (announce_s <= 0.0) throw std::invalid_argument("interval must be positive");
  return (OverheadConstants::kLsaHeaderBits +
          OverheadConstants::kLsaPerNeighborBits * static_cast<double>(k)) /
         announce_s;
}

}  // namespace egoist::net
