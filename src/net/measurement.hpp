// Measurement-plane simulators: ping, pathChirp-like probing, and the
// overhead accounting of §4.3.
//
// Active ping: one-way delay is estimated as RTT/2 averaged over several
// samples (the paper's method), so asymmetric pairs carry an inherent
// estimation error — which is one reason BR over measured costs differs
// from BR over true costs. Each ICMP ECHO request/reply is 320 bits.
//
// pathChirp: returns the true available bandwidth perturbed by a relative
// error (the tool is "fast and accurate" but not exact); probing consumes
// < 2% of the path's available bandwidth (paper measurement).
#pragma once

#include <cstdint>

#include "net/fields.hpp"
#include "util/rng.hpp"

namespace egoist::net {

/// Bit sizes and rates from §4.3 used for overhead accounting.
struct OverheadConstants {
  static constexpr double kPingMessageBits = 320.0;       ///< ICMP ECHO req/reply
  static constexpr double kCoordRequestBits = 320.0;      ///< pyxida HTTP request
  static constexpr double kCoordPerNodeBits = 32.0;       ///< per-node coordinate payload
  static constexpr double kLsaHeaderBits = 192.0;         ///< link-state header+padding
  static constexpr double kLsaPerNeighborBits = 32.0;     ///< per-neighbor payload
};

/// Simulated ping-based one-way delay estimator. Works against any
/// DelayField (dense matrix or procedural backend).
class PingProber {
 public:
  /// jitter_ms: per-sample measurement noise; samples: RTT samples averaged
  /// per estimate (the paper averages "over enough samples").
  PingProber(const DelayField& delays, std::uint64_t seed, double jitter_ms = 2.0,
             int samples = 5);

  /// Estimated one-way delay i -> j (ms): mean(RTT samples) / 2.
  double estimate_one_way(int i, int j);

  /// Bits injected by one estimate (request + reply per sample).
  double bits_per_estimate() const;

  /// §4.3 formula: active measurement load for a node re-probing the
  /// (n - k - 1) non-neighbors once per wiring epoch T (bits/sec).
  /// Degenerate overlays with n <= k + 1 have no non-neighbors to probe
  /// and clamp to 0 instead of underflowing the (n - k - 1) term.
  static double ping_load_bps(std::size_t n, std::size_t k, double epoch_s);

 private:
  const DelayField& delays_;
  util::Rng rng_;
  double jitter_ms_;
  int samples_;
};

/// Simulated pathChirp-like available-bandwidth prober. Works against any
/// BandwidthField.
class BandwidthProber {
 public:
  BandwidthProber(const BandwidthField& bw, std::uint64_t seed,
                  double relative_error = 0.05);

  /// Estimated available bandwidth i -> j (Mbps).
  double estimate(int i, int j);

  /// Probe traffic for one estimate as a fraction of the measured path's
  /// available bandwidth (paper: < 2%).
  static constexpr double kProbeFraction = 0.02;

 private:
  const BandwidthField& bw_;
  util::Rng rng_;
  double relative_error_;
};

/// §4.3 overhead formulas, reproduced verbatim so the overhead bench can
/// compare simulated byte counts against the paper's closed forms.
struct OverheadFormulas {
  /// Coordinate-system measurement load per node (bps): one request/reply
  /// carrying all n coordinates per epoch.
  static double coord_load_bps(std::size_t n, double epoch_s);

  /// Link-state announcement load per node (bps): header + k neighbor
  /// entries every announce interval.
  static double lsa_load_bps(std::size_t k, double announce_s);
};

}  // namespace egoist::net
