#include "net/underlay.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace egoist::net {

const char* to_string(UnderlayKind kind) {
  switch (kind) {
    case UnderlayKind::kDense: return "dense";
    case UnderlayKind::kProcedural: return "procedural";
  }
  return "?";
}

UnderlayKind parse_underlay_kind(const std::string& name) {
  if (name == "dense") return UnderlayKind::kDense;
  if (name == "procedural") return UnderlayKind::kProcedural;
  throw std::invalid_argument("unknown underlay '" + name +
                              "' (want dense, procedural)");
}

namespace {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Stream tags keeping the per-quantity hash streams decorrelated.
enum Stream : std::uint64_t {
  kCluster = 1,
  kPosX,
  kPosY,
  kAccess,
  kUplink,
  kDownlink,
  kLoadBase,
  kJitter,
  kViolation,
  kSkew,
  kCore,
  kCross,
  kLoadFluct,
  kSpikeHit,
  kSpikeTime,
  kSpikeMag,
};

}  // namespace

std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) {
  // Feed the counters through the finalizer one at a time; each pass fully
  // avalanches, so (seed, a, b, c) and any permutation-with-different-
  // values land in unrelated points of the output space.
  std::uint64_t h = splitmix64(seed ^ 0xA0761D6478BD642Full);
  h = splitmix64(h ^ a);
  h = splitmix64(h ^ (b + 0x8BB84B93962EACC9ull));
  h = splitmix64(h ^ (c + 0x2D358DCCAA6C78A5ull));
  return h;
}

double hash_unit(std::uint64_t h) {
  // 53 high bits -> (0, 1); never exactly 0 (log() safety below).
  return (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
}

double hash_gaussian(std::uint64_t h) {
  const double u1 = hash_unit(h);
  const double u2 = hash_unit(splitmix64(h ^ 0x6C62272E07BB0142ull));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double ou_noise(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                double t, double tau) {
  if (tau <= 0.0) throw std::invalid_argument("tau must be positive");
  const double s = std::floor(t / tau);
  double f = t / tau - s;
  f = f * f * (3.0 - 2.0 * f);  // smoothstep: C1 across lattice points
  const auto step = static_cast<std::uint64_t>(static_cast<std::int64_t>(s));
  const double g0 = hash_gaussian(counter_hash(seed, a, b, step));
  const double g1 = hash_gaussian(counter_hash(seed, a, b, step + 1));
  // A raw (1-f, f) blend of independent unit Gaussians has variance
  // (1-f)^2 + f^2 < 1 away from the lattice points; renormalize so the
  // process is stationary unit-variance at every t (still C1).
  return ((1.0 - f) * g0 + f * g1) /
         std::sqrt((1.0 - f) * (1.0 - f) + f * f);
}

// --- DenseUnderlay ---

DenseUnderlay::DenseUnderlay(std::size_t n, std::uint64_t seed,
                             const GeoDelayConfig& geo,
                             const BandwidthConfig& bandwidth,
                             const LoadConfig& load)
    // Seeds and construction order are the historical Substrate's; figure
    // outputs for fixed seeds depend on them bit for bit.
    : delays_(make_planetlab_like(n, seed, geo)),
      bandwidth_(n, seed ^ 0xB00Bull, bandwidth),
      load_(n, seed ^ 0x10ADull, load) {}

void DenseUnderlay::advance(double dt) {
  bandwidth_.advance(dt);
  load_.advance(dt);
}

std::size_t DenseUnderlay::memory_bytes() const {
  const std::size_t n = delays_.size();
  // delay matrix + core/cross pair arrays + per-node vectors.
  return n * n * sizeof(double) * 3 + n * sizeof(double) * 5;
}

// --- ProceduralUnderlay ---

ProceduralUnderlay::ProceduralUnderlay(std::size_t n, std::uint64_t seed,
                                       ProceduralUnderlayConfig config)
    : n_(n), seed_(seed), config_(std::move(config)) {
  if (n < 2) throw std::invalid_argument("need >= 2 nodes");
  const auto& geo = config_.geo;
  if (geo.cluster_weights.empty()) {
    throw std::invalid_argument("cluster_weights must be non-empty");
  }
  double total_weight = 0.0;
  for (double w : geo.cluster_weights) {
    if (w < 0.0) throw std::invalid_argument("cluster weights must be >= 0");
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("cluster weights sum to zero");
  }

  // Same geometry as make_planetlab_like: cluster centers on a circle,
  // Gaussian scatter, Pareto access penalties — but every per-node draw is
  // a counter hash, so attributes are independent of n and of each other.
  const auto num_clusters = geo.cluster_weights.size();
  const double radius =
      num_clusters > 1
          ? geo.inter_cluster_ms /
                (2.0 * std::sin(std::numbers::pi /
                                static_cast<double>(num_clusters)))
          : 0.0;
  const double sigma = geo.intra_cluster_ms / 1.7724539;

  cluster_.resize(n);
  pos_x_.resize(n);
  pos_y_.resize(n);
  access_.resize(n);
  uplink_.resize(n);
  downlink_.resize(n);
  load_base_.resize(n);

  const auto& bw = config_.bandwidth;
  const double mu_up =
      std::log(bw.uplink_mean) - 0.5 * bw.uplink_sigma * bw.uplink_sigma;
  const auto& load = config_.load;

  for (std::size_t i = 0; i < n; ++i) {
    const auto node = static_cast<std::uint64_t>(i);
    double draw = hash_unit(counter_hash(seed_, node, kCluster, 0)) * total_weight;
    int c = static_cast<int>(num_clusters) - 1;
    for (std::size_t w = 0; w < num_clusters; ++w) {
      draw -= geo.cluster_weights[w];
      if (draw <= 0.0) {
        c = static_cast<int>(w);
        break;
      }
    }
    cluster_[i] = c;
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(c) /
                         static_cast<double>(num_clusters);
    pos_x_[i] = radius * std::cos(angle) +
                sigma * hash_gaussian(counter_hash(seed_, node, kPosX, 0));
    pos_y_[i] = radius * std::sin(angle) +
                sigma * hash_gaussian(counter_hash(seed_, node, kPosY, 0));
    access_[i] = geo.access_penalty_ms /
                 std::pow(hash_unit(counter_hash(seed_, node, kAccess, 0)),
                          1.0 / 1.5);
    uplink_[i] = std::exp(
        mu_up +
        bw.uplink_sigma * hash_gaussian(counter_hash(seed_, node, kUplink, 0)));
    downlink_[i] =
        std::exp(mu_up + bw.uplink_sigma *
                             hash_gaussian(counter_hash(seed_, node, kDownlink, 0))) *
        1.5;
    load_base_[i] = std::exp(
        load.base_mu +
        load.base_sigma * hash_gaussian(counter_hash(seed_, node, kLoadBase, 0)));
  }

  // Stationary-moment calibration against the dense AR(1) processes: a
  // discrete OU with innovation sigma_e*sqrt(dt) and pull theta*dt has
  // stationary standard deviation sigma_e / sqrt(2 theta) and correlation
  // time 1/theta.
  jitter_sigma_ = std::sqrt(std::log1p(geo.jitter * geo.jitter));
  mu_core_ = std::log(bw.core_mean) - 0.5 * bw.core_sigma * bw.core_sigma;
  cross_tau_ = bw.revert_rate > 0.0 ? 1.0 / bw.revert_rate : 1.0;
  cross_std_ = bw.revert_rate > 0.0
                   ? bw.cross_volatility * bw.cross_fraction /
                         std::sqrt(2.0 * bw.revert_rate)
                   : 0.0;
  load_tau_ = load.revert_rate > 0.0 ? 1.0 / load.revert_rate : 1.0;
  load_std_ = load.revert_rate > 0.0
                  ? load.volatility / std::sqrt(2.0 * load.revert_rate)
                  : 0.0;

  delay_field_.owner = this;
  bandwidth_field_.owner = this;
  load_field_.owner = this;
}

std::size_t ProceduralUnderlay::check(int v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= n_) {
    throw std::out_of_range("node id out of range");
  }
  return static_cast<std::size_t>(v);
}

int ProceduralUnderlay::cluster(int node) const {
  return cluster_[check(node)];
}

double ProceduralUnderlay::delay(int i, int j) const {
  const std::size_t a = check(i);
  const std::size_t b = check(j);
  if (a == b) return 0.0;
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  const auto& geo = config_.geo;

  const double dx = pos_x_[a] - pos_x_[b];
  const double dy = pos_y_[a] - pos_y_[b];
  const double geo_ms = std::sqrt(dx * dx + dy * dy);
  const double jitter =
      std::exp(-0.5 * jitter_sigma_ * jitter_sigma_ +
               jitter_sigma_ * hash_gaussian(counter_hash(seed_, lo, hi, kJitter)));
  const double pair = geo_ms * jitter + access_[a] + access_[b];
  const double inflated =
      hash_unit(counter_hash(seed_, lo, hi, kViolation)) < geo.violation_fraction
          ? geo.violation_factor
          : 1.0;
  const double skew =
      1.0 + geo.asymmetry *
                (2.0 * hash_unit(counter_hash(seed_, lo, hi, kSkew)) - 1.0);
  return a < b ? pair * inflated * skew : pair * inflated / skew;
}

double ProceduralUnderlay::capacity(int i, int j) const {
  const std::size_t a = check(i);
  const std::size_t b = check(j);
  if (a == b) throw std::invalid_argument("no self pair");
  const auto& bw = config_.bandwidth;
  const double core = std::exp(
      mu_core_ + bw.core_sigma * hash_gaussian(counter_hash(
                     seed_, static_cast<std::uint64_t>(a),
                     static_cast<std::uint64_t>(b) + (kCore << 32), kCore)));
  return std::min({uplink_[a], downlink_[b], core});
}

double ProceduralUnderlay::cross_fraction(int i, int j) const {
  const auto& bw = config_.bandwidth;
  const double noise =
      ou_noise(seed_ ^ 0xC505ull, static_cast<std::uint64_t>(i),
               static_cast<std::uint64_t>(j) + (kCross << 32), now_, cross_tau_);
  return std::clamp(bw.cross_fraction + cross_std_ * noise, 0.0, 0.95);
}

double ProceduralUnderlay::avail_bw(int i, int j) const {
  return std::max(0.0, capacity(i, j) * (1.0 - cross_fraction(i, j)));
}

double ProceduralUnderlay::node_load(int node) const {
  const std::size_t v = check(node);
  const auto& load = config_.load;
  const double base = load_base_[v];
  const double fluct =
      load_std_ * base *
      ou_noise(seed_ ^ 0x10ADF1ull, static_cast<std::uint64_t>(v), kLoadFluct,
               now_, load_tau_);
  // Spikes: at most one per window of the dense model's expected inter-
  // spike time; the window and its predecessor cover the decay tail.
  double spike = 0.0;
  if (load.spike_rate > 0.0) {
    const double window = 1.0 / load.spike_rate;
    const double hit_p = 1.0 - std::exp(-1.0);  // ~ one spike per window
    const auto w0 = static_cast<std::int64_t>(std::floor(now_ / window));
    for (std::int64_t w = w0 - 1; w <= w0; ++w) {
      const auto wu = static_cast<std::uint64_t>(w);
      if (hash_unit(counter_hash(seed_ ^ 0x5B1CEull,
                                 static_cast<std::uint64_t>(v), kSpikeHit,
                                 wu)) >= hit_p) {
        continue;
      }
      const double start =
          (static_cast<double>(w) +
           hash_unit(counter_hash(seed_ ^ 0x5B1CEull,
                                  static_cast<std::uint64_t>(v), kSpikeTime,
                                  wu))) *
          window;
      if (now_ < start) continue;
      const double mag =
          load.spike_magnitude * base *
          (0.5 + hash_unit(counter_hash(seed_ ^ 0x5B1CEull,
                                        static_cast<std::uint64_t>(v),
                                        kSpikeMag, wu)));
      spike += mag * std::exp(-load.spike_decay * (now_ - start));
    }
  }
  return std::max(0.05, base + fluct + spike);
}

void ProceduralUnderlay::advance(double dt) {
  if (dt < 0.0) throw std::invalid_argument("dt must be >= 0");
  now_ += dt;
}

std::size_t ProceduralUnderlay::memory_bytes() const {
  return n_ * (sizeof(std::int32_t) + 6 * sizeof(double));
}

std::unique_ptr<UnderlayBackend> make_underlay(UnderlayKind kind, std::size_t n,
                                               std::uint64_t seed,
                                               const GeoDelayConfig& geo,
                                               const BandwidthConfig& bandwidth,
                                               const LoadConfig& load) {
  switch (kind) {
    case UnderlayKind::kDense:
      return std::make_unique<DenseUnderlay>(n, seed, geo, bandwidth, load);
    case UnderlayKind::kProcedural: {
      ProceduralUnderlayConfig config;
      config.geo = geo;
      config.bandwidth = bandwidth;
      config.load = load;
      return std::make_unique<ProceduralUnderlay>(n, seed, std::move(config));
    }
  }
  throw std::invalid_argument("unknown underlay kind");
}

}  // namespace egoist::net
