// Synthetic router-level underlay topologies.
//
// The paper's scaling study (§5) also validates on "synthetic topologies
// from BRITE and real AS topologies". BRITE's two standard flavors are
// Waxman random graphs and Barabási–Albert preferential attachment; we
// implement both, plus the ring used by k-Regular's mental model. Overlay
// nodes attach to random routers and inherit shortest-path delays through
// the underlay (so underlay routing inefficiencies are visible at the
// overlay, as in reality).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "net/delay_space.hpp"
#include "util/rng.hpp"

namespace egoist::net {

/// A router-level underlay: an undirected connected graph with link delays,
/// stored as a symmetric Digraph.
struct Underlay {
  graph::Digraph routers;               ///< symmetric link delays (ms)
  std::vector<std::pair<double, double>> positions;  ///< plane coordinates
};

/// Waxman random graph: routers uniform on a plane; edge probability
/// alpha * exp(-dist / (beta * L)). Connectivity is enforced by linking
/// each unreached component to its nearest reached router.
Underlay make_waxman(std::size_t routers, std::uint64_t seed, double alpha = 0.15,
                     double beta = 0.2);

/// Barabási–Albert preferential attachment with m links per new router
/// (BRITE's "BA" mode); link delay from plane distance.
Underlay make_barabasi_albert(std::size_t routers, std::uint64_t seed,
                              std::size_t m = 2);

/// Delay space for `overlay_nodes` overlay nodes attached to distinct
/// random routers of the underlay: one-way delay = underlay shortest path
/// (+ small asymmetric skew).
DelaySpace delay_space_from_underlay(const Underlay& underlay,
                                     std::size_t overlay_nodes,
                                     std::uint64_t seed, double asymmetry = 0.05);

}  // namespace egoist::net
