// Underlay delay models.
//
// The paper's PlanetLab experiments run over real Internet delays; its
// scaling simulations use an all-pairs PlanetLab ping trace (n=295) plus
// BRITE-style synthetic topologies. We do not have the live testbed or the
// trace, so DelaySpace synthesizes one-way delay matrices whose structure
// matches published PlanetLab measurements: geographically clustered nodes
// (intra-continent ~5-40 ms, trans-continent ~60-160 ms), mild asymmetry
// (d_ij != d_ji), heavy-tailed access penalties, and occasional
// triangle-inequality violations — exactly the features that make overlay
// shortcuts (and hence neighbor selection) matter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/distance_matrix.hpp"
#include "net/fields.hpp"
#include "util/rng.hpp"

namespace egoist::net {

/// Immutable matrix of true one-way underlay delays (milliseconds), stored
/// as one flat row-major block (graph::DistanceMatrix) — the last nested
/// vector<vector<double>> in the net layer is gone; the nested-vector
/// constructor remains as a compatible conversion for existing callers.
class DelaySpace final : public DelayField {
 public:
  /// Wraps an explicit flat matrix. Requires a square matrix with zero
  /// diagonal and non-negative entries. (Named factory rather than a
  /// constructor so nested-list construction stays unambiguous.)
  static DelaySpace from_matrix(graph::DistanceMatrix delays);

  /// Legacy nested-matrix conversion (same validation, compatible
  /// accessor for existing callers).
  explicit DelaySpace(const std::vector<std::vector<double>>& delays);

  std::size_t size() const override { return delays_.rows(); }

  /// True one-way delay i -> j in milliseconds.
  double delay(int i, int j) const override {
    return delays_(check(i), check(j));
  }

  const graph::DistanceMatrix& matrix() const { return delays_; }

 private:
  explicit DelaySpace(graph::DistanceMatrix delays, int);

  std::size_t check(int v) const;
  graph::DistanceMatrix delays_;
};

/// Knobs for the PlanetLab-like generator.
struct GeoDelayConfig {
  /// Relative cluster populations ("continents"); defaults mirror the
  /// paper's deployment: 30 NA, 11 EU, 7 Asia, 1 SA, 1 Oceania.
  std::vector<double> cluster_weights{30, 11, 7, 1, 1};
  double intra_cluster_ms = 12.0;   ///< mean one-way delay within a cluster
  double inter_cluster_ms = 75.0;   ///< one-way delay between adjacent clusters
  double asymmetry = 0.08;          ///< relative directed-delay asymmetry
  double jitter = 0.06;             ///< relative lognormal spread per pair
  double access_penalty_ms = 0.5;   ///< per-node last-mile penalty scale
  double violation_fraction = 0.05; ///< pairs with inflated direct path
  double violation_factor = 2.2;    ///< inflation factor for those pairs
};

/// Synthesizes an n-node PlanetLab-like delay space.
DelaySpace make_planetlab_like(std::size_t n, std::uint64_t seed,
                               const GeoDelayConfig& config = {});

/// Cluster assignment used by make_planetlab_like for the same (n, seed,
/// config) — exposed so experiments can stratify by "continent".
std::vector<int> planetlab_like_clusters(std::size_t n, std::uint64_t seed,
                                         const GeoDelayConfig& config = {});

}  // namespace egoist::net
