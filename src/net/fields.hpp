// Abstract underlay field interfaces — the seam between consumers of
// per-pair/per-node substrate quantities (measurement planes, Vivaldi,
// overlay scoring, the multipath apps) and the backend that produces them.
//
// Two families implement these: the dense stateful models (DelaySpace,
// BandwidthModel, LoadModel — exactly the historical behavior, O(n^2)
// storage) and the procedural backend (net/underlay.hpp), whose per-pair
// values are pure functions of (seed, i, j, quantized time) with O(n)
// storage. Consumers written against the fields work with either.
#pragma once

#include <cstddef>

namespace egoist::net {

/// True one-way underlay delays (milliseconds).
class DelayField {
 public:
  virtual ~DelayField() = default;

  virtual std::size_t size() const = 0;

  /// True one-way delay i -> j in milliseconds. 0 on the diagonal.
  virtual double delay(int i, int j) const = 0;

  /// Round-trip time i <-> j (sum of the two directed delays).
  double rtt(int i, int j) const { return delay(i, j) + delay(j, i); }
};

/// True available bandwidth per directed pair (Mbps), at the backend's
/// current model time.
class BandwidthField {
 public:
  virtual ~BandwidthField() = default;

  virtual std::size_t size() const = 0;

  /// True available bandwidth i -> j (Mbps) at the current model time.
  virtual double avail_bw(int i, int j) const = 0;

  /// Static capacity (no cross traffic) of the i -> j pair.
  virtual double capacity(int i, int j) const = 0;
};

/// True per-node load (loadavg-like units, > 0) at the backend's current
/// model time.
class LoadField {
 public:
  virtual ~LoadField() = default;

  virtual std::size_t size() const = 0;

  /// Instantaneous true load of the node.
  virtual double load(int node) const = 0;
};

}  // namespace egoist::net
