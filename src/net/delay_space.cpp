#include "net/delay_space.hpp"

#include <cmath>
#include <stdexcept>

namespace egoist::net {

DelaySpace::DelaySpace(graph::DistanceMatrix delays, int)
    : delays_(std::move(delays)) {
  const std::size_t n = delays_.rows();
  if (delays_.cols() != n) {
    throw std::invalid_argument("delay matrix must be square");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (delays_(i, i) != 0.0) {
      throw std::invalid_argument("delay matrix diagonal must be zero");
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (delays_(i, j) < 0.0) {
        throw std::invalid_argument("delays must be non-negative");
      }
    }
  }
}

DelaySpace DelaySpace::from_matrix(graph::DistanceMatrix delays) {
  return DelaySpace(std::move(delays), 0);
}

DelaySpace::DelaySpace(const std::vector<std::vector<double>>& delays)
    : DelaySpace(graph::DistanceMatrix::from_nested(delays), 0) {}

std::size_t DelaySpace::check(int v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= delays_.rows()) {
    throw std::out_of_range("node id out of range");
  }
  return static_cast<std::size_t>(v);
}

namespace {

std::vector<int> assign_clusters(std::size_t n, util::Rng& rng,
                                 const GeoDelayConfig& config) {
  if (config.cluster_weights.empty()) {
    throw std::invalid_argument("cluster_weights must be non-empty");
  }
  double total = 0.0;
  for (double w : config.cluster_weights) {
    if (w < 0.0) throw std::invalid_argument("cluster weights must be >= 0");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("cluster weights sum to zero");
  std::vector<int> cluster(n);
  for (std::size_t i = 0; i < n; ++i) {
    double draw = rng.uniform(0.0, total);
    int c = 0;
    for (std::size_t w = 0; w < config.cluster_weights.size(); ++w) {
      draw -= config.cluster_weights[w];
      if (draw <= 0.0) {
        c = static_cast<int>(w);
        break;
      }
    }
    cluster[i] = c;
  }
  return cluster;
}

}  // namespace

std::vector<int> planetlab_like_clusters(std::size_t n, std::uint64_t seed,
                                         const GeoDelayConfig& config) {
  util::Rng rng(seed);
  return assign_clusters(n, rng, config);
}

DelaySpace make_planetlab_like(std::size_t n, std::uint64_t seed,
                               const GeoDelayConfig& config) {
  util::Rng rng(seed);
  const std::vector<int> cluster = assign_clusters(n, rng, config);

  // Geography first: cluster centers ("continents") sit on a circle whose
  // radius makes adjacent centers inter_cluster_ms apart in delay; nodes
  // scatter around their center so intra-cluster pairs average
  // intra_cluster_ms. Delays derive from Euclidean distance, which makes
  // the space near-metric — geographically intermediate nodes really are
  // "on the way", the property that lets a handful of well-chosen overlay
  // links approach full-mesh routing quality (Fig 1).
  const auto num_clusters = config.cluster_weights.size();
  const double radius =
      num_clusters > 1
          ? config.inter_cluster_ms /
                (2.0 * std::sin(3.14159265358979 / static_cast<double>(num_clusters)))
          : 0.0;
  // Mean pair distance of a 2D Gaussian scatter is sigma * sqrt(pi).
  const double sigma = config.intra_cluster_ms / 1.7724539;
  std::vector<std::pair<double, double>> pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * 3.14159265358979 *
                         static_cast<double>(cluster[i]) /
                         static_cast<double>(num_clusters);
    pos[i] = {radius * std::cos(angle) + rng.normal(0.0, sigma),
              radius * std::sin(angle) + rng.normal(0.0, sigma)};
  }

  // Heavy-tailed per-node access ("last mile") penalty, applied to every
  // path touching the node. Pareto(scale, 1.5) keeps a few slow hosts, as
  // observed on PlanetLab.
  std::vector<double> access(n);
  for (std::size_t i = 0; i < n; ++i) {
    access[i] = rng.pareto(config.access_penalty_ms, 1.5);
  }

  graph::DistanceMatrix d(n, n, 0.0);
  const double sigma_j = std::sqrt(std::log1p(config.jitter * config.jitter));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = pos[i].first - pos[j].first;
      const double dy = pos[i].second - pos[j].second;
      const double geo = std::sqrt(dx * dx + dy * dy);
      // Lognormal jitter keeps delays positive and mildly skewed.
      const double pair =
          geo * rng.lognormal(-0.5 * sigma_j * sigma_j, sigma_j) + access[i] +
          access[j];
      // A small fraction of pairs take an inflated direct route (routing
      // detours), creating the triangle-inequality violations that overlay
      // forwarding exploits.
      const double inflated =
          rng.chance(config.violation_fraction) ? config.violation_factor : 1.0;
      // Mild directed asymmetry (routing is not symmetric on the Internet).
      const double skew = 1.0 + config.asymmetry * rng.uniform(-1.0, 1.0);
      d(i, j) = pair * inflated * skew;
      d(j, i) = pair * inflated / skew;
    }
  }
  return DelaySpace::from_matrix(std::move(d));
}

}  // namespace egoist::net
