#include "net/load.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace egoist::net {

LoadModel::LoadModel(std::size_t n, std::uint64_t seed, LoadConfig config)
    : n_(n), config_(config), rng_(seed) {
  if (n == 0) throw std::invalid_argument("need >= 1 node");
  base_.resize(n);
  fluctuation_.assign(n, 0.0);
  spike_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    base_[i] = rng_.lognormal(config_.base_mu, config_.base_sigma);
  }
}

std::size_t LoadModel::check(int node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= n_) {
    throw std::out_of_range("node id out of range");
  }
  return static_cast<std::size_t>(node);
}

double LoadModel::load(int node) const {
  const std::size_t i = check(node);
  return std::max(0.05, base_[i] + fluctuation_[i] + spike_[i]);
}

void LoadModel::advance(double dt) {
  if (dt < 0.0) throw std::invalid_argument("dt must be >= 0");
  const double pull = std::min(1.0, config_.revert_rate * dt);
  const double noise = config_.volatility * std::sqrt(dt);
  const double spike_keep = std::exp(-config_.spike_decay * dt);
  for (std::size_t i = 0; i < n_; ++i) {
    fluctuation_[i] = (1.0 - pull) * fluctuation_[i] +
                      noise * base_[i] * rng_.normal(0.0, 1.0);
    spike_[i] *= spike_keep;
    if (rng_.chance(1.0 - std::exp(-config_.spike_rate * dt))) {
      spike_[i] += config_.spike_magnitude * base_[i] * rng_.uniform(0.5, 1.5);
    }
  }
}

}  // namespace egoist::net
