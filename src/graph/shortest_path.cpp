#include "graph/shortest_path.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace egoist::graph {

ShortestPathTree dijkstra(const Digraph& g, NodeId src) {
  g.check_node(src);
  if (!g.is_active(src)) {
    throw std::invalid_argument("dijkstra from inactive source");
  }
  const std::size_t n = g.node_count();
  ShortestPathTree tree;
  tree.dist.assign(n, kUnreachable);
  tree.parent.assign(n, -1);
  tree.dist[static_cast<std::size_t>(src)] = 0.0;

  using Item = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const Edge& e : g.out_edges(u)) {
      if (!g.is_active(e.to)) continue;
      if (e.weight < 0.0) {
        throw std::invalid_argument("dijkstra requires non-negative weights");
      }
      const double nd = d + e.weight;
      if (nd < tree.dist[static_cast<std::size_t>(e.to)]) {
        tree.dist[static_cast<std::size_t>(e.to)] = nd;
        tree.parent[static_cast<std::size_t>(e.to)] = u;
        heap.emplace(nd, e.to);
      }
    }
  }
  return tree;
}

std::vector<std::vector<double>> all_pairs_shortest_paths(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, kUnreachable));
  for (std::size_t u = 0; u < n; ++u) {
    if (!g.is_active(static_cast<NodeId>(u))) continue;
    dist[u] = dijkstra(g, static_cast<NodeId>(u)).dist;
  }
  return dist;
}

std::vector<NodeId> extract_path(const ShortestPathTree& tree, NodeId src, NodeId dst) {
  if (dst < 0 || static_cast<std::size_t>(dst) >= tree.dist.size()) {
    throw std::out_of_range("extract_path: dst out of range");
  }
  if (tree.dist[static_cast<std::size_t>(dst)] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId v = dst; v != -1; v = tree.parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != src) return {};
  return path;
}

std::vector<int> hop_distances(const Digraph& g, NodeId src) {
  g.check_node(src);
  std::vector<int> hops(g.node_count(), -1);
  if (!g.is_active(src)) return hops;
  std::queue<NodeId> frontier;
  hops[static_cast<std::size_t>(src)] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Edge& e : g.out_edges(u)) {
      if (!g.is_active(e.to)) continue;
      if (hops[static_cast<std::size_t>(e.to)] != -1) continue;
      hops[static_cast<std::size_t>(e.to)] = hops[static_cast<std::size_t>(u)] + 1;
      frontier.push(e.to);
    }
  }
  return hops;
}

}  // namespace egoist::graph
