// Shortest-path routines (Dijkstra, all-pairs) over the overlay wiring.
//
// EGOIST performs standard shortest-path routing over the selfishly built
// topology (the paper stresses this is *not* selfish routing). Costs are
// non-negative doubles; unreachable destinations get kUnreachable, which is
// the "M >> n" sentinel of the paper's cost definition.
#pragma once

#include <limits>
#include <vector>

#include "graph/digraph.hpp"

namespace egoist::graph {

/// Distance assigned to unreachable destinations.
inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path computation.
struct ShortestPathTree {
  std::vector<double> dist;    ///< dist[v]; kUnreachable when no path
  std::vector<NodeId> parent;  ///< predecessor on a shortest path; -1 at source/unreached
};

/// Dijkstra from `src`, honoring node active flags. Requires non-negative
/// edge weights (throws std::invalid_argument on a negative weight) and an
/// active source (throws std::invalid_argument otherwise).
ShortestPathTree dijkstra(const Digraph& g, NodeId src);

/// All-pairs shortest path distances: result[u][v]. Rows for inactive
/// sources are filled with kUnreachable (diag of active nodes is 0).
std::vector<std::vector<double>> all_pairs_shortest_paths(const Digraph& g);

/// Reconstructs the node sequence src -> ... -> dst from a Dijkstra tree.
/// Returns an empty vector when dst is unreachable.
std::vector<NodeId> extract_path(const ShortestPathTree& tree, NodeId src, NodeId dst);

/// BFS hop distances from `src` (every edge counts 1), honoring active
/// flags; unreachable nodes get -1. Used by the r-hop neighborhood ranking.
std::vector<int> hop_distances(const Digraph& g, NodeId src);

}  // namespace egoist::graph
