#include "graph/widest_path.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace egoist::graph {

WidestPathTree widest_paths(const Digraph& g, NodeId src) {
  g.check_node(src);
  if (!g.is_active(src)) {
    throw std::invalid_argument("widest_paths from inactive source");
  }
  const std::size_t n = g.node_count();
  WidestPathTree tree;
  tree.bottleneck.assign(n, 0.0);
  tree.parent.assign(n, -1);
  tree.bottleneck[static_cast<std::size_t>(src)] =
      std::numeric_limits<double>::infinity();

  using Item = std::pair<double, NodeId>;  // (bottleneck, node), max-first
  std::priority_queue<Item> heap;
  heap.emplace(tree.bottleneck[static_cast<std::size_t>(src)], src);
  while (!heap.empty()) {
    const auto [b, u] = heap.top();
    heap.pop();
    if (b < tree.bottleneck[static_cast<std::size_t>(u)]) continue;  // stale
    for (const Edge& e : g.out_edges(u)) {
      if (!g.is_active(e.to)) continue;
      if (e.weight < 0.0) {
        throw std::invalid_argument("bandwidth weights must be non-negative");
      }
      const double nb = std::min(b, e.weight);
      if (nb > tree.bottleneck[static_cast<std::size_t>(e.to)]) {
        tree.bottleneck[static_cast<std::size_t>(e.to)] = nb;
        tree.parent[static_cast<std::size_t>(e.to)] = u;
        heap.emplace(nb, e.to);
      }
    }
  }
  return tree;
}

std::vector<std::vector<double>> all_pairs_widest_paths(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::vector<double>> bw(n, std::vector<double>(n, 0.0));
  for (std::size_t u = 0; u < n; ++u) {
    if (!g.is_active(static_cast<NodeId>(u))) continue;
    bw[u] = widest_paths(g, static_cast<NodeId>(u)).bottleneck;
  }
  return bw;
}

}  // namespace egoist::graph
