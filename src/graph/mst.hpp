// Minimum spanning tree over the active nodes (Prim).
//
// §3.3 contrasts EGOIST's donated-cycle backbone with the k-MST
// connectivity meshes of Young et al. [43]: MSTs give low-stretch backbones
// but are a centralized construction that must be rebuilt on every
// membership or weight change. We implement the MST so the ablation bench
// can quantify that trade-off against the cycle backbone.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/digraph.hpp"

namespace egoist::graph {

/// An undirected spanning-tree edge.
struct TreeEdge {
  NodeId a = -1;
  NodeId b = -1;
  double weight = 0.0;
};

/// Prim's MST over the active nodes using the symmetrized weight
/// w(a,b) = (cost(a,b) + cost(b,a)) / 2 from a dense cost oracle.
/// `cost(a, b)` must be callable for every active pair. Returns n-1 edges;
/// throws std::invalid_argument when fewer than 2 nodes are active.
std::vector<TreeEdge> minimum_spanning_tree(
    const std::vector<NodeId>& nodes,
    const std::function<double(NodeId, NodeId)>& cost);

/// Adjacency view of a tree: per-node list of tree neighbors.
std::vector<std::vector<NodeId>> tree_adjacency(std::size_t n,
                                                const std::vector<TreeEdge>& tree);

}  // namespace egoist::graph
