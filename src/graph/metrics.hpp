// Overlay quality metrics from the paper.
//
// - Routing cost C_i(S) = sum_j p_ij * d_S(v_i, v_j)      (§2.1)
// - Efficiency  eps_i  = 1/(n-1) * sum_{j != i} 1/d_ij    (§4.4; 0 when
//   disconnected — the churn experiments' replacement for raw distance)
// - r-hop neighborhood size |F(v_j)|                       (§5 sampling bias)
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace egoist::graph {

/// Weighted routing cost of node `src` given its distance row `dist` and
/// per-destination preferences `pref` (pref[src] ignored). Unreachable
/// destinations contribute `unreachable_penalty` (the paper's M >> n).
double routing_cost(const std::vector<double>& dist, const std::vector<double>& pref,
                    NodeId src, double unreachable_penalty);

/// Uniform-preference routing cost: average distance to the other
/// destinations listed in `targets` (src excluded), with penalty for
/// unreachable ones.
double uniform_routing_cost(const std::vector<double>& dist, NodeId src,
                            const std::vector<NodeId>& targets,
                            double unreachable_penalty);

/// Efficiency of node src over destinations `targets`: mean of 1/d
/// (0 for unreachable or zero-distance-self entries). Result is in
/// [0, mean(1/d_min)]; higher is better.
double node_efficiency(const std::vector<double>& dist, NodeId src,
                       const std::vector<NodeId>& targets);

/// Size of the r-hop out-neighborhood of v: number of distinct nodes
/// (excluding v) reachable within at most r hops.
std::size_t r_hop_neighborhood_size(const Digraph& g, NodeId v, int r);

/// Nodes in the r-hop out-neighborhood of v (excluding v).
std::vector<NodeId> r_hop_neighborhood(const Digraph& g, NodeId v, int r);

}  // namespace egoist::graph
