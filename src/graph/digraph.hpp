// Directed weighted graph used for both the overlay wiring and the underlay.
//
// Nodes are dense integer ids [0, n). Edges are directed and weighted
// (d_ij need not equal d_ji, per the paper's model). Nodes can be marked
// inactive — the churn machinery flips nodes OFF/ON without rebuilding the
// graph; all algorithms in this library skip inactive nodes and their edges.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace egoist::graph {

using NodeId = int;

/// A directed edge as stored in an adjacency list.
struct Edge {
  NodeId to = -1;
  double weight = 0.0;
};

/// Adjacency-list digraph with O(deg) edge lookup (degrees are small: k).
class Digraph {
 public:
  /// Creates a graph with `n` active nodes and no edges.
  explicit Digraph(std::size_t n) : adjacency_(n), active_(n, true) {}

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds the edge (u -> v) with the given weight, or updates the weight if
  /// the edge already exists. Self-loops are rejected.
  void set_edge(NodeId u, NodeId v, double weight);

  /// Removes (u -> v) if present; returns whether an edge was removed.
  bool remove_edge(NodeId u, NodeId v);

  /// Removes all outgoing edges of `u`.
  void clear_out_edges(NodeId u);

  bool has_edge(NodeId u, NodeId v) const;

  /// Weight of (u -> v). Throws std::out_of_range if the edge is absent.
  double edge_weight(NodeId u, NodeId v) const;

  /// Outgoing adjacency of `u` (includes edges to inactive targets; callers
  /// running graph algorithms should consult is_active()).
  std::span<const Edge> out_edges(NodeId u) const {
    check_node(u);
    return adjacency_[static_cast<std::size_t>(u)];
  }

  /// Out-degree counting all stored edges (active and inactive targets).
  std::size_t out_degree(NodeId u) const { return out_edges(u).size(); }

  /// Marks a node ON (active) or OFF. An inactive node is invisible to the
  /// path algorithms: it cannot originate, relay, or terminate paths.
  void set_active(NodeId u, bool active) {
    check_node(u);
    active_[static_cast<std::size_t>(u)] = active;
  }
  bool is_active(NodeId u) const {
    check_node(u);
    return active_[static_cast<std::size_t>(u)];
  }

  /// All currently active node ids, ascending.
  std::vector<NodeId> active_nodes() const;

  /// Validates a node id (throws std::out_of_range when invalid).
  void check_node(NodeId u) const {
    if (u < 0 || static_cast<std::size_t>(u) >= adjacency_.size()) {
      throw std::out_of_range("node id out of range");
    }
  }

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<bool> active_;
  std::size_t edge_count_ = 0;
};

}  // namespace egoist::graph
