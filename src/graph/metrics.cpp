#include "graph/metrics.hpp"

#include <stdexcept>

#include "graph/shortest_path.hpp"

namespace egoist::graph {

double routing_cost(const std::vector<double>& dist, const std::vector<double>& pref,
                    NodeId src, double unreachable_penalty) {
  if (dist.size() != pref.size()) {
    throw std::invalid_argument("dist/pref size mismatch");
  }
  double cost = 0.0;
  for (std::size_t j = 0; j < dist.size(); ++j) {
    if (static_cast<NodeId>(j) == src) continue;
    const double d = dist[j] == kUnreachable ? unreachable_penalty : dist[j];
    cost += pref[j] * d;
  }
  return cost;
}

double uniform_routing_cost(const std::vector<double>& dist, NodeId src,
                            const std::vector<NodeId>& targets,
                            double unreachable_penalty) {
  double sum = 0.0;
  std::size_t count = 0;
  for (NodeId j : targets) {
    if (j == src) continue;
    const auto dj = dist[static_cast<std::size_t>(j)];
    sum += dj == kUnreachable ? unreachable_penalty : dj;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double node_efficiency(const std::vector<double>& dist, NodeId src,
                       const std::vector<NodeId>& targets) {
  double sum = 0.0;
  std::size_t count = 0;
  for (NodeId j : targets) {
    if (j == src) continue;
    ++count;
    const auto dj = dist[static_cast<std::size_t>(j)];
    if (dj == kUnreachable || dj <= 0.0) continue;  // epsilon_ij = 0
    sum += 1.0 / dj;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::vector<NodeId> r_hop_neighborhood(const Digraph& g, NodeId v, int r) {
  if (r < 0) throw std::invalid_argument("radius must be >= 0");
  const auto hops = hop_distances(g, v);
  std::vector<NodeId> out;
  for (std::size_t j = 0; j < hops.size(); ++j) {
    if (static_cast<NodeId>(j) == v) continue;
    if (hops[j] >= 0 && hops[j] <= r) out.push_back(static_cast<NodeId>(j));
  }
  return out;
}

std::size_t r_hop_neighborhood_size(const Digraph& g, NodeId v, int r) {
  return r_hop_neighborhood(g, v, r).size();
}

}  // namespace egoist::graph
