#include "graph/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace egoist::graph {

MaxFlow::MaxFlow(std::size_t n) : n_(n), arcs_(n), level_(n), next_(n) {}

void MaxFlow::add_arc(NodeId u, NodeId v, double capacity) {
  if (u < 0 || v < 0 || static_cast<std::size_t>(u) >= n_ ||
      static_cast<std::size_t>(v) >= n_) {
    throw std::out_of_range("max-flow arc endpoint out of range");
  }
  if (capacity < 0.0) throw std::invalid_argument("negative capacity");
  auto& fwd_list = arcs_[static_cast<std::size_t>(u)];
  auto& rev_list = arcs_[static_cast<std::size_t>(v)];
  const std::size_t fwd_slot = fwd_list.size();
  const std::size_t rev_slot = rev_list.size() + (u == v ? 1 : 0);
  fwd_list.push_back(Arc{v, capacity, rev_slot});
  arcs_[static_cast<std::size_t>(v)].push_back(Arc{u, 0.0, fwd_slot});
  arc_handles_.emplace_back(u, fwd_slot);
  original_capacity_.push_back(capacity);
}

bool MaxFlow::build_levels(NodeId s, NodeId t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<NodeId> frontier;
  level_[static_cast<std::size_t>(s)] = 0;
  frontier.push(s);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Arc& a : arcs_[static_cast<std::size_t>(u)]) {
      if (a.capacity > kFlowEps && level_[static_cast<std::size_t>(a.to)] == -1) {
        level_[static_cast<std::size_t>(a.to)] =
            level_[static_cast<std::size_t>(u)] + 1;
        frontier.push(a.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] != -1;
}

double MaxFlow::push(NodeId u, NodeId t, double limit) {
  if (u == t) return limit;
  auto& slots = arcs_[static_cast<std::size_t>(u)];
  for (std::size_t& i = next_[static_cast<std::size_t>(u)]; i < slots.size(); ++i) {
    Arc& a = slots[i];
    if (a.capacity <= kFlowEps) continue;
    if (level_[static_cast<std::size_t>(a.to)] !=
        level_[static_cast<std::size_t>(u)] + 1) {
      continue;
    }
    const double sent = push(a.to, t, std::min(limit, a.capacity));
    if (sent > kFlowEps) {
      a.capacity -= sent;
      arcs_[static_cast<std::size_t>(a.to)][a.reverse].capacity += sent;
      return sent;
    }
  }
  return 0.0;
}

double MaxFlow::max_flow(NodeId s, NodeId t) {
  if (s == t) throw std::invalid_argument("max_flow requires s != t");
  double total = 0.0;
  while (build_levels(s, t)) {
    std::fill(next_.begin(), next_.end(), 0);
    while (true) {
      const double sent = push(s, t, std::numeric_limits<double>::infinity());
      if (sent <= kFlowEps) break;
      total += sent;
    }
  }
  return total;
}

double MaxFlow::arc_flow(std::size_t arc_index) const {
  if (arc_index >= arc_handles_.size()) {
    throw std::out_of_range("arc index out of range");
  }
  const auto [node, slot] = arc_handles_[arc_index];
  const Arc& a = arcs_[static_cast<std::size_t>(node)][slot];
  return original_capacity_[arc_index] - a.capacity;
}

double max_flow_on_graph(const Digraph& g, NodeId s, NodeId t) {
  g.check_node(s);
  g.check_node(t);
  MaxFlow mf(g.node_count());
  for (std::size_t u = 0; u < g.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    if (!g.is_active(uid)) continue;
    for (const Edge& e : g.out_edges(uid)) {
      if (!g.is_active(e.to)) continue;
      mf.add_arc(uid, e.to, e.weight);
    }
  }
  return mf.max_flow(s, t);
}

int edge_disjoint_paths(const Digraph& g, NodeId s, NodeId t) {
  g.check_node(s);
  g.check_node(t);
  MaxFlow mf(g.node_count());
  for (std::size_t u = 0; u < g.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    if (!g.is_active(uid)) continue;
    for (const Edge& e : g.out_edges(uid)) {
      if (!g.is_active(e.to)) continue;
      mf.add_arc(uid, e.to, 1.0);
    }
  }
  return static_cast<int>(mf.max_flow(s, t) + 0.5);
}

int node_disjoint_paths(const Digraph& g, NodeId s, NodeId t) {
  g.check_node(s);
  g.check_node(t);
  // Split every node v into v_in (= v) and v_out (= v + n) joined by a
  // unit-capacity arc; s and t keep infinite internal capacity.
  const std::size_t n = g.node_count();
  MaxFlow mf(2 * n);
  const double inf = std::numeric_limits<double>::max() / 4;
  for (std::size_t v = 0; v < n; ++v) {
    const auto vid = static_cast<NodeId>(v);
    if (!g.is_active(vid)) continue;
    const double cap = (vid == s || vid == t) ? inf : 1.0;
    mf.add_arc(vid, static_cast<NodeId>(v + n), cap);
  }
  for (std::size_t u = 0; u < n; ++u) {
    const auto uid = static_cast<NodeId>(u);
    if (!g.is_active(uid)) continue;
    for (const Edge& e : g.out_edges(uid)) {
      if (!g.is_active(e.to)) continue;
      mf.add_arc(static_cast<NodeId>(u + n), e.to, 1.0);
    }
  }
  return static_cast<int>(mf.max_flow(s, static_cast<NodeId>(t)) + 0.5);
}

}  // namespace egoist::graph
