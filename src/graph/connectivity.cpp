#include "graph/connectivity.hpp"

#include <queue>

namespace egoist::graph {

std::vector<NodeId> reachable_set(const Digraph& g, NodeId src) {
  g.check_node(src);
  std::vector<NodeId> out;
  if (!g.is_active(src)) return out;
  std::vector<bool> seen(g.node_count(), false);
  std::queue<NodeId> frontier;
  seen[static_cast<std::size_t>(src)] = true;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    out.push_back(u);
    for (const Edge& e : g.out_edges(u)) {
      if (!g.is_active(e.to) || seen[static_cast<std::size_t>(e.to)]) continue;
      seen[static_cast<std::size_t>(e.to)] = true;
      frontier.push(e.to);
    }
  }
  return out;
}

std::size_t reachable_count(const Digraph& g, NodeId src) {
  return reachable_set(g, src).size();
}

bool is_strongly_connected(const Digraph& g) {
  const auto active = g.active_nodes();
  if (active.size() <= 1) return true;
  // Forward reachability from one active node covers all active nodes, and
  // reverse reachability (on the transposed graph) does too.
  if (reachable_count(g, active.front()) != active.size()) return false;
  Digraph reversed(g.node_count());
  for (std::size_t u = 0; u < g.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    reversed.set_active(uid, g.is_active(uid));
    for (const Edge& e : g.out_edges(uid)) reversed.set_edge(e.to, uid, e.weight);
  }
  return reachable_count(reversed, active.front()) == active.size();
}

bool is_weakly_connected(const Digraph& g) {
  const auto active = g.active_nodes();
  if (active.size() <= 1) return true;
  Digraph undirected(g.node_count());
  for (std::size_t u = 0; u < g.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    undirected.set_active(uid, g.is_active(uid));
    for (const Edge& e : g.out_edges(uid)) {
      undirected.set_edge(uid, e.to, 1.0);
      undirected.set_edge(e.to, uid, 1.0);
    }
  }
  return reachable_count(undirected, active.front()) == active.size();
}

}  // namespace egoist::graph
