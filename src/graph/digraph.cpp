#include "graph/digraph.hpp"

#include <algorithm>

namespace egoist::graph {

void Digraph::set_edge(NodeId u, NodeId v, double weight) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("self-loops are not allowed");
  auto& out = adjacency_[static_cast<std::size_t>(u)];
  for (Edge& e : out) {
    if (e.to == v) {
      e.weight = weight;
      return;
    }
  }
  out.push_back(Edge{v, weight});
  ++edge_count_;
}

bool Digraph::remove_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  auto& out = adjacency_[static_cast<std::size_t>(u)];
  const auto it = std::find_if(out.begin(), out.end(),
                               [v](const Edge& e) { return e.to == v; });
  if (it == out.end()) return false;
  out.erase(it);
  --edge_count_;
  return true;
}

void Digraph::clear_out_edges(NodeId u) {
  check_node(u);
  auto& out = adjacency_[static_cast<std::size_t>(u)];
  edge_count_ -= out.size();
  out.clear();
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& out = adjacency_[static_cast<std::size_t>(u)];
  return std::any_of(out.begin(), out.end(),
                     [v](const Edge& e) { return e.to == v; });
}

double Digraph::edge_weight(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (const Edge& e : adjacency_[static_cast<std::size_t>(u)]) {
    if (e.to == v) return e.weight;
  }
  throw std::out_of_range("edge not present");
}

std::vector<NodeId> Digraph::active_nodes() const {
  std::vector<NodeId> out;
  out.reserve(adjacency_.size());
  for (std::size_t i = 0; i < adjacency_.size(); ++i) {
    if (active_[i]) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

}  // namespace egoist::graph
