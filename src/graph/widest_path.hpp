// Maximum-bottleneck-bandwidth ("widest") paths.
//
// For the available-bandwidth cost metric the paper routes along the path
// whose minimum-bandwidth edge is maximal: AvailBW(v,u) = max over paths of
// (min over edges of AvailBW(e)). This is the classic widest-path problem,
// solved by Dijkstra on the (max, min) semiring — the "simple modification
// of Dijkstra's" the paper cites.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace egoist::graph {

/// Result of a single-source widest-path computation. Edge weights are
/// interpreted as available bandwidth (>= 0).
struct WidestPathTree {
  std::vector<double> bottleneck;  ///< max-min bandwidth to each node; 0 if unreachable
  std::vector<NodeId> parent;      ///< predecessor on a widest path; -1 at source/unreached
};

/// Widest paths from `src`, honoring node active flags. The source's own
/// bottleneck is +infinity by convention (no constraining edge yet).
WidestPathTree widest_paths(const Digraph& g, NodeId src);

/// All-pairs bottleneck bandwidth: result[u][v] (0 when unreachable,
/// +infinity on the diagonal of active nodes).
std::vector<std::vector<double>> all_pairs_widest_paths(const Digraph& g);

}  // namespace egoist::graph
