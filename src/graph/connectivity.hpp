// Reachability and connectivity predicates over the overlay wiring.
//
// The wiring policies "enforce a cycle" when the resulting graph is not
// connected (k-Random / k-Closest, §3.2) and the churn experiments need to
// detect partitions, so connectivity checks are on the policy hot path.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace egoist::graph {

/// Nodes reachable from `src` by directed paths (including src itself),
/// honoring active flags. Returns an empty set when src is inactive.
std::vector<NodeId> reachable_set(const Digraph& g, NodeId src);

/// Number of active nodes reachable from src (including itself).
std::size_t reachable_count(const Digraph& g, NodeId src);

/// True when every active node can reach every other active node.
/// Graphs with <= 1 active node are strongly connected by convention.
bool is_strongly_connected(const Digraph& g);

/// True when the undirected version of the active subgraph is connected.
bool is_weakly_connected(const Digraph& g);

}  // namespace egoist::graph
