#include "graph/path_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>
#include <type_traits>

#include "graph/shortest_path.hpp"

namespace egoist::graph {

void CsrGraph::rebuild(const Digraph& g) {
  const std::size_t n = g.node_count();
  active_.assign(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    if (g.is_active(static_cast<NodeId>(u))) active_[u] = 1;
  }

  // The max weight scans *every* stored edge, including those dropped for
  // inactivity below: the default unreachable penalty is derived from it
  // and must match the legacy Digraph scan, which never looks at activity.
  max_weight_ = 0.0;
  for (std::size_t u = 0; u < n; ++u) {
    for (const Edge& e : g.out_edges(static_cast<NodeId>(u))) {
      max_weight_ = std::max(max_weight_, e.weight);
    }
  }

  offset_.assign(n + 1, 0);
  target_.clear();
  weight_.clear();
  target_.reserve(g.edge_count());
  weight_.reserve(g.edge_count());
  for (std::size_t u = 0; u < n; ++u) {
    offset_[u] = target_.size();
    if (!active_[u]) continue;  // an inactive source never relaxes edges
    for (const Edge& e : g.out_edges(static_cast<NodeId>(u))) {
      if (e.weight < 0.0) {
        throw std::invalid_argument("path engine requires non-negative weights");
      }
      if (!active_[static_cast<std::size_t>(e.to)]) continue;
      target_.push_back(e.to);
      weight_.push_back(e.weight);
    }
  }
  offset_[n] = target_.size();

  // Reverse CSR (counting sort by target): repair seeds scan the edges
  // *entering* an affected subtree.
  const std::size_t m = target_.size();
  in_offset_.assign(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++in_offset_[static_cast<std::size_t>(target_[e]) + 1];
  }
  for (std::size_t u = 0; u < n; ++u) in_offset_[u + 1] += in_offset_[u];
  in_source_.resize(m);
  in_weight_.resize(m);
  build_cursor_.assign(in_offset_.begin(), in_offset_.end() - 1);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t e = offset_[u]; e < offset_[u + 1]; ++e) {
      const auto slot = build_cursor_[static_cast<std::size_t>(target_[e])]++;
      in_source_[slot] = static_cast<NodeId>(u);
      in_weight_[slot] = weight_[e];
    }
  }
}

std::vector<NodeId> CsrGraph::active_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t u = 0; u < active_.size(); ++u) {
    if (active_[u]) out.push_back(static_cast<NodeId>(u));
  }
  return out;
}

namespace {

// 4-ary heap primitives over a flat vector. Wider nodes trade a deeper
// sift for fewer cache lines touched per pop. `better` orders the heap top
// (less-than for shortest paths, greater-than for widest).
constexpr std::size_t kArity = 4;

template <typename Item, typename Better>
void sift_up(std::vector<Item>& h, std::size_t i, Better better) {
  Item item = h[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!better(item.key, h[parent].key)) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = item;
}

template <typename Item, typename Better>
void sift_down(std::vector<Item>& h, std::size_t i, Better better) {
  const std::size_t size = h.size();
  Item item = h[i];
  while (true) {
    const std::size_t first = i * kArity + 1;
    if (first >= size) break;
    const std::size_t last = std::min(first + kArity, size);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (better(h[c].key, h[best].key)) best = c;
    }
    if (!better(h[best].key, item.key)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = item;
}

template <bool kWidest>
constexpr double init_value() {
  return kWidest ? 0.0 : kUnreachable;
}

template <bool kWidest>
constexpr double source_value() {
  return kWidest ? std::numeric_limits<double>::infinity() : 0.0;
}

template <bool kWidest>
double combine(double upstream, double weight) {
  if constexpr (kWidest) {
    return std::min(upstream, weight);
  } else {
    return upstream + weight;
  }
}

constexpr auto make_better(std::bool_constant<true>) {
  return [](double a, double b) { return a > b; };
}
constexpr auto make_better(std::bool_constant<false>) {
  return [](double a, double b) { return a < b; };
}

}  // namespace

void PathEngine::set_workers(int workers) {
  if (workers < 0) throw std::invalid_argument("workers must be >= 0");
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = static_cast<int>(std::min(4u, std::max(1u, hw)));
  }
  workers_ = workers;
}

void PathEngine::rebuild(const Digraph& g) {
  csr_.rebuild(g);
  shortest_base_.valid = false;
  widest_base_.valid = false;
  last_update_rebuilt_ = true;
  last_update_invalidated_.clear();
}

void PathEngine::update_out_edges(NodeId u, const Digraph& g) {
  const std::size_t n = csr_.node_count();
  if (g.node_count() != n || (!shortest_base_.valid && !widest_base_.valid)) {
    rebuild(g);
    return;
  }
  csr_.check_node(u);
  active_before_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    active_before_[v] = csr_.is_active(static_cast<NodeId>(v)) ? 1 : 0;
  }
  const bool had_shortest = shortest_base_.valid;
  const bool had_widest = widest_base_.valid;
  csr_.rebuild(g);
  for (std::size_t v = 0; v < n; ++v) {
    if ((csr_.is_active(static_cast<NodeId>(v)) ? 1 : 0) != active_before_[v]) {
      // Membership changed: the one-row contract is void, start over.
      shortest_base_.valid = false;
      widest_base_.valid = false;
      last_update_rebuilt_ = true;
      last_update_invalidated_.clear();
      return;
    }
  }
  last_update_rebuilt_ = false;
  last_update_invalidated_.clear();
  update_changed_mark_.assign(n, 0);
  if (had_shortest) {
    for (std::size_t src = 0; src < n; ++src) {
      if (update_tree<false>(shortest_base_, static_cast<NodeId>(src), u)) {
        update_changed_mark_[src] = 1;
      }
    }
  }
  if (had_widest) {
    for (std::size_t src = 0; src < n; ++src) {
      if (update_tree<true>(widest_base_, static_cast<NodeId>(src), u)) {
        update_changed_mark_[src] = 1;
      }
    }
  }
  for (std::size_t src = 0; src < n; ++src) {
    if (update_changed_mark_[src] != 0) {
      last_update_invalidated_.push_back(static_cast<NodeId>(src));
    }
  }
}

PathEngine::QueryScratch& PathEngine::workspace(std::size_t i) {
  if (workspaces_.size() <= i) workspaces_.resize(i + 1);
  return workspaces_[i];
}

template <bool kWidest>
void PathEngine::run(QueryScratch& qs, NodeId src, NodeId exclude,
                     std::span<double> out, NodeId* parent_row) const {
  const double init = init_value<kWidest>();
  std::fill(out.begin(), out.end(), init);
  if (parent_row != nullptr) {
    std::fill(parent_row, parent_row + out.size(), NodeId{-1});
  }
  if (!csr_.is_active(src)) return;  // all_pairs leaves inactive rows unreached
  out[static_cast<std::size_t>(src)] = source_value<kWidest>();

  const auto better = make_better(std::bool_constant<kWidest>{});
  auto& heap = qs.heap;
  heap.clear();
  heap.push_back({out[static_cast<std::size_t>(src)], src});
  while (!heap.empty()) {
    const HeapItem top = heap.front();
    heap.front() = heap.back();
    heap.pop_back();
    if (!heap.empty()) sift_down(heap, 0, better);

    const auto u = static_cast<std::size_t>(top.node);
    if (better(out[u], top.key)) continue;  // stale entry
    if (top.node == exclude) continue;      // residual view: G_{-exclude}

    const auto targets = csr_.out_targets(top.node);
    const auto weights = csr_.out_weights(top.node);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const auto v = static_cast<std::size_t>(targets[i]);
      const double candidate = combine<kWidest>(top.key, weights[i]);
      if (better(candidate, out[v])) {
        out[v] = candidate;
        if (parent_row != nullptr) parent_row[v] = top.node;
        heap.push_back({candidate, targets[i]});
        sift_up(heap, heap.size() - 1, better);
      }
    }
  }
}

template <bool kWidest>
void PathEngine::ensure_base(BaseTrees& base) {
  if (base.valid) return;
  const std::size_t n = csr_.node_count();
  base.dist.reshape(n, n);       // every row is fully written by run()
  base.parent.resize(n * n);     // likewise
  base.child_count.assign(n * n, 0);

  // One SSSP tree per source; rows and parent slices are disjoint, so the
  // sources can be fanned out over a small worker pool (read-only CSR).
  const std::size_t pool = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(workers_, 1)),
      std::max<std::size_t>(n, 1));
  for (std::size_t w = 0; w < pool; ++w) workspace(w);  // allocate up front
  auto build_range = [&](std::size_t worker, std::size_t begin,
                         std::size_t end) {
    for (std::size_t src = begin; src < end; ++src) {
      NodeId* parent_row = base.parent.data() + src * n;
      run<kWidest>(workspaces_[worker], static_cast<NodeId>(src), kNoExclude,
                   base.dist.row(src), parent_row);
      std::int32_t* counts = base.child_count.data() + src * n;
      for (std::size_t j = 0; j < n; ++j) {
        if (parent_row[j] >= 0) ++counts[static_cast<std::size_t>(parent_row[j])];
      }
    }
  };
  if (pool <= 1 || n == 0) {
    build_range(0, 0, n);
  } else {
    const std::size_t chunk = (n + pool - 1) / pool;
    std::vector<std::thread> threads;
    threads.reserve(pool - 1);
    for (std::size_t w = 1; w < pool; ++w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      if (begin >= end) break;
      threads.emplace_back(build_range, w, begin, end);
    }
    build_range(0, 0, std::min(chunk, n));
    for (auto& t : threads) t.join();
  }
  base.valid = true;
}

std::size_t PathEngine::collect_descendants(QueryScratch& qs,
                                            const NodeId* parent_row,
                                            const std::int32_t* child_count_row,
                                            NodeId u, std::uint64_t mark) const {
  const std::size_t n = csr_.node_count();
  qs.desc_buf.clear();
  // Leaf (or unreached) in this tree: nothing below it, skip the scans.
  if (child_count_row[static_cast<std::size_t>(u)] == 0) return 0;
  // Level scans: each sweep admits nodes whose tree parent is u or already
  // collected. Overlay SP trees are shallow (log-ish depth), so a handful
  // of O(n) integer scans beats building explicit child lists.
  constexpr int kMaxScans = 16;
  for (int scan = 0; scan < kMaxScans; ++scan) {
    const std::size_t before = qs.desc_buf.size();
    for (std::size_t j = 0; j < n; ++j) {
      if (qs.affected_mark[j] == mark) continue;
      const NodeId p = parent_row[j];
      if (p < 0) continue;
      if (p == u || qs.affected_mark[static_cast<std::size_t>(p)] == mark) {
        qs.affected_mark[j] = mark;
        qs.desc_buf.push_back(static_cast<NodeId>(j));
      }
    }
    if (qs.desc_buf.size() == before) return qs.desc_buf.size();
  }

  // Deep subtree: finish with explicit child lists + DFS (same mark, so
  // already-collected nodes are kept and not revisited).
  qs.child_offset.assign(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    if (parent_row[j] >= 0) {
      ++qs.child_offset[static_cast<std::size_t>(parent_row[j]) + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    qs.child_offset[v + 1] += qs.child_offset[v];
  }
  qs.child_cursor.assign(qs.child_offset.begin(), qs.child_offset.end() - 1);
  qs.child.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (parent_row[j] >= 0) {
      qs.child[qs.child_cursor[static_cast<std::size_t>(parent_row[j])]++] =
          static_cast<NodeId>(j);
    }
  }
  qs.desc_stack.clear();
  qs.desc_stack.push_back(u);
  for (NodeId d : qs.desc_buf) qs.desc_stack.push_back(d);
  while (!qs.desc_stack.empty()) {
    const auto x = static_cast<std::size_t>(qs.desc_stack.back());
    qs.desc_stack.pop_back();
    for (std::size_t c = qs.child_offset[x]; c < qs.child_offset[x + 1]; ++c) {
      const NodeId ch = qs.child[c];
      if (qs.affected_mark[static_cast<std::size_t>(ch)] == mark) continue;
      qs.affected_mark[static_cast<std::size_t>(ch)] = mark;
      qs.desc_buf.push_back(ch);
      qs.desc_stack.push_back(ch);
    }
  }
  return qs.desc_buf.size();
}

template <bool kWidest>
void PathEngine::repair_row(QueryScratch& qs, const BaseTrees& base, NodeId src,
                            NodeId exclude, std::span<double> out) const {
  const std::size_t s = static_cast<std::size_t>(src);
  const double init = init_value<kWidest>();

  if (!csr_.is_active(src)) {
    std::fill(out.begin(), out.end(), init);
    return;
  }
  if (src == exclude) {
    // G_{-src} from src: no out-edges, only the source entry is set.
    std::fill(out.begin(), out.end(), init);
    out[s] = source_value<kWidest>();
    return;
  }
  const auto row = base.dist.row(s);
  std::copy(row.begin(), row.end(), out.begin());
  if (exclude == kNoExclude || !csr_.is_active(exclude)) return;

  // Proper descendants of `exclude` in tree(src): the only destinations
  // whose tree path uses one of exclude's out-edges. Everything else keeps
  // its base distance (its tree path survives in G_{-exclude}, and a
  // subset-minimum cannot drop below the full-graph minimum it attains).
  const std::size_t n = csr_.node_count();
  const NodeId* parent_row = base.parent.data() + s * n;
  const std::int32_t* count_row = base.child_count.data() + s * n;
  if (qs.affected_mark.size() < n) qs.affected_mark.resize(n, 0);
  const std::uint64_t mark = ++qs.mark_epoch;
  if (collect_descendants(qs, parent_row, count_row, exclude, mark) == 0) {
    return;
  }

  const auto better = make_better(std::bool_constant<kWidest>{});
  auto& heap = qs.heap;
  heap.clear();
  for (const NodeId a : qs.desc_buf) out[static_cast<std::size_t>(a)] = init;
  // Seed each affected node from edges entering the set (never from
  // `exclude` itself), then run Dijkstra restricted to the set: values
  // outside it are final, because removing edges cannot improve them.
  for (const NodeId a : qs.desc_buf) {
    const auto sources = csr_.in_sources(a);
    const auto weights = csr_.in_weights(a);
    double best = init;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const auto w = static_cast<std::size_t>(sources[i]);
      if (sources[i] == exclude || qs.affected_mark[w] == mark) continue;
      const double dw = out[w];
      if (dw == init) continue;
      const double candidate = combine<kWidest>(dw, weights[i]);
      if (better(candidate, best)) best = candidate;
    }
    if (best != init) {
      out[static_cast<std::size_t>(a)] = best;
      heap.push_back({best, a});
      sift_up(heap, heap.size() - 1, better);
    }
  }
  while (!heap.empty()) {
    const HeapItem top = heap.front();
    heap.front() = heap.back();
    heap.pop_back();
    if (!heap.empty()) sift_down(heap, 0, better);
    const auto u = static_cast<std::size_t>(top.node);
    if (better(out[u], top.key)) continue;  // stale
    const auto targets = csr_.out_targets(top.node);
    const auto weights = csr_.out_weights(top.node);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const auto v = static_cast<std::size_t>(targets[i]);
      if (qs.affected_mark[v] != mark) continue;  // outside values are final
      const double candidate = combine<kWidest>(top.key, weights[i]);
      if (better(candidate, out[v])) {
        out[v] = candidate;
        heap.push_back({candidate, targets[i]});
        sift_up(heap, heap.size() - 1, better);
      }
    }
  }
}

template <bool kWidest>
bool PathEngine::update_tree(BaseTrees& base, NodeId src, NodeId u) {
  if (!csr_.is_active(src)) return false;  // row stays all-unreached
  const std::size_t n = csr_.node_count();
  const std::size_t s = static_cast<std::size_t>(src);
  const auto out = base.dist.row(s);
  NodeId* parent_row = base.parent.data() + s * n;
  std::int32_t* count_row = base.child_count.data() + s * n;
  QueryScratch& qs = workspace(0);
  if (src == u) {
    // Every distance from u runs over u's own (replaced) out-edges.
    update_row_before_.assign(out.begin(), out.end());
    run<kWidest>(qs, src, kNoExclude, out, parent_row);
    std::fill(count_row, count_row + n, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (parent_row[j] >= 0) ++count_row[static_cast<std::size_t>(parent_row[j])];
    }
    return !std::equal(update_row_before_.begin(), update_row_before_.end(),
                       out.begin());
  }
  const double init = init_value<kWidest>();
  const auto better = make_better(std::bool_constant<kWidest>{});
  if (qs.affected_mark.size() < n) qs.affected_mark.resize(n, 0);
  const std::uint64_t mark = ++qs.mark_epoch;
  collect_descendants(qs, parent_row, count_row, u, mark);

  // Change detection: the only values the patch can touch are the
  // invalidated descendants (saved here, compared at the end) and nodes
  // the improvement relaxation escapes to (any such write is a change by
  // construction — `better` only ever overwrites with a different value).
  update_row_before_.clear();
  for (const NodeId a : qs.desc_buf) {
    update_row_before_.push_back(out[static_cast<std::size_t>(a)]);
  }
  bool escaped_write = false;

  // Child counts track every parent change below.
  auto set_parent = [&](std::size_t t, NodeId p) {
    const NodeId old = parent_row[t];
    if (old == p) return;
    if (old >= 0) --count_row[static_cast<std::size_t>(old)];
    if (p >= 0) ++count_row[static_cast<std::size_t>(p)];
    parent_row[t] = p;
  };

  auto& heap = qs.heap;
  heap.clear();
  for (const NodeId a : qs.desc_buf) {
    out[static_cast<std::size_t>(a)] = init;
    set_parent(static_cast<std::size_t>(a), -1);
  }
  // Reseed the invalidated descendants from edges entering the set —
  // including edges out of u, at their *new* weights.
  for (const NodeId a : qs.desc_buf) {
    const auto sources = csr_.in_sources(a);
    const auto weights = csr_.in_weights(a);
    double best = init;
    NodeId best_parent = -1;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const auto w = static_cast<std::size_t>(sources[i]);
      if (qs.affected_mark[w] == mark) continue;
      const double dw = out[w];
      if (dw == init) continue;
      const double candidate = combine<kWidest>(dw, weights[i]);
      if (better(candidate, best)) {
        best = candidate;
        best_parent = sources[i];
      }
    }
    if (best != init) {
      out[static_cast<std::size_t>(a)] = best;
      set_parent(static_cast<std::size_t>(a), best_parent);
      heap.push_back({best, a});
      sift_up(heap, heap.size() - 1, better);
    }
  }
  // The new row may also *improve* nodes outside the invalidated set;
  // seed those improvements from u directly...
  const double du = out[static_cast<std::size_t>(u)];
  if (du != init) {
    const auto targets = csr_.out_targets(u);
    const auto weights = csr_.out_weights(u);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const auto t = static_cast<std::size_t>(targets[i]);
      if (qs.affected_mark[t] == mark) continue;  // seeded above
      const double candidate = combine<kWidest>(du, weights[i]);
      if (better(candidate, out[t])) {
        out[t] = candidate;
        escaped_write = true;
        set_parent(t, u);
        heap.push_back({candidate, targets[i]});
        sift_up(heap, heap.size() - 1, better);
      }
    }
  }
  // ...and let the relaxation escape the set: unlike the query-side
  // repair, an update can lower (shortest) / raise (widest) values
  // anywhere downstream of the change.
  while (!heap.empty()) {
    const HeapItem top = heap.front();
    heap.front() = heap.back();
    heap.pop_back();
    if (!heap.empty()) sift_down(heap, 0, better);
    const auto x = static_cast<std::size_t>(top.node);
    if (better(out[x], top.key)) continue;  // stale
    const auto targets = csr_.out_targets(top.node);
    const auto weights = csr_.out_weights(top.node);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const auto t = static_cast<std::size_t>(targets[i]);
      const double candidate = combine<kWidest>(top.key, weights[i]);
      if (better(candidate, out[t])) {
        out[t] = candidate;
        if (qs.affected_mark[t] != mark) escaped_write = true;
        set_parent(t, top.node);
        heap.push_back({candidate, targets[i]});
        sift_up(heap, heap.size() - 1, better);
      }
    }
  }
  if (escaped_write) return true;
  for (std::size_t i = 0; i < qs.desc_buf.size(); ++i) {
    const auto a = static_cast<std::size_t>(qs.desc_buf[i]);
    if (out[a] != update_row_before_[i]) return true;
  }
  return false;
}

void PathEngine::prepare_shortest() { ensure_base<false>(shortest_base_); }

void PathEngine::prepare_widest() { ensure_base<true>(widest_base_); }

void PathEngine::shortest_from(NodeId src, NodeId exclude,
                               std::span<double> dist_out,
                               QueryScratch& qs) const {
  csr_.check_node(src);
  if (exclude != kNoExclude) csr_.check_node(exclude);
  if (dist_out.size() != csr_.node_count()) {
    throw std::invalid_argument("output row size mismatch");
  }
  if (shortest_base_.valid) {
    repair_row<false>(qs, shortest_base_, src, exclude, dist_out);
  } else {
    run<false>(qs, src, exclude, dist_out, nullptr);
  }
}

void PathEngine::widest_from(NodeId src, NodeId exclude,
                             std::span<double> bottleneck_out,
                             QueryScratch& qs) const {
  csr_.check_node(src);
  if (exclude != kNoExclude) csr_.check_node(exclude);
  if (bottleneck_out.size() != csr_.node_count()) {
    throw std::invalid_argument("output row size mismatch");
  }
  if (widest_base_.valid) {
    repair_row<true>(qs, widest_base_, src, exclude, bottleneck_out);
  } else {
    run<true>(qs, src, exclude, bottleneck_out, nullptr);
  }
}

template <bool kWidest>
void PathEngine::all_rows(QueryScratch& qs, NodeId exclude,
                          DistanceMatrix& out) const {
  if (exclude != kNoExclude) csr_.check_node(exclude);
  const std::size_t n = csr_.node_count();
  const BaseTrees& base = kWidest ? widest_base_ : shortest_base_;
  out.reshape(n, n);
  for (std::size_t src = 0; src < n; ++src) {
    if (base.valid) {
      repair_row<kWidest>(qs, base, static_cast<NodeId>(src), exclude,
                          out.row(src));
    } else {
      run<kWidest>(qs, static_cast<NodeId>(src), exclude, out.row(src),
                   nullptr);
    }
  }
}

void PathEngine::all_shortest(NodeId exclude, DistanceMatrix& out,
                              QueryScratch& qs) const {
  all_rows<false>(qs, exclude, out);
}

void PathEngine::all_widest(NodeId exclude, DistanceMatrix& out,
                            QueryScratch& qs) const {
  all_rows<true>(qs, exclude, out);
}

void PathEngine::shortest_from(NodeId src, NodeId exclude,
                               std::span<double> dist_out) {
  shortest_from(src, exclude, dist_out, workspace(0));
}

void PathEngine::widest_from(NodeId src, NodeId exclude,
                             std::span<double> bottleneck_out) {
  widest_from(src, exclude, bottleneck_out, workspace(0));
}

void PathEngine::all_shortest(NodeId exclude, DistanceMatrix& out) {
  prepare_shortest();
  all_rows<false>(workspace(0), exclude, out);
}

void PathEngine::all_widest(NodeId exclude, DistanceMatrix& out) {
  prepare_widest();
  all_rows<true>(workspace(0), exclude, out);
}

}  // namespace egoist::graph
