// Maximum flow (Dinic) and edge-disjoint path counting.
//
// Fig 10 compares multipath transfer throughput against the max-flow upper
// bound ("when all peers allow multipath redirections"); Fig 11 counts
// edge-disjoint overlay paths between endpoints. Both reduce to max-flow:
// the former with capacities = available bandwidth, the latter with unit
// capacities.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace egoist::graph {

/// Dinic max-flow solver over an explicit arc list. Capacities are doubles;
/// the solver treats residuals below kFlowEps as saturated.
class MaxFlow {
 public:
  static constexpr double kFlowEps = 1e-9;

  explicit MaxFlow(std::size_t n);

  /// Adds a directed arc u -> v with the given capacity (>= 0).
  void add_arc(NodeId u, NodeId v, double capacity);

  /// Computes the max flow from s to t. May be called once per instance.
  double max_flow(NodeId s, NodeId t);

  /// After max_flow(): flow currently assigned to the i-th added arc.
  double arc_flow(std::size_t arc_index) const;

 private:
  struct Arc {
    NodeId to;
    double capacity;
    std::size_t reverse;  ///< index of the reverse arc in arcs_[to]
  };

  bool build_levels(NodeId s, NodeId t);
  double push(NodeId u, NodeId t, double limit);

  std::size_t n_;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::pair<NodeId, std::size_t>> arc_handles_;  ///< (node, slot) per added arc
  std::vector<double> original_capacity_;
  std::vector<int> level_;
  std::vector<std::size_t> next_;
};

/// Builds a max-flow instance from an overlay graph using edge weights as
/// capacities (inactive nodes excluded) and returns max flow s -> t.
double max_flow_on_graph(const Digraph& g, NodeId s, NodeId t);

/// Number of edge-disjoint directed paths from s to t in the overlay
/// (unit capacity per edge; inactive nodes excluded).
int edge_disjoint_paths(const Digraph& g, NodeId s, NodeId t);

/// Number of internally node-disjoint directed paths from s to t (standard
/// node-splitting reduction). Used to study path diversity for real-time
/// traffic (Fig 11 discussion).
int node_disjoint_paths(const Digraph& g, NodeId s, NodeId t);

}  // namespace egoist::graph
