// Epoch-shared residual shortest/widest paths over a CSR snapshot.
//
// Best-response evaluation needs, for every node i, the all-pairs distances
// of the residual graph G_{-i} (the announced overlay minus i's out-edges).
// The legacy path (core::residual_of + graph::all_pairs_shortest_paths)
// materializes a fresh Digraph and runs n full Dijkstras per node —
// O(n^2 m log n) work per epoch plus hundreds of allocations per node,
// which is what pinned the figure benches at n = 50.
//
// PathEngine replaces that with three layers:
//
// - CsrGraph: a flat compressed-sparse-row snapshot (forward + reverse
//   offset / endpoint / weight arrays + an active bitmap) rebuilt in place
//   from a Digraph. Edge-weight validation and inactive-endpoint filtering
//   happen once at build time instead of inside every relaxation.
// - Residual *views*: every traversal takes an `exclude_out_edges_of`
//   source whose edge range is skipped, so G_{-i} costs O(1) instead of an
//   O(n + m) graph copy. Paths *through* the excluded node are unaffected
//   (its in-edges remain), matching core::residual_of semantics exactly.
// - Shared base trees: the first all-pairs query against a snapshot
//   computes one SSSP tree per source (dist row + parent links), shared by
//   every later query on the snapshot. A query excluding node i differs
//   from a base row only at the *proper descendants of i in that source's
//   tree*: every other destination's tree path avoids i's out-edges, so
//   its base distance is provably the residual distance, bit for bit. The
//   descendants are repaired by a small Dijkstra seeded from the edges
//   entering the affected set.
//
// The epoch loop is sequential best response: after a node re-announces,
// only that node's out-edge row changes. update_out_edges() re-snapshots
// the row and patches every base tree in place — invalidate the old
// descendants, reseed them, and propagate any improvements the new row
// creates — so the trees survive the whole epoch instead of being rebuilt
// n times. Per epoch this turns n * n full Dijkstras into n (one base
// build) plus output-bounded repairs.
//
// Bit-exactness: a distance is the minimum over paths of the left-to-right
// IEEE sum of edge weights (min of exact weights for widest); that
// min-fold does not depend on heap arity, visitation order, or which
// algorithm enumerates the paths, and every kept row value is squeezed
// between the full-graph minimum and a surviving path that attains it.
// The equivalence suite in tests/graph/path_engine_test.cpp enforces all
// of this against the legacy implementation, which stays as the reference.
//
// Steady-state queries allocate nothing: the workspace (4-ary heap, stamp
// marks, scratch lists) and the base-tree arenas are reused across
// rebuild() calls.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/distance_matrix.hpp"

namespace egoist::graph {

/// Passed as `exclude_out_edges_of` when no source is excluded.
inline constexpr NodeId kNoExclude = -1;

/// Immutable flat snapshot of a Digraph at a point in time. Activity flags
/// are baked in: out-edges of inactive sources and edges to inactive
/// targets are dropped at build time (algorithms on the live Digraph skip
/// them per relaxation; on a snapshot the filtering can be hoisted).
class CsrGraph {
 public:
  CsrGraph() = default;
  explicit CsrGraph(const Digraph& g) { rebuild(g); }

  /// Rebuilds the snapshot in place, reusing the flat buffers. Validates
  /// every stored weight (throws std::invalid_argument on a negative one),
  /// hoisting the per-relaxation check out of the traversal loops.
  void rebuild(const Digraph& g);

  std::size_t node_count() const { return active_.size(); }
  /// Stored (active-to-active) edges only.
  std::size_t edge_count() const { return target_.size(); }

  bool is_active(NodeId u) const {
    return active_[static_cast<std::size_t>(u)] != 0;
  }

  /// Targets / weights of u's out-edges (parallel spans).
  std::span<const NodeId> out_targets(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {target_.data() + offset_[i], offset_[i + 1] - offset_[i]};
  }
  std::span<const double> out_weights(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {weight_.data() + offset_[i], offset_[i + 1] - offset_[i]};
  }

  /// Sources / weights of u's in-edges (reverse CSR, parallel spans).
  std::span<const NodeId> in_sources(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {in_source_.data() + in_offset_[i], in_offset_[i + 1] - in_offset_[i]};
  }
  std::span<const double> in_weights(NodeId u) const {
    const auto i = static_cast<std::size_t>(u);
    return {in_weight_.data() + in_offset_[i], in_offset_[i + 1] - in_offset_[i]};
  }

  /// Largest edge weight of the snapshotted Digraph (0 for an edgeless
  /// graph). Unlike the adjacency arrays this includes edges dropped for
  /// inactivity: core::default_unreachable_penalty derives from it and
  /// must agree with the legacy Digraph scan, which ignores activity.
  double max_weight() const { return max_weight_; }

  /// Active node ids, ascending.
  std::vector<NodeId> active_nodes() const;

  void check_node(NodeId u) const {
    if (u < 0 || static_cast<std::size_t>(u) >= active_.size()) {
      throw std::out_of_range("node id out of range");
    }
  }

 private:
  std::vector<std::size_t> offset_;     ///< size n + 1
  std::vector<NodeId> target_;
  std::vector<double> weight_;
  std::vector<std::size_t> in_offset_;  ///< size n + 1 (reverse CSR)
  std::vector<NodeId> in_source_;
  std::vector<double> in_weight_;
  std::vector<std::uint8_t> active_;    ///< bitmap, avoids vector<bool> reads
  std::vector<std::size_t> build_cursor_;  ///< rebuild() scratch
  double max_weight_ = 0.0;
};

/// Reusable residual-path solver over a CsrGraph snapshot.
///
/// Thread model: every mutation (rebuild, update_out_edges, prepare_*, the
/// legacy non-scratch query overloads, which may build base trees lazily)
/// requires exclusive access. The QueryScratch overloads are const and
/// touch only caller-owned scratch, so once the base trees are prepared —
/// or with no base trees at all (they fall back to direct SSSP) — any
/// number of threads may query concurrently, one QueryScratch per thread.
class PathEngine {
  struct HeapItem {
    double key;
    NodeId node;
  };

 public:
  /// Caller-owned mutable state for the const query overloads: the 4-ary
  /// heap plus the descendant-repair scratch (epoch-stamped membership
  /// marks, collected-descendant lists). One per querying thread; reusable
  /// across queries, snapshots, and engines (stale marks can never collide
  /// because the stamp is bumped per query and never reset).
  class QueryScratch {
   private:
    friend class PathEngine;
    std::vector<HeapItem> heap;
    std::vector<std::uint64_t> affected_mark;  ///< epoch-stamped membership
    std::uint64_t mark_epoch = 0;
    std::vector<NodeId> desc_buf;              ///< collected descendants
    std::vector<std::size_t> child_offset;     ///< deep-subtree DFS scratch
    std::vector<std::size_t> child_cursor;
    std::vector<NodeId> child;
    std::vector<NodeId> desc_stack;
  };

  PathEngine() = default;
  /// workers: parallelism for the per-source base-tree build (the one
  /// O(n * SSSP) pass per snapshot). 1 = serial, 0 = auto (min(4,
  /// hardware_concurrency)). Results are identical at any setting; the
  /// sources are partitioned into contiguous chunks of disjoint rows.
  explicit PathEngine(const Digraph& g, int workers = 1) : PathEngine() {
    set_workers(workers);
    rebuild(g);
  }

  void set_workers(int workers);
  int workers() const { return workers_; }

  /// Takes a fresh snapshot of `g`, reusing all internal buffers, and
  /// invalidates the shared base trees (rebuilt lazily on the next
  /// all-pairs query).
  void rebuild(const Digraph& g);

  /// Re-snapshots `g` after a change confined to `u`'s out-edges (the
  /// sequential-epoch mutation: one node re-announced its links) and
  /// patches the base trees in place instead of invalidating them.
  /// If activity flags changed — or anything beyond u's row differs — the
  /// incremental contract is void; activity changes are detected and fall
  /// back to a full invalidation, other rows are the caller's contract.
  void update_out_edges(NodeId u, const Digraph& g);

  /// Sources whose base-tree dist rows the most recent update_out_edges
  /// patch actually changed (value-level detection across both prepared
  /// semirings, deduplicated, ascending). A source absent here kept every
  /// base distance bit-identical, so any consumer caching per-source
  /// results — the overlay's dirty tracker marks exactly these nodes —
  /// need not revisit it. Meaningless (and empty) when
  /// last_update_rebuilt() is true.
  std::span<const NodeId> last_update_invalidated() const {
    return last_update_invalidated_;
  }

  /// True when the most recent update_out_edges (or rebuild) call fell
  /// back to a full invalidation — size change, no valid base trees, or an
  /// activity flip — so *every* source row must be treated as changed.
  bool last_update_rebuilt() const { return last_update_rebuilt_; }

  const CsrGraph& csr() const { return csr_; }
  std::size_t node_count() const { return csr_.node_count(); }

  /// Builds the shared base trees for one semiring now instead of lazily
  /// on the first all-pairs query. The parallel epoch engine calls this in
  /// its snapshot phase, after which the const query overloads below are
  /// safe to fan out across worker threads.
  void prepare_shortest();
  void prepare_widest();
  bool shortest_prepared() const { return shortest_base_.valid; }
  bool widest_prepared() const { return widest_base_.valid; }

  /// Shortest-path distances from src with exclude's out-edge range
  /// skipped (kNoExclude = none). Writes the full row: kUnreachable for
  /// unreached nodes, and the whole row when src is inactive (mirroring
  /// all_pairs_shortest_paths, which leaves inactive rows unreachable).
  /// Served from the shared base trees when prepared (or previously built
  /// by a lazy all-pairs query); runs a direct SSSP otherwise. The results
  /// are bit-identical either way. dist_out.size() must be node_count().
  void shortest_from(NodeId src, NodeId exclude_out_edges_of,
                     std::span<double> dist_out, QueryScratch& scratch) const;

  /// Widest-path (max-min) bottlenecks from src; 0 for unreached nodes,
  /// +infinity at an active source's own entry.
  void widest_from(NodeId src, NodeId exclude_out_edges_of,
                   std::span<double> bottleneck_out,
                   QueryScratch& scratch) const;

  /// All-pairs into a flat matrix: out(v, j) = d_{G - exclude}(v, j),
  /// served row-by-row from the base trees (or direct SSSPs when they are
  /// not prepared).
  void all_shortest(NodeId exclude_out_edges_of, DistanceMatrix& out,
                    QueryScratch& scratch) const;
  void all_widest(NodeId exclude_out_edges_of, DistanceMatrix& out,
                  QueryScratch& scratch) const;

  /// Single-caller conveniences over the scratch overloads: use the
  /// engine-owned scratch, and build the base trees lazily on the first
  /// all-pairs query (hence non-const).
  void shortest_from(NodeId src, NodeId exclude_out_edges_of,
                     std::span<double> dist_out);
  void widest_from(NodeId src, NodeId exclude_out_edges_of,
                   std::span<double> bottleneck_out);
  void all_shortest(NodeId exclude_out_edges_of, DistanceMatrix& out);
  void all_widest(NodeId exclude_out_edges_of, DistanceMatrix& out);

  DistanceMatrix all_shortest(NodeId exclude_out_edges_of) {
    DistanceMatrix out;
    all_shortest(exclude_out_edges_of, out);
    return out;
  }
  DistanceMatrix all_widest(NodeId exclude_out_edges_of) {
    DistanceMatrix out;
    all_widest(exclude_out_edges_of, out);
    return out;
  }

 private:
  /// Shared per-snapshot base trees for one semiring (shortest or widest):
  /// one dist row and parent array per source. The proper descendants of u
  /// in tree v — found by level scans over the parent array — are the only
  /// destinations whose base distance can change when u's out-edges are
  /// excluded (queries) or replaced (updates).
  struct BaseTrees {
    bool valid = false;
    DistanceMatrix dist;
    std::vector<NodeId> parent;  ///< n * n; -1 at sources and unreached
    /// Children per node per tree, kept in lockstep with `parent`: a node
    /// with no children in a tree has no descendants there, which lets
    /// both repair and update skip that tree without scanning it.
    std::vector<std::int32_t> child_count;  ///< n * n
  };

  template <bool kWidest>
  void run(QueryScratch& qs, NodeId src, NodeId exclude, std::span<double> out,
           NodeId* parent_row) const;

  template <bool kWidest>
  void ensure_base(BaseTrees& base);

  /// Collects the proper descendants of u in the tree given by
  /// `parent_row` into qs.desc_buf, marking each with `mark` in
  /// qs.affected_mark. `child_count_row` short-circuits leaf nodes.
  /// Returns the number collected.
  std::size_t collect_descendants(QueryScratch& qs, const NodeId* parent_row,
                                  const std::int32_t* child_count_row,
                                  NodeId u, std::uint64_t mark) const;

  /// Copies tree src's base row into `out`, then recomputes the proper
  /// descendants of `exclude` in that tree by a Dijkstra seeded from the
  /// edges entering the affected set (relaxation stays inside the set:
  /// removing out-edges cannot improve any distance).
  template <bool kWidest>
  void repair_row(QueryScratch& qs, const BaseTrees& base, NodeId src,
                  NodeId exclude, std::span<double> out) const;

  /// Patches tree src in place after u's out-edge row changed: invalidate
  /// u's old descendants, reseed them from the new snapshot, and let the
  /// relaxation escape the set to propagate improvements the new row
  /// enables.
  /// Returns true when the patch changed any value of tree src's dist row
  /// (the signal behind last_update_invalidated()).
  template <bool kWidest>
  bool update_tree(BaseTrees& base, NodeId src, NodeId u);

  template <bool kWidest>
  void all_rows(QueryScratch& qs, NodeId exclude, DistanceMatrix& out) const;

  QueryScratch& workspace(std::size_t i);

  CsrGraph csr_;
  int workers_ = 1;
  /// workspace(0) doubles as the engine-owned scratch behind the legacy
  /// overloads and the in-place tree updates; the rest are the base-build
  /// workers' heaps.
  std::vector<QueryScratch> workspaces_;
  BaseTrees shortest_base_;
  BaseTrees widest_base_;
  std::vector<std::uint8_t> active_before_;   ///< update_out_edges guard

  /// last_update_* bookkeeping (see the public accessors).
  std::vector<NodeId> last_update_invalidated_;
  bool last_update_rebuilt_ = true;
  std::vector<double> update_row_before_;        ///< update_tree compare scratch
  std::vector<std::uint8_t> update_changed_mark_;  ///< dedup across semirings
};

}  // namespace egoist::graph
