#include "graph/mst.hpp"

#include <functional>
#include <limits>
#include <stdexcept>

namespace egoist::graph {

std::vector<TreeEdge> minimum_spanning_tree(
    const std::vector<NodeId>& nodes,
    const std::function<double(NodeId, NodeId)>& cost) {
  if (nodes.size() < 2) throw std::invalid_argument("MST needs >= 2 nodes");
  if (!cost) throw std::invalid_argument("cost oracle required");
  const std::size_t m = nodes.size();
  std::vector<bool> in_tree(m, false);
  std::vector<double> best(m, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> parent(m, 0);
  in_tree[0] = true;
  for (std::size_t i = 1; i < m; ++i) {
    best[i] = (cost(nodes[0], nodes[i]) + cost(nodes[i], nodes[0])) / 2.0;
    parent[i] = 0;
  }
  std::vector<TreeEdge> tree;
  tree.reserve(m - 1);
  for (std::size_t round = 1; round < m; ++round) {
    std::size_t pick = m;
    double pick_cost = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (!in_tree[i] && best[i] < pick_cost) {
        pick_cost = best[i];
        pick = i;
      }
    }
    if (pick == m) throw std::invalid_argument("cost oracle returned no finite costs");
    in_tree[pick] = true;
    tree.push_back(TreeEdge{nodes[parent[pick]], nodes[pick], pick_cost});
    for (std::size_t i = 0; i < m; ++i) {
      if (in_tree[i]) continue;
      const double w = (cost(nodes[pick], nodes[i]) + cost(nodes[i], nodes[pick])) / 2.0;
      if (w < best[i]) {
        best[i] = w;
        parent[i] = pick;
      }
    }
  }
  return tree;
}

std::vector<std::vector<NodeId>> tree_adjacency(std::size_t n,
                                                const std::vector<TreeEdge>& tree) {
  std::vector<std::vector<NodeId>> adj(n);
  for (const TreeEdge& e : tree) {
    if (e.a < 0 || e.b < 0 || static_cast<std::size_t>(e.a) >= n ||
        static_cast<std::size_t>(e.b) >= n) {
      throw std::out_of_range("tree edge endpoint out of range");
    }
    adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    adj[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  return adj;
}

}  // namespace egoist::graph
