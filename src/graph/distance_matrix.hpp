// Flat row-major distance matrix.
//
// The residual objectives used to carry vector<vector<double>> all-pairs
// results: n + 1 allocations per best-response evaluation and a pointer
// chase per cell. DistanceMatrix is the replacement: one contiguous block,
// row() views for per-source writers (the PathEngine's worker loop fills
// disjoint rows in place), and cache-friendly (v, j) reads in the
// link-value hot loop.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace egoist::graph {

class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  DistanceMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), cells_(rows * cols, fill) {}

  /// Converts a legacy nested all-pairs result. Throws std::invalid_argument
  /// on ragged input.
  static DistanceMatrix from_nested(const std::vector<std::vector<double>>& rows) {
    DistanceMatrix m(rows.size(), rows.empty() ? 0 : rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].size() != m.cols_) {
        throw std::invalid_argument("residual matrix not square");
      }
      std::copy(rows[r].begin(), rows[r].end(), m.row(r).begin());
    }
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return cells_.empty(); }

  /// Resizes without preserving contents; reuses capacity when possible.
  void reset(std::size_t rows, std::size_t cols, double fill) {
    rows_ = rows;
    cols_ = cols;
    cells_.assign(rows * cols, fill);
  }

  /// Resizes without the fill pass, for callers that overwrite every row
  /// (reused cells keep stale values until written).
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    cells_.resize(rows * cols);
  }

  double operator()(std::size_t r, std::size_t c) const {
    return cells_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    return cells_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return {cells_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {cells_.data() + r * cols_, cols_};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> cells_;
};

}  // namespace egoist::graph
