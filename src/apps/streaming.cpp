#include "apps/streaming.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "graph/maxflow.hpp"

namespace egoist::apps {

int disjoint_path_count(const graph::Digraph& overlay, NodeId src, NodeId dst) {
  return graph::edge_disjoint_paths(overlay, src, dst);
}

std::vector<std::vector<NodeId>> extract_disjoint_paths(
    const graph::Digraph& overlay, NodeId src, NodeId dst, int max_paths) {
  overlay.check_node(src);
  overlay.check_node(dst);
  if (src == dst) throw std::invalid_argument("src == dst");
  if (max_paths < 0) throw std::invalid_argument("max_paths must be >= 0");

  // Unit-capacity max flow, then decompose the integral flow into paths.
  graph::MaxFlow mf(overlay.node_count());
  std::vector<std::pair<NodeId, NodeId>> arc_ends;
  for (std::size_t u = 0; u < overlay.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    if (!overlay.is_active(uid)) continue;
    for (const auto& e : overlay.out_edges(uid)) {
      if (!overlay.is_active(e.to)) continue;
      mf.add_arc(uid, e.to, 1.0);
      arc_ends.emplace_back(uid, e.to);
    }
  }
  mf.max_flow(src, dst);

  // Adjacency of saturated arcs (each usable exactly once).
  std::multimap<NodeId, NodeId> flow_out;
  for (std::size_t a = 0; a < arc_ends.size(); ++a) {
    if (mf.arc_flow(a) > 0.5) flow_out.emplace(arc_ends[a].first, arc_ends[a].second);
  }

  std::vector<std::vector<NodeId>> paths;
  while (static_cast<int>(paths.size()) < max_paths) {
    std::vector<NodeId> path{src};
    NodeId at = src;
    bool reached = false;
    while (true) {
      const auto it = flow_out.find(at);
      if (it == flow_out.end()) break;  // dead end (cycle remnants)
      at = it->second;
      flow_out.erase(it);
      path.push_back(at);
      if (at == dst) {
        reached = true;
        break;
      }
      if (path.size() > overlay.node_count() + 1) break;  // stuck in a flow cycle
    }
    if (!reached) break;
    paths.push_back(std::move(path));
  }
  return paths;
}

StreamingResult simulate_redundant_streaming(
    const graph::Digraph& overlay, const std::vector<std::vector<NodeId>>& paths,
    const StreamingConfig& config, util::Rng& rng) {
  if (config.packets < 0) throw std::invalid_argument("packets must be >= 0");
  if (config.per_hop_loss < 0.0 || config.per_hop_loss > 1.0) {
    throw std::invalid_argument("loss probability in [0, 1]");
  }
  // Base propagation per path from the overlay edge weights.
  std::vector<double> base_delay;
  base_delay.reserve(paths.size());
  std::vector<std::size_t> hops;
  for (const auto& path : paths) {
    if (path.size() < 2) throw std::invalid_argument("path needs >= 2 nodes");
    double d = 0.0;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      d += overlay.edge_weight(path[h], path[h + 1]);
    }
    base_delay.push_back(d);
    hops.push_back(path.size() - 1);
  }

  StreamingResult result;
  result.packets = config.packets;
  for (int p = 0; p < config.packets; ++p) {
    bool in_time = false;
    for (std::size_t i = 0; i < paths.size() && !in_time; ++i) {
      bool lost = false;
      double delay = base_delay[i];
      for (std::size_t h = 0; h < hops[i]; ++h) {
        if (rng.chance(config.per_hop_loss)) {
          lost = true;
          break;
        }
        if (config.per_hop_jitter_ms > 0.0) {
          delay += rng.exponential_mean(config.per_hop_jitter_ms);
        }
      }
      if (!lost && delay <= config.playout_deadline_ms) in_time = true;
    }
    if (in_time) ++result.delivered_in_time;
  }
  return result;
}

}  // namespace egoist::apps
