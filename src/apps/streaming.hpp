// Real-time traffic over disjoint overlay paths (§6.2, Fig 11).
//
// Delay/loss-sensitive streams send redundant copies over multiple disjoint
// overlay paths so that at least one copy of each packet beats the playout
// deadline. This module (a) counts the disjoint paths EGOIST exposes
// between a pair (Fig 11's metric: it "increases linearly with the number
// of parallel connections"), and (b) simulates redundant transmission over
// those paths — the experiment the paper defers to future work — reporting
// the fraction of packets delivered by their playout time.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "net/delay_space.hpp"
#include "util/rng.hpp"

namespace egoist::apps {

using graph::NodeId;

/// Edge-disjoint directed overlay paths src -> dst (Fig 11's y-axis).
int disjoint_path_count(const graph::Digraph& overlay, NodeId src, NodeId dst);

/// Extracts up to `max_paths` edge-disjoint paths (node sequences) via
/// successive widest/shortest augmentation on a unit-capacity copy.
std::vector<std::vector<NodeId>> extract_disjoint_paths(
    const graph::Digraph& overlay, NodeId src, NodeId dst, int max_paths);

struct StreamingConfig {
  double playout_deadline_ms = 250.0;  ///< end-to-end budget per packet
  double per_hop_jitter_ms = 8.0;      ///< exponential jitter per overlay hop
  double per_hop_loss = 0.01;          ///< iid loss probability per hop
  int packets = 2000;
};

struct StreamingResult {
  int packets = 0;
  int delivered_in_time = 0;  ///< >= 1 copy arrived before the deadline
  double delivery_ratio() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(delivered_in_time) / packets;
  }
};

/// Simulates sending every packet redundantly over all `paths`
/// (node sequences; edge weights in `overlay` are per-hop delays in ms).
StreamingResult simulate_redundant_streaming(
    const graph::Digraph& overlay, const std::vector<std::vector<NodeId>>& paths,
    const StreamingConfig& config, util::Rng& rng);

}  // namespace egoist::apps
