#include "apps/multipath.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "graph/maxflow.hpp"
#include "graph/widest_path.hpp"

namespace egoist::apps {

double ip_path_rate(const net::BandwidthField& bw, const net::PeeringModel& peering,
                    NodeId src, NodeId dst) {
  if (src == dst) throw std::invalid_argument("src == dst");
  const int point = peering.egress_point(src, dst);
  return std::min(peering.session_cap(src, point), bw.avail_bw(src, dst));
}

MultipathResult parallel_transfer(const graph::Digraph& overlay,
                                  const net::BandwidthField& bw,
                                  const net::PeeringModel& peering, NodeId src,
                                  NodeId dst) {
  overlay.check_node(src);
  overlay.check_node(dst);
  if (src == dst) throw std::invalid_argument("src == dst");

  // Residual widest paths from each neighbor to dst, excluding src as a
  // relay (sessions leave src exactly once).
  graph::Digraph residual(overlay.node_count());
  for (std::size_t u = 0; u < overlay.node_count(); ++u) {
    const auto uid = static_cast<NodeId>(u);
    residual.set_active(uid, overlay.is_active(uid));
    if (uid == src) continue;
    for (const auto& e : overlay.out_edges(uid)) residual.set_edge(uid, e.to, e.weight);
  }

  MultipathResult result;
  // Sessions grouped by egress point share that point's per-session-cap
  // budget: the first session through a point gets the cap, further ones
  // are treated as the same "session" by the shaper and add nothing
  // (conservative model of per-(src,dst)-pair session limits).
  std::map<int, double> egress_budget;
  for (const auto& e : overlay.out_edges(src)) {
    if (!overlay.is_active(e.to)) continue;
    const NodeId via = e.to;
    double path_bw;
    if (via == dst) {
      path_bw = bw.avail_bw(src, dst);
    } else {
      if (!residual.is_active(via)) continue;
      const auto widest = graph::widest_paths(residual, via);
      const double downstream = widest.bottleneck[static_cast<std::size_t>(dst)];
      path_bw = std::min(bw.avail_bw(src, via), downstream);
    }
    const int point = peering.egress_point(src, via);
    if (!egress_budget.count(point)) {
      egress_budget[point] = peering.session_cap(src, point);
    }
    const double rate = std::min(path_bw, egress_budget[point]);
    egress_budget[point] -= rate;
    result.session_rates.push_back(rate);
    result.first_hops.push_back(via);
    result.total_rate += rate;
  }
  int distinct = 0;
  for (const auto& [point, budget] : egress_budget) {
    (void)budget;
    ++distinct;
  }
  result.distinct_egress_points = distinct;
  return result;
}

double maxflow_rate(const graph::Digraph& overlay, const net::PeeringModel& peering,
                    NodeId src, NodeId dst) {
  overlay.check_node(src);
  overlay.check_node(dst);
  if (src == dst) throw std::invalid_argument("src == dst");
  const double flow = graph::max_flow_on_graph(overlay, src, dst);
  return std::min(flow, peering.max_aggregate_rate(src));
}

}  // namespace egoist::apps
