// Multipath file transfer over EGOIST (§6.1, Fig 9/10).
//
// A source vi opens up to k parallel sessions to a target vj, each
// redirected through a different first-hop EGOIST neighbor. Sessions are
// rate-limited per (source, target) pair at AS peering points, so
// redirecting through neighbors that exit via *different* peering points
// multiplies the achievable aggregate rate — up to |AS_i| x the
// per-session cap, further limited by downstream overlay bottlenecks.
//
// Three quantities are computed per source/target pair, matching Fig 10:
//  - ip_path_rate: one session over the native IP path.
//  - parallel_rate: k sessions through the source's overlay neighbors.
//  - maxflow_rate: the upper bound when every peer allows redirection
//    (max-flow over the bandwidth-weighted overlay).
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "net/bandwidth.hpp"

namespace egoist::apps {

using graph::NodeId;

/// Rate achieved by a single session src -> dst over the native IP path:
/// bounded by the peering-point session cap and the IP path's bandwidth.
double ip_path_rate(const net::BandwidthField& bw, const net::PeeringModel& peering,
                    NodeId src, NodeId dst);

/// Breakdown of a multipath transfer through the overlay.
struct MultipathResult {
  double total_rate = 0.0;                 ///< sum over sessions (Mbps)
  std::vector<double> session_rates;       ///< per first-hop neighbor
  std::vector<NodeId> first_hops;          ///< the neighbors used
  int distinct_egress_points = 0;          ///< peering points exercised
};

/// Rate achieved by parallel sessions through each overlay neighbor of
/// `src` in `overlay` (edge weights = available bandwidth). Each session's
/// rate = min(cap at its egress point, first-hop bw, widest residual path
/// from the neighbor to dst). Sessions sharing an egress point share its
/// cap (the paper's point: same peering point => same rate limit).
MultipathResult parallel_transfer(const graph::Digraph& overlay,
                                  const net::BandwidthField& bw,
                                  const net::PeeringModel& peering, NodeId src,
                                  NodeId dst);

/// Theoretical best: max-flow from src to dst over the bandwidth-weighted
/// overlay when all peers redirect (Fig 10's upper curve), still capped by
/// the source's aggregate peering capacity.
double maxflow_rate(const graph::Digraph& overlay, const net::PeeringModel& peering,
                    NodeId src, NodeId dst);

}  // namespace egoist::apps
