// Out-of-process serving must be invisible to the simulation: an overlay
// with an rpc::Server attached — remote clients hammering route/path/score
// over real sockets while epochs run — must produce a wiring trajectory
// bit-identical to the same deployment with no serving stack at all.
// Queries are pure reads over published snapshots and the epoch engine's
// RNG streams never observe the socket layer; any divergence means serving
// leaked into the simulation (a nondeterministic read of mutable state, a
// shared RNG, a reclaim reordering epochs).
//
// This is the socket-transport completion of the in-process lockstep check
// in tests/host/route_service_test.cpp, run across worker counts and the
// incremental engine, under churn. The TSan CI job runs this suite too.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "../overlay/determinism_harness.hpp"
#include "churn/churn.hpp"
#include "host/overlay_host.hpp"
#include "host/route_service.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "util/rng.hpp"

namespace egoist {
namespace {

using testing::DeterminismCase;
using testing::Trajectory;
using testing::expect_same_trajectory;
using testing::record_trajectory;

DeterminismCase churned_br_case(int workers, bool incremental) {
  DeterminismCase c;
  c.nodes = 16;
  c.host_seed = 21;
  c.epochs = 6;
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.metric = overlay::Metric::kDelayPing;
  config.k = 3;
  config.seed = 5;
  config.epoch_workers = workers;
  config.incremental = incremental;
  churn::ChurnConfig churn_config;
  churn_config.timescale = 0.05;
  churn_config.initial_on_fraction = 0.9;
  churn::ChurnTrace trace(c.nodes, c.epochs * 60.0, 31, churn_config);
  c.spec = host::OverlaySpec(config).epoch_period(60.0).churn(trace);
  return c;
}

/// record_trajectory's socket twin: same epoch-by-epoch recording, but the
/// reader load arrives through a live rpc::Server — TCP and UDS clients in
/// their own threads, pipelined, simple, and BATCH_ROUTE calls mixed.
/// `loops` picks the server's event-loop count: the multi-loop fan-out must
/// be just as invisible to the simulation as the single loop.
Trajectory record_trajectory_with_server(const DeterminismCase& c,
                                         int remote_clients, int loops = 1) {
  host::OverlayHost host(c.nodes, c.host_seed, c.env);
  const auto handle = host.deploy(c.spec);
  host::RouteService service(host, handle);

  rpc::ServerOptions options;
  options.tcp_port = 0;
  options.uds_path = "/tmp/egoist_lockstep_" + std::to_string(::getpid()) +
                     ".sock";
  options.loops = loops;
  rpc::Server server(service, options);
  server.start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int r = 0; r < remote_clients; ++r) {
    clients.emplace_back([&, r] {
      auto client = r % 2 == 0
                        ? rpc::Client::connect_uds(server.uds_path())
                        : rpc::Client::connect_tcp("127.0.0.1",
                                                   server.tcp_port());
      util::Rng rng(0xD15E4Dull + static_cast<std::uint64_t>(r));
      const auto n = static_cast<std::int64_t>(c.nodes);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto src = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
        const auto dst = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
        client.post_route(src, dst);
        client.post_path(src, dst);
        client.post_score(src);
        client.post_route_batch({{src, dst}, {dst, src}});
        client.flush();
        (void)client.take_route();
        (void)client.take_path();
        (void)client.take_score();
        (void)client.take_route_batch();
      }
    });
  }

  Trajectory out;
  for (int epoch = 0; epoch < c.epochs; ++epoch) {
    host.run_epochs(handle, 1);
    const auto snap = host.snapshot(handle);
    std::vector<std::vector<graph::NodeId>> wirings;
    wirings.reserve(c.nodes);
    for (std::size_t v = 0; v < c.nodes; ++v) {
      wirings.push_back(snap.wiring(static_cast<int>(v)));
    }
    out.wirings.push_back(std::move(wirings));
    out.online.push_back(snap.online_nodes());
    out.costs.push_back(snap.node_costs());
    out.rewirings.push_back(snap.total_rewirings());
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& client : clients) client.join();
  server.stop();
  EXPECT_TRUE(service.drain(10.0));
  EXPECT_EQ(service.stats().seal_violations, 0u);
  return out;
}

TEST(ServeRemoteLockstep, SocketServingLeavesTrajectoriesBitIdentical) {
  for (const int workers : {0, 2}) {
    for (const bool incremental : {false, true}) {
      const auto c = churned_br_case(workers, incremental);
      const auto base_label = "workers=" + std::to_string(workers) +
                              " incremental=" + (incremental ? "on" : "off");
      const auto quiet = record_trajectory(c);
      for (const int loops : {1, 4}) {
        const auto served = record_trajectory_with_server(c, 4, loops);
        expect_same_trajectory(quiet, served,
                               base_label + " loops=" + std::to_string(loops) +
                                   " [rpc::Server attached]");
      }
    }
  }
}

TEST(ServeRemoteLockstep, ServedRunsAreRepeatable) {
  // Two socket-served runs of the same case agree with each other too —
  // the socket layer adds no run-to-run jitter to the simulation, even
  // with the multi-loop fan-out handing UDS connections across threads.
  const auto c = churned_br_case(2, true);
  const auto first = record_trajectory_with_server(c, 2, 4);
  const auto second = record_trajectory_with_server(c, 2, 4);
  expect_same_trajectory(first, second, "repeat [rpc::Server attached]");
}

}  // namespace
}  // namespace egoist
