// rpc::Server + rpc::Client integration (the TSan CI job runs this suite):
// a real socket server over a real RouteService, exercised over TCP and
// Unix-domain transports. Covers the dispatch contract (simple calls,
// pipelined batches answered off one pinned snapshot), both malformed-
// input severities (payload error -> ERROR response + live connection;
// header garbage -> connection closed), out-of-range ids, idle timeouts,
// concurrent clients under epoch churn, and graceful shutdown with a
// RouteService::drain proof.
#include "rpc/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "host/overlay_host.hpp"
#include "host/route_service.hpp"
#include "rpc/client.hpp"
#include "wire/protocol.hpp"

namespace egoist::rpc {
namespace {

host::OverlaySpec br_spec(std::uint64_t seed) {
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.metric = overlay::Metric::kDelayPing;
  config.k = 3;
  config.seed = seed;
  return host::OverlaySpec(config);
}

/// A deployed overlay + service + started server on an ephemeral TCP port
/// and a per-test UDS path.
struct Stack {
  explicit Stack(std::size_t n = 16, ServerOptions options = {}) {
    host = std::make_unique<host::OverlayHost>(n, 7);
    handle = host->deploy(br_spec(7));
    host->run_epochs(handle, 1);
    service = std::make_unique<host::RouteService>(*host, handle);
    options.tcp_port = 0;  // ephemeral
    options.uds_path = "/tmp/egoist_rpc_test_" + std::to_string(::getpid()) +
                       "_" + std::to_string(counter++) + ".sock";
    server = std::make_unique<Server>(*service, options);
    server->start();
  }

  Client tcp() { return Client::connect_tcp("127.0.0.1", server->tcp_port()); }
  Client uds() { return Client::connect_uds(server->uds_path()); }

  static inline std::atomic<int> counter{0};
  std::unique_ptr<host::OverlayHost> host;
  host::OverlayHandle handle;
  std::unique_ptr<host::RouteService> service;
  std::unique_ptr<Server> server;
};

TEST(RpcServer, SimpleCallsOverBothTransports) {
  Stack stack;
  const auto check = [&](Client client) {
    const auto ping = client.ping();
    EXPECT_EQ(ping.node_count, 16u);
    EXPECT_GT(ping.publish_seq, 0u);

    const auto route = client.route(0, 1);
    const auto expect = stack.service->route(0, 1);
    EXPECT_EQ(route.reachable, expect.reachable ? 1 : 0);
    EXPECT_EQ(route.next_hop, expect.next_hop);
    if (expect.reachable) {
      EXPECT_DOUBLE_EQ(route.cost, expect.cost);
    }

    const auto path = client.path(0, 1);
    const auto expect_path = stack.service->path(0, 1);
    EXPECT_EQ(path.reachable, expect_path.reachable ? 1 : 0);
    EXPECT_EQ(path.hops.size(), expect_path.nodes.size());

    const auto score = client.score(3);
    EXPECT_EQ(score.publish_seq, ping.publish_seq);

    const auto stats = client.stats();
    EXPECT_EQ(stats.node_count, 16u);
    EXPECT_GT(stats.frames_in, 0u);
    EXPECT_EQ(stats.decode_errors, 0u);
  };
  check(stack.tcp());
  check(stack.uds());
}

TEST(RpcServer, PipelinedBatchAnswersInOrderOffOneSnapshot) {
  Stack stack;
  auto client = stack.uds();
  constexpr int kDepth = 64;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kDepth; ++i) {
      client.post_route(i % 16, (i * 5 + 1) % 16);
    }
    EXPECT_EQ(client.outstanding(), static_cast<std::size_t>(kDepth));
    client.flush();
    std::uint64_t seq = 0;
    for (int i = 0; i < kDepth; ++i) {
      const auto resp = client.take_route();
      // All answers in one batch come from the same publication.
      if (i == 0) {
        seq = resp.publish_seq;
      } else {
        EXPECT_EQ(resp.publish_seq, seq);
      }
    }
    EXPECT_EQ(client.outstanding(), 0u);
  }
  // The server pins ONE snapshot per dispatch batch. Each flush lands as
  // one (typically) burst, so batches stays far below frames: pipelining
  // actually coalesced. The exact count depends on how the kernel chunks
  // the stream, hence the inequality rather than == 3.
  const auto stats = stack.server->stats();
  EXPECT_GE(stats.batches, 3u);
  EXPECT_LT(stats.batches, stats.frames_in);
  EXPECT_EQ(stats.frames_in, 3u * kDepth);
}

TEST(RpcServer, BatchRouteMatchesSingleRouteAnswers) {
  Stack stack;
  auto client = stack.uds();
  std::vector<wire::BatchRoutePair> pairs;
  for (std::int32_t src = 0; src < 16; ++src) {
    for (std::int32_t dst = 0; dst < 16; ++dst) {
      pairs.push_back({src, dst});
    }
  }
  const auto batch = client.route_batch(pairs);
  ASSERT_EQ(batch.entries.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto single = stack.service->route(pairs[i].src, pairs[i].dst);
    EXPECT_EQ(batch.entries[i].reachable, single.reachable ? 1 : 0)
        << pairs[i].src << "->" << pairs[i].dst;
    EXPECT_EQ(batch.entries[i].next_hop, single.next_hop);
    if (single.reachable) {
      EXPECT_DOUBLE_EQ(batch.entries[i].cost, single.cost);
    }
  }
  // The whole batch was answered off one pinned snapshot; its stamp is a
  // real publication.
  EXPECT_EQ(batch.publish_seq, client.ping().publish_seq);
  // One frame in, one frame out, however many lookups rode along.
  const auto stats = stack.server->stats();
  EXPECT_EQ(stats.frames_in, 2u);  // the batch + the ping
}

TEST(RpcServer, BatchRouteInterleavesWithPipelinedSingles) {
  Stack stack;
  auto client = stack.tcp();
  client.post_route(0, 5);
  client.post_route_batch({{1, 2}, {3, 4}, {5, 6}});
  client.post_route(7, 8);
  client.flush();
  const auto first = client.take_route();
  const auto batch = client.take_route_batch();
  const auto last = client.take_route();
  // One flush burst == one dispatch batch == one snapshot: every answer,
  // batched or single, carries the same publication stamp.
  EXPECT_EQ(batch.publish_seq, first.publish_seq);
  EXPECT_EQ(last.publish_seq, first.publish_seq);
  ASSERT_EQ(batch.entries.size(), 3u);
  const auto expect = stack.service->route(3, 4);
  EXPECT_EQ(batch.entries[1].next_hop, expect.next_hop);
}

TEST(RpcServer, BatchRouteOutOfRangeIsAllOrNothing) {
  Stack stack;
  auto client = stack.uds();
  // One bad id poisons the whole batch — a partial answer would misalign
  // the packed entries against the request's pair order.
  try {
    (void)client.route_batch({{0, 1}, {2, 16}, {3, 4}});  // 16 out of range
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(),
              static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange));
  }
  // The connection lives, and valid batches still answer on it.
  const auto ok = client.route_batch({{0, 1}});
  EXPECT_EQ(ok.entries.size(), 1u);
  EXPECT_EQ(stack.server->stats().error_responses, 1u);
  EXPECT_EQ(stack.server->stats().decode_errors, 0u);
}

TEST(RpcServer, BatchWhoseResponseWouldOverflowMaxFrameIsRejected) {
  // The response stride (13B) outruns the request stride (8B), so there is
  // a count window where the request decodes fine but the response would
  // bust the frame bound. The server must refuse it up front instead of
  // emitting a frame its peers reject at the header.
  ServerOptions options;
  options.max_frame = 1024;
  Stack stack(16, options);
  auto client = stack.uds();
  std::vector<wire::BatchRoutePair> pairs(100, {0, 1});
  // request payload 4 + 100*8 = 804 <= 1024; response 16 + 100*13 = 1316.
  try {
    (void)client.route_batch(pairs);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(),
              static_cast<std::uint16_t>(wire::ErrorCode::kBadRequest));
  }
  // A batch whose response fits still answers on the live connection.
  pairs.resize(70);  // 16 + 70*13 = 926 <= 1024
  EXPECT_EQ(client.route_batch(pairs).entries.size(), 70u);
}

TEST(RpcServer, MultiLoopServesBothTransportsAndAggregatesExactly) {
  ServerOptions options;
  options.loops = 4;
  Stack stack(24, options);
  EXPECT_EQ(stack.server->loops(), 4);

  // 4 UDS + 4 TCP clients hammering concurrently: the UDS round-robin
  // guarantees every loop owns at least one connection.
  constexpr int kClientsPerTransport = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 2 * kClientsPerTransport; ++c) {
    threads.emplace_back([&, c] {
      try {
        auto client = c % 2 == 0 ? stack.uds() : stack.tcp();
        for (int round = 0; round < 50; ++round) {
          const auto src = static_cast<std::int32_t>((c + round) % 24);
          const auto dst = static_cast<std::int32_t>((c * 7 + round) % 24);
          const auto route = client.route(src, dst);
          const auto batch = client.route_batch({{src, dst}, {dst, src}});
          if (batch.entries[0].next_hop != route.next_hop &&
              batch.publish_seq == route.publish_seq) {
            failures.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // The v2 STATS frame carries the per-loop breakdown.
  auto control = stack.uds();
  const auto remote = control.stats();
  ASSERT_EQ(remote.per_loop.size(), 4u);
  std::uint64_t remote_accepted = 0;
  for (const auto& loop : remote.per_loop) {
    remote_accepted += loop.connections_accepted;
  }
  EXPECT_EQ(remote_accepted, remote.connections_accepted);
  control.close();

  // After stop() the loops have joined, so the per-loop counters sum to
  // the aggregate EXACTLY, field by field.
  stack.server->stop();
  const auto agg = stack.server->stats();
  const auto per_loop = stack.server->per_loop_stats();
  ASSERT_EQ(per_loop.size(), 4u);
  ServerStats sum;
  for (const auto& loop : per_loop) {
    sum.connections_accepted += loop.connections_accepted;
    sum.connections_active += loop.connections_active;
    sum.frames_in += loop.frames_in;
    sum.frames_out += loop.frames_out;
    sum.decode_errors += loop.decode_errors;
    sum.error_responses += loop.error_responses;
    sum.idle_closed += loop.idle_closed;
    sum.bytes_in += loop.bytes_in;
    sum.bytes_out += loop.bytes_out;
    sum.batches += loop.batches;
  }
  EXPECT_EQ(sum.connections_accepted, agg.connections_accepted);
  EXPECT_EQ(sum.connections_active, agg.connections_active);
  EXPECT_EQ(sum.frames_in, agg.frames_in);
  EXPECT_EQ(sum.frames_out, agg.frames_out);
  EXPECT_EQ(sum.decode_errors, agg.decode_errors);
  EXPECT_EQ(sum.error_responses, agg.error_responses);
  EXPECT_EQ(sum.idle_closed, agg.idle_closed);
  EXPECT_EQ(sum.bytes_in, agg.bytes_in);
  EXPECT_EQ(sum.bytes_out, agg.bytes_out);
  EXPECT_EQ(sum.batches, agg.batches);

  // 9 UDS connections round-robined over 4 loops: every loop served.
  EXPECT_EQ(agg.connections_accepted, 9u);
  for (std::size_t i = 0; i < per_loop.size(); ++i) {
    EXPECT_GE(per_loop[i].connections_accepted, 1u) << "loop " << i;
  }
  EXPECT_EQ(agg.decode_errors, 0u);
  EXPECT_EQ(agg.error_responses, 0u);
  EXPECT_TRUE(stack.service->drain(5.0));
}

TEST(RpcServer, MultiLoopShutdownDrainsEveryLoop) {
  ServerOptions options;
  options.loops = 3;
  Stack stack(16, options);
  std::vector<Client> clients;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(i % 2 == 0 ? stack.uds() : stack.tcp());
    EXPECT_EQ(clients.back().ping().node_count, 16u);
  }
  stack.server->stop();
  for (auto& client : clients) {
    EXPECT_THROW((void)client.ping(), RpcError);
  }
  EXPECT_TRUE(stack.service->drain(5.0));
  EXPECT_EQ(stack.service->retired_pending(), 0u);
  EXPECT_EQ(stack.server->stats().connections_active, 0u);
}

TEST(RpcServer, TcpNodelaySendsSmallFramesWithoutCoalescingDelay) {
  // 100 strictly sequential request/response round-trips over loopback
  // TCP. With TCP_NODELAY unset, Nagle + delayed ACK turns this pattern
  // into ~40ms per round trip (4+ seconds total); with it set on both the
  // accepted and connecting sockets the whole exchange is comfortably
  // sub-second. The 2s bound keeps the assertion meaningful on a loaded
  // CI runner while still catching a missing NODELAY by a wide margin.
  Stack stack;
  auto client = stack.tcp();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 100; ++i) {
    (void)client.ping();
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 2.0) << "sequential round-trips stalled — "
                                     "TCP_NODELAY regression?";
}

TEST(RpcServer, MixedPipelinedTypesComeBackInPostOrder) {
  Stack stack;
  auto client = stack.tcp();
  client.post_route(0, 5);
  client.post_path(0, 5);
  client.post_score(2);
  client.flush();
  const auto route = client.take_route();
  const auto path = client.take_path();
  (void)client.take_score();
  if (route.reachable && path.reachable) {
    EXPECT_DOUBLE_EQ(route.cost, path.cost);
    ASSERT_GE(path.hops.size(), 2u);  // src != dst and reachable
    EXPECT_EQ(path.hops[1], route.next_hop);
  }
}

TEST(RpcServer, OutOfRangeIdsGetTypedErrorsAndConnectionLives) {
  Stack stack;
  auto client = stack.uds();
  try {
    (void)client.route(0, 16);  // n == 16, so id 16 is out of range
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(),
              static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange));
  }
  try {
    (void)client.score(-1);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(),
              static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange));
  }
  // The connection survived both errors.
  EXPECT_EQ(client.ping().node_count, 16u);
  EXPECT_EQ(stack.server->stats().error_responses, 2u);
  EXPECT_EQ(stack.server->stats().decode_errors, 0u);
}

/// Raw socket helper for malformed-byte tests (the typed Client cannot be
/// convinced to send garbage).
int raw_uds_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::vector<std::uint8_t> recv_one_frame(int fd) {
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return bytes;  // EOF / error: return what we have
    bytes.insert(bytes.end(), chunk, chunk + n);
    const auto hd = wire::decode_header(bytes);
    if (hd.status == wire::DecodeStatus::kOk &&
        bytes.size() >= wire::kHeaderSize + hd.header.payload_len) {
      return bytes;
    }
    if (hd.status != wire::DecodeStatus::kNeedMore &&
        hd.status != wire::DecodeStatus::kOk) {
      return bytes;
    }
  }
}

TEST(RpcServer, PayloadErrorKeepsConnectionHeaderGarbageClosesIt) {
  Stack stack;
  const int fd = raw_uds_connect(stack.server->uds_path());
  ASSERT_GE(fd, 0);

  // A valid header whose ROUTE payload is one byte short of its own
  // advertised length: payload-level error -> ERROR response, framing
  // intact, connection lives.
  std::vector<std::uint8_t> frame;
  wire::encode_route_request(frame, 42, {1, 2});
  frame[16] = 7;  // payload_len lies: 7 < 8
  frame.resize(wire::kHeaderSize + 7);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  auto reply = recv_one_frame(fd);
  auto hd = wire::decode_header(reply);
  ASSERT_EQ(hd.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(hd.header.type, wire::MsgType::kError);
  EXPECT_EQ(hd.header.request_id, 42u);
  auto decoded = wire::decode_response(
      hd.header,
      std::span<const std::uint8_t>(reply).subspan(wire::kHeaderSize));
  ASSERT_EQ(decoded.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(std::get<wire::ErrorResponse>(decoded.response).code,
            static_cast<std::uint16_t>(wire::ErrorCode::kBadRequest));

  // Framing is intact: a well-formed request on the same connection still
  // answers.
  frame.clear();
  wire::encode_ping_request(frame, 43);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  reply = recv_one_frame(fd);
  hd = wire::decode_header(reply);
  ASSERT_EQ(hd.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(hd.header.type, wire::MsgType::kPing);

  // Header-level garbage: one ERROR(kMalformedFrame), then EOF.
  const std::uint8_t garbage[32] = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));
  reply = recv_one_frame(fd);
  hd = wire::decode_header(reply);
  ASSERT_EQ(hd.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(hd.header.type, wire::MsgType::kError);
  decoded = wire::decode_response(
      hd.header,
      std::span<const std::uint8_t>(reply).subspan(wire::kHeaderSize));
  ASSERT_EQ(decoded.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(std::get<wire::ErrorResponse>(decoded.response).code,
            static_cast<std::uint16_t>(wire::ErrorCode::kMalformedFrame));
  std::uint8_t scrap;
  EXPECT_EQ(::recv(fd, &scrap, 1, 0), 0) << "connection should be closed";
  ::close(fd);

  EXPECT_EQ(stack.server->stats().decode_errors, 2u);
}

TEST(RpcServer, IdleConnectionsAreSweptOut) {
  ServerOptions options;
  options.idle_timeout_s = 0.15;
  Stack stack(16, options);
  auto client = stack.uds();
  EXPECT_EQ(client.ping().node_count, 16u);
  // Outlive the idle timeout without traffic: the server hangs up.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (stack.server->stats().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(stack.server->stats().idle_closed, 1u);
  EXPECT_THROW((void)client.ping(), RpcError);
}

TEST(RpcServer, ConcurrentClientsUnderEpochChurnStayConsistent) {
  Stack stack(24);
  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        auto client = c % 2 == 0 ? stack.uds() : stack.tcp();
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 8; ++i) client.post_route(i % 24, (i + c) % 24);
          client.flush();
          std::uint64_t seq = 0;
          for (int i = 0; i < 8; ++i) {
            const auto resp = client.take_route();
            if (i == 0) {
              seq = resp.publish_seq;
            } else if (resp.publish_seq != seq) {
              failures.fetch_add(1);  // torn batch: two publications
            }
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  // Epochs churn and publish underneath the serving connections.
  stack.host->run_epochs(stack.handle, 6);
  stop.store(true);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(stack.server->stats().decode_errors, 0u);
  EXPECT_EQ(stack.service->stats().seal_violations, 0u);
}

TEST(RpcServer, GracefulShutdownDrainsAndServiceQuiesces) {
  Stack stack;
  {
    auto client = stack.uds();
    EXPECT_EQ(client.ping().node_count, 16u);
    // stop() with a live connection: queued responses flushed, sockets
    // closed, loop joined. Then the service must fully quiesce — the
    // egoistd shutdown sequence.
    stack.server->stop();
    EXPECT_FALSE(stack.server->running());
    EXPECT_THROW((void)client.ping(), RpcError);
  }
  EXPECT_TRUE(stack.service->drain(5.0));
  EXPECT_EQ(stack.service->retired_pending(), 0u);
  // stop() is idempotent and safe after the fact.
  stack.server->stop();
}

TEST(RpcServer, StopUnblocksInFlightPipelinedClientPromptly) {
  Stack stack;
  auto client = stack.tcp();
  for (int i = 0; i < 16; ++i) client.post_route(0, i % 16);
  client.flush();
  for (int i = 0; i < 16; ++i) (void)client.take_route();
  std::thread stopper([&] { stack.server->stop(); });
  // After stop, calls fail with a transport error rather than hanging.
  try {
    for (;;) (void)client.ping();
  } catch (const RpcError&) {
  }
  stopper.join();
  EXPECT_TRUE(stack.service->drain(5.0));
}

TEST(RpcServer, ServerRequiresAListener) {
  host::OverlayHost host(8, 3);
  const auto handle = host.deploy(br_spec(3));
  host::RouteService service(host, handle);
  const ServerOptions options;  // tcp disabled by default, no uds path
  EXPECT_THROW(std::make_unique<Server>(service, options),
               std::runtime_error);
}

TEST(RpcServer, EphemeralPortIsReadableBeforeStart) {
  host::OverlayHost host(8, 3);
  const auto handle = host.deploy(br_spec(3));
  host::RouteService service(host, handle);
  ServerOptions options;
  options.tcp_port = 0;
  Server server(service, options);
  EXPECT_GT(server.tcp_port(), 0);  // bound at construction
  server.start();
  auto client = Client::connect_tcp("127.0.0.1", server.tcp_port());
  EXPECT_EQ(client.ping().node_count, 8u);
}

}  // namespace
}  // namespace egoist::rpc
