// rpc::Server + rpc::Client integration (the TSan CI job runs this suite):
// a real socket server over a real RouteService, exercised over TCP and
// Unix-domain transports. Covers the dispatch contract (simple calls,
// pipelined batches answered off one pinned snapshot), both malformed-
// input severities (payload error -> ERROR response + live connection;
// header garbage -> connection closed), out-of-range ids, idle timeouts,
// concurrent clients under epoch churn, and graceful shutdown with a
// RouteService::drain proof.
#include "rpc/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "host/overlay_host.hpp"
#include "host/route_service.hpp"
#include "rpc/client.hpp"
#include "wire/protocol.hpp"

namespace egoist::rpc {
namespace {

host::OverlaySpec br_spec(std::uint64_t seed) {
  overlay::OverlayConfig config;
  config.policy = overlay::Policy::kBestResponse;
  config.metric = overlay::Metric::kDelayPing;
  config.k = 3;
  config.seed = seed;
  return host::OverlaySpec(config);
}

/// A deployed overlay + service + started server on an ephemeral TCP port
/// and a per-test UDS path.
struct Stack {
  explicit Stack(std::size_t n = 16, ServerOptions options = {}) {
    host = std::make_unique<host::OverlayHost>(n, 7);
    handle = host->deploy(br_spec(7));
    host->run_epochs(handle, 1);
    service = std::make_unique<host::RouteService>(*host, handle);
    options.tcp_port = 0;  // ephemeral
    options.uds_path = "/tmp/egoist_rpc_test_" + std::to_string(::getpid()) +
                       "_" + std::to_string(counter++) + ".sock";
    server = std::make_unique<Server>(*service, options);
    server->start();
  }

  Client tcp() { return Client::connect_tcp("127.0.0.1", server->tcp_port()); }
  Client uds() { return Client::connect_uds(server->uds_path()); }

  static inline std::atomic<int> counter{0};
  std::unique_ptr<host::OverlayHost> host;
  host::OverlayHandle handle;
  std::unique_ptr<host::RouteService> service;
  std::unique_ptr<Server> server;
};

TEST(RpcServer, SimpleCallsOverBothTransports) {
  Stack stack;
  const auto check = [&](Client client) {
    const auto ping = client.ping();
    EXPECT_EQ(ping.node_count, 16u);
    EXPECT_GT(ping.publish_seq, 0u);

    const auto route = client.route(0, 1);
    const auto expect = stack.service->route(0, 1);
    EXPECT_EQ(route.reachable, expect.reachable ? 1 : 0);
    EXPECT_EQ(route.next_hop, expect.next_hop);
    if (expect.reachable) {
      EXPECT_DOUBLE_EQ(route.cost, expect.cost);
    }

    const auto path = client.path(0, 1);
    const auto expect_path = stack.service->path(0, 1);
    EXPECT_EQ(path.reachable, expect_path.reachable ? 1 : 0);
    EXPECT_EQ(path.hops.size(), expect_path.nodes.size());

    const auto score = client.score(3);
    EXPECT_EQ(score.publish_seq, ping.publish_seq);

    const auto stats = client.stats();
    EXPECT_EQ(stats.node_count, 16u);
    EXPECT_GT(stats.frames_in, 0u);
    EXPECT_EQ(stats.decode_errors, 0u);
  };
  check(stack.tcp());
  check(stack.uds());
}

TEST(RpcServer, PipelinedBatchAnswersInOrderOffOneSnapshot) {
  Stack stack;
  auto client = stack.uds();
  constexpr int kDepth = 64;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kDepth; ++i) {
      client.post_route(i % 16, (i * 5 + 1) % 16);
    }
    EXPECT_EQ(client.outstanding(), static_cast<std::size_t>(kDepth));
    client.flush();
    std::uint64_t seq = 0;
    for (int i = 0; i < kDepth; ++i) {
      const auto resp = client.take_route();
      // All answers in one batch come from the same publication.
      if (i == 0) {
        seq = resp.publish_seq;
      } else {
        EXPECT_EQ(resp.publish_seq, seq);
      }
    }
    EXPECT_EQ(client.outstanding(), 0u);
  }
  // The server pins ONE snapshot per dispatch batch. Each flush lands as
  // one (typically) burst, so batches stays far below frames: pipelining
  // actually coalesced. The exact count depends on how the kernel chunks
  // the stream, hence the inequality rather than == 3.
  const auto stats = stack.server->stats();
  EXPECT_GE(stats.batches, 3u);
  EXPECT_LT(stats.batches, stats.frames_in);
  EXPECT_EQ(stats.frames_in, 3u * kDepth);
}

TEST(RpcServer, MixedPipelinedTypesComeBackInPostOrder) {
  Stack stack;
  auto client = stack.tcp();
  client.post_route(0, 5);
  client.post_path(0, 5);
  client.post_score(2);
  client.flush();
  const auto route = client.take_route();
  const auto path = client.take_path();
  (void)client.take_score();
  if (route.reachable && path.reachable) {
    EXPECT_DOUBLE_EQ(route.cost, path.cost);
    ASSERT_GE(path.hops.size(), 2u);  // src != dst and reachable
    EXPECT_EQ(path.hops[1], route.next_hop);
  }
}

TEST(RpcServer, OutOfRangeIdsGetTypedErrorsAndConnectionLives) {
  Stack stack;
  auto client = stack.uds();
  try {
    (void)client.route(0, 16);  // n == 16, so id 16 is out of range
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(),
              static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange));
  }
  try {
    (void)client.score(-1);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(),
              static_cast<std::uint16_t>(wire::ErrorCode::kOutOfRange));
  }
  // The connection survived both errors.
  EXPECT_EQ(client.ping().node_count, 16u);
  EXPECT_EQ(stack.server->stats().error_responses, 2u);
  EXPECT_EQ(stack.server->stats().decode_errors, 0u);
}

/// Raw socket helper for malformed-byte tests (the typed Client cannot be
/// convinced to send garbage).
int raw_uds_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::vector<std::uint8_t> recv_one_frame(int fd) {
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return bytes;  // EOF / error: return what we have
    bytes.insert(bytes.end(), chunk, chunk + n);
    const auto hd = wire::decode_header(bytes);
    if (hd.status == wire::DecodeStatus::kOk &&
        bytes.size() >= wire::kHeaderSize + hd.header.payload_len) {
      return bytes;
    }
    if (hd.status != wire::DecodeStatus::kNeedMore &&
        hd.status != wire::DecodeStatus::kOk) {
      return bytes;
    }
  }
}

TEST(RpcServer, PayloadErrorKeepsConnectionHeaderGarbageClosesIt) {
  Stack stack;
  const int fd = raw_uds_connect(stack.server->uds_path());
  ASSERT_GE(fd, 0);

  // A valid header whose ROUTE payload is one byte short of its own
  // advertised length: payload-level error -> ERROR response, framing
  // intact, connection lives.
  std::vector<std::uint8_t> frame;
  wire::encode_route_request(frame, 42, {1, 2});
  frame[16] = 7;  // payload_len lies: 7 < 8
  frame.resize(wire::kHeaderSize + 7);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  auto reply = recv_one_frame(fd);
  auto hd = wire::decode_header(reply);
  ASSERT_EQ(hd.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(hd.header.type, wire::MsgType::kError);
  EXPECT_EQ(hd.header.request_id, 42u);
  auto decoded = wire::decode_response(
      hd.header,
      std::span<const std::uint8_t>(reply).subspan(wire::kHeaderSize));
  ASSERT_EQ(decoded.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(std::get<wire::ErrorResponse>(decoded.response).code,
            static_cast<std::uint16_t>(wire::ErrorCode::kBadRequest));

  // Framing is intact: a well-formed request on the same connection still
  // answers.
  frame.clear();
  wire::encode_ping_request(frame, 43);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  reply = recv_one_frame(fd);
  hd = wire::decode_header(reply);
  ASSERT_EQ(hd.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(hd.header.type, wire::MsgType::kPing);

  // Header-level garbage: one ERROR(kMalformedFrame), then EOF.
  const std::uint8_t garbage[32] = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));
  reply = recv_one_frame(fd);
  hd = wire::decode_header(reply);
  ASSERT_EQ(hd.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(hd.header.type, wire::MsgType::kError);
  decoded = wire::decode_response(
      hd.header,
      std::span<const std::uint8_t>(reply).subspan(wire::kHeaderSize));
  ASSERT_EQ(decoded.status, wire::DecodeStatus::kOk);
  EXPECT_EQ(std::get<wire::ErrorResponse>(decoded.response).code,
            static_cast<std::uint16_t>(wire::ErrorCode::kMalformedFrame));
  std::uint8_t scrap;
  EXPECT_EQ(::recv(fd, &scrap, 1, 0), 0) << "connection should be closed";
  ::close(fd);

  EXPECT_EQ(stack.server->stats().decode_errors, 2u);
}

TEST(RpcServer, IdleConnectionsAreSweptOut) {
  ServerOptions options;
  options.idle_timeout_s = 0.15;
  Stack stack(16, options);
  auto client = stack.uds();
  EXPECT_EQ(client.ping().node_count, 16u);
  // Outlive the idle timeout without traffic: the server hangs up.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (stack.server->stats().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(stack.server->stats().idle_closed, 1u);
  EXPECT_THROW((void)client.ping(), RpcError);
}

TEST(RpcServer, ConcurrentClientsUnderEpochChurnStayConsistent) {
  Stack stack(24);
  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        auto client = c % 2 == 0 ? stack.uds() : stack.tcp();
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < 8; ++i) client.post_route(i % 24, (i + c) % 24);
          client.flush();
          std::uint64_t seq = 0;
          for (int i = 0; i < 8; ++i) {
            const auto resp = client.take_route();
            if (i == 0) {
              seq = resp.publish_seq;
            } else if (resp.publish_seq != seq) {
              failures.fetch_add(1);  // torn batch: two publications
            }
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  // Epochs churn and publish underneath the serving connections.
  stack.host->run_epochs(stack.handle, 6);
  stop.store(true);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(stack.server->stats().decode_errors, 0u);
  EXPECT_EQ(stack.service->stats().seal_violations, 0u);
}

TEST(RpcServer, GracefulShutdownDrainsAndServiceQuiesces) {
  Stack stack;
  {
    auto client = stack.uds();
    EXPECT_EQ(client.ping().node_count, 16u);
    // stop() with a live connection: queued responses flushed, sockets
    // closed, loop joined. Then the service must fully quiesce — the
    // egoistd shutdown sequence.
    stack.server->stop();
    EXPECT_FALSE(stack.server->running());
    EXPECT_THROW((void)client.ping(), RpcError);
  }
  EXPECT_TRUE(stack.service->drain(5.0));
  EXPECT_EQ(stack.service->retired_pending(), 0u);
  // stop() is idempotent and safe after the fact.
  stack.server->stop();
}

TEST(RpcServer, StopUnblocksInFlightPipelinedClientPromptly) {
  Stack stack;
  auto client = stack.tcp();
  for (int i = 0; i < 16; ++i) client.post_route(0, i % 16);
  client.flush();
  for (int i = 0; i < 16; ++i) (void)client.take_route();
  std::thread stopper([&] { stack.server->stop(); });
  // After stop, calls fail with a transport error rather than hanging.
  try {
    for (;;) (void)client.ping();
  } catch (const RpcError&) {
  }
  stopper.join();
  EXPECT_TRUE(stack.service->drain(5.0));
}

TEST(RpcServer, ServerRequiresAListener) {
  host::OverlayHost host(8, 3);
  const auto handle = host.deploy(br_spec(3));
  host::RouteService service(host, handle);
  const ServerOptions options;  // tcp disabled by default, no uds path
  EXPECT_THROW(std::make_unique<Server>(service, options),
               std::runtime_error);
}

TEST(RpcServer, EphemeralPortIsReadableBeforeStart) {
  host::OverlayHost host(8, 3);
  const auto handle = host.deploy(br_spec(3));
  host::RouteService service(host, handle);
  ServerOptions options;
  options.tcp_port = 0;
  Server server(service, options);
  EXPECT_GT(server.tcp_port(), 0);  // bound at construction
  server.start();
  auto client = Client::connect_tcp("127.0.0.1", server.tcp_port());
  EXPECT_EQ(client.ping().node_count, 8u);
}

}  // namespace
}  // namespace egoist::rpc
