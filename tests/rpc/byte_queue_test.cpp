// rpc::ByteQueue — the per-connection byte ring both sides of the wire
// build on. The contract under test: readable() is always the exact bytes
// appended minus the bytes consumed, in order, contiguous; consume()
// compaction (clear-when-empty, erase-when-head-dominates) never moves
// unread bytes out from under the reader; tail() appends land behind
// whatever is still unread, across reallocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "rpc/byte_queue.hpp"

namespace egoist::rpc {
namespace {

std::vector<std::uint8_t> pattern(std::size_t len, std::uint8_t seed = 0) {
  std::vector<std::uint8_t> bytes(len);
  for (std::size_t i = 0; i < len; ++i) {
    bytes[i] = static_cast<std::uint8_t>(seed + i * 31 + (i >> 8));
  }
  return bytes;
}

std::vector<std::uint8_t> snapshot(const ByteQueue& queue) {
  const auto view = queue.readable();
  return {view.begin(), view.end()};
}

TEST(ByteQueue, StartsEmpty) {
  ByteQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.readable().empty());
}

TEST(ByteQueue, AppendThenReadBackIsIdentity) {
  ByteQueue queue;
  const auto bytes = pattern(1000);
  queue.append(bytes.data(), bytes.size());
  EXPECT_EQ(queue.size(), bytes.size());
  EXPECT_EQ(snapshot(queue), bytes);
}

TEST(ByteQueue, SpanAppendMatchesPointerAppend) {
  ByteQueue a;
  ByteQueue b;
  const auto bytes = pattern(257);
  a.append(bytes.data(), bytes.size());
  b.append(std::span<const std::uint8_t>(bytes));
  EXPECT_EQ(snapshot(a), snapshot(b));
}

TEST(ByteQueue, ConsumeAdvancesTheFront) {
  ByteQueue queue;
  const auto bytes = pattern(100);
  queue.append(bytes.data(), bytes.size());
  queue.consume(37);
  EXPECT_EQ(queue.size(), 63u);
  EXPECT_EQ(snapshot(queue),
            std::vector<std::uint8_t>(bytes.begin() + 37, bytes.end()));
}

TEST(ByteQueue, ConsumeToExactlyEmptyResetsStorage) {
  ByteQueue queue;
  const auto bytes = pattern(100);
  queue.append(bytes.data(), bytes.size());
  queue.consume(100);
  EXPECT_TRUE(queue.empty());
  // The cleared queue must accept fresh bytes from offset zero.
  const auto fresh = pattern(10, 99);
  queue.append(fresh.data(), fresh.size());
  EXPECT_EQ(snapshot(queue), fresh);
}

TEST(ByteQueue, ByteAtATimeConsumeAcrossCompactionBoundary) {
  // Walk the head cursor one byte at a time through the compaction
  // threshold (head > size/2 && head >= 4096): whatever the internal
  // storage does, the readable window must stay exactly the unread tail.
  ByteQueue queue;
  const auto bytes = pattern(10000);
  queue.append(bytes.data(), bytes.size());
  for (std::size_t consumed = 0; consumed < bytes.size(); ++consumed) {
    ASSERT_EQ(queue.size(), bytes.size() - consumed);
    const auto view = queue.readable();
    ASSERT_EQ(view.size(), bytes.size() - consumed);
    ASSERT_EQ(view.front(), bytes[consumed]);
    ASSERT_EQ(view.back(), bytes.back());
    queue.consume(1);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(ByteQueue, PartialConsumeAcrossReallocation) {
  // Append enough, in small slices, to force repeated vector growth while
  // the head sits mid-buffer; interleave consumes so head and tail both
  // move. The queue's contents must always equal the reference deque.
  ByteQueue queue;
  std::vector<std::uint8_t> reference;
  std::uint8_t seed = 0;
  for (int round = 0; round < 200; ++round) {
    const auto slice = pattern(123 + (round % 7) * 61, seed++);
    queue.append(slice.data(), slice.size());
    reference.insert(reference.end(), slice.begin(), slice.end());
    const std::size_t eat = (round % 3 == 0) ? reference.size() / 2
                                             : (round % 5) * 40 + 1;
    const std::size_t actual = std::min(eat, reference.size());
    queue.consume(actual);
    reference.erase(reference.begin(),
                    reference.begin() + static_cast<std::ptrdiff_t>(actual));
    ASSERT_EQ(queue.size(), reference.size()) << "round " << round;
    ASSERT_EQ(snapshot(queue), reference) << "round " << round;
  }
}

TEST(ByteQueue, TailAppendsLandBehindUnreadBytes) {
  // tail() is how encoders write frames in place: bytes pushed onto it
  // must queue behind the unread remainder, even after prior consumes.
  ByteQueue queue;
  const auto first = pattern(5000, 1);
  queue.append(first.data(), first.size());
  queue.consume(4800);  // head is large; compaction may or may not fire
  std::vector<std::uint8_t> expect(first.begin() + 4800, first.end());
  const auto encoded = pattern(64, 7);
  queue.tail().insert(queue.tail().end(), encoded.begin(), encoded.end());
  expect.insert(expect.end(), encoded.begin(), encoded.end());
  EXPECT_EQ(snapshot(queue), expect);
  queue.consume(expect.size() - 3);
  EXPECT_EQ(snapshot(queue), std::vector<std::uint8_t>(expect.end() - 3,
                                                       expect.end()));
}

TEST(ByteQueue, ClearDropsEverything) {
  ByteQueue queue;
  const auto bytes = pattern(1234);
  queue.append(bytes.data(), bytes.size());
  queue.consume(7);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(queue.readable().empty());
  const auto fresh = pattern(9, 42);
  queue.append(fresh.data(), fresh.size());
  EXPECT_EQ(snapshot(queue), fresh);
}

TEST(ByteQueue, LargeHeadSmallTailCompactionKeepsTail) {
  // The erase-compaction case specifically: head >= 4096 AND more than
  // half the buffer consumed, with a short unread tail that must survive
  // the memmove byte for byte.
  ByteQueue queue;
  const auto bytes = pattern(8192, 3);
  queue.append(bytes.data(), bytes.size());
  queue.consume(8000);
  EXPECT_EQ(queue.size(), 192u);
  EXPECT_EQ(snapshot(queue),
            std::vector<std::uint8_t>(bytes.begin() + 8000, bytes.end()));
  // And the compacted queue keeps accepting appends coherently.
  const auto more = pattern(100, 9);
  queue.append(more.data(), more.size());
  std::vector<std::uint8_t> expect(bytes.begin() + 8000, bytes.end());
  expect.insert(expect.end(), more.begin(), more.end());
  EXPECT_EQ(snapshot(queue), expect);
}

}  // namespace
}  // namespace egoist::rpc
