#include "apps/streaming.hpp"

#include <gtest/gtest.h>

#include <set>

namespace egoist::apps {
namespace {

// Two disjoint 0 -> 3 routes plus a shared-edge decoy.
graph::Digraph two_path_fixture() {
  graph::Digraph g(4);
  g.set_edge(0, 1, 10.0);
  g.set_edge(1, 3, 10.0);
  g.set_edge(0, 2, 20.0);
  g.set_edge(2, 3, 20.0);
  return g;
}

TEST(DisjointPathCountTest, MatchesKnownTopology) {
  EXPECT_EQ(disjoint_path_count(two_path_fixture(), 0, 3), 2);
}

TEST(ExtractDisjointPathsTest, ReturnsActualPaths) {
  const auto paths = extract_disjoint_paths(two_path_fixture(), 0, 3, 10);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
    EXPECT_EQ(p.size(), 3u);
  }
  // Paths must not share edges.
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& p : paths) {
    for (std::size_t h = 0; h + 1 < p.size(); ++h) {
      EXPECT_TRUE(seen.emplace(p[h], p[h + 1]).second) << "shared edge";
    }
  }
}

TEST(ExtractDisjointPathsTest, MaxPathsLimits) {
  const auto paths = extract_disjoint_paths(two_path_fixture(), 0, 3, 1);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(ExtractDisjointPathsTest, NoPathYieldsEmpty) {
  graph::Digraph g(3);
  g.set_edge(0, 1, 1.0);
  EXPECT_TRUE(extract_disjoint_paths(g, 0, 2, 5).empty());
}

TEST(ExtractDisjointPathsTest, Rejections) {
  const auto g = two_path_fixture();
  EXPECT_THROW(extract_disjoint_paths(g, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(extract_disjoint_paths(g, 0, 3, -1), std::invalid_argument);
}

TEST(StreamingTest, PerfectNetworkDeliversEverything) {
  const auto g = two_path_fixture();
  const auto paths = extract_disjoint_paths(g, 0, 3, 2);
  StreamingConfig config;
  config.per_hop_loss = 0.0;
  config.per_hop_jitter_ms = 0.0;
  config.playout_deadline_ms = 100.0;
  config.packets = 100;
  util::Rng rng(3);
  const auto result = simulate_redundant_streaming(g, paths, config, rng);
  EXPECT_EQ(result.delivered_in_time, 100);
  EXPECT_DOUBLE_EQ(result.delivery_ratio(), 1.0);
}

TEST(StreamingTest, TightDeadlineDropsSlowPath) {
  const auto g = two_path_fixture();
  const auto paths = extract_disjoint_paths(g, 0, 3, 2);
  StreamingConfig config;
  config.per_hop_loss = 0.0;
  config.per_hop_jitter_ms = 0.0;
  config.playout_deadline_ms = 25.0;  // only the 20 ms path fits
  config.packets = 50;
  util::Rng rng(5);
  const auto result = simulate_redundant_streaming(g, paths, config, rng);
  EXPECT_EQ(result.delivered_in_time, 50);  // fast path still carries all
  config.playout_deadline_ms = 5.0;  // nothing fits
  const auto none = simulate_redundant_streaming(g, paths, config, rng);
  EXPECT_EQ(none.delivered_in_time, 0);
}

TEST(StreamingTest, RedundancyBeatsSinglePathUnderLoss) {
  const auto g = two_path_fixture();
  const auto both = extract_disjoint_paths(g, 0, 3, 2);
  const std::vector<std::vector<NodeId>> one{both.front()};
  StreamingConfig config;
  config.per_hop_loss = 0.2;
  config.per_hop_jitter_ms = 0.0;
  config.playout_deadline_ms = 100.0;
  config.packets = 4000;
  util::Rng rng_a(7), rng_b(7);
  const auto redundant = simulate_redundant_streaming(g, both, config, rng_a);
  const auto single = simulate_redundant_streaming(g, one, config, rng_b);
  EXPECT_GT(redundant.delivery_ratio(), single.delivery_ratio() + 0.05);
  // Theory: single ~ 0.8^2 = 0.64; redundant ~ 1 - (1-0.64)^2 = 0.87.
  EXPECT_NEAR(single.delivery_ratio(), 0.64, 0.05);
  EXPECT_NEAR(redundant.delivery_ratio(), 0.87, 0.05);
}

TEST(StreamingTest, JitterCausesDeadlineMisses) {
  const auto g = two_path_fixture();
  const auto paths = extract_disjoint_paths(g, 0, 3, 2);
  StreamingConfig config;
  config.per_hop_loss = 0.0;
  config.per_hop_jitter_ms = 50.0;   // large vs the 30 ms slack
  config.playout_deadline_ms = 50.0;
  config.packets = 2000;
  util::Rng rng(9);
  const auto result = simulate_redundant_streaming(g, paths, config, rng);
  EXPECT_LT(result.delivery_ratio(), 1.0);
  EXPECT_GT(result.delivery_ratio(), 0.0);
}

TEST(StreamingTest, Rejections) {
  const auto g = two_path_fixture();
  StreamingConfig config;
  util::Rng rng(1);
  config.packets = -1;
  EXPECT_THROW(simulate_redundant_streaming(g, {}, config, rng),
               std::invalid_argument);
  config = StreamingConfig{};
  config.per_hop_loss = 1.5;
  EXPECT_THROW(simulate_redundant_streaming(g, {}, config, rng),
               std::invalid_argument);
  config = StreamingConfig{};
  const std::vector<std::vector<NodeId>> bad_path{{0}};
  EXPECT_THROW(simulate_redundant_streaming(g, bad_path, config, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace egoist::apps
