#include "apps/multipath.hpp"

#include <gtest/gtest.h>

namespace egoist::apps {
namespace {

TEST(IpPathRateTest, CappedBySessionLimitAndBandwidth) {
  net::BandwidthModel bw(5, 3);
  net::PeeringModel peering(5, 5, 1, 1, /*session_cap=*/2.0);
  const double rate = ip_path_rate(bw, peering, 0, 1);
  EXPECT_LE(rate, bw.avail_bw(0, 1) + 1e-9);
  EXPECT_LE(rate, peering.session_cap(0, 0) + 1e-9);
  EXPECT_GT(rate, 0.0);
}

TEST(IpPathRateTest, RejectsSelfPair) {
  net::BandwidthModel bw(5, 3);
  net::PeeringModel peering(5, 5);
  EXPECT_THROW(ip_path_rate(bw, peering, 2, 2), std::invalid_argument);
}

TEST(ParallelTransferTest, UsesAllNeighbors) {
  net::BandwidthModel bw(6, 7);
  net::PeeringModel peering(6, 9, 3, 3, 2.0);
  graph::Digraph overlay(6);
  // src 0 with neighbors 1, 2, 3; all reach dst 5.
  for (NodeId v : {1, 2, 3}) overlay.set_edge(0, v, bw.avail_bw(0, v));
  for (NodeId v : {1, 2, 3}) overlay.set_edge(v, 5, bw.avail_bw(v, 5));
  const auto result = parallel_transfer(overlay, bw, peering, 0, 5);
  EXPECT_EQ(result.first_hops.size(), 3u);
  EXPECT_EQ(result.session_rates.size(), 3u);
  EXPECT_GT(result.total_rate, 0.0);
  double sum = 0.0;
  for (double r : result.session_rates) sum += r;
  EXPECT_NEAR(sum, result.total_rate, 1e-9);
}

TEST(ParallelTransferTest, SharedEgressPointSharesBudget) {
  net::BandwidthModel bw(4, 11);
  // Single provider: every session exits through the same peering point.
  net::PeeringModel peering(4, 13, 1, 1, 2.0);
  graph::Digraph overlay(4);
  overlay.set_edge(0, 1, 1000.0);
  overlay.set_edge(0, 2, 1000.0);
  overlay.set_edge(1, 3, 1000.0);
  overlay.set_edge(2, 3, 1000.0);
  const auto result = parallel_transfer(overlay, bw, peering, 0, 3);
  // Both sessions share one point's 2.0 cap; total cannot exceed it.
  EXPECT_LE(result.total_rate, 2.0 + 1e-9);
  EXPECT_EQ(result.distinct_egress_points, 1);
}

TEST(ParallelTransferTest, MultihomedSourceExceedsSingleSessionCap) {
  // Force distinct egress points by giving the source 3 providers and many
  // neighbors: with high probability at least two neighbors hash apart
  // (deterministic given seeds; asserted on totals).
  net::BandwidthModel bw(12, 17);
  net::PeeringModel peering(12, 19, 3, 3, 2.0);
  graph::Digraph overlay(12);
  for (NodeId v = 1; v <= 6; ++v) {
    overlay.set_edge(0, v, 1000.0);
    overlay.set_edge(v, 11, 1000.0);
  }
  const auto result = parallel_transfer(overlay, bw, peering, 0, 11);
  EXPECT_GT(result.distinct_egress_points, 1);
  const double single_cap_max = 2.0 * 1.5;  // cap drawn from [0.5, 1.5] x 2.0
  EXPECT_GT(result.total_rate, single_cap_max);
}

TEST(ParallelTransferTest, DownstreamBottleneckLimitsSession) {
  net::BandwidthModel bw(4, 21);
  net::PeeringModel peering(4, 23, 1, 1, 1000.0);  // caps effectively off
  graph::Digraph overlay(4);
  overlay.set_edge(0, 1, 500.0);
  overlay.set_edge(1, 3, 0.25);  // thin downstream edge
  const auto result = parallel_transfer(overlay, bw, peering, 0, 3);
  ASSERT_EQ(result.session_rates.size(), 1u);
  EXPECT_LE(result.session_rates[0], 0.25 + 1e-9);
}

TEST(ParallelTransferTest, DirectNeighborIsDestination) {
  net::BandwidthModel bw(3, 25);
  net::PeeringModel peering(3, 27, 1, 1, 1000.0);
  graph::Digraph overlay(3);
  overlay.set_edge(0, 2, 100.0);
  const auto result = parallel_transfer(overlay, bw, peering, 0, 2);
  ASSERT_EQ(result.session_rates.size(), 1u);
  EXPECT_NEAR(result.session_rates[0], bw.avail_bw(0, 2), 1e-9);
}

TEST(ParallelTransferTest, InactiveNeighborSkipped) {
  net::BandwidthModel bw(4, 29);
  net::PeeringModel peering(4, 31, 1, 1, 1000.0);
  graph::Digraph overlay(4);
  overlay.set_edge(0, 1, 100.0);
  overlay.set_edge(1, 3, 100.0);
  overlay.set_active(1, false);
  const auto result = parallel_transfer(overlay, bw, peering, 0, 3);
  EXPECT_TRUE(result.first_hops.empty());
  EXPECT_DOUBLE_EQ(result.total_rate, 0.0);
}

TEST(MaxflowRateTest, BoundsParallelTransfer) {
  net::BandwidthModel bw(10, 33);
  net::PeeringModel peering(10, 35, 2, 3, 2.0);
  graph::Digraph overlay(10);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      if (u != v && (u + v) % 3 == 0) overlay.set_edge(u, v, bw.avail_bw(u, v));
    }
  }
  for (NodeId v : {1, 2, 4}) overlay.set_edge(0, v, bw.avail_bw(0, v));
  const auto parallel = parallel_transfer(overlay, bw, peering, 0, 7);
  const double bound = maxflow_rate(overlay, peering, 0, 7);
  // The max-flow bound with aggregate peering capacity dominates any
  // session-capped parallel schedule through the same overlay.
  EXPECT_LE(parallel.total_rate, bound + peering.max_aggregate_rate(0) + 1e-9);
  EXPECT_LE(bound, peering.max_aggregate_rate(0) + 1e-9);
}

TEST(MaxflowRateTest, RejectsSelfPair) {
  net::PeeringModel peering(3, 1);
  graph::Digraph overlay(3);
  EXPECT_THROW(maxflow_rate(overlay, peering, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::apps
