// Registry gate: every registered experiment must ship a scenario file,
// run end-to-end through run_scenario from that file (with shrunk knob
// overrides), and emit at least one structured row. Starting from the
// checked-in .scn file makes this the typo-safety gate for the shipped
// scenarios too: a knob a file sets that its experiment no longer reads
// fails here, not at a user's prompt.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "exp/cli.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"

namespace egoist::exp {
namespace {

/// Shrunk knobs per experiment: fast, but still exercising the full path.
const std::map<std::string, Params>& smoke_overrides() {
  static const std::map<std::string, Params> kOverrides{
      {"fig1_delay_ping",
       {{"n", "10"}, {"warmup", "1"}, {"sample", "1"}, {"k-min", "2"}, {"k-max", "2"}}},
      {"fig1_delay_coords",
       {{"n", "10"}, {"warmup", "1"}, {"sample", "1"}, {"k-min", "2"}, {"k-max", "2"}}},
      {"fig1_node_load",
       {{"n", "10"}, {"warmup", "1"}, {"sample", "1"}, {"k-min", "2"}, {"k-max", "2"}}},
      {"fig1_avail_bw",
       {{"n", "10"}, {"warmup", "1"}, {"sample", "1"}, {"k-min", "2"}, {"k-max", "2"}}},
      {"fig2_churn",
       {{"n", "8"}, {"epochs", "2"}, {"churn-warmup", "0"}, {"k-min", "3"}, {"k-max", "3"}}},
      {"fig3_rewirings",
       {{"n", "10"}, {"warmup", "1"}, {"sample", "1"}, {"k-min", "2"}, {"k-max", "2"},
        {"timeline-epochs", "2"}}},
      {"fig4_free_riders",
       {{"n", "50"}, {"warmup", "1"}, {"sample", "1"}, {"k-min", "2"}, {"k-max", "2"}}},
      {"fig5_8_sampling",
       {{"trials", "1"}, {"base-n", "24"}, {"m-min", "6"}, {"m-max", "6"}}},
      {"fig10_multipath_bw",
       {{"n", "10"}, {"warmup", "1"}, {"k-min", "2"}, {"k-max", "2"}}},
      {"fig11_disjoint_paths",
       {{"n", "10"}, {"warmup", "1"}, {"k-min", "2"}, {"k-max", "2"}, {"pairs", "5"}}},
      {"overhead_accounting",
       {{"n", "10"}, {"rounds", "2"}, {"k-min", "2"}, {"k-max", "2"}}},
      {"ablation_design_choices",
       {{"n", "8"}, {"warmup", "1"}, {"sample", "1"}, {"epochs", "6"}}},
      {"perf_epoch_scaling",
       {{"n-list", "8"}, {"epochs", "1"}, {"warmup", "0"}, {"legacy-max-n", "8"}}},
      {"steady_state",
       {{"n", "10"}, {"warmup", "1"}, {"sample", "1"}, {"k", "2"}}},
      {"scale_frontier",
       {{"n-list", "64"}, {"k", "4"}, {"br-sample", "8"}, {"br-landmarks", "8"},
        {"epochs", "1"}, {"score-sources", "4"}, {"coord-warmup", "10"}}},
      {"serve_load",
       {{"n", "64"}, {"k", "4"}, {"br-sample", "8"}, {"br-landmarks", "8"},
        {"readers", "2"}, {"sources", "4"}, {"duration", "0.2"},
        {"max-epochs", "2"}, {"warmup", "1"}, {"coord-warmup", "10"}}},
      {"serve_remote",
       {{"n", "64"}, {"k", "4"}, {"br-sample", "8"}, {"br-landmarks", "8"},
        {"readers", "2"}, {"sources", "4"}, {"duration", "0.2"},
        {"max-epochs", "2"}, {"warmup", "1"}, {"coord-warmup", "10"},
        {"pipeline-depth", "4"}, {"transports", "uds"},
        {"inproc-compare", "false"}}},
  };
  return kOverrides;
}

TEST(ExperimentsSmokeTest, EveryRegisteredExperimentRunsFromItsScenarioFile) {
  for (const auto& experiment : experiments()) {
    const auto it = smoke_overrides().find(experiment.name);
    ASSERT_NE(it, smoke_overrides().end())
        << "experiment '" << experiment.name
        << "' has no smoke overrides; add it to this test";
    ScenarioSpec spec;
    ASSERT_NO_THROW(spec = load_scenario_file(
                        default_scenario_path(experiment.name)))
        << "experiment '" << experiment.name
        << "' ships no scenarios/" << experiment.name << ".scn";
    EXPECT_EQ(spec.experiment, experiment.name);
    spec.name = experiment.name + "_smoke";
    for (const auto& [key, value] : it->second) spec.set(key, value);

    std::ostringstream console_os, json_os;
    ConsoleSink console(console_os);
    JsonLinesSink json(json_os);
    TeeSink tee({&console, &json});
    ASSERT_NO_THROW(run_scenario(spec, tee)) << experiment.name;
    EXPECT_NE(json_os.str().find("\"type\":\"row\""), std::string::npos)
        << experiment.name << " emitted no structured rows";
  }
}

TEST(ExperimentsSmokeTest, CiSmokeSweepScenarioExpandsToFourSteadyStateCells) {
  ScenarioSpec spec;
  ASSERT_NO_THROW(spec = load_scenario_file(
                      default_scenario_path("ci_smoke_sweep")));
  EXPECT_EQ(spec.experiment, "steady_state");
  const auto cells = expand_grid(spec);
  ASSERT_EQ(cells.size(), 4u);  // the CI gate's schema check assumes 4
  for (const auto& cell : cells) EXPECT_TRUE(cell.axes.empty());
}

TEST(ExperimentsSmokeTest, RegistryNamesAreUniqueAndSummarized) {
  std::map<std::string, int> seen;
  for (const auto& experiment : experiments()) {
    EXPECT_FALSE(experiment.name.empty());
    EXPECT_FALSE(experiment.summary.empty()) << experiment.name;
    EXPECT_NE(experiment.run, nullptr) << experiment.name;
    EXPECT_EQ(seen[experiment.name]++, 0)
        << "duplicate experiment name " << experiment.name;
    EXPECT_EQ(find_experiment(experiment.name), &experiment);
  }
  EXPECT_EQ(find_experiment("no_such_experiment"), nullptr);
}

}  // namespace
}  // namespace egoist::exp
