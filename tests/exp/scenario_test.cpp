#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include "exp/params.hpp"

namespace egoist::exp {
namespace {

TEST(ScenarioParseTest, KeyValueLinesWithCommentsAndBlanks) {
  const auto spec = parse_scenario_text(
      "# a figure\n"
      "experiment = fig2_churn\n"
      "\n"
      "n = 50   # overlay size\n"
      "  seed=7\n",
      "test");
  EXPECT_EQ(spec.name, "test");
  EXPECT_EQ(spec.experiment, "fig2_churn");
  ASSERT_NE(spec.find("n"), nullptr);
  EXPECT_EQ(*spec.find("n"), "50");
  ASSERT_NE(spec.find("seed"), nullptr);
  EXPECT_EQ(*spec.find("seed"), "7");
  EXPECT_EQ(spec.find("missing"), nullptr);
}

TEST(ScenarioParseTest, RejectsMalformedLineAndMissingExperiment) {
  EXPECT_THROW(parse_scenario_text("experiment = x\nnonsense line\n", "t"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_text("= 5\nexperiment = x\n", "t"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_text("n = 50\n", "t"), std::invalid_argument);
}

TEST(ScenarioParseTest, EmptyValueAllowed) {
  const auto spec = parse_scenario_text("experiment = x\njson =\n", "t");
  ASSERT_NE(spec.find("json"), nullptr);
  EXPECT_EQ(*spec.find("json"), "");
}

TEST(ScenarioSpecTest, SetOverridesAndSweepPrefixDeclaresAxis) {
  ScenarioSpec spec;
  spec.set("experiment", "steady_state");
  spec.set("n", "50");
  spec.set("n", "100");  // override, not append
  spec.set("sweep.policy", "BR,HybridBR");
  EXPECT_EQ(spec.experiment, "steady_state");
  ASSERT_EQ(spec.params.size(), 1u);
  EXPECT_EQ(*spec.find("n"), "100");
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].first, "policy");
  EXPECT_EQ(spec.axes[0].second, "BR,HybridBR");
  EXPECT_THROW(spec.set("sweep.", "x"), std::invalid_argument);
}

TEST(ExpandGridTest, NoAxesIsIdentity) {
  ScenarioSpec spec;
  spec.name = "solo";
  spec.experiment = "x";
  spec.set("n", "5");
  const auto cells = expand_grid(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].name, "solo");
  EXPECT_EQ(*cells[0].find("n"), "5");
}

TEST(ExpandGridTest, CrossProductLastAxisFastest) {
  ScenarioSpec spec;
  spec.name = "grid";
  spec.experiment = "x";
  spec.set("k", "4");
  spec.set("sweep.n", "10, 20, 30");
  spec.set("sweep.policy", "BR,HybridBR");
  const auto cells = expand_grid(spec);
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].name, "grid[n=10,policy=BR]");
  EXPECT_EQ(cells[1].name, "grid[n=10,policy=HybridBR]");
  EXPECT_EQ(cells[2].name, "grid[n=20,policy=BR]");
  EXPECT_EQ(cells[5].name, "grid[n=30,policy=HybridBR]");
  // Axis values land in the cell's params; the shared knob survives.
  EXPECT_EQ(*cells[3].find("n"), "20");
  EXPECT_EQ(*cells[3].find("policy"), "HybridBR");
  EXPECT_EQ(*cells[3].find("k"), "4");
  EXPECT_TRUE(cells[3].axes.empty());
}

TEST(ExpandGridTest, RejectsEmptyAxis) {
  ScenarioSpec empty;
  empty.experiment = "x";
  empty.set("sweep.n", "");
  EXPECT_THROW(expand_grid(empty), std::invalid_argument);
}

TEST(ParamReaderTest, TypedAccessAndDefaults) {
  ScenarioSpec spec;
  spec.experiment = "x";
  spec.set("n", "32");
  spec.set("rate", "1.5");
  spec.set("on", "yes");
  spec.set("seed", "99");
  const ParamReader params(spec);
  EXPECT_EQ(params.get_int("n", 1), 32);
  EXPECT_DOUBLE_EQ(params.get_double("rate", 0.0), 1.5);
  EXPECT_TRUE(params.get_bool("on"));
  EXPECT_EQ(params.get_seed("seed", 1), 99u);
  EXPECT_EQ(params.get_int("absent", 7), 7);
  EXPECT_EQ(params.get_string("name", "default"), "default");
  EXPECT_NO_THROW(params.finish());
}

TEST(ParamReaderTest, RejectsBadValues) {
  ScenarioSpec spec;
  spec.experiment = "x";
  spec.set("n", "abc");
  spec.set("rate", "1.5x");
  spec.set("on", "maybe");
  const ParamReader params(spec);
  EXPECT_THROW(params.get_int("n", 1), std::invalid_argument);
  EXPECT_THROW(params.get_double("rate", 0.0), std::invalid_argument);
  EXPECT_THROW(params.get_bool("on"), std::invalid_argument);
}

TEST(SplitCsvTest, SplitsAndTrims) {
  EXPECT_EQ(split_csv("a, b ,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("50"), (std::vector<std::string>{"50"}));
  EXPECT_TRUE(split_csv("").empty());
}

TEST(ParamReaderTest, FinishHintsControlFlagForCliTypos) {
  ScenarioSpec spec;
  spec.name = "s";
  spec.experiment = "x";
  spec.set("jsnol", "out");  // a misspelled --jsonl forwarded as a knob
  const ParamReader params(spec);
  params.get_int("n", 10);
  try {
    params.finish();
    FAIL() << "finish() should reject the unread knob";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("control flag --jsonl"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParamReaderTest, FinishRejectsUnreadKnobWithSuggestion) {
  ScenarioSpec spec;
  spec.name = "s";
  spec.experiment = "x";
  spec.set("sampel", "3");
  const ParamReader params(spec);
  params.get_int("sample", 10);
  try {
    params.finish();
    FAIL() << "finish() should reject the unread knob";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sampel"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("did you mean 'sample'"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace egoist::exp
