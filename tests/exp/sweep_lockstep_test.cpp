// The sweep determinism contract: a grid cell's trajectory and emitted
// bytes are identical whether the grid runs sequentially, on a thread
// pool, or cell-by-cell through run_scenario directly. Cells derive all
// randomness from their own seed knob, so parallelism cannot leak between
// them.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"

namespace egoist::exp {
namespace {

ScenarioSpec smoke_grid() {
  ScenarioSpec spec;
  spec.name = "lockstep";
  spec.experiment = "steady_state";
  spec.set("k", "3");
  spec.set("seed", "11");
  spec.set("warmup", "2");
  spec.set("sample", "1");
  spec.set("sweep.policy", "BR,k-Random");
  spec.set("sweep.n", "12,16");
  return spec;
}

std::string run_with_jobs(const ScenarioSpec& spec, int jobs) {
  std::ostringstream console_os, json_os;
  ConsoleSink console(console_os);
  JsonLinesSink json(json_os);
  TeeSink tee({&console, &json});
  SweepOptions options;
  options.jobs = jobs;
  run_sweep(spec, options, tee);
  return console_os.str() + "\x1f" + json_os.str();
}

TEST(SweepLockstepTest, ParallelCellsBitIdenticalToSequential) {
  const auto spec = smoke_grid();
  const std::string sequential = run_with_jobs(spec, 1);
  const std::string parallel = run_with_jobs(spec, 4);
  EXPECT_EQ(parallel, sequential);
  EXPECT_NE(sequential.find("\"type\":\"row\""), std::string::npos);
}

TEST(SweepLockstepTest, SweepMatchesDirectPerCellRuns) {
  const auto spec = smoke_grid();
  const std::string swept = run_with_jobs(spec, 4);

  std::ostringstream console_os, json_os;
  ConsoleSink console(console_os);
  JsonLinesSink json(json_os);
  TeeSink tee({&console, &json});
  for (const auto& cell : expand_grid(spec)) run_scenario(cell, tee);
  EXPECT_EQ(swept, console_os.str() + "\x1f" + json_os.str());
}

TEST(SweepLockstepTest, SingleCellSpecRunsWithoutAxes) {
  ScenarioSpec spec;
  spec.name = "solo";
  spec.experiment = "steady_state";
  spec.set("n", "10");
  spec.set("k", "2");
  spec.set("warmup", "1");
  spec.set("sample", "1");
  std::ostringstream os;
  ConsoleSink console(os);
  SweepOptions options;
  run_sweep(spec, options, console);
  EXPECT_NE(os.str().find("steady state: BR"), std::string::npos);
}

TEST(SweepLockstepTest, FailedCellRethrowsAfterEarlierCellsEmit) {
  ScenarioSpec spec;
  spec.name = "bad";
  spec.experiment = "steady_state";
  spec.set("warmup", "0");
  spec.set("sample", "1");
  spec.set("k", "2");
  spec.set("sweep.n", "10,not_a_number");
  std::ostringstream os;
  ConsoleSink console(os);
  SweepOptions options;
  options.jobs = 2;
  EXPECT_THROW(run_sweep(spec, options, console), std::invalid_argument);
  // The first (valid) cell still emitted before the failure surfaced.
  EXPECT_NE(os.str().find("steady state: BR"), std::string::npos);
}

TEST(RunScenarioTest, UnknownExperimentSuggestsClosestName) {
  ScenarioSpec spec;
  spec.name = "s";
  spec.experiment = "fig2_chrun";
  std::ostringstream os;
  ConsoleSink console(os);
  try {
    run_scenario(spec, console);
    FAIL() << "unknown experiment must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fig2_churn"), std::string::npos);
  }
}

TEST(RunScenarioTest, RejectsSpecWithAxes) {
  ScenarioSpec spec;
  spec.name = "s";
  spec.experiment = "steady_state";
  spec.set("sweep.n", "1,2");
  std::ostringstream os;
  ConsoleSink console(os);
  EXPECT_THROW(run_scenario(spec, console), std::invalid_argument);
}

}  // namespace
}  // namespace egoist::exp
